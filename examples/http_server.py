#!/usr/bin/env python3
"""The HTTP access layer (§6.1.7): serve a taxonomy over JSON.

Starts the server on an ephemeral port over the Figure 4 shapes database
and plays a small client session against it (so the example is
self-contained); pass ``--serve`` to keep it running for manual curl.

Run:  python examples/http_server.py [--serve]
"""

from __future__ import annotations

import json
import sys
import urllib.request

from repro.engine import PrometheusDB, PrometheusServer
from repro.taxonomy import NameDeriver, build_shapes_scenario
from repro.taxonomy.model import TaxonomyDatabase


def fetch(url: str) -> dict | list:
    with urllib.request.urlopen(url, timeout=5) as response:
        return json.load(response)


def query(base: str, text: str, **params) -> object:
    payload = json.dumps({"query": text, "params": params}).encode()
    request = urllib.request.Request(
        base + "/query",
        data=payload,
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return json.load(response)["result"]


def main() -> None:
    db = PrometheusDB()
    taxdb = TaxonomyDatabase.over_engine(db)
    scenario = build_shapes_scenario(taxdb)
    NameDeriver(taxdb, author="T3", year=1950).derive(
        scenario.classifications["T3"]
    )

    server = PrometheusServer(db)
    server.start()
    base = server.url
    print(f"serving on {base}\n")

    if "--serve" in sys.argv:
        print("endpoints: /schema /classes/<name> /objects/<oid> "
              "/classifications POST /query")
        print("Ctrl-C to stop")
        try:
            import time

            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
        finally:
            server.stop()
        return

    print("GET /classifications")
    print(" ", fetch(base + "/classifications"))

    print("\nGET /classifications/T1%20shapes")
    detail = fetch(base + "/classifications/T1%20shapes")
    print(f"  {len(detail['edges'])} edges, roots={detail['roots']}")

    print("\nPOST /query — count specimens")
    print(" ", query(base, "select count(s) from s in Specimen"))

    print("\nPOST /query — white specimens and their classifications")
    rows = query(
        base,
        'select s.field_name from s in Specimen '
        'where s.field_name like "white%" order by s.field_name',
    )
    print(" ", rows)

    print("\nGET /schema — class inventory")
    schema = fetch(base + "/schema")
    print(" ", sorted(schema["classes"])[:6], "...")

    server.stop()
    print("\nserver stopped")


if __name__ == "__main__":
    main()
