#!/usr/bin/env python3
"""What-if scenarios (§7.1.4): experiment on a copy of a classification.

A reviser wonders: what happens to the names if the *repens/nodiflorum*
group is split in two?  Prometheus answers without touching the published
classification:

1. copy the classification (new edges, same nodes);
2. restructure the copy (split the species group);
3. re-derive names on the copy;
4. compare the published and hypothetical classifications;
5. the trace log records the whole experiment.

Run:  python examples/what_if.py
"""

from __future__ import annotations

from repro.classification import copy_classification, compare_classifications
from repro.taxonomy import NameDeriver, build_apium_scenario


def main() -> None:
    scenario = build_apium_scenario()
    taxdb = scenario.taxdb
    published = scenario.classification

    # Derive the published names first (Figure 3).
    NameDeriver(taxdb, author="Raguenaud", year=2000).derive(published)
    print("Published classification:")
    for ct in taxdb.iter_taxa_top_down(published):
        print("  " * (published.depth(ct) + 1) + taxdb.display_name(ct))

    # ------------------------------------------------------------------
    # 1. Copy for experimentation.
    experiment = copy_classification(
        taxdb.classifications,
        published,
        "what-if split",
        author="Raguenaud",
        description="split Taxon 2 by specimen",
    )
    print(f"\ncopied into {experiment.name!r}: "
          f"{len(experiment)} edges, sharing all nodes")

    # 2. Restructure the copy: pull nodiflorum's specimen out of Taxon 2
    #    into a sibling species group.
    taxon2 = scenario.taxon2
    new_species = taxdb.new_taxon("Species", working_name="Taxon 3")
    for edge in list(experiment.edges()):
        if (
            edge.origin_oid == taxon2.oid
            and edge.destination_oid == scenario.specimen_nodiflorum.oid
        ):
            experiment.remove_edge(edge)
            taxdb.schema.unrelate(edge)
    taxdb.place(
        experiment, scenario.taxon1, new_species,
        motivation="what if the group is split?", actor="Raguenaud",
    )
    taxdb.place(experiment, new_species, scenario.specimen_nodiflorum)
    print("split Taxon 2: moved the nodiflorum specimen into a new group")

    # 3. Re-derive names on the experimental copy.
    print("\nDerived names in the hypothetical classification:")
    results = NameDeriver(taxdb, author="Raguenaud", year=2001).derive(
        experiment
    )
    for result in results:
        ct = taxdb.schema.get_object(result.ct_oid)
        print(
            f"  {taxdb.working_name_of(ct):10s} -> {result.full_name:45s}"
            f" [{result.action}]"
        )

    # 4. Compare published vs hypothetical.
    report = compare_classifications(
        published,
        experiment,
        is_leaf=taxdb.is_specimen,
        is_group=taxdb.is_ct,
    )
    print("\nOverlap between published and what-if classifications:")
    for pair in report.synonym_pairs:
        a = taxdb.schema.get_object(pair.taxon_a)
        b = taxdb.schema.get_object(pair.taxon_b)
        print(
            f"  {taxdb.display_name(a):45s} ~ "
            f"{taxdb.display_name(b):45s} [{pair.kind.value}]"
        )

    # 5. The experiment is fully traced.
    print("\nTrace entries for the experiment:")
    for entry in taxdb.trace.for_classification("what-if split"):
        line = f"  #{entry.sequence} {entry.operation}"
        if entry.reason:
            line += f" — {entry.reason}"
        print(line)

    # The published classification is untouched.
    print("\nPublished classification after the experiment (unchanged):")
    for ct in taxdb.iter_taxa_top_down(published):
        print("  " * (published.depth(ct) + 1) + taxdb.display_name(ct))


if __name__ == "__main__":
    main()
