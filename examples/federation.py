#!/usr/bin/env python3
"""Distribution over localised databases (thesis chapter 8 further work).

Starts three "herbarium" nodes — each a complete, autonomous Prometheus
database with its own flora and classifications — and queries them as a
federation: the same POOL query fans out to every node, names are found
wherever they were published, and nothing is ever merged into a single
global hierarchy (each institution keeps its own view, which is the whole
point of multiple overlapping classifications).

Run:  python examples/federation.py
"""

from __future__ import annotations

from repro.engine import Federation, PrometheusDB, PrometheusServer
from repro.taxonomy import (
    FloraParameters,
    TaxonomyDatabase,
    generate_flora,
)


def start_node(name: str, seed: int) -> tuple[PrometheusServer, TaxonomyDatabase]:
    db = PrometheusDB(name=name)
    taxdb = TaxonomyDatabase.over_engine(db)
    generate_flora(
        FloraParameters(
            families=1,
            genera_per_family=2,
            species_per_genus=3,
            specimens_per_species=2,
            seed=seed,
        ),
        taxdb=taxdb,
        classification_name=f"{name} regional flora",
    )
    server = PrometheusServer(db)
    server.start()
    return server, taxdb


def main() -> None:
    nodes = {}
    servers = []
    for name, seed in (("edinburgh", 1), ("kew", 2), ("paris", 3)):
        server, taxdb = start_node(name, seed)
        servers.append(server)
        nodes[name] = (server, taxdb)
        print(f"node {name:10s} serving on {server.url}")

    # A name published at two institutions independently.
    for name in ("edinburgh", "paris"):
        nodes[name][1].publish_name(
            "Apium", "Genus", author="L.", year=1753, publication="Sp. Pl."
        )

    federation = Federation()
    for name, (server, _) in nodes.items():
        federation.add_node(name, server.url)

    print("\nnode health:", federation.alive())

    print("\nspecimen counts across the federation:")
    for node, count in federation.count_all("Specimen").items():
        print(f"  {node:12s} {count}")

    print("\nwhere has the name 'Apium' been published?")
    for node, item in federation.find_name("Apium"):
        values = item["values"]
        print(
            f"  {node:12s} {values['epithet']} {values['author']} "
            f"({values['year']})"
        )

    print("\nclassification inventory (kept local, never merged):")
    for node, names in federation.classification_inventory().items():
        print(f"  {node:12s} {names}")

    print("\none POOL query, every node — genera per node:")
    for result in federation.query_all(
        'select n.epithet from n in NomenclaturalTaxon '
        'where n.rank = "Genus" order by n.epithet'
    ):
        print(f"  {result.node:12s} {result.result}")

    for server in servers:
        server.stop()
    print("\nall nodes stopped")


if __name__ == "__main__":
    main()
