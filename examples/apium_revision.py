#!/usr/bin/env python3
"""The Figure 3 worked example: deriving names in a revision.

Rebuilds the thesis's Apium/Heliosciadium scenario — a taxonomist
classifies two type specimens into a new Species group inside a new Genus
group, and the ICBN derivation machinery:

1. names the Genus group *Heliosciadium W.D.J.Koch* (walking the
   typification hierarchy bottom-up from the specimens);
2. finds the oldest validly published Species name (*Apium repens
   (Jacq.)Lag.*, 1821 — beating *Heliosciadium nodiflorum*, 1824);
3. notices the combination "Heliosciadium repens" was never published and
   publishes it as a new combination with the basionym author in
   brackets: **Heliosciadium repens (Jacq.)Raguenaud**.

Run:  python examples/apium_revision.py
"""

from __future__ import annotations

from repro.taxonomy import NameDeriver, build_apium_scenario


def main() -> None:
    scenario = build_apium_scenario()
    taxdb = scenario.taxdb

    print("Nomenclatural register before the revision:")
    for nt in taxdb.names():
        kinds = ", ".join(k for k, _ in taxdb.types_of(nt)) or "untypified"
        print(f"  {taxdb.full_name(nt):45s} [{nt.get('year')}] types: {kinds}")

    print("\nRevision classification (working names):")
    classification = scenario.classification
    for ct in taxdb.iter_taxa_top_down(classification):
        depth = classification.depth(ct)
        members = classification.children(ct)
        specimen_labels = [
            m.get("field_name") for m in members if taxdb.is_specimen(m)
        ]
        print(
            "  " * (depth + 1)
            + f"{taxdb.working_name_of(ct)} ({ct.get('rank')})"
            + (f"  specimens: {specimen_labels}" if specimen_labels else "")
        )

    print("\nDeriving names (author Raguenaud, 2000)...")
    deriver = NameDeriver(taxdb, author="Raguenaud", year=2000)
    for result in deriver.derive(classification):
        ct = taxdb.schema.get_object(result.ct_oid)
        print(
            f"  {taxdb.working_name_of(ct):10s} -> {result.full_name:45s}"
            f" [{result.action}]"
            + (f"  ({result.message})" if result.message else "")
        )

    print("\nFinal classification with calculated names:")
    for ct in taxdb.iter_taxa_top_down(classification):
        depth = classification.depth(ct)
        print("  " * (depth + 1) + taxdb.display_name(ct))

    new_name = taxdb.calculated_name(scenario.taxon2)
    basionym = taxdb.basionym_of(new_name)
    governing = taxdb.primary_type(new_name)
    print("\nThe new combination:")
    print("  name     :", taxdb.full_name(new_name))
    print("  basionym :", taxdb.full_name(basionym))
    print(
        "  type     : specimen collected by",
        governing.get("collector"),
        f"({governing.get('collection_number')})",
    )
    print("\nTrace log:")
    for line in taxdb.trace.explain(scenario.taxon2.oid):
        print("  " + line)


if __name__ == "__main__":
    main()
