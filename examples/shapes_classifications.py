#!/usr/bin/env python3
"""The Figure 4 scenario: four overlapping classifications.

Four taxonomists classify a growing set of geometric "specimens" by
different criteria over 80 years.  This example shows what the thesis
argues a taxonomic database must support:

* the same specimens classified simultaneously in four ways;
* names reused over *different* circumscriptions (type precedence makes
  the brightness-white group inherit the name "Squares"!);
* specimen-based synonym discovery — full, pro-parte, homotypic;
* the deceptiveness of name-based comparison;
* querying by context.

Run:  python examples/shapes_classifications.py
"""

from __future__ import annotations

from repro.classification import Context
from repro.query import execute
from repro.taxonomy import (
    NameDeriver,
    build_shapes_scenario,
    compare_taxonomic,
    deceptive_names,
)


def main() -> None:
    scenario = build_shapes_scenario()
    taxdb = scenario.taxdb

    for key, author, year in (
        ("T1", "T1", 1900), ("T2", "T2", 1920),
        ("T3", "T3", 1950), ("T4", "T4", 1980),
    ):
        NameDeriver(taxdb, author=author, year=year).derive(
            scenario.classifications[key]
        )

    print("Classifications over one specimen set:")
    for classification in taxdb.classifications:
        specimens = sum(
            1 for node in classification.nodes() if taxdb.is_specimen(node)
        )
        print(
            f"  {classification.name:15s} by {classification.author:12s}"
            f" ({classification.year}): {len(classification)} placements,"
            f" {specimens} specimens"
        )

    # ------------------------------------------------------------------
    print("\nType precedence (the unintuitive ICBN result):")
    white_group = scenario.taxa["T3/white"]
    members = [
        m.get("field_name")
        for m in scenario.classifications["T3"].children(white_group)
    ]
    print(f"  T3's white-brightness group contains {members}")
    print(f"  ...but its derived name is: {taxdb.display_name(white_group)}")
    print("  (the white square, oldest type, forces the name 'Squares')")

    # ------------------------------------------------------------------
    print("\nSpecimen-based comparison of T2 (shape) vs T3 (brightness):")
    report = compare_taxonomic(
        taxdb, scenario.classifications["T2"], scenario.classifications["T3"]
    )
    print(f"  shared specimens : {len(report.shared_leaf_oids)}")
    print(f"  full synonyms    : {len(report.full_synonyms())}")
    print(f"  pro-parte        : {len(report.pro_parte_synonyms())}")
    for pair in report.pro_parte_synonyms()[:5]:
        a = taxdb.display_name(taxdb.schema.get_object(pair.taxon_a))
        b = taxdb.display_name(taxdb.schema.get_object(pair.taxon_b))
        homo = (
            "homotypic" if pair.homotypic
            else "heterotypic" if pair.homotypic is False else "?"
        )
        print(
            f"    {a:25s} ~ {b:25s} share {len(pair.shared)} specimen(s)"
            f" [{homo}]"
        )

    print("\nName-based comparison is deceptive:")
    for trap in deceptive_names(
        taxdb, scenario.classifications["T2"], scenario.classifications["T3"]
    ):
        a = taxdb.schema.get_object(trap.taxon_a)
        b = taxdb.schema.get_object(trap.taxon_b)
        print(
            f"  the name {trap.epithet!r} denotes different circumscriptions"
            f" in T2 ({taxdb.working_name_of(a)}) and T3"
            f" ({taxdb.working_name_of(b)})"
        )

    # ------------------------------------------------------------------
    print("\nQuerying by context (§7.1.3.3):")
    ctx = Context.of(
        taxdb.classifications,
        "T1 shapes", "T2 sections", "T3 brightness", "T4 revision",
    )
    white_circle = scenario.specimens["white_circle"]
    print("  where is the white circle placed?")
    for name, parents in ctx.placements_of(white_circle).items():
        labels = [taxdb.display_name(p) for p in parents]
        print(f"    {name:15s}: under {labels}")

    # ------------------------------------------------------------------
    print("\nPOOL: specimens of T2's Round section, via scoped closure:")
    round_ct = scenario.taxa["T2/Round"]
    names = execute(
        taxdb.schema,
        "select x.field_name from t in CircumscriptionTaxon, "
        'x in (Specimen) t->Includes["T2 sections"]* '
        "where t.oid = $oid order by x.field_name",
        classifications=taxdb.classifications,
        params={"oid": round_ct.oid},
    )
    print(f"  {names}")


if __name__ == "__main__":
    main()
