#!/usr/bin/env python3
"""The ICBN as database constraints (§7.1.3.2, Figures 35–40).

Installs the rule set and walks through accepted and rejected operations:
object rules (name endings, capitalisation), deferred rules (typification
checked at commit with automatic transaction abortion), relationship
rules (rank windows on placements), interactive rules, and PCL-authored
constraints.

Run:  python examples/icbn_rules.py
"""

from __future__ import annotations

from repro.errors import ConstraintViolation
from repro.rules import format_translation, translate_pcl
from repro.taxonomy import HOLOTYPE, TaxonomyDatabase
from repro.taxonomy.icbn_rules import install_icbn_rules


def attempt(label: str, operation) -> None:
    try:
        operation()
        print(f"  ACCEPTED  {label}")
    except ConstraintViolation as exc:
        print(f"  REJECTED  {label}\n            -> {exc}")


def main() -> None:
    taxdb = TaxonomyDatabase()
    engine = install_icbn_rules(taxdb)
    print("Installed rules:")
    for rule in engine.rules():
        print(f"  - {rule.describe()}")

    print("\nObject rules (Figures 35–36):")
    attempt(
        "publish 'Apiaceae' at rank Familia",
        lambda: taxdb.publish_name("Apiaceae", "Familia"),
    )
    attempt(
        "publish 'Apiales' at rank Familia (wrong ending)",
        lambda: taxdb.publish_name("Apiales", "Familia", validate=False),
    )
    attempt(
        "publish 'Palmae' at rank Familia (conserved exception)",
        lambda: taxdb.publish_name("Palmae", "Familia", validate=False),
    )
    attempt(
        "publish 'apium' at rank Genus (lowercase)",
        lambda: taxdb.publish_name("apium", "Genus", validate=False),
    )

    print("\nRelationship rules (Figures 38–40):")
    classification = taxdb.new_classification("demo")
    family = taxdb.new_taxon("Familia", working_name="F")
    genus = taxdb.new_taxon("Genus", working_name="G")
    species = taxdb.new_taxon("Species", working_name="s")
    attempt(
        "place a Species directly under a Familia",
        lambda: taxdb.place(classification, family, species),
    )
    attempt(
        "place the Genus under the Familia",
        lambda: taxdb.place(classification, family, genus),
    )
    attempt(
        "place the Species under the Genus",
        lambda: taxdb.place(classification, genus, species),
    )

    print("\nDeferred rule (Figure 37) — typification checked at commit:")
    apium = taxdb.publish_name("Apium", "Genus", author="L.", year=1753)
    taxdb.commit()
    for warning in engine.warnings:
        print(f"  WARNING   {warning.rule_name}: {warning.message}")
    engine.clear_warnings()
    taxdb.typify(apium, taxdb.new_specimen(collector="L."), HOLOTYPE)
    taxdb.commit()
    print("  after typification: commit passes with "
          f"{len(engine.warnings)} warnings")

    print("\nInteractive rule — the taxonomist decides (§5.2):")
    from repro.rules import OnViolation

    rule = engine.get("icbn_family_name")
    rule.on_violation = OnViolation.INTERACTIVE
    engine.set_interactive_handler(
        lambda r, ctx: (
            print(f"  PROMPT    accept violation of {r.name!r}? -> yes"),
            True,
        )[1]
    )
    attempt(
        "publish 'Umbellales' at Familia with interactive override",
        lambda: taxdb.publish_name("Umbellales", "Familia", validate=False),
    )
    rule.on_violation = OnViolation.ABORT

    print("\nPCL-authored constraint (§5.2.3):")
    rules = translate_pcl(
        """
        context Specimen
            inv collectedSomewhere immediate
                when self.collector <> null and self.collector <> "" :
                self.herbarium <> null and self.herbarium <> ""
        """,
        taxdb.schema,
        engine,
    )
    print(format_translation(rules[0]))
    attempt(
        "create a specimen with collector but no herbarium",
        lambda: taxdb.new_specimen(collector="Anonymous"),
    )
    attempt(
        "create a specimen with collector and herbarium",
        lambda: taxdb.new_specimen(collector="Anonymous", herbarium="E"),
    )


if __name__ == "__main__":
    main()
