#!/usr/bin/env python3
"""Quickstart: the Prometheus extended object-oriented database.

Builds a small database from scratch, demonstrating the features of
chapter 4: first-class relationships with semantics, roles through
attribute inheritance, POOL queries, constraints, transactions and
persistence.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.core.attributes import Attribute
from repro.core.semantics import (
    Cardinality,
    RelationshipSemantics,
    RelKind,
    format_table3,
)
from repro.core import types as T
from repro.engine import PrometheusDB
from repro.errors import ConstraintViolation, ExclusivityError
from repro.rules import translate_pcl


def declare_schema(db: PrometheusDB) -> None:
    """A little library-catalogue domain (the thesis's intro example)."""
    db.schema.define_class(
        "Book",
        [
            Attribute("title", T.STRING, required=True),
            Attribute("year", T.INTEGER),
        ],
        doc="A catalogued book",
    )
    db.schema.define_class(
        "Shelf",
        [Attribute("label", T.STRING, required=True)],
    )
    # An exclusive, lifetime-dependent aggregation: a book lives on one
    # shelf and is discarded with it.
    db.schema.define_relationship(
        "Holds",
        "Shelf",
        "Book",
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION,
            exclusive=True,
            lifetime_dependent=True,
        ),
        doc="physical placement",
    )
    # An association carrying its own data, inherited by the destination
    # as a role attribute (§4.4.5).
    db.schema.define_relationship(
        "Features",
        "Shelf",
        "Book",
        semantics=RelationshipSemantics(
            kind=RelKind.ASSOCIATION,
            cardinality=Cardinality(max_out=3),
            inherited_attributes=("featured_since",),
        ),
        attributes=[Attribute("featured_since", T.INTEGER)],
        doc="display recommendation",
    )


def main() -> None:
    path = Path(tempfile.mkdtemp()) / "quickstart.plog"
    print(f"database file: {path}\n")

    with PrometheusDB(path) as db:
        declare_schema(db)
        db.load()

        # --- objects and relationships --------------------------------
        fiction = db.schema.create("Shelf", label="Fiction")
        crime = db.schema.create("Shelf", label="Crime")
        book = db.schema.create("Book", title="The Name of the Rose", year=1980)
        db.schema.relate("Holds", fiction, book)
        print("placed the book on", fiction.get("label"))

        # Exclusivity: one physical place only.
        try:
            db.schema.relate("Holds", crime, book)
        except ExclusivityError as exc:
            print("exclusive aggregation enforced:", exc)

        # Role acquisition: the relationship's attribute becomes visible
        # on the book itself.
        db.schema.relate("Features", fiction, book, featured_since=2020)
        print("role attribute acquired: featured_since =",
              book.get("featured_since"))

        # --- constraints (PCL, §5.2.3) ---------------------------------
        translate_pcl(
            """
            context Book
                inv plausibleYear immediate when self.year <> null :
                    self.year > 1400 and self.year < 2100
            """,
            db.schema,
            db.rules,
        )
        try:
            db.schema.create("Book", title="Clay tablet", year=-2000)
        except ConstraintViolation as exc:
            print("constraint enforced:", exc)

        # --- POOL queries (§5.1) ----------------------------------------
        db.indexes.create_index("Book", "title")
        for i in range(5):
            db.schema.create("Book", title=f"Filler {i}", year=1990 + i)
        titles = db.query(
            "select b.title from b in Book where b.year >= $y "
            "order by b.title",
            params={"y": 1990},
        )
        print("books from the 90s on:", titles)
        plan = db.explain(
            'select b from b in Book where b.title = "Filler 3"'
        )
        print("index used by exact-match query:", plan.index_used)

        # Relationship instances are queryable objects too.
        held = db.query(
            "select r.destination.title from r in Holds "
            'where r.origin.label = "Fiction"'
        )
        print("held by Fiction:", held)

        db.commit()

    # --- persistence: reopen and check ---------------------------------
    with PrometheusDB(path) as db2:
        declare_schema(db2)
        loaded = db2.load()
        count = db2.query("select count(b) from b in Book")[0]
        print(f"\nreopened: {loaded} objects loaded, {count} books persisted")

    # --- Table 3: allowed combinations of behaviours --------------------
    print("\nTable 3 — allowed combinations of relationship behaviours:")
    print(format_table3())


if __name__ == "__main__":
    main()
