#!/usr/bin/env python3
"""Integrating legacy data (requirement 10, §2.4.2).

Most herbaria hold their taxonomy as flat tables — names in one file,
specimens in another, a parent/child placement list in a third (the
Pandora/BG-BASE/Brahms shape).  This example ingests such a legacy
export, reports problem rows instead of silently fixing them, completes
the type hierarchy, and then runs automatic ICBN name derivation over the
imported classification — demonstrating that Prometheus "reuses existing
data ... without loss of data or heavy treatment of existing datasets".

Run:  python examples/legacy_import.py
"""

from __future__ import annotations

from repro.taxonomy import (
    HOLOTYPE,
    NameDeriver,
    TaxonomyDatabase,
    import_classification,
    import_names,
    import_specimens,
)

LEGACY_NAMES = """epithet,rank,author,year,publication,parent,basionym_author,status
Apiaceae,Familia,Lindl.,1836,Intr. Nat. Syst. Bot.,,,
Apium,Genus,L.,1753,Sp. Pl.,,,
graveolens,Species,L.,1753,Sp. Pl.,Apium,,
nodiflorum,Species,L.,1753,Sp. Pl.,Sium,,
Heliosciadium,Genus,W.D.J.Koch,1824,Nova Acta,,,
nodiflorum,Species,W.D.J.Koch,1824,Nova Acta,Heliosciadium,L.,
BadRow,,,,,,,
"""

LEGACY_SPECIMENS = """collector,collection_number,herbarium,field_name,collected,type_of,type_kind
Linnaeus,Herb.Cliff.107,BM,graveolens-type,1753-05-01,graveolens,lectotype
Koch,NA-12,B,nodiflorum-type,1824-03-02,nodiflorum,holotype
Watson,W-31,E,graveolens-dup,,,
Watson,W-32,E,unplaced,,,
"""

LEGACY_PLACEMENTS = """child,child_rank,parent,parent_rank,specimen,motivation
ApiaceaeGrp,Familia,,,,
ApiumGrp,Genus,ApiaceaeGrp,Familia,,legacy placement
GraveolensGrp,Species,ApiumGrp,Genus,,legacy placement
,,GraveolensGrp,,graveolens-type,
,,GraveolensGrp,,graveolens-dup,
NodiflorumGrp,Species,ApiumGrp,Genus,,disputed placement
,,NodiflorumGrp,,nodiflorum-type,
"""


def main() -> None:
    taxdb = TaxonomyDatabase()

    print("importing names...")
    report = import_names(taxdb, LEGACY_NAMES)
    print(f"  {report.summary()}")
    for row, why in report.skipped:
        print(f"  row {row} skipped: {why}")

    print("\nimporting specimens (with typifications)...")
    report = import_specimens(taxdb, LEGACY_SPECIMENS)
    print(f"  {report.summary()}")

    # The flat export carries no name-to-name types; curate them.
    apium = taxdb.find_names(epithet="Apium")[0]
    graveolens = [
        n for n in taxdb.find_names(epithet="graveolens")
        if n.get("author") == "L."
    ][0]
    family = taxdb.find_names(epithet="Apiaceae")[0]
    taxdb.typify(apium, graveolens, HOLOTYPE, designated_by="curator")
    taxdb.typify(family, apium, HOLOTYPE, designated_by="curator")
    print("curated the name-level type hierarchy "
          "(Apiaceae ← Apium ← graveolens)")

    print("\nimporting the legacy classification...")
    classification, report = import_classification(
        taxdb, "legacy revision", LEGACY_PLACEMENTS, author="importer"
    )
    print(f"  {report.summary()}")

    # The duplicate sheet is the same physical gathering: declare it an
    # instance synonym (§4.5) so comparisons count it once.
    dup = [s for s in taxdb.specimens() if s.get("field_name") == "graveolens-dup"][0]
    original = [
        s for s in taxdb.specimens() if s.get("field_name") == "graveolens-type"
    ][0]
    taxdb.schema.synonyms.declare(original.oid, dup.oid)
    print("declared graveolens-dup an instance synonym of the type sheet")

    print("\nderiving names over the imported classification...")
    for result in NameDeriver(taxdb, author="Curator", year=2026).derive(
        classification
    ):
        ct = taxdb.schema.get_object(result.ct_oid)
        print(
            f"  {taxdb.working_name_of(ct):15s} -> {result.full_name:35s}"
            f" [{result.action}]"
        )

    print("\nfinal classification:")
    for ct in taxdb.iter_taxa_top_down(classification):
        print("  " * (classification.depth(ct) + 1) + taxdb.display_name(ct))


if __name__ == "__main__":
    main()
