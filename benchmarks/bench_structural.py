"""E8 — §7.2.1.2.3 structural modifications: insert/delete composites.

Regenerates the structural-modification measurements: inserting a
composite part with its private atomic-part graph (full semantics
enforcement: exclusivity, cardinality, lifetime dependency wiring) and
deleting one (lifetime-dependent cascade).
"""

import itertools

from repro.bench import (
    OO7Config,
    build_oo7,
    define_oo7_schema,
    delete_composite,
    insert_composite,
)
from repro.core.schema import Schema


def fresh_handles():
    schema = Schema()
    define_oo7_schema(schema)
    return build_oo7(schema, OO7Config.tiny())


def test_insert_composite_part(benchmark, oo7_tiny):
    counter = itertools.count(100_000_000, 1000)

    def run():
        return insert_composite(oo7_tiny, next(counter))

    composite = benchmark(run)
    assert not composite.deleted


def test_delete_composite_part(benchmark):
    handles = fresh_handles()
    counter = itertools.count(200_000_000, 1000)

    def setup():
        composite = insert_composite(handles, next(counter))
        return (handles, composite), {}

    def run(h, composite):
        return delete_composite(h, composite)

    removed = benchmark.pedantic(run, setup=setup, rounds=30)
    assert removed == 1 + handles.config.num_atomic_per_comp + 1


def test_insert_and_delete_cycle(benchmark):
    handles = fresh_handles()
    counter = itertools.count(300_000_000, 1000)

    def cycle():
        composite = insert_composite(handles, next(counter))
        delete_composite(handles, composite)

    benchmark(cycle)
    assert len(handles.composite_parts) == handles.config.num_comp_per_module
