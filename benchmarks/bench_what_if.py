"""E5 — §7.1.4 what-if scenarios: classification copy and re-derivation.

Times the revision workflow: copying a whole classification (graph as an
entity, requirement 1), restructuring it, and re-deriving names.
"""

import itertools

import pytest

from repro.classification import copy_classification, move_subtree
from repro.taxonomy import (
    FloraParameters,
    NameDeriver,
    generate_flora,
)


@pytest.fixture(scope="module")
def flora():
    f = generate_flora(
        FloraParameters(
            families=2,
            genera_per_family=3,
            species_per_genus=4,
            specimens_per_species=2,
            seed=11,
        )
    )
    NameDeriver(f.taxdb, author="Orig", year=2000).derive(f.classification)
    return f


def test_copy_classification(benchmark, flora):
    taxdb = flora.taxdb
    counter = itertools.count()

    def run():
        name = f"what-if-{next(counter)}"
        copy = copy_classification(
            taxdb.classifications, flora.classification, name
        )
        edges = len(copy)
        # Drop the copy so classification bookkeeping does not accumulate
        # across rounds (that growth is Figure 45's subject, not this
        # benchmark's).
        taxdb.classifications.drop(name, delete_edges=True)
        return edges

    edges = benchmark(run)
    assert edges == len(flora.classification)


def test_move_subtree(benchmark, flora):
    """Move a species back and forth between two genera of one family."""
    taxdb = flora.taxdb
    working = copy_classification(
        taxdb.classifications, flora.classification, "move-bench"
    )
    genus_a, genus_b = flora.genus_taxa[0], flora.genus_taxa[1]
    species = working.children(genus_a)[0]
    targets = itertools.cycle([genus_b, genus_a])

    def run():
        move_subtree(working, species, next(targets), "Includes")

    benchmark.pedantic(run, rounds=60, iterations=1)


def test_rederive_after_restructure(benchmark, flora):
    """The expensive half of a what-if: re-deriving every name."""
    taxdb = flora.taxdb
    working = copy_classification(
        taxdb.classifications, flora.classification, "rederive-bench"
    )
    genus_a, genus_b = flora.genus_taxa[0], flora.genus_taxa[1]
    species = working.children(genus_a)[0]
    move_subtree(working, species, genus_b, "Includes")
    counter = itertools.count(3000)

    def run():
        deriver = NameDeriver(taxdb, author="WhatIf", year=next(counter))
        return deriver.derive(working)

    results = benchmark(run)
    assert all(r.succeeded for r in results)
