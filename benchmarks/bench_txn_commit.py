"""Transaction-commit throughput: serial fsyncs vs group commit.

The concurrency subsystem's group commit batches the durability fsync
across concurrent committers (one leader syncs for every marker already
appended).  This benchmark quantifies the claim on a durable
(``sync=True``) database:

* **single writer** — commits serialize; every commit pays its own
  fsync, so fsyncs-per-commit is ~1 and throughput is fsync-bound;
* **8 concurrent writers** — committers on distinct objects share
  barriers, so fsyncs-per-commit drops below 1 and aggregate
  throughput rises above the serial baseline.

Results land in ``benchmarks/results/BENCH_bench_txn_commit.json``.
"""

import threading
import time

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.telemetry import DISABLED

WRITERS = 8
COMMITS_PER_WRITER = 24
SERIAL_COMMITS = 64


def make_db(path):
    db = PrometheusDB(path, sync=True, telemetry=DISABLED)
    db.schema.define_class(
        "Counter", [Attribute("label", T.STRING), Attribute("n", T.INTEGER)]
    )
    return db


def measure_serial(tmp_path):
    db = make_db(tmp_path / "serial.plog")
    oid = db.schema.create("Counter", label="serial", n=0).oid
    db.commit()
    base_fsyncs = db.store.telemetry_snapshot()["log_fsyncs"]
    started = time.perf_counter()
    for i in range(SERIAL_COMMITS):
        with db.begin() as txn:
            txn.set(oid, "n", i + 1)
    elapsed = time.perf_counter() - started
    fsyncs = db.store.telemetry_snapshot()["log_fsyncs"] - base_fsyncs
    db.close()
    return {
        "commits": SERIAL_COMMITS,
        "elapsed_s": elapsed,
        "commits_per_s": SERIAL_COMMITS / elapsed,
        "fsyncs": fsyncs,
        "fsyncs_per_commit": fsyncs / SERIAL_COMMITS,
    }


def measure_group(tmp_path):
    db = make_db(tmp_path / "group.plog")
    oids = [
        db.schema.create("Counter", label=str(i), n=0).oid
        for i in range(WRITERS)
    ]
    db.commit()
    snap = db.store.telemetry_snapshot()
    base_fsyncs = snap["log_fsyncs"]
    barrier = threading.Barrier(WRITERS + 1)

    def worker(oid):
        barrier.wait()
        for i in range(COMMITS_PER_WRITER):
            with db.begin() as txn:
                txn.set(oid, "n", i + 1)

    threads = [
        threading.Thread(target=worker, args=(oid,)) for oid in oids
    ]
    for t in threads:
        t.start()
    barrier.wait()
    started = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    snap = db.store.telemetry_snapshot()
    total = WRITERS * COMMITS_PER_WRITER
    fsyncs = snap["log_fsyncs"] - base_fsyncs
    db.close()
    return {
        "writers": WRITERS,
        "commits": total,
        "elapsed_s": elapsed,
        "commits_per_s": total / elapsed,
        "fsyncs": fsyncs,
        "fsyncs_per_commit": fsyncs / total,
        "group_commit_batches": snap["group_commit_batches"],
        "group_commit_batched": snap["group_commit_batched"],
    }


@pytest.fixture(scope="module")
def results(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("txn_commit")
    serial = measure_serial(tmp_path)
    group = measure_group(tmp_path)
    return serial, group


def test_group_commit_shares_fsyncs(results, bench_recorder):
    serial, group = results
    bench_recorder.record(
        "serial_single_writer",
        **{k: round(v, 6) for k, v in serial.items()},
    )
    bench_recorder.record(
        "group_8_writers",
        **{k: round(v, 6) for k, v in group.items()},
    )
    bench_recorder.record(
        "speedup",
        throughput_ratio=round(
            group["commits_per_s"] / serial["commits_per_s"], 4
        ),
        fsync_reduction=round(
            serial["fsyncs_per_commit"] / max(group["fsyncs_per_commit"], 1e-9),
            4,
        ),
    )
    # A lone writer always has a durable commit on disk when commit()
    # returns: ~one fsync per commit.
    assert serial["fsyncs_per_commit"] >= 0.99
    # Concurrent committers share barriers: strictly fewer fsyncs than
    # commits (the acceptance criterion for the subsystem).
    assert group["fsyncs_per_commit"] < 1.0
    assert group["group_commit_batched"] == group["commits"]


def test_group_throughput_beats_serial(results):
    serial, group = results
    # Eight writers sharing fsyncs must clear more commits per second
    # than one writer paying one fsync each.
    assert group["commits_per_s"] > serial["commits_per_s"]
