"""Threaded vs asyncio front end: served read throughput + latency.

Both servers run the identical :class:`~repro.engine.handlers.
HttpHandlers` core over identical shapes-scenario databases, so any
difference is pure transport: the threaded baseline pays a thread and
a TCP connection per request (HTTP/1.0, ``ThreadingHTTPServer``) while
the async front end serves keep-alive HTTP/1.1 from one event loop
with a bounded worker pool and a pre-serialized response cache.

Measured per front end, with ``READER_THREADS`` concurrent clients:

* aggregate reads/s over a fixed window,
* per-request p50/p99 latency,
* the response-cache hit rate (async only), verified against the
  cache's own authoritative counters — not inferred from timings.

The >= 10x speedup gate only engages on machines with >= 4 CPUs: below
that the client threads, the worker pool and the loop all time-slice
one core and the ratio measures the GIL scheduler, not the transport.
The measured numbers and the skip reason are recorded to
``benchmarks/results/BENCH_bench_server_throughput.json`` either way.
"""

import http.client
import json
import os
import threading
import time

import pytest

from repro.engine import AsyncPrometheusServer, PrometheusDB, PrometheusServer
from repro.taxonomy import build_shapes_scenario
from repro.taxonomy.model import TaxonomyDatabase
from repro.telemetry import DISABLED

READER_THREADS = 8
MEASURE_SECONDS = 1.5
SPEEDUP_GATE = 10.0

# A small rotating mix: mostly repeats (cacheable), occasionally a
# parameter change so the bench also pays some real engine executions.
QUERY_MIX = [
    {"query": "select s from s in Specimen"},
    {"query": "select count(s) from s in Specimen"},
    {"query": 'select t from t in NomenclaturalTaxon '
              'where t.epithet = "Ovals"'},
    {"query": "select t.epithet from t in NomenclaturalTaxon"},
]


def _build_db() -> PrometheusDB:
    db = PrometheusDB(telemetry=DISABLED)
    taxdb = TaxonomyDatabase.over_engine(db)
    build_shapes_scenario(taxdb)
    return db


def _measure(server, keep_alive: bool):
    """Aggregate reads/s + latency percentiles from READER_THREADS
    clients hammering POST /query for MEASURE_SECONDS."""
    stop = time.monotonic() + MEASURE_SECONDS
    counts = [0] * READER_THREADS
    latencies: list[list[float]] = [[] for _ in range(READER_THREADS)]

    def reader(slot: int) -> None:
        conn = None
        n = 0
        while time.monotonic() < stop:
            payload = json.dumps(QUERY_MIX[n % len(QUERY_MIX)]).encode()
            begin = time.perf_counter()
            if conn is None:
                conn = http.client.HTTPConnection(*server.address, timeout=15)
            try:
                conn.request("POST", "/query", payload)
                response = conn.getresponse()
                response.read()
                assert response.status == 200
                if response.will_close or not keep_alive:
                    conn.close()
                    conn = None
            except (http.client.HTTPException, ConnectionError, OSError):
                conn.close()
                conn = None
                continue
            latencies[slot].append(time.perf_counter() - begin)
            n += 1
        counts[slot] = n
        if conn is not None:
            conn.close()

    workers = [
        threading.Thread(target=reader, args=(i,))
        for i in range(READER_THREADS)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    merged = sorted(v for slot in latencies for v in slot)
    if not merged:
        raise RuntimeError("no requests completed in the measure window")

    def pct(fraction: float) -> float:
        return merged[min(len(merged) - 1, int(len(merged) * fraction))]

    return {
        "reads_per_s": sum(counts) / MEASURE_SECONDS,
        "p50_ms": pct(0.50) * 1000.0,
        "p99_ms": pct(0.99) * 1000.0,
        "requests": sum(counts),
    }


def test_async_front_end_read_throughput(bench_recorder):
    threaded_server = PrometheusServer(_build_db())
    async_db = _build_db()
    async_server = AsyncPrometheusServer(async_db)
    with threaded_server, async_server:
        _measure(async_server, keep_alive=True)  # warm pool + cache
        threaded = _measure(threaded_server, keep_alive=False)
        measured = _measure(async_server, keep_alive=True)

    cache = async_server.handlers.cache
    lookups = cache.hits + cache.misses
    hit_rate = cache.hits / lookups if lookups else 0.0
    speedup = (
        measured["reads_per_s"] / threaded["reads_per_s"]
        if threaded["reads_per_s"]
        else float("inf")
    )
    cpus = os.cpu_count() or 1
    gated = cpus >= 4
    bench_recorder.record(
        "server_read_throughput",
        threaded_reads_per_s=round(threaded["reads_per_s"], 1),
        threaded_p50_ms=round(threaded["p50_ms"], 3),
        threaded_p99_ms=round(threaded["p99_ms"], 3),
        async_reads_per_s=round(measured["reads_per_s"], 1),
        async_p50_ms=round(measured["p50_ms"], 3),
        async_p99_ms=round(measured["p99_ms"], 3),
        speedup=round(speedup, 3),
        response_cache_hits=cache.hits,
        response_cache_misses=cache.misses,
        response_cache_hit_rate=round(hit_rate, 4),
        reader_threads=READER_THREADS,
        cpu_count=cpus,
        gate_engaged=gated,
        gate_skip_reason=(
            None
            if gated
            else f"only {cpus} CPU(s): clients, workers and loop "
            "time-slice one core; ratio measures the GIL scheduler"
        ),
    )
    # The repeated query mix must actually hit the cache — verified by
    # the cache's own counters, not inferred from throughput.
    assert cache.hits > 0, "response cache never hit under a repeat mix"
    assert hit_rate > 0.5, f"cache hit rate only {hit_rate:.1%}"
    if gated:
        assert speedup >= SPEEDUP_GATE, (
            f"async front end served only {speedup:.2f}x the threaded "
            f"read rate ({measured['reads_per_s']:.0f} vs "
            f"{threaded['reads_per_s']:.0f}/s)"
        )


def test_backpressure_keeps_latency_flat(bench_recorder):
    """Overload the async server far past ``queue_cap`` and verify the
    accepted requests' p99 stays bounded while the excess is shed as
    503 — backpressure, not collapse."""
    server = AsyncPrometheusServer(_build_db(), workers=2, queue_cap=8)
    accepted: list[float] = []
    rejected = 0
    lock = threading.Lock()
    with server:
        stop = time.monotonic() + 1.0

        def flood() -> None:
            nonlocal rejected
            conn = http.client.HTTPConnection(*server.address, timeout=15)
            while time.monotonic() < stop:
                begin = time.perf_counter()
                try:
                    conn.request(
                        "POST",
                        "/query",
                        json.dumps(
                            {"query": "select s from s in Specimen"}
                        ).encode(),
                    )
                    response = conn.getresponse()
                    response.read()
                except (http.client.HTTPException, OSError):
                    conn.close()
                    conn = http.client.HTTPConnection(
                        *server.address, timeout=15
                    )
                    continue
                elapsed = time.perf_counter() - begin
                with lock:
                    if response.status == 200:
                        accepted.append(elapsed)
                    elif response.status == 503:
                        rejected += 1
            conn.close()

        floods = [threading.Thread(target=flood) for _ in range(16)]
        for thread in floods:
            thread.start()
        for thread in floods:
            thread.join()

    assert accepted, "no requests were accepted under flood"
    accepted.sort()
    p99 = accepted[min(len(accepted) - 1, int(len(accepted) * 0.99))]
    bench_recorder.record(
        "overload_behavior",
        accepted=len(accepted),
        rejected_503=rejected,
        accepted_p99_ms=round(p99 * 1000.0, 3),
        server_rejected_counter=server.rejected,
        queue_cap=8,
        flood_threads=16,
    )
    # The shed load must show up in the server's authoritative counter.
    assert server.rejected == rejected
