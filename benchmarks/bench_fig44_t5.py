"""Figure 44 — T5: constant increase in cost.

Relationship-instance creation (``relate()``) versus a raw storage write
of an equivalent record, across database sizes.  The thesis reports the
relationship features adding a *constant* factor (Figure 44); the sweep
regenerates the series and asserts the overhead ratio does not grow with
database size beyond noise.

The per-op benchmark times a single relate() call on a mid-size database;
the sweep table lands in benchmarks/results/fig44_t5.txt.
"""

from repro.bench import format_series, ratio_growth, sweep_t5
from repro.core.attributes import Attribute
from repro.core.schema import Schema
from repro.core import types as T

from conftest import sweep_rows_as_dicts, write_result

SIZES = [100, 400, 1600]


def test_fig44_t5_sweep_and_per_op(benchmark, bench_recorder):
    rows = sweep_t5(SIZES, ops_per_point=150)
    table = format_series(
        "Figure 44 — T5 relationship creation vs raw write (constant "
        "increase in cost)",
        rows,
    )
    print("\n" + table)
    write_result("fig44_t5.txt", table)
    bench_recorder.record_series("fig44_t5", sweep_rows_as_dicts(rows))
    # Shape: the Prometheus/raw ratio stays in the same band — the
    # overhead per operation does not grow with database size.
    growth = ratio_growth(rows)
    assert growth < 2.5, f"T5 overhead grew {growth:.2f}x across sizes"
    assert all(row.ratio < 25 for row in rows)

    # Per-op timing on a mid-size in-memory database.
    schema = Schema()
    schema.define_class("Node", [Attribute("v", T.INTEGER)])
    schema.define_relationship("Link", "Node", "Node")
    nodes = [schema.create("Node", v=i) for i in range(400)]
    counter = iter(range(10**9))

    def relate_once():
        i = next(counter)
        schema.relate("Link", nodes[i % 400], nodes[(i * 13 + 1) % 400])

    benchmark(relate_once)
