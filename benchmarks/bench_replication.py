"""Read throughput with replicas: one node vs primary + 3 replicas.

Real process topology, the same one an operator gets from the CLI: a
primary serving its log (`--serve`) and three replica processes
(`--replica-of`) that catch up over HTTP and serve read-only queries.
Client threads then hammer POST /query two ways — every read to the
primary, and round-robin across the three replicas — and the aggregate
read rate is compared.

The scale-out gate (>= 2.0x with three replica processes) only
engages on machines with >= 4 CPUs: below that the four server
processes time-slice one another and the ratio measures the scheduler,
not replication.  The measured numbers and the skip reason are recorded
to ``benchmarks/results/BENCH_bench_replication.json`` either way.

Also measured: cold catch-up time for a fresh replica, and the p99
replication lag (bytes) sampled while the primary takes a write burst.
"""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

SPECIMENS = 400
READER_THREADS = 8
MEASURE_SECONDS = 1.5
WRITE_BURST = 60

READ_QUERY = (
    'select s.field_name from s in Specimen where s.field_name like "s1%"'
)


def _request(url, payload=None, timeout=10.0):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=timeout) as response:
        return json.load(response)


class Node:
    """One ``python -m repro --serve`` process."""

    def __init__(self, args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        # The URL announcement must cross the pipe immediately even on
        # interpreters where a piped stdout is block-buffered.
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            cwd=cwd,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.url = self._await_url()

    def _await_url(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError("server process exited before serving")
            if "serving on " in line:
                return line.split("serving on ", 1)[1].split()[0]
        raise RuntimeError("server never reported its URL")

    def stop(self):
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)


def populate_primary(path):
    from repro.engine import PrometheusDB
    from repro.taxonomy import define_taxonomy_schema
    from repro.telemetry import DISABLED

    db = PrometheusDB(path, telemetry=DISABLED)
    define_taxonomy_schema(db.schema)
    db.load()
    txn = db.transactions.begin()
    for i in range(SPECIMENS):
        txn.create(
            "Specimen",
            field_name=f"s{i:04d}",
            collector="bench",
            herbarium="BM",
        )
    txn.commit()
    db.close()


def commit_lsn(url):
    return _request(url + "/replicate/status")["commit_lsn"]


def applied_lsn(url):
    return _request(url + "/replicate/status")["applying"]["applied_lsn"]


def await_catch_up(primary_url, replica_urls, timeout=60.0):
    target = commit_lsn(primary_url)
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(applied_lsn(u) >= target for u in replica_urls):
            return
        time.sleep(0.05)
    raise RuntimeError("replicas never caught up")


def measure_reads(urls, seconds=MEASURE_SECONDS, threads=READER_THREADS):
    """Aggregate queries/s from ``threads`` readers over ``urls``."""
    stop = time.monotonic() + seconds
    counts = [0] * threads

    def reader(slot):
        n = 0
        while time.monotonic() < stop:
            url = urls[(slot + n) % len(urls)]
            _request(url + "/query", {"query": READ_QUERY})
            n += 1
        counts[slot] = n

    workers = [
        threading.Thread(target=reader, args=(i,)) for i in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    return sum(counts) / seconds


def write_burst_with_lag_samples(primary_url):
    """Commit a burst through the HTTP session API, sampling lag."""
    samples = []
    done = threading.Event()

    def sampler():
        while not done.is_set():
            lags = _request(primary_url + "/health")["replication"][
                "lag_bytes"
            ]
            if lags:
                samples.append(max(lags.values()))
            time.sleep(0.01)

    thread = threading.Thread(target=sampler)
    thread.start()
    try:
        sid = _request(primary_url + "/session", {})["session"]
        for i in range(WRITE_BURST):
            _request(
                f"{primary_url}/session/{sid}/apply",
                {
                    "ops": [
                        {
                            "op": "create",
                            "class": "Specimen",
                            "attrs": {"field_name": f"burst{i:04d}"},
                        }
                    ]
                },
            )
            _request(f"{primary_url}/session/{sid}/commit", {})
        _request(f"{primary_url}/session/{sid}/release", {})
    finally:
        done.set()
        thread.join()
    samples.sort()
    p99 = samples[min(len(samples) - 1, int(len(samples) * 0.99))] if samples else 0
    return {"lag_samples": len(samples), "lag_p99_bytes": p99}


@pytest.fixture(scope="module")
def topology(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("replication_bench")
    populate_primary(tmp / "primary.plog")
    primary = Node(
        ["--db", str(tmp / "primary.plog"), "--taxonomy", "--serve", "0"],
        cwd=tmp,
    )
    replicas = []
    try:
        started = time.perf_counter()
        for i in range(3):
            replicas.append(
                Node(
                    [
                        "--db", str(tmp / f"replica{i}.plog"),
                        "--taxonomy",
                        "--replica-of", primary.url,
                        "--replica-name", f"r{i}",
                        "--serve", "0",
                    ],
                    cwd=tmp,
                )
            )
        replica_urls = [r.url for r in replicas]
        await_catch_up(primary.url, replica_urls)
        catch_up_s = time.perf_counter() - started
        yield primary, replica_urls, catch_up_s
    finally:
        for replica in replicas:
            replica.stop()
        primary.stop()


def test_replica_read_scaling(topology, bench_recorder):
    primary, replica_urls, catch_up_s = topology
    single = measure_reads([primary.url])
    scaled = measure_reads(replica_urls)
    speedup = scaled / single if single else float("inf")
    cpus = os.cpu_count() or 1
    gated = cpus >= 4
    bench_recorder.record(
        "read_throughput",
        primary_only_reads_per_s=round(single, 1),
        three_replicas_reads_per_s=round(scaled, 1),
        speedup=round(speedup, 3),
        reader_threads=READER_THREADS,
        cpu_count=cpus,
        gate_engaged=gated,
        gate_skip_reason=(
            None
            if gated
            else f"only {cpus} CPU(s): processes time-slice, "
            "ratio measures the scheduler"
        ),
    )
    if gated:
        assert speedup >= 2.0, (
            f"three replica processes served only {speedup:.2f}x the "
            f"single-node read rate ({scaled:.0f} vs {single:.0f}/s)"
        )


def test_catch_up_and_lag(topology, bench_recorder):
    primary, replica_urls, catch_up_s = topology
    lag = write_burst_with_lag_samples(primary.url)
    await_catch_up(primary.url, replica_urls)
    # The primary learns a replica's position from the *next* pull's
    # cursor, so the acknowledged lag trails the applied LSN by one
    # long-poll cycle — wait for the acks, not just the applies.
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        final_lags = _request(primary.url + "/health")["replication"][
            "lag_bytes"
        ]
        if max(final_lags.values()) == 0:
            break
        time.sleep(0.1)
    bench_recorder.record(
        "catch_up_and_lag",
        cold_catch_up_s=round(catch_up_s, 3),
        specimens=SPECIMENS,
        write_burst_commits=WRITE_BURST,
        **lag,
        final_max_lag_bytes=max(final_lags.values()),
    )
    # After quiescing, every replica has acknowledged the full log.
    assert max(final_lags.values()) == 0
