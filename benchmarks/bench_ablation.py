"""Ablation benchmarks: what each architectural layer costs.

The layered design (Figure 26) routes every mutation through the event
layer, where the rules and index layers listen.  These benchmarks isolate
each layer's price by measuring the same operation with the layer absent
and present:

* attribute updates with 0 vs. the full ICBN rule set installed;
* object creation with 0 / 1 / 3 indexes declared;
* attribute updates with growing numbers of passive event subscribers;
* reads across cache capacities (the storage-layer ablation).
"""

import itertools

import pytest

from repro.core.events import EventKind
from repro.core.schema import Schema
from repro.engine.indexes import IndexManager
from repro.storage.store import ObjectStore
from repro.taxonomy import TaxonomyDatabase
from repro.taxonomy.icbn_rules import install_icbn_rules


def _epithets():
    """Endless distinct, ICBN-clean genus epithets (letters only)."""
    for i in itertools.count():
        suffix = ""
        n = i
        while True:
            suffix += chr(97 + n % 26)
            n //= 26
            if not n:
                break
        yield "Genus" + suffix


# ---------------------------------------------------------------------------
# rules layer
# ---------------------------------------------------------------------------

def test_update_without_rules(benchmark):
    taxdb = TaxonomyDatabase()
    nt = taxdb.publish_name("Apium", "Genus")
    epithets = _epithets()

    def run():
        nt.set("epithet", next(epithets))

    benchmark(run)


def test_update_with_icbn_rules(benchmark):
    taxdb = TaxonomyDatabase()
    install_icbn_rules(taxdb)
    nt = taxdb.publish_name("Apium", "Genus")
    epithets = _epithets()

    def run():
        nt.set("epithet", next(epithets))

    benchmark(run)


# ---------------------------------------------------------------------------
# index layer
# ---------------------------------------------------------------------------

def _people_schema() -> Schema:
    from repro.core.attributes import Attribute
    from repro.core import types as T

    schema = Schema()
    schema.define_class(
        "Person",
        [
            Attribute("name", T.STRING),
            Attribute("age", T.INTEGER),
            Attribute("city", T.STRING),
        ],
    )
    return schema


@pytest.mark.parametrize("index_count", [0, 1, 3])
def test_create_with_indexes(benchmark, index_count):
    schema = _people_schema()
    manager = IndexManager(schema)
    for attr in ("name", "age", "city")[:index_count]:
        kind = "btree" if attr == "age" else "hash"
        manager.create_index("Person", attr, kind)
    counter = itertools.count()

    def run():
        i = next(counter)
        schema.create("Person", name=f"p{i}", age=i % 90, city=f"c{i % 10}")

    benchmark(run)


# ---------------------------------------------------------------------------
# event layer
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("subscribers", [0, 4, 16])
def test_update_with_subscribers(benchmark, subscribers):
    schema = _people_schema()
    sink = []
    for _ in range(subscribers):
        schema.events.subscribe(
            lambda e: None, kinds={EventKind.AFTER_UPDATE}
        )
    person = schema.create("Person", name="x", age=0)
    counter = itertools.count()

    def run():
        person.set("age", next(counter) % 90)

    benchmark(run)
    assert sink == []


# ---------------------------------------------------------------------------
# storage cache
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("cache_size", [0, 64, 4096])
def test_read_with_cache_size(benchmark, tmp_path, cache_size):
    with ObjectStore(
        tmp_path / f"cache{cache_size}.plog", cache_size=cache_size
    ) as store:
        oids = [store.insert({"i": i, "pad": "x" * 64}) for i in range(512)]
        cycle = itertools.cycle(oids)

        def run():
            return store.read(next(cycle))

        assert benchmark(run)["pad"]
