"""Figure 46 — S2: non-constant increase in cost (comparison).

Specimen-based classification comparison (synonym discovery) between two
classifications of *g* groups each is O(g² · leaves); the raw layer's
equivalent — a flat leaf-set intersection — is linear.  The second
non-constant feature cost of the evaluation (Figure 46).

Sweep series: benchmarks/results/fig46_s2.txt.
"""

from repro.bench import format_series, sweep_s2
from repro.classification import ClassificationManager, compare_classifications
from repro.core.attributes import Attribute
from repro.core.schema import Schema
from repro.core.semantics import RelationshipSemantics, RelKind
from repro.core import types as T

from conftest import sweep_rows_as_dicts, write_result

GROUP_COUNTS = [4, 8, 16, 32]


def test_fig46_s2_sweep_and_per_op(benchmark, bench_recorder):
    rows = sweep_s2(GROUP_COUNTS, leaves_per_group=4)
    table = format_series(
        "Figure 46 — S2 classification comparison vs flat intersection "
        "(non-constant increase in cost)",
        rows,
    )
    print("\n" + table)
    write_result("fig46_s2.txt", table)
    bench_recorder.record_series("fig46_s2", sweep_rows_as_dicts(rows))
    # Shape: comparison cost grows super-linearly in the group count
    # (g² pairs), so quadrupling the groups should far more than
    # quadruple... at minimum the cost must grow markedly.
    assert rows[-1].prometheus_ns > rows[0].prometheus_ns * 4, table
    # The raw layer's intersection stays orders of magnitude cheaper.
    assert all(row.ratio > 10 for row in rows)

    # Per-op benchmark at a fixed size.
    schema = Schema()
    schema.define_class("Node", [Attribute("v", T.INTEGER)])
    schema.define_relationship(
        "Owns",
        "Node",
        "Node",
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION, shareable=True
        ),
    )
    manager = ClassificationManager(schema)
    leaves = [schema.create("Node", v=i) for i in range(64)]
    classifications = []
    for variant in range(2):
        classification = manager.create(f"v{variant}")
        for g in range(16):
            parent = schema.create("Node", v=1000 + g)
            for offset in range(4):
                leaf = leaves[(g * 4 + offset + variant) % len(leaves)]
                classification.place("Owns", parent, leaf)
        classifications.append(classification)

    def compare_once():
        return compare_classifications(*classifications)

    report = benchmark(compare_once)
    assert report.synonym_pairs
