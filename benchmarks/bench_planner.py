"""Planner acceptance benchmark (ISSUE 4 gate).

Two hard gates:

* **indexed-predicate speedup** — planned execution through
  ``PrometheusDB.query`` must beat the retained naive reference
  evaluator (module-level ``repro.query.execute``, no index layer) by
  at least ``PLANNER_SPEEDUP_MIN`` (default 2×) on equality- and
  range-predicate queries over an indexed extent;
* **plan-cache hit latency** — fetching a plan from the cache must cost
  under ``PLAN_CACHE_HIT_MAX_PCT`` (default 10%) of building it cold.

Results land in ``results/BENCH_bench_planner.json`` (uploaded as a CI
artifact by the ``query-fuzz`` job).
"""

from __future__ import annotations

import os
import time

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.query import execute, parse

SPEEDUP_MIN = float(os.environ.get("PLANNER_SPEEDUP_MIN", "2.0"))
CACHE_HIT_MAX_PCT = float(os.environ.get("PLAN_CACHE_HIT_MAX_PCT", "10.0"))

POPULATION = 3000
PROBES = 40
ROUNDS = 7


def _build_db() -> PrometheusDB:
    from repro.telemetry import DISABLED

    db = PrometheusDB(telemetry=DISABLED)
    db.schema.define_class(
        "Specimen",
        [
            Attribute("ident", T.INTEGER),
            Attribute("epithet", T.STRING),
            Attribute("year", T.INTEGER),
        ],
    )
    for i in range(POPULATION):
        db.schema.create(
            "Specimen",
            ident=i,
            epithet=f"sp{i % 400}",
            year=1700 + (i * 37) % 300,
        )
    db.indexes.create_index("Specimen", "ident", kind="hash")
    db.indexes.create_index("Specimen", "year", kind="btree")
    return db


def _best_ns(run, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter_ns()
        run()
        best = min(best, time.perf_counter_ns() - started)
    return best


def test_indexed_predicate_speedup(bench_recorder):
    """Planned equality + range queries vs the naive reference."""
    db = _build_db()
    eq_text = "select s from s in Specimen where s.ident = $i"
    range_text = (
        "select s from s in Specimen where s.year >= 1990 and s.year < 1996"
    )
    idents = list(range(0, POPULATION, POPULATION // PROBES))[:PROBES]

    def naive() -> None:
        for ident in idents:
            execute(db.schema, eq_text, params={"i": ident})
        execute(db.schema, range_text)

    def planned() -> None:
        for ident in idents:
            db.query(eq_text, params={"i": ident}, check=False)
        db.query(range_text, check=False)

    planned()  # warm the plan cache: steady-state is what we gate
    naive_ns = float("inf")
    planned_ns = float("inf")
    for _ in range(ROUNDS):  # interleave so drift hits both arms
        naive_ns = min(naive_ns, _best_ns(naive, rounds=1))
        planned_ns = min(planned_ns, _best_ns(planned, rounds=1))
    speedup = naive_ns / planned_ns

    bench_recorder.record(
        "test_indexed_predicate_speedup",
        population=POPULATION,
        probes=PROBES,
        naive_ns=naive_ns,
        planned_ns=planned_ns,
        speedup=round(speedup, 2),
        gate_min=SPEEDUP_MIN,
    )
    print(f"\nplanner speedup on indexed predicates: {speedup:.1f}x "
          f"(gate >= {SPEEDUP_MIN}x)")
    assert speedup >= SPEEDUP_MIN, (
        f"planned execution only {speedup:.2f}x faster than naive "
        f"(need >= {SPEEDUP_MIN}x; naive={naive_ns:.0f}ns "
        f"planned={planned_ns:.0f}ns)"
    )


def test_plan_cache_hit_latency(bench_recorder):
    """A cache hit must cost <10% of a cold plan build."""
    db = _build_db()
    planner = db.planner
    ast = parse(
        "select s.epithet from s in Specimen "
        "where s.ident = 7 and s.year > 1800 order by s.year limit 5"
    )
    iterations = 300

    def cold() -> None:
        for _ in range(iterations):
            planner.invalidate()
            planner.plan_select(ast)

    def hit() -> None:
        for _ in range(iterations):
            planner.plan_select(ast)

    planner.plan_select(ast)  # ensure the entry exists for the hit arm
    cold_ns = _best_ns(cold)
    hit_ns = _best_ns(hit)
    hit_pct = hit_ns / cold_ns * 100.0

    bench_recorder.record(
        "test_plan_cache_hit_latency",
        iterations=iterations,
        cold_ns=cold_ns,
        hit_ns=hit_ns,
        hit_pct_of_cold=round(hit_pct, 2),
        gate_max_pct=CACHE_HIT_MAX_PCT,
    )
    print(f"\nplan-cache hit latency: {hit_pct:.1f}% of cold plan "
          f"(gate < {CACHE_HIT_MAX_PCT}%)")
    assert hit_pct < CACHE_HIT_MAX_PCT, (
        f"cache hit costs {hit_pct:.1f}% of a cold plan "
        f"(gate < {CACHE_HIT_MAX_PCT}%; cold={cold_ns:.0f}ns "
        f"hit={hit_ns:.0f}ns per {iterations} plans)"
    )


def test_ordered_scan_beats_sort(bench_recorder):
    """Sort elision: ORDER BY over a btree-indexed attribute."""
    db = _build_db()
    text = "select s from s in Specimen order by s.year limit 10"

    def naive() -> None:
        execute(db.schema, text)

    def planned() -> None:
        db.query(text, check=False)

    planned()
    naive_ns = _best_ns(naive)
    planned_ns = _best_ns(planned)
    speedup = naive_ns / planned_ns
    bench_recorder.record(
        "test_ordered_scan_beats_sort",
        naive_ns=naive_ns,
        planned_ns=planned_ns,
        speedup=round(speedup, 2),
    )
    print(f"\norder-by elision speedup: {speedup:.1f}x")
    # Informational: elision avoids materialise+sort of the full extent,
    # but the gate lives on the indexed-predicate test above.
    assert speedup > 1.0
