"""Figure 45 — S1: non-constant increase in cost.

Classified placement (``Classification.place``) versus a bare
``relate()``, as the classification grows.  Membership persistence
snapshots the classification's edge list, so per-placement cost grows
with classification size — the thesis's first non-constant feature cost
(Figure 45).

Sweep series: benchmarks/results/fig45_s1.txt.
"""

from repro.bench import format_series, sweep_s1
from repro.classification import ClassificationManager
from repro.core.attributes import Attribute
from repro.core.schema import Schema
from repro.core.semantics import RelationshipSemantics, RelKind
from repro.core import types as T

from conftest import sweep_rows_as_dicts, write_result

SIZES = [100, 400, 1600]


def test_fig45_s1_sweep_and_per_op(benchmark, bench_recorder):
    rows = sweep_s1(SIZES, ops_per_point=40)
    table = format_series(
        "Figure 45 — S1 classified placement vs bare relate "
        "(non-constant increase in cost)",
        rows,
    )
    print("\n" + table)
    write_result("fig45_s1.txt", table)
    bench_recorder.record_series("fig45_s1", sweep_rows_as_dicts(rows))
    # Shape: the per-op Prometheus cost grows with classification size
    # while the raw cost stays flat — the overhead ratio at the largest
    # size clearly exceeds the smallest.
    assert rows[-1].prometheus_ns > rows[0].prometheus_ns * 2, (
        "S1 cost did not grow with classification size: "
        + table
    )

    # Per-op benchmark at a fixed, large classification size.
    schema = Schema()
    schema.define_class("Node", [Attribute("v", T.INTEGER)])
    schema.define_relationship(
        "Owns",
        "Node",
        "Node",
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION, shareable=True
        ),
    )
    manager = ClassificationManager(schema)
    classification = manager.create("grown")
    root = schema.create("Node", v=0)
    pool = [schema.create("Node", v=i) for i in range(1, 2000)]
    for node in pool[:800]:
        classification.place("Owns", root, node)
    tail = iter(pool[800:])

    def place_once():
        classification.place("Owns", root, next(tail))

    benchmark.pedantic(place_once, rounds=100, iterations=1)
