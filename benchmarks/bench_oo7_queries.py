"""E7 — §7.2.1.2.2 queries: exact-match, range and scan over OO7 data.

Regenerates the query measurements, each both as a direct API operation
and through POOL (with and without index support), quantifying the query
layer's cost over raw extent iteration.
"""

import pytest

from repro.bench import (
    OO7Config,
    build_oo7,
    define_oo7_schema,
    query_exact,
    query_range,
    query_scan,
)
from repro.engine import PrometheusDB


@pytest.fixture(scope="module")
def db_with_oo7():
    db = PrometheusDB()
    define_oo7_schema(db.schema)
    handles = build_oo7(db.schema, OO7Config.tiny())
    return db, handles


@pytest.fixture(scope="module")
def indexed_db_with_oo7():
    db = PrometheusDB()
    define_oo7_schema(db.schema)
    handles = build_oo7(db.schema, OO7Config.tiny())
    db.indexes.create_index("AtomicPart", "ident", kind="hash")
    db.indexes.create_index("AtomicPart", "build_date", kind="btree")
    return db, handles


def test_q1_exact_match_direct(benchmark, oo7_tiny):
    idents = [a.get("ident") for a in oo7_tiny.atomic_parts[:5]]
    found = benchmark(query_exact, oo7_tiny, idents)
    assert found == 5


def test_q1_exact_match_pool_scan(benchmark, db_with_oo7):
    db, handles = db_with_oo7
    ident = handles.atomic_parts[3].get("ident")

    def run():
        return db.query(
            "select a from a in AtomicPart where a.ident = $i",
            params={"i": ident},
        )

    assert len(benchmark(run)) == 1


def test_q1_exact_match_pool_indexed(benchmark, indexed_db_with_oo7):
    db, handles = indexed_db_with_oo7
    ident = handles.atomic_parts[3].get("ident")
    text = f"select a from a in AtomicPart where a.ident = {ident}"
    plan = db.explain(text)
    assert plan.index_used == "AtomicPart.ident"

    def run():
        return db.query(text)

    assert len(benchmark(run)) == 1


def test_q2_range_direct(benchmark, oo7_tiny):
    found = benchmark(query_range, oo7_tiny, 2000, 6000)
    assert found >= 0


def test_q2_range_btree(benchmark, indexed_db_with_oo7):
    db, handles = indexed_db_with_oo7

    def run():
        return db.indexes.range("AtomicPart", "build_date", 2000, 6000)

    result = benchmark(run)
    assert len(result) == query_range(handles, 2000, 6000)


def test_q7_scan_direct(benchmark, oo7_tiny):
    count = benchmark(query_scan, oo7_tiny)
    assert count == len(oo7_tiny.atomic_parts)


def test_q7_scan_pool(benchmark, db_with_oo7):
    db, handles = db_with_oo7

    def run():
        return db.query("select count(a) from a in AtomicPart")[0]

    assert benchmark(run) == len(handles.atomic_parts)
