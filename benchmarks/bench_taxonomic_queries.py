"""E3 — §7.1.3.1 typical taxonomic queries over a generated flora.

The taxonomic evaluation's query workload: taxa at a rank, recursive
circumscription extraction, type-specimen collection, name derivation and
synonym comparison — the operations a working taxonomist performs during
a revision.
"""

import pytest

from repro.classification import copy_classification
from repro.query import execute
from repro.taxonomy import (
    FloraParameters,
    NameDeriver,
    compare_taxonomic,
    generate_flora,
)


@pytest.fixture(scope="module")
def flora():
    return generate_flora(
        FloraParameters(
            families=2,
            genera_per_family=4,
            species_per_genus=5,
            specimens_per_species=3,
            seed=7,
        )
    )


def test_taxa_at_rank_pool(benchmark, flora):
    taxdb = flora.taxdb

    def run():
        return execute(
            taxdb.schema,
            'select t from t in CircumscriptionTaxon where t.rank = "Genus"',
        )

    result = benchmark(run)
    assert len(result) == len(flora.genus_taxa)


def test_circumscription_recursion_pool(benchmark, flora):
    """All specimens below a family, via scoped transitive closure."""
    taxdb = flora.taxdb
    family = flora.family_taxa[0]
    name = flora.classification.name

    def run():
        return execute(
            taxdb.schema,
            "select x from t in CircumscriptionTaxon, "
            f'x in (Specimen) t->Includes["{name}"]* where t.oid = $oid',
            classifications=taxdb.classifications,
            params={"oid": family.oid},
        )

    result = benchmark(run)
    assert len(result) == len(taxdb.specimens_under(flora.classification, family))


def test_circumscription_recursion_api(benchmark, flora):
    """The same recursion through the library API (the query layer's
    baseline)."""
    taxdb = flora.taxdb
    family = flora.family_taxa[0]

    def run():
        return taxdb.specimens_under(flora.classification, family)

    result = benchmark(run)
    assert result


def test_type_specimen_extraction(benchmark, flora):
    taxdb = flora.taxdb
    family = flora.family_taxa[0]

    def run():
        return taxdb.type_specimens_under(flora.classification, family)

    result = benchmark(run)
    assert result


def test_name_derivation_full_classification(benchmark, flora):
    """E2's derivation algorithm, timed over the whole flora."""
    taxdb = flora.taxdb

    def run():
        deriver = NameDeriver(taxdb, author="Bench", year=2026)
        return deriver.derive(flora.classification)

    results = benchmark(run)
    assert all(r.succeeded for r in results)


def test_synonym_comparison(benchmark, flora):
    """Specimen-based comparison of the flora against a copy of itself."""
    taxdb = flora.taxdb
    if "copy" not in taxdb.classifications:
        copy_classification(taxdb.classifications, flora.classification, "copy")
    copy = taxdb.classifications.get("copy")

    def run():
        return compare_taxonomic(taxdb, flora.classification, copy)

    report = benchmark(run)
    assert len(report.full_synonyms()) >= len(flora.species_taxa)


def test_name_search_pool(benchmark, flora):
    taxdb = flora.taxdb
    target = taxdb.names()[0].get("epithet")

    def run():
        return execute(
            taxdb.schema,
            "select n from n in NomenclaturalTaxon where n.epithet = $e",
            params={"e": target},
        )

    assert benchmark(run)
