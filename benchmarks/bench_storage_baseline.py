"""The raw-storage baseline (§7.2.1): the layer Prometheus is compared to.

Per-operation costs of the bare object store — writes inside a
transaction, committed puts, cached and uncached reads — establishing the
denominators of the Figure 44–46 ratios.
"""

import itertools

import pytest

from repro.storage.store import ObjectStore

RECORD = {"epithet": "graveolens", "rank": "Species", "year": 1753}


@pytest.fixture
def store(tmp_path):
    s = ObjectStore(tmp_path / "bench.plog")
    yield s
    s.close()


def test_txn_write(benchmark, store):
    txn = store.begin()

    def run():
        txn.write(store.new_oid(), RECORD)

    benchmark(run)
    txn.commit()


def test_autocommit_put(benchmark, store):
    def run():
        store.put(store.new_oid(), RECORD)

    benchmark(run)


def test_read_cached(benchmark, store):
    oid = store.insert(RECORD)
    store.read(oid)  # warm

    def run():
        return store.read(oid)

    assert benchmark(run) == RECORD


def test_read_uncached(benchmark, tmp_path):
    with ObjectStore(tmp_path / "cold.plog", cache_size=0) as cold:
        oids = [cold.insert({**RECORD, "i": i}) for i in range(500)]
        cycle = itertools.cycle(oids)

        def run():
            return cold.read(next(cycle))

        assert benchmark(run)["rank"] == "Species"


def test_commit_of_batch(benchmark, store):
    def run():
        with store.begin() as txn:
            for _ in range(50):
                txn.write(store.new_oid(), RECORD)

    benchmark(run)


def test_compaction(benchmark, tmp_path):
    def setup():
        path = tmp_path / f"compact-{id(object())}.plog"
        s = ObjectStore(path)
        oid = s.new_oid()
        for i in range(200):
            s.put(oid, {**RECORD, "v": i})
        return (s,), {}

    def run(s):
        s.compact()
        s.close()

    benchmark.pedantic(run, setup=setup, rounds=10)
