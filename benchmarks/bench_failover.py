"""Time-to-recover through a real failover: kill -9 the primary.

Real process topology, the same one an operator gets from the CLI: a
primary and two replicas, each started with ``--ha`` so the servers
carry HA controllers, plus an in-process
:class:`~repro.ha.supervisor.FailoverCoordinator` probing them over
HTTP exactly as ``python -m repro --ha-supervisor`` would.

Each round: commit acknowledged writes (semi-sync, ``wait_replicated``
= 1), SIGKILL the primary process, and clock three moments —

* **detect**   — the coordinator's suspicion crossing the threshold,
* **promoted** — the winning replica stamped with the new epoch,
* **recovered** — the first client write acknowledged by the new
  primary (retry-with-rediscovery, like a real client).

``p50``/``p99`` of time-to-recover across rounds go to
``benchmarks/results/BENCH_bench_failover.json``, together with the
count of acknowledged writes missing after promotion — asserted to be
ZERO unconditionally: losing acked writes is a correctness bug at any
machine size.  The latency gate (p99 under ``TTR_P99_BUDGET_S``) only
engages with >= 4 CPUs; below that the processes time-slice each other
and the number measures the scheduler, not the failover path.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

ROUNDS = 5
ACKED_WRITES_PER_ROUND = 10
TTR_P99_BUDGET_S = 10.0

COORDINATOR_INTERVAL_S = 0.25
PHI_THRESHOLD = 4.0
LEASE_TTL_S = 1.0
SKEW_ALLOWANCE_S = 0.5


def _request(url, payload=None, timeout=10.0):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=timeout) as response:
        return json.load(response)


class Node:
    """One ``python -m repro --serve`` process."""

    def __init__(self, args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            cwd=cwd,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.url = self._await_url()

    def _await_url(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError("server process exited before serving")
            if "serving on " in line:
                return line.split("serving on ", 1)[1].split()[0]
        raise RuntimeError("server never reported its URL")

    def kill9(self):
        self.proc.send_signal(signal.SIGKILL)
        self.proc.wait(timeout=10)

    def stop(self):
        if self.proc.poll() is not None:
            return
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)


def declare_schema(path):
    from repro.engine import PrometheusDB
    from repro.taxonomy import define_taxonomy_schema
    from repro.telemetry import DISABLED

    db = PrometheusDB(path, telemetry=DISABLED)
    define_taxonomy_schema(db.schema)
    db.load()
    db.close()


def acked_write(url, key, timeout=10.0):
    """One semi-synchronous committed write; True when replicated."""
    sid = _request(url + "/session", {}, timeout=timeout)["session"]
    _request(
        f"{url}/session/{sid}/apply",
        {"ops": [{"op": "create", "class": "Specimen",
                  "attrs": {"field_name": key, "collector": "bench"}}]},
        timeout=timeout,
    )
    body = _request(
        f"{url}/session/{sid}/commit",
        {"wait_replicated": 1, "wait_timeout_s": timeout},
        timeout=timeout + 5,
    )
    _request(f"{url}/session/{sid}/release", {}, timeout=timeout)
    return bool(body.get("replicated"))


def run_round(tmp, bench_dir):
    """Boot, ack writes, kill the primary, clock the recovery."""
    from repro.ha import FailoverCoordinator, http_node

    declare_schema(tmp / "primary.plog")
    primary = Node(
        [
            "--db", str(tmp / "primary.plog"),
            "--taxonomy",
            "--serve", "0",
            "--ha",
        ],
        cwd=bench_dir,
    )
    replicas = {}
    coordinator = None
    try:
        for i in range(2):
            replicas[f"r{i}"] = Node(
                [
                    "--db", str(tmp / f"replica{i}.plog"),
                    "--taxonomy",
                    "--replica-of", primary.url,
                    "--replica-name", f"r{i}",
                    "--serve", "0",
                    "--ha",
                ],
                cwd=bench_dir,
            )
        supervised = [http_node("primary", primary.url)] + [
            http_node(name, node.url) for name, node in replicas.items()
        ]
        coordinator = FailoverCoordinator(
            supervised,
            primary="primary",
            interval_s=COORDINATOR_INTERVAL_S,
            phi_threshold=PHI_THRESHOLD,
            lease_ttl_s=LEASE_TTL_S,
            skew_allowance_s=SKEW_ALLOWANCE_S,
        )
        coordinator.start()
        # A few probe rounds build heartbeat history (and grant the
        # primary its first lease) before the writes start.
        time.sleep(COORDINATOR_INTERVAL_S * 6)

        acked = []
        for i in range(ACKED_WRITES_PER_ROUND):
            key = f"acked{i:03d}"
            for _ in range(40):  # the first lease may still be in flight
                try:
                    replicated = acked_write(primary.url, key)
                except urllib.error.HTTPError:
                    time.sleep(0.1)
                    continue
                # Commit succeeded: retrying would double-write the
                # key, so an unreplicated commit fails the round.
                if not replicated:
                    raise RuntimeError(f"{key} committed but never acked")
                acked.append(key)
                break
            else:
                raise RuntimeError("primary never acknowledged writes")

        killed_at = time.perf_counter()
        primary.kill9()
        deadline = time.monotonic() + 60
        while not coordinator.failovers:
            if time.monotonic() > deadline:
                raise RuntimeError("no failover within 60s")
            time.sleep(0.02)
        report = coordinator.failovers[-1]
        promoted_at = time.perf_counter()
        new_primary_url = replicas[report.new_primary].url

        # The failover-following client: retry until the new primary
        # acknowledges a replicated write again.
        recovered_at = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            try:
                if acked_write(new_primary_url, "post-failover"):
                    recovered_at = time.perf_counter()
                    break
            except (urllib.error.HTTPError, urllib.error.URLError, OSError):
                pass
            time.sleep(0.05)
        if recovered_at is None:
            raise RuntimeError("new primary never took an acked write")

        lost = 0
        for key in acked:
            got = _request(
                new_primary_url + "/query",
                {
                    "query": "select s.field_name from s in Specimen "
                    "where s.field_name = $key",
                    "params": {"key": key},
                },
            )["result"]
            if got != [key]:
                lost += 1
        return {
            "detect_to_promoted_s": report.detect_to_promoted_s,
            "kill_to_promoted_s": promoted_at - killed_at,
            "kill_to_recovered_s": recovered_at - killed_at,
            "new_primary": report.new_primary,
            "epoch": report.epoch,
            "acked_writes": len(acked),
            "acked_writes_lost": lost,
        }
    finally:
        if coordinator is not None:
            coordinator.stop()
        for node in replicas.values():
            node.stop()
        primary.stop()


def percentile(values, q):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(len(ordered) * q))]


def test_failover_time_to_recover(tmp_path_factory, bench_recorder):
    bench_dir = tmp_path_factory.mktemp("failover_bench")
    rounds = []
    for i in range(ROUNDS):
        rounds.append(run_round(tmp_path_factory.mktemp(f"round{i}"),
                                bench_dir))
    ttrs = [r["kill_to_recovered_s"] for r in rounds]
    lost = sum(r["acked_writes_lost"] for r in rounds)
    cpus = os.cpu_count() or 1
    gated = cpus >= 4
    bench_recorder.record(
        "failover_time_to_recover",
        rounds=len(rounds),
        ttr_p50_s=round(percentile(ttrs, 0.50), 3),
        ttr_p99_s=round(percentile(ttrs, 0.99), 3),
        detect_to_promoted_p50_s=round(
            percentile([r["detect_to_promoted_s"] for r in rounds], 0.5), 3
        ),
        kill_to_promoted_p50_s=round(
            percentile([r["kill_to_promoted_s"] for r in rounds], 0.5), 3
        ),
        acked_writes=sum(r["acked_writes"] for r in rounds),
        acked_writes_lost=lost,
        epochs=[r["epoch"] for r in rounds],
        coordinator_interval_s=COORDINATOR_INTERVAL_S,
        phi_threshold=PHI_THRESHOLD,
        lease_ttl_s=LEASE_TTL_S,
        cpu_count=cpus,
        gate_engaged=gated,
        gate_skip_reason=(
            None
            if gated
            else f"only {cpus} CPU(s): processes time-slice, latency "
            "measures the scheduler"
        ),
    )
    # Correctness is not CPU-gated: acked writes survive, always.
    assert lost == 0, f"{lost} acknowledged writes lost across rounds"
    if gated:
        assert percentile(ttrs, 0.99) <= TTR_P99_BUDGET_S, (
            f"p99 time-to-recover {percentile(ttrs, 0.99):.2f}s over "
            f"budget {TTR_P99_BUDGET_S}s: {ttrs}"
        )
