"""E6 (persistent variant): OO7 traversals over the storage engine.

The in-memory traversal benchmarks isolate the model layers; this module
adds the database dimension — the same OO7 module persisted to the log
store, reloaded, and traversed (hot), plus commit and reload costs.
"""

import pytest

from repro.bench import OO7Config, build_oo7, define_oo7_schema, traverse_t1
from repro.core.schema import Schema
from repro.storage.store import ObjectStore


@pytest.fixture(scope="module")
def persistent_path(tmp_path_factory):
    """Build, commit and close an OO7 database once."""
    path = tmp_path_factory.mktemp("oo7") / "oo7.plog"
    store = ObjectStore(path)
    schema = Schema(store)
    define_oo7_schema(schema)
    build_oo7(schema, OO7Config.tiny())
    schema.commit()
    store.close()
    return path


def _reload(path):
    store = ObjectStore(path)
    schema = Schema(store)
    define_oo7_schema(schema)
    schema.load_all()
    return store, schema


def _handles_over(schema):
    """Rebuild lightweight handles from a reloaded schema."""
    from repro.bench.oo7 import MODULE, OO7Config, OO7Handles

    module = schema.extent(MODULE)[0]
    handles = OO7Handles(
        schema=schema,
        config=OO7Config.tiny(),
        module=module,
        root_assembly=module,
    )
    handles.composite_parts = schema.extent("CompositePart")
    handles.atomic_parts = schema.extent("AtomicPart")
    handles.base_assemblies = schema.extent("BaseAssembly")
    return handles


def test_commit_full_oo7_database(benchmark, tmp_path):
    counter = [0]

    def build_and_commit():
        counter[0] += 1
        path = tmp_path / f"commit{counter[0]}.plog"
        store = ObjectStore(path)
        schema = Schema(store)
        define_oo7_schema(schema)
        build_oo7(schema, OO7Config.tiny())
        schema.commit()
        size = store.file_size
        store.close()
        return size

    size = benchmark.pedantic(build_and_commit, rounds=5)
    assert size > 0


def test_reload_full_oo7_database(benchmark, persistent_path):
    def reload():
        store, schema = _reload(persistent_path)
        count = len(schema.extent("AtomicPart"))
        store.close()
        return count

    count = benchmark(reload)
    assert count == OO7Config.tiny().num_atomic_per_comp * OO7Config.tiny().num_comp_per_module


def test_t1_traversal_after_reload(benchmark, persistent_path):
    store, schema = _reload(persistent_path)
    handles = _handles_over(schema)

    visits = benchmark(traverse_t1, handles)
    assert visits > 0
    store.close()
