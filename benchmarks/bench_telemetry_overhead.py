"""Telemetry overhead microbenchmark: the "one branch per hook" contract.

Instrumentation is only allowed into hot paths under the discipline that
a *disabled* facade costs one attribute load and one branch per hook.
This benchmark keeps that honest with a before/after comparison on the
OO7 query workload:

* **before** — the same queries executed through the internal
  ``PrometheusDB._execute`` entry point, bypassing the telemetry wrapper
  entirely (the closest running code to the pre-instrumentation build);
* **disabled** — the public ``db.query`` path with a disabled facade,
  i.e. every hook present but dormant;
* **enabled** — the full instrumented path, for the record.

The disabled-vs-before overhead must stay under
``TELEMETRY_OVERHEAD_LIMIT_PCT`` (default 3%).  The raw cost of the hook
primitive itself (attribute load + branch) is also measured and
recorded.  Results land in ``results/BENCH_bench_telemetry_overhead.json``
so CI can track the trend.
"""

from __future__ import annotations

import os
import time

from repro.bench import OO7Config, build_oo7, define_oo7_schema
from repro.engine import PrometheusDB
from repro.telemetry import DISABLED, Telemetry

OVERHEAD_LIMIT_PCT = float(os.environ.get("TELEMETRY_OVERHEAD_LIMIT_PCT", "3.0"))

QUERIES_PER_BATCH = 20
ROUNDS = 9


def _build_db(telemetry: Telemetry) -> tuple[PrometheusDB, list]:
    db = PrometheusDB(telemetry=telemetry)
    define_oo7_schema(db.schema)
    handles = build_oo7(db.schema, OO7Config.tiny())
    idents = [a.get("ident") for a in handles.atomic_parts[:QUERIES_PER_BATCH]]
    return db, idents


def _batch_ns(run, rounds: int = ROUNDS) -> float:
    """Best-of-``rounds`` wall time of one batch, in ns."""
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter_ns()
        run()
        best = min(best, time.perf_counter_ns() - started)
    return best


def test_disabled_overhead_under_limit(bench_recorder):
    """db.query with telemetry disabled vs the unwrapped execute path."""
    db, idents = _build_db(Telemetry(enabled=False))
    text = "select a from a in AtomicPart where a.ident = $i"

    def before() -> None:
        for ident in idents:
            db._execute(text, {"i": ident}, check=True)

    def disabled() -> None:
        for ident in idents:
            db.query(text, params={"i": ident})

    # Interleave the measurements so drift (thermal, GC) hits both arms.
    before_ns = float("inf")
    disabled_ns = float("inf")
    for _ in range(ROUNDS):
        before_ns = min(before_ns, _batch_ns(before, rounds=1))
        disabled_ns = min(disabled_ns, _batch_ns(disabled, rounds=1))
    overhead_pct = (disabled_ns - before_ns) / before_ns * 100.0

    db_on, idents_on = _build_db(Telemetry(enabled=True))

    def enabled() -> None:
        for ident in idents_on:
            db_on.query(text, params={"i": ident})

    enabled_ns = _batch_ns(enabled)
    enabled_pct = (enabled_ns - before_ns) / before_ns * 100.0

    bench_recorder.record(
        "test_disabled_overhead_under_limit",
        before_ns=before_ns,
        disabled_ns=disabled_ns,
        enabled_ns=enabled_ns,
        overhead_disabled_pct=round(overhead_pct, 3),
        overhead_enabled_pct=round(enabled_pct, 3),
        queries_per_batch=QUERIES_PER_BATCH,
        limit_pct=OVERHEAD_LIMIT_PCT,
    )
    print(
        f"\ntelemetry overhead: disabled {overhead_pct:+.2f}% "
        f"(limit {OVERHEAD_LIMIT_PCT}%), enabled {enabled_pct:+.2f}%"
    )
    assert overhead_pct < OVERHEAD_LIMIT_PCT, (
        f"disabled-telemetry overhead {overhead_pct:.2f}% exceeds "
        f"{OVERHEAD_LIMIT_PCT}% (before={before_ns:.0f}ns "
        f"disabled={disabled_ns:.0f}ns per {QUERIES_PER_BATCH}-query batch)"
    )


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def test_http_hop_propagation_overhead(bench_recorder):
    """Cost of carrying ``traceparent`` across one HTTP hop.

    Four arms — {disabled, enabled} telemetry x {bare, traceparent}
    request — measured as per-request medians over a keep-alive
    connection.  Propagation parse/push/pop is a handful of string and
    list operations, so the bound here is a generous absolute sanity
    check (the hard <3% gate stays on the in-process query path above,
    where the noise floor allows a tight limit).
    """
    import http.client
    import json as _json

    from repro.engine import PrometheusServer
    from repro.telemetry import format_traceparent, propagation

    requests_per_arm = 60
    text = "select a from a in AtomicPart where a.ident = $i"
    payload = _json.dumps({"query": text, "params": {"i": 1}})
    traceparent = format_traceparent(propagation.new_context())

    def arm_us(url: str, with_header: bool) -> float:
        host = url.split("//", 1)[1]
        conn = http.client.HTTPConnection(host, timeout=10)
        headers = {"Content-Type": "application/json"}
        if with_header:
            headers[propagation.TRACEPARENT_HEADER] = traceparent
        try:
            samples = []
            for _ in range(requests_per_arm):
                started = time.perf_counter_ns()
                conn.request("POST", "/query", body=payload, headers=headers)
                response = conn.getresponse()
                response.read()
                samples.append((time.perf_counter_ns() - started) / 1000.0)
                assert response.status == 200
            return _median(samples)
        finally:
            conn.close()

    results = {}
    for mode, enabled in (("disabled", False), ("enabled", True)):
        db, _ = _build_db(Telemetry(enabled=enabled))
        with PrometheusServer(db) as server:
            arm_us(server.url, with_header=False)  # warm the connection path
            bare_us = arm_us(server.url, with_header=False)
            traced_us = arm_us(server.url, with_header=True)
        results[mode] = {
            "bare_us": round(bare_us, 2),
            "traced_us": round(traced_us, 2),
            "added_us": round(traced_us - bare_us, 2),
        }

    bench_recorder.record(
        "test_http_hop_propagation_overhead",
        requests_per_arm=requests_per_arm,
        **{
            f"{mode}_{key}": value
            for mode, stats in results.items()
            for key, value in stats.items()
        },
    )
    print(
        "\nper-hop traceparent cost: "
        + ", ".join(
            f"{mode} {stats['added_us']:+.1f}us"
            f" ({stats['bare_us']:.0f} -> {stats['traced_us']:.0f})"
            for mode, stats in results.items()
        )
    )
    # Loopback HTTP round trips run hundreds of microseconds; header
    # parse + context push must stay far below one millisecond of that.
    for mode, stats in results.items():
        assert stats["added_us"] < 1000.0, (
            f"{mode}: traceparent added {stats['added_us']:.0f}us/hop "
            f"(bare={stats['bare_us']:.0f}us traced={stats['traced_us']:.0f}us)"
        )


def test_hook_primitive_cost(bench_recorder):
    """The dormant hook itself: one attribute load + one branch."""
    tel = DISABLED
    iterations = 200_000

    def hooked() -> None:
        for _ in range(iterations):
            if tel.enabled:  # pragma: no cover - never taken
                raise AssertionError

    def bare() -> None:
        for _ in range(iterations):
            pass

    hooked_ns = _batch_ns(hooked, rounds=5)
    bare_ns = _batch_ns(bare, rounds=5)
    per_hook_ns = max(0.0, (hooked_ns - bare_ns) / iterations)
    bench_recorder.record(
        "test_hook_primitive_cost",
        per_hook_ns=round(per_hook_ns, 3),
        iterations=iterations,
    )
    print(f"\ndormant hook cost: {per_hook_ns:.1f} ns")
    # A dormant hook must stay in branch-predictor territory, far from
    # anything that could move a query benchmark by whole percents.
    assert per_hook_ns < 1000
