"""E6 — §7.2.1.2.1 raw performance: OO7-inspired traversals.

Regenerates the traversal measurements of the evaluation chapter: full
traversal (T1), update traversals (T2a/T2b) and the sparse traversal
(T6), all through the Prometheus relationship machinery.
"""

from repro.bench import traverse_t1, traverse_t2, traverse_t6


def test_t1_full_traversal(benchmark, oo7_small):
    visits = benchmark(traverse_t1, oo7_small)
    assert visits > 0


def test_t1_full_traversal_tiny(benchmark, oo7_tiny):
    visits = benchmark(traverse_t1, oo7_tiny)
    assert visits > 0


def test_t2a_update_one_per_composite(benchmark, oo7_small):
    updates = benchmark(traverse_t2, oo7_small, "a")
    assert updates == len(oo7_small.composite_parts)


def test_t2b_update_every_atomic(benchmark, oo7_small):
    updates = benchmark(traverse_t2, oo7_small, "b")
    assert updates == len(oo7_small.atomic_parts)


def test_t6_sparse_traversal(benchmark, oo7_small):
    visits = benchmark(traverse_t6, oo7_small)
    assert 0 < visits <= traverse_t1(oo7_small)
