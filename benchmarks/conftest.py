"""Shared benchmark fixtures and result-file helpers.

Every benchmark regenerates one artefact of the thesis's evaluation
chapter (see EXPERIMENTS.md for the index).  Figure-style benchmarks
additionally write their data series into ``benchmarks/results/`` so the
regenerated "figures" survive the pytest run as inspectable text files.

Machine-readable results: every benchmark module also emits a
``benchmarks/results/BENCH_<module>.json`` through a
:class:`repro.telemetry.bench.BenchRecorder`.  pytest-benchmark stats
are captured automatically after each test; sweep-style benchmarks
record their series explicitly via the ``bench_recorder`` fixture.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import OO7Config, build_oo7, define_oo7_schema
from repro.core.schema import Schema
from repro.telemetry.bench import BenchRecorder

RESULTS_DIR = Path(__file__).parent / "results"

_RECORDERS: dict[str, BenchRecorder] = {}


def recorder_for(module_name: str) -> BenchRecorder:
    """One :class:`BenchRecorder` per benchmark module, created lazily."""
    name = module_name.rsplit(".", 1)[-1]
    recorder = _RECORDERS.get(name)
    if recorder is None:
        recorder = BenchRecorder(name)
        _RECORDERS[name] = recorder
    return recorder


@pytest.fixture
def bench_recorder(request) -> BenchRecorder:
    """The module's recorder, for explicit series/result recording."""
    return recorder_for(request.module.__name__)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    """After any test that used pytest-benchmark, harvest its stats.

    Runs right after the test body, while the ``benchmark`` fixture is
    still alive (its value is gone by fixture-teardown time).  Tolerant
    of benchmarks that were skipped or disabled: the capture only
    records when stats actually exist.
    """
    yield
    bench = getattr(item, "funcargs", {}).get("benchmark")
    meta = getattr(bench, "stats", None)
    stats = getattr(meta, "stats", None)
    if stats is None:
        return
    recorder = recorder_for(item.module.__name__)
    try:
        recorder.record(
            item.name,
            mean_ns=stats.mean * 1e9,
            min_ns=stats.min * 1e9,
            max_ns=stats.max * 1e9,
            stddev_ns=stats.stddev * 1e9,
            rounds=stats.rounds,
        )
    except (AttributeError, TypeError):
        pass


def pytest_sessionfinish(session, exitstatus):  # noqa: ARG001
    """Flush every module's recorder to results/BENCH_<module>.json."""
    for recorder in _RECORDERS.values():
        if recorder.results or recorder.series:
            recorder.write(RESULTS_DIR)


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated figure/table series under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


def sweep_rows_as_dicts(rows) -> list[dict]:
    """SweepRow series → JSON-safe dicts (shared by figure benchmarks)."""
    return [
        {
            "size": row.size,
            "raw_ns": row.raw_ns,
            "prometheus_ns": row.prometheus_ns,
            "ratio": row.ratio,
        }
        for row in rows
    ]


@pytest.fixture(scope="module")
def oo7_tiny():
    """A tiny OO7 module (fast enough for per-op benchmarking)."""
    schema = Schema()
    define_oo7_schema(schema)
    return build_oo7(schema, OO7Config.tiny())


@pytest.fixture(scope="module")
def oo7_small():
    """The OO7 small-ish configuration used for traversal benchmarks."""
    schema = Schema()
    define_oo7_schema(schema)
    return build_oo7(schema, OO7Config.small())
