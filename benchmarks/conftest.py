"""Shared benchmark fixtures and result-file helpers.

Every benchmark regenerates one artefact of the thesis's evaluation
chapter (see EXPERIMENTS.md for the index).  Figure-style benchmarks
additionally write their data series into ``benchmarks/results/`` so the
regenerated "figures" survive the pytest run as inspectable text files.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench import OO7Config, build_oo7, define_oo7_schema
from repro.core.schema import Schema

RESULTS_DIR = Path(__file__).parent / "results"


def write_result(name: str, text: str) -> Path:
    """Persist a regenerated figure/table series under benchmarks/results."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


@pytest.fixture(scope="module")
def oo7_tiny():
    """A tiny OO7 module (fast enough for per-op benchmarking)."""
    schema = Schema()
    define_oo7_schema(schema)
    return build_oo7(schema, OO7Config.tiny())


@pytest.fixture(scope="module")
def oo7_small():
    """The OO7 small-ish configuration used for traversal benchmarks."""
    schema = Schema()
    define_oo7_schema(schema)
    return build_oo7(schema, OO7Config.small())
