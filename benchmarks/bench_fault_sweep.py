"""Fault-sweep harness: what resilience costs, and what recovery costs.

Not a thesis figure — this is the durability side of the evaluation
chapter's bargain.  Every perf PR can run this sweep to prove its wins
did not trade away crash safety, and to watch the recovery path's cost:

* per-operation overhead of running the log through the fault layer
  (the injection plumbing itself must stay cheap enough to leave on in
  stress runs);
* recovery time for a clean log vs. a salvage scan over a damaged one;
* a miniature crash sweep (torn write at every append of a scripted
  workload) timing the reopen after each crash.

Writes ``benchmarks/results/fault_sweep.txt`` with the series.
"""

import pytest

from repro.storage import FaultPlan, InjectedCrash, ObjectStore

from conftest import write_result

RECORD = {"epithet": "graveolens", "rank": "Species", "year": 1753}


def test_fault_layer_overhead(benchmark, tmp_path):
    """Raw append+commit throughput with the fault layer armed (empty
    plan: every write/flush/fsync is counted, none fault)."""
    store = ObjectStore(tmp_path / "armed.plog", faults=FaultPlan())

    def run():
        store.put(store.new_oid(), RECORD)

    benchmark(run)
    store.close()


def test_baseline_without_fault_layer(benchmark, tmp_path):
    store = ObjectStore(tmp_path / "bare.plog")

    def run():
        store.put(store.new_oid(), RECORD)

    benchmark(run)
    store.close()


def _build_log(path, n=500):
    with ObjectStore(path) as store:
        boundaries = []
        for i in range(n):
            boundaries.append(store.file_size)
            store.insert({**RECORD, "i": i})
    return boundaries


def test_recovery_clean_log(benchmark, tmp_path):
    path = tmp_path / "clean.plog"
    _build_log(path)

    def run():
        store = ObjectStore(path)
        assert store.last_recovery.clean
        store.close()

    benchmark(run)


def test_recovery_salvage_scan(benchmark, tmp_path):
    """Recovery over a log with a corrupt region at the 1/3 mark."""
    path = tmp_path / "hurt.plog"
    boundaries = _build_log(path)
    target = boundaries[len(boundaries) // 3] + 12
    with open(path, "r+b") as f:
        f.seek(target)
        byte = f.read(1)
        f.seek(target)
        f.write(bytes([byte[0] ^ 0xFF]))

    def run():
        store = ObjectStore(path)
        assert store.last_recovery.salvaged
        store.close()

    benchmark(run)


def test_crash_sweep_reopen_costs(tmp_path):
    """Torn write at every append of a small workload; record reopen
    times and recovery outcomes as the regenerated 'figure'."""
    import time

    probe = FaultPlan()
    with ObjectStore(tmp_path / "probe.plog", faults=probe) as store:
        for i in range(10):
            store.insert({**RECORD, "i": i})
    writes = probe.counts["write"]

    lines = ["# torn-write sweep: write_index reopened_ok live_records reopen_us"]
    for index in range(1, writes + 1):
        path = tmp_path / f"sweep-{index}.plog"
        plan = FaultPlan(seed=index).torn_write(at=index)
        store = None
        try:
            # write #1 is the header: the crash can fire mid-construction
            store = ObjectStore(path, faults=plan)
            for i in range(10):
                store.insert({**RECORD, "i": i})
        except InjectedCrash:
            pass
        finally:
            if store is not None:
                store.close()
        started = time.perf_counter()
        reopened = ObjectStore(path)
        micros = (time.perf_counter() - started) * 1e6
        lines.append(
            f"{index} ok {len(reopened)} {micros:.0f}"
        )
        reopened.close()
    write_result("fault_sweep.txt", "\n".join(lines))
    assert len(lines) == writes + 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(pytest.main([__file__, "-q"]))
