"""Write scale-out on a 4-shard topology, with real shard processes.

The sharding layer's performance claim is that writes scale with the
number of shards because each shard is an independent node with its own
log and lock domain.  An in-process measurement cannot show that (the
GIL serializes the shard engines), so this benchmark runs the real
topology: one ``python -m repro --serve`` process per shard, a
client-side :class:`~repro.sharding.ShardMap` routing each record by
its key exactly as the coordinator would, and the same writer-thread
pool driving both topologies —

* **single** — all writes to one node,
* **sharded** — the same writes fanned across four nodes by range.

Both runs commit the same number of records through the same batched
session API; only the number of server processes differs, so the ratio
measures shard parallelism and nothing else.  Results (rates, speedup,
per-shard placement) land in
``benchmarks/results/BENCH_bench_sharding.json``.  The ≥2x scale-out
gate only engages with >= 4 CPUs: below that the shard processes
time-slice one another and the ratio measures the scheduler, not the
sharding layer.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.sharding import ShardMap

REPO_SRC = Path(__file__).resolve().parent.parent / "src"

SHARDS = ("s0", "s1", "s2", "s3")
SPLIT_POINTS = ("h", "n", "t")
WRITER_THREADS = 4
BATCHES_PER_THREAD = 12
RECORDS_PER_BATCH = 25
SCALE_OUT_GATE = 2.0


def _request(url, payload=None, timeout=15.0):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(req, timeout=timeout) as response:
        return json.load(response)


class Node:
    """One store-backed ``python -m repro --serve`` shard process."""

    def __init__(self, args, cwd):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_SRC)
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            cwd=cwd,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.url = self._await_url()

    def _await_url(self, timeout=30.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError("shard process exited before serving")
            if "serving on " in line:
                return line.split("serving on ", 1)[1].split()[0]
        raise RuntimeError("shard process never reported its URL")

    def stop(self):
        if self.proc.poll() is not None:
            return
        self.proc.terminate()
        try:
            self.proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait(timeout=10)


def _start_nodes(tmp, count):
    nodes = []
    try:
        for i in range(count):
            nodes.append(
                Node(
                    ["--db", str(tmp / f"shard{i}.plog"),
                     "--taxonomy", "--serve", "0"],
                    cwd=tmp,
                )
            )
        return nodes
    except Exception:
        for node in nodes:
            node.stop()
        raise


def _keys(thread: int, batch: int) -> list[str]:
    """Deterministic keys whose first letters spread across the ranges."""
    alphabet = "abefhiklnoqrtuwy"  # 4 letters per shard range
    return [
        f"{alphabet[(thread * 7 + batch * 3 + i) % len(alphabet)]}"
        f"-t{thread}-b{batch}-r{i}"
        for i in range(RECORDS_PER_BATCH)
    ]


def _commit_batch(url: str, keys: list[str]) -> None:
    sid = _request(url + "/session", {})["session"]
    _request(
        f"{url}/session/{sid}/apply",
        {"ops": [
            {"op": "create", "class": "Specimen",
             "attrs": {"field_name": key, "collector": "bench"}}
            for key in keys
        ]},
    )
    _request(f"{url}/session/{sid}/commit", {})
    _request(f"{url}/session/{sid}/release", {})


def _run_ingest(urls_by_shard: dict[str, str], shard_map: ShardMap):
    """Drive the full write load; returns (records/s, per-shard counts)."""
    errors: list[Exception] = []
    placed: dict[str, int] = {name: 0 for name in urls_by_shard}
    lock = threading.Lock()

    def writer(thread: int) -> None:
        try:
            for batch in range(BATCHES_PER_THREAD):
                routed: dict[str, list[str]] = {}
                for i, key in enumerate(_keys(thread, batch)):
                    shard = shard_map.route(key, thread * 100_000 + i)
                    routed.setdefault(shard, []).append(key)
                for shard, keys in routed.items():
                    _commit_batch(urls_by_shard[shard], keys)
                    with lock:
                        placed[shard] += len(keys)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(t,), daemon=True)
        for t in range(WRITER_THREADS)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    total = WRITER_THREADS * BATCHES_PER_THREAD * RECORDS_PER_BATCH
    return total / elapsed, placed


@pytest.fixture(scope="module")
def bench_dirs(tmp_path_factory):
    return tmp_path_factory.mktemp("shard_bench")


def test_write_scale_out(bench_dirs, bench_recorder):
    single_map = ShardMap.single("s0", key_attr="field_name")
    sharded_map = ShardMap.uniform(SHARDS, "field_name", SPLIT_POINTS)

    single_nodes = _start_nodes(bench_dirs, 1)
    try:
        single_rate, _ = _run_ingest(
            {"s0": single_nodes[0].url}, single_map
        )
    finally:
        for node in single_nodes:
            node.stop()

    shard_nodes = _start_nodes(bench_dirs, len(SHARDS))
    try:
        sharded_rate, placed = _run_ingest(
            dict(zip(SHARDS, (n.url for n in shard_nodes))), sharded_map
        )
    finally:
        for node in shard_nodes:
            node.stop()

    speedup = sharded_rate / single_rate if single_rate else float("inf")
    cpus = os.cpu_count() or 1
    gated = cpus >= 4
    bench_recorder.record(
        "write_scale_out",
        single_shard_writes_per_s=round(single_rate, 1),
        four_shard_writes_per_s=round(sharded_rate, 1),
        speedup=round(speedup, 3),
        writer_threads=WRITER_THREADS,
        records_total=(
            WRITER_THREADS * BATCHES_PER_THREAD * RECORDS_PER_BATCH
        ),
        placement=placed,
        shard_map_epoch=sharded_map.epoch,
        cpu_count=cpus,
        gate_engaged=gated,
        gate_skip_reason=(
            None
            if gated
            else f"only {cpus} CPU(s): shard processes time-slice, "
            "ratio measures the scheduler"
        ),
    )
    # Every shard must have taken real load — a hot-spotted map would
    # make the speedup meaningless even when the gate passes.
    assert all(count > 0 for count in placed.values()), placed
    if gated:
        assert speedup >= SCALE_OUT_GATE, (
            f"four shard processes ingested only {speedup:.2f}x the "
            f"single-shard rate "
            f"({sharded_rate:.0f} vs {single_rate:.0f} records/s)"
        )
