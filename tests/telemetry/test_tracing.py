"""Tracer spans and the Telemetry facade."""

import logging

import pytest

from repro.telemetry import DISABLED, Telemetry
from repro.telemetry.tracing import NULL_SPAN, Tracer


class TestSpans:
    def test_span_times_its_region(self):
        tracer = Tracer()
        with tracer.span("work") as span:
            pass
        assert span.end_ns >= span.start_ns
        assert span.duration_ms >= 0.0

    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                with tracer.span("grandchild"):
                    pass
        assert root.children == [child]
        assert child.children[0].name == "grandchild"
        assert child.parent is root

    def test_attributes_at_creation_and_via_set(self):
        tracer = Tracer()
        with tracer.span("q", clause="where") as span:
            span.set("rows", 7)
        assert span.attributes == {"clause": "where", "rows": 7}

    def test_finished_roots_ring(self):
        tracer = Tracer(keep=2)
        for i in range(3):
            with tracer.span(f"r{i}"):
                pass
        names = [s.name for s in tracer.finished_roots()]
        assert names == ["r1", "r2"]  # oldest evicted

    def test_child_finish_does_not_enter_ring(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
            assert tracer.finished_roots() == []
        assert len(tracer.finished_roots()) == 1

    def test_current_tracks_the_stack(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_out_of_order_exit_unwinds(self):
        tracer = Tracer()
        outer = tracer.span("outer").__enter__()
        tracer.span("inner").__enter__()
        # Exit the outer span while the inner is still open (generator
        # teardown ordering); the stack must unwind, not wedge.
        outer.__exit__(None, None, None)
        assert tracer.current() is None

    def test_as_dict_round_trips_tree(self):
        tracer = Tracer()
        with tracer.span("root", kind="select") as root:
            with tracer.span("leaf"):
                pass
        data = root.as_dict()
        assert data["name"] == "root"
        assert data["attributes"] == {"kind": "select"}
        assert data["children"][0]["name"] == "leaf"

    def test_disabled_tracer_hands_out_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", x=1)
        assert span is NULL_SPAN
        with span as s:
            s.set("ignored", True)
        assert s.attributes == {}
        assert tracer.finished_roots() == []


class TestTelemetryFacade:
    def test_enable_disable_flip_both_halves(self):
        tel = Telemetry(enabled=False)
        assert not tel.registry.enabled
        assert not tel.tracer.enabled
        tel.enable()
        assert tel.enabled and tel.registry.enabled and tel.tracer.enabled
        tel.disable()
        assert not tel.enabled

    def test_shared_disabled_facade_is_off(self):
        assert not DISABLED.enabled
        assert DISABLED.tracer.span("x") is NULL_SPAN

    def test_snapshot_shape(self):
        tel = Telemetry()
        tel.registry.counter("a_total").inc()
        with tel.tracer.span("trace-me"):
            pass
        snap = tel.snapshot()
        assert snap["enabled"] is True
        assert snap["uptime_s"] >= 0
        assert snap["metrics"]["a_total"] == 1
        assert snap["recent_traces"][0]["name"] == "trace-me"
        assert snap["slow_queries"] == []

    def test_summary_keeps_only_scalar_totals(self):
        tel = Telemetry()
        tel.registry.counter("x_total").inc(3)
        tel.registry.counter("by_node_total", {"node": "a"}).inc()
        tel.registry.gauge("depth").set(9)
        counters = tel.summary()["counters"]
        assert counters == {"x_total": 3}


class TestSlowQueryLog:
    def test_over_threshold_is_kept_and_logged(self, caplog):
        tel = Telemetry(slow_query_ms=10.0)
        with caplog.at_level(logging.WARNING, logger="repro.query.slow"):
            tel.record_query("select slow", elapsed_ms=25.0, rows=3)
        assert len(tel.slow_queries) == 1
        entry = tel.slow_queries[0]
        assert entry["query"] == "select slow"
        assert entry["elapsed_ms"] == 25.0
        assert entry["rows"] == 3
        assert "slow query" in caplog.text

    def test_under_threshold_is_dropped(self):
        tel = Telemetry(slow_query_ms=10.0)
        tel.record_query("select fast", elapsed_ms=1.0, rows=1)
        assert len(tel.slow_queries) == 0

    def test_no_threshold_means_off(self):
        tel = Telemetry()
        tel.record_query("select anything", elapsed_ms=10_000.0, rows=0)
        assert len(tel.slow_queries) == 0

    def test_long_query_text_truncated(self):
        tel = Telemetry(slow_query_ms=1.0)
        tel.record_query("x" * 600, elapsed_ms=5.0, rows=0)
        assert len(tel.slow_queries[0]["query"]) == 500
        assert tel.slow_queries[0]["query"].endswith("...")

    def test_ring_is_bounded(self):
        tel = Telemetry(slow_query_ms=0.0, slow_query_keep=5)
        for i in range(9):
            tel.record_query(f"q{i}", elapsed_ms=1.0, rows=0)
        assert len(tel.slow_queries) == 5
        assert tel.slow_queries[0]["query"] == "q4"

    def test_end_to_end_through_db(self, tmp_path):
        from repro.engine import PrometheusDB

        db = PrometheusDB(slow_query_ms=0.0)  # everything is "slow"
        from repro.core.attributes import Attribute
        from repro.core import types as T

        db.schema.define_class("Thing", [Attribute("v", T.INTEGER)])
        db.schema.create("Thing", v=1)
        db.query("select t from t in Thing")
        assert len(db.telemetry.slow_queries) == 1
