"""Trace-context propagation, the span ring, and the event journal.

The wire format and the per-thread stack are what every HTTP edge in
the cluster relies on; the :class:`TraceBuffer` and
:class:`EventJournal` are what ``GET /trace/<id>`` and ``GET /events``
serve.  Cross-thread capture/attach is the tracer-side contract that
keeps executor and pull-loop spans inside their parent trace.
"""

import json
import threading

import pytest

from repro.telemetry import (
    EventJournal,
    Telemetry,
    TraceBuffer,
    TraceContext,
    format_traceparent,
    parse_traceparent,
    propagation,
)


class TestTraceparentWireFormat:
    def test_roundtrip(self):
        ctx = propagation.new_context()
        parsed = parse_traceparent(format_traceparent(ctx))
        assert parsed is not None
        assert parsed.trace_id == ctx.trace_id
        assert parsed.span_id == ctx.span_id
        assert parsed.sampled is True

    def test_unsampled_flag_roundtrips(self):
        ctx = propagation.new_context(sampled=False)
        header = format_traceparent(ctx)
        assert header.endswith("-00")
        parsed = parse_traceparent(header)
        assert parsed is not None and parsed.sampled is False

    def test_header_shape(self):
        header = format_traceparent(
            TraceContext("ab" * 16, "cd" * 8)
        )
        assert header == f"00-{'ab' * 16}-{'cd' * 8}-01"

    def test_uppercase_header_is_normalized(self):
        header = f"00-{'AB' * 16}-{'CD' * 8}-01"
        parsed = parse_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == "ab" * 16

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "garbage",
            "00-short-0011223344556677-01",  # bad trace length
            f"00-{'00' * 16}-0011223344556677-01",  # all-zero trace
            f"00-{'ab' * 16}-{'00' * 8}-01",  # all-zero span
            f"ff-{'ab' * 16}-{'cd' * 8}-01",  # forbidden version
            f"00-{'zz' * 16}-{'cd' * 8}-01",  # non-hex
            f"00-{'ab' * 16}-{'cd' * 8}-xx",  # non-hex flags
        ],
    )
    def test_malformed_headers_parse_to_none(self, header):
        assert parse_traceparent(header) is None

    def test_ids_are_unique_and_well_formed(self):
        ids = {propagation.new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(t) == 32 for t in ids)
        assert len(propagation.new_span_id()) == 16


class TestContextStack:
    def test_push_pop_current(self):
        assert propagation.current() is None
        a, b = propagation.new_context(), propagation.new_context()
        propagation.push(a)
        propagation.push(b)
        assert propagation.current() is b
        propagation.pop(b)
        assert propagation.current() is a
        propagation.pop(a)
        assert propagation.current() is None

    def test_pop_tolerates_out_of_order_exit(self):
        a, b = propagation.new_context(), propagation.new_context()
        propagation.push(a)
        propagation.push(b)
        propagation.pop(a)  # unwinds b too
        assert propagation.current() is None
        propagation.pop(b)  # no-op, no error

    def test_activate_scopes_and_tolerates_none(self):
        ctx = propagation.new_context()
        with propagation.activate(ctx):
            assert propagation.current() is ctx
        assert propagation.current() is None
        with propagation.activate(None):
            assert propagation.current() is None

    def test_stack_is_per_thread(self):
        ctx = propagation.new_context()
        propagation.push(ctx)
        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(propagation.current())
        )
        thread.start()
        thread.join()
        propagation.pop(ctx)
        assert seen == [None]


class TestTraceBuffer:
    def test_record_and_query_by_trace(self):
        buffer = TraceBuffer(keep=8, node="n1")
        buffer.record(
            propagation.span_record(
                trace_id="t1", span_id="s1", parent_span_id=None,
                name="root", duration_ms=1.0, attributes={},
            )
        )
        [span] = buffer.spans("t1")
        assert span["node"] == "n1"
        assert span["name"] == "root"
        assert buffer.spans("missing") == []
        assert buffer.trace_ids() == ["t1"]

    def test_ring_is_bounded(self):
        buffer = TraceBuffer(keep=3)
        for i in range(5):
            buffer.record({"trace_id": f"t{i}"})
        assert len(buffer) == 3
        assert buffer.spans("t0") == []
        assert buffer.spans("t4") != []


class TestEventJournal:
    def test_record_stamps_seq_node_and_trace(self):
        journal = EventJournal(node="n1", clock=lambda: 123.5)
        ctx = propagation.new_context()
        with propagation.activate(ctx):
            journal.record("ha.promote", epoch=3, lsn=64)
        [event] = journal.events()
        assert event["seq"] == 1
        assert event["at"] == 123.5
        assert event["node"] == "n1"
        assert event["kind"] == "ha.promote"
        assert event["epoch"] == 3 and event["lsn"] == 64
        assert event["trace_id"] == ctx.trace_id

    def test_since_cursor(self):
        journal = EventJournal()
        for i in range(4):
            journal.record("k", i=i)
        assert journal.last_seq == 4
        tail = journal.events(since=2)
        assert [e["seq"] for e in tail] == [3, 4]

    def test_persists_jsonl_beside_the_store(self, tmp_path):
        path = tmp_path / "node.events.jsonl"
        journal = EventJournal(path=str(path), node="n1")
        journal.record("replication.reset", epoch=2, extra="x")
        journal.record("ha.fence", reason="demoted")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "replication.reset"
        assert first["extra"] == "x"

    def test_ring_is_bounded_but_seq_keeps_counting(self):
        journal = EventJournal(keep=2)
        for i in range(5):
            journal.record("k", i=i)
        events = journal.events()
        assert [e["seq"] for e in events] == [4, 5]
        assert journal.last_seq == 5


class TestCrossThreadCaptureAttach:
    def test_attach_links_worker_spans_to_the_captured_trace(self):
        tel = Telemetry()
        with tel.tracer.span("fanout") as root:
            handle = tel.tracer.capture()
            result = {}

            def work():
                with tel.tracer.attach(handle):
                    with tel.tracer.span("leg") as leg:
                        result["trace"] = leg.trace_id
                        result["parent"] = leg.parent_span_id

            thread = threading.Thread(target=work)
            thread.start()
            thread.join()
        assert result["trace"] == root.trace_id
        assert result["parent"] == root.span_id
        names = {
            (r["name"], r["trace_id"]) for r in tel.traces.snapshot()
        }
        assert ("leg", root.trace_id) in names
        assert ("fanout", root.trace_id) in names

    def test_capture_without_open_span_returns_ambient_context(self):
        tel = Telemetry()
        ctx = propagation.new_context()
        with propagation.activate(ctx):
            handle = tel.tracer.capture()
        assert handle is ctx

    def test_attach_none_is_a_noop(self):
        tel = Telemetry()
        with tel.tracer.attach(None):
            with tel.tracer.span("orphan") as span:
                assert span.parent_span_id is None

    def test_server_style_remote_context_becomes_parent(self):
        tel = Telemetry()
        remote = propagation.new_context()
        propagation.push(remote)
        try:
            with tel.tracer.span("http.request") as span:
                assert span.trace_id == remote.trace_id
                assert span.parent_span_id == remote.span_id
        finally:
            propagation.pop(remote)

    def test_record_query_stamps_trace_id(self):
        tel = Telemetry(slow_query_ms=0.0)
        ctx = propagation.new_context()
        with propagation.activate(ctx):
            tel.record_query("select x", 5.0, 1)
        [entry] = tel.slow_queries
        assert entry["trace_id"] == ctx.trace_id
