"""Metrics registry: counters, gauges, histograms, exposition."""

import threading

import pytest

from repro.telemetry.metrics import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_starts_at_zero_and_increments(self, registry):
        c = registry.counter("ops_total")
        assert c.value == 0
        c.inc()
        c.inc(3)
        assert c.value == 4

    def test_same_name_same_object(self, registry):
        assert registry.counter("x_total") is registry.counter("x_total")

    def test_labels_partition_the_series(self, registry):
        a = registry.counter("hits_total", {"node": "a"})
        b = registry.counter("hits_total", {"node": "b"})
        assert a is not b
        a.inc()
        assert b.value == 0

    def test_label_order_does_not_matter(self, registry):
        one = registry.counter("t_total", {"a": "1", "b": "2"})
        two = registry.counter("t_total", {"b": "2", "a": "1"})
        assert one is two

    def test_kind_conflict_raises(self, registry):
        registry.counter("thing")
        with pytest.raises(TypeError):
            registry.gauge("thing")


class TestGauges:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("depth")
        g.set(10)
        g.inc()
        g.dec(4)
        assert g.value == 7


class TestHistograms:
    def test_count_sum_min_max(self, registry):
        h = registry.histogram("latency_ms")
        for v in (1.0, 5.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 9.0
        assert h.min == 1.0
        assert h.max == 5.0

    def test_percentiles_over_window(self, registry):
        h = registry.histogram("ms")
        for v in range(1, 101):
            h.observe(float(v))
        p = h.percentiles()
        assert p["p50"] == pytest.approx(50, abs=2)
        assert p["p95"] == pytest.approx(95, abs=2)
        assert p["p99"] == pytest.approx(99, abs=2)

    def test_empty_percentiles_are_zero(self, registry):
        h = registry.histogram("ms")
        assert h.percentiles() == {"p50": 0.0, "p95": 0.0, "p99": 0.0}

    def test_reservoir_is_bounded(self, registry):
        h = registry.histogram("ms", reservoir_size=8)
        for v in range(100):
            h.observe(float(v))
        assert len(h._reservoir) == 8
        assert h.count == 100  # totals keep counting past the window

    def test_snapshot_shape(self, registry):
        h = registry.histogram("ms")
        h.observe(2.0)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["p50"] == 2.0


class TestExposition:
    def test_prometheus_text_format(self, registry):
        registry.counter("req_total", help="Requests").inc(2)
        registry.gauge("depth").set(3)
        text = registry.render_prometheus()
        assert "# HELP req_total Requests" in text
        assert "# TYPE req_total counter" in text
        assert "req_total 2" in text
        assert "depth 3" in text
        assert text.endswith("\n")

    def test_labels_rendered_prometheus_style(self, registry):
        registry.counter("hits_total", {"node": "n1"}).inc()
        assert 'hits_total{node="n1"} 1' in registry.render_prometheus()

    def test_label_values_escaped(self, registry):
        registry.counter("q_total", {"q": 'say "hi"\n'}).inc()
        text = registry.render_prometheus()
        assert '\\"hi\\"' in text
        assert "\\n" in text

    def test_histogram_rendered_as_summary(self, registry):
        h = registry.histogram("lat_ms")
        h.observe(1.5)
        text = registry.render_prometheus()
        assert "# TYPE lat_ms summary" in text
        assert 'lat_ms{quantile="0.5"} 1.5' in text
        assert "lat_ms_count 1" in text
        assert "lat_ms_sum 1.5" in text

    def test_integers_render_without_decimal_point(self, registry):
        registry.counter("n_total").inc(5)
        assert "n_total 5" in registry.render_prometheus()
        assert "n_total 5.0" not in registry.render_prometheus()

    def test_snapshot_flattens_labels(self, registry):
        registry.counter("plain_total").inc()
        registry.counter("by_node_total", {"node": "a"}).inc(2)
        snap = registry.snapshot()
        assert snap["plain_total"] == 1
        assert snap["by_node_total"] == {"node=a": 2}


class TestCollectors:
    def test_collector_runs_at_scrape_time(self, registry):
        calls = []

        def collect(reg):
            calls.append(1)
            reg.gauge("scraped").set(42)

        registry.add_collector(collect)
        assert calls == []  # nothing until a scrape
        text = registry.render_prometheus()
        assert "scraped 42" in text
        registry.snapshot()
        assert len(calls) == 2

    def test_broken_collector_does_not_break_scrape(self, registry):
        def boom(reg):
            raise RuntimeError("scrape-time bug")

        registry.add_collector(boom)
        registry.counter("ok_total").inc()
        assert "ok_total 1" in registry.render_prometheus()

    def test_collector_remover(self, registry):
        remove = registry.add_collector(
            lambda reg: reg.gauge("tmp").set(1)
        )
        remove()
        assert "tmp" not in registry.render_prometheus()


class TestRegistryLifecycle:
    def test_reset_drops_metrics_keeps_collectors(self, registry):
        registry.counter("gone_total").inc()
        registry.add_collector(lambda reg: reg.gauge("kept").set(1))
        registry.reset()
        text = registry.render_prometheus()
        assert "gone_total" not in text
        assert "kept 1" in text

    def test_concurrent_get_returns_one_metric(self, registry):
        seen = []

        def worker():
            seen.append(registry.counter("shared_total"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(map(id, seen))) == 1
