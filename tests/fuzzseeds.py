"""One seed convention for every fuzz/differential suite in the repo.

Each suite runs its fixed seeds always, plus one *run seed* resolved
the same way everywhere:

1. the suite's own env var (``QUERY_FUZZ_SEED``, ``SERVER_FUZZ_SEED``,
   ``SHARD_FUZZ_SEED``, ``REPLICATION_FUZZ_SEED``) — an explicit
   operator override always wins;
2. otherwise ``GITHUB_RUN_ID % 1_000_000`` in CI, so every pipeline
   run explores a fresh seed;
3. otherwise none — local runs stay deterministic on the fixed seeds.

On failure, suites print :func:`repro_line` so the exact failing case
reproduces from a single pasted command.
"""

import os

__all__ = ["run_seed", "derive_seeds", "repro_command", "repro_line"]


def run_seed(
    env_var: str | None = None, run_id: str | None = None
) -> int | None:
    """The run-derived seed, or None when neither source is set.

    ``run_id`` lets legacy callers inject the CI run id explicitly;
    when omitted it is read from ``GITHUB_RUN_ID``.
    """
    if env_var:
        raw = os.environ.get(env_var)
        if raw is not None:
            return int(raw)
    if run_id is None:
        run_id = os.environ.get("GITHUB_RUN_ID")
    if run_id:
        return int(run_id) % 1_000_000
    return None


def derive_seeds(
    fixed: tuple[int, ...],
    env_var: str | None = None,
    run_id: str | None = None,
) -> list[int]:
    """The fixed seeds plus the run seed (deduplicated), in order."""
    seeds = list(fixed)
    extra = run_seed(env_var, run_id)
    if extra is not None and extra not in seeds:
        seeds.append(extra)
    return seeds


def repro_command(env_var: str, seed: int, test_path: str) -> str:
    """The one-paste command that replays exactly this seed."""
    return (
        f"{env_var}={seed} PYTHONPATH=src "
        f"python -m pytest {test_path} -x -q"
    )


def repro_line(env_var: str, seed: int, test_path: str) -> str:
    return f"reproduce with: {repro_command(env_var, seed, test_path)}"
