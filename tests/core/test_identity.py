"""OID allocation invariants."""

import threading

import pytest
from hypothesis import given, strategies as st

from repro.core.identity import NULL_OID, OidAllocator, OidRef


class TestOidRef:
    def test_null_is_falsy(self):
        assert not OidRef(NULL_OID)
        assert OidRef(1)

    def test_int_conversion(self):
        assert int(OidRef(42)) == 42

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            OidRef(-1)

    def test_equality_and_hash(self):
        assert OidRef(5) == OidRef(5)
        assert OidRef(5) != OidRef(6)
        assert len({OidRef(5), OidRef(5), OidRef(6)}) == 2


class TestOidAllocator:
    def test_monotonic_from_one(self):
        alloc = OidAllocator()
        assert [alloc.allocate() for _ in range(5)] == [1, 2, 3, 4, 5]

    def test_custom_start(self):
        alloc = OidAllocator(first=100)
        assert alloc.allocate() == 100

    def test_invalid_start(self):
        with pytest.raises(ValueError):
            OidAllocator(first=0)

    def test_allocate_many(self):
        alloc = OidAllocator()
        alloc.allocate()
        block = alloc.allocate_many(10)
        assert list(block) == list(range(2, 12))
        assert alloc.allocate() == 12

    def test_allocate_many_zero(self):
        alloc = OidAllocator()
        assert list(alloc.allocate_many(0)) == []
        assert alloc.allocate() == 1

    def test_allocate_many_negative(self):
        with pytest.raises(ValueError):
            OidAllocator().allocate_many(-1)

    def test_fast_forward(self):
        alloc = OidAllocator()
        alloc.fast_forward(500)
        assert alloc.allocate() == 501

    def test_fast_forward_backwards_is_noop(self):
        alloc = OidAllocator()
        for _ in range(10):
            alloc.allocate()
        alloc.fast_forward(3)
        assert alloc.allocate() == 11

    def test_last_allocated(self):
        alloc = OidAllocator()
        assert alloc.last_allocated == 0
        alloc.allocate()
        assert alloc.last_allocated == 1

    def test_thread_safety_no_duplicates(self):
        alloc = OidAllocator()
        seen: list[int] = []
        lock = threading.Lock()

        def worker():
            local = [alloc.allocate() for _ in range(200)]
            with lock:
                seen.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)) == 1600

    def test_thread_safety_with_fast_forward_and_blocks(self):
        """Regression: allocate / allocate_many / fast_forward racing.

        The allocator used to rebuild its counter on fast_forward, which
        opened a window where a concurrent allocate() could hand out an
        OID at or below the fast-forward target (a duplicate after a
        load).  All transitions now share one lock over a plain int:
        no OID may ever be issued twice, and every fast_forward target
        must stay unallocatable.
        """
        alloc = OidAllocator()
        seen: list[int] = []
        targets = [100, 500, 1000, 2500, 5000]
        lock = threading.Lock()
        barrier = threading.Barrier(10)

        def allocator_worker():
            barrier.wait()
            local: list[int] = []
            for i in range(150):
                if i % 7 == 0:
                    local.extend(alloc.allocate_many(3))
                else:
                    local.append(alloc.allocate())
            with lock:
                seen.extend(local)

        def forwarder_worker():
            barrier.wait()
            for target in targets:
                alloc.fast_forward(target)

        threads = [threading.Thread(target=allocator_worker) for _ in range(8)]
        threads += [threading.Thread(target=forwarder_worker) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(seen) == len(set(seen)), "duplicate OIDs issued"
        # After every fast_forward(t), future allocations must be > t;
        # with the single-lock design the allocator can never go back,
        # so the final counter sits past both the max target and max seen.
        assert alloc.last_allocated >= max(max(seen), max(targets))
        assert alloc.allocate() == alloc.last_allocated
        assert alloc.last_allocated > max(targets)

    @given(st.integers(min_value=1, max_value=1000))
    def test_property_allocation_is_dense(self, n):
        alloc = OidAllocator()
        oids = [alloc.allocate() for _ in range(n)]
        assert oids == list(range(1, n + 1))
