"""Failure injection: the store must degrade safely, never corrupt.

Simulated crash/corruption scenarios beyond the torn-tail case: bit rot
in the middle of the log, a commit marker destroyed, repeated crashes,
crash-during-compaction (at every fault point), and mid-log salvage.

Deliberate damage to *already-committed* bytes is applied post-hoc with
:func:`_corrupt_byte`; in-flight faults (crashes, ENOSPC, torn writes)
go through the deterministic :class:`repro.storage.FaultPlan` API.
"""

import os

import pytest

from repro.errors import UnknownOidError
from repro.storage import (
    FaultPlan,
    InjectedCrash,
    ObjectStore,
    RecordLog,
    sweep_points,
)


def _corrupt_byte(path, offset: int) -> None:
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))


class TestBitRot:
    def test_midfile_corruption_keeps_prefix(self, tmp_path):
        path = tmp_path / "rot.plog"
        offsets = []
        with ObjectStore(path) as store:
            for i in range(10):
                oid = store.insert({"i": i})
                offsets.append((oid, store.file_size))
        # Corrupt inside the 6th transaction's region.
        _corrupt_byte(path, offsets[5][1] - 10)
        with ObjectStore(path) as store:
            # Everything committed before the corruption survives.
            for oid, _ in offsets[:5]:
                assert oid in store
            # The corrupted entry and everything after is dropped.
            assert offsets[5][0] not in store or offsets[6][0] not in store

    def test_reads_never_crash_after_recovery(self, tmp_path):
        path = tmp_path / "rot2.plog"
        with ObjectStore(path) as store:
            oids = [store.insert({"i": i, "pad": "y" * 50}) for i in range(20)]
        size = os.path.getsize(path)
        _corrupt_byte(path, size // 2)
        with ObjectStore(path) as store:
            for oid in oids:
                if oid in store:
                    assert isinstance(store.read(oid), dict)
                else:
                    with pytest.raises(UnknownOidError):
                        store.read(oid)

    def test_new_writes_after_recovery(self, tmp_path):
        """A recovered store keeps working; new commits land after the
        valid prefix (the corrupt tail is abandoned)."""
        path = tmp_path / "rot3.plog"
        with ObjectStore(path) as store:
            survivor = store.insert({"keep": True})
            store.insert({"doomed": True})
        size = os.path.getsize(path)
        _corrupt_byte(path, size - 30)
        with ObjectStore(path) as store:
            fresh = store.insert({"new": True})
            assert store.read(survivor) == {"keep": True}
            assert store.read(fresh) == {"new": True}
        with ObjectStore(path) as store:
            assert fresh in store


class TestCommitMarkerLoss:
    def test_destroying_commit_marker_voids_its_transaction(self, tmp_path):
        path = tmp_path / "marker.plog"
        store = ObjectStore(path)
        first = store.insert({"n": 1})
        before_second = store.file_size
        second = store.insert({"n": 2})
        store.close()
        # The second transaction = data entry + commit marker; zap the
        # marker region (the last bytes of the file).
        size = os.path.getsize(path)
        _corrupt_byte(path, size - 4)
        with ObjectStore(path) as again:
            assert first in again
            assert second not in again
            assert again.file_size >= before_second


class TestSalvage:
    """Mid-log corruption must not cost the committed data *after* it."""

    def _build(self, path, n=10):
        boundaries = []
        with ObjectStore(path) as store:
            for i in range(n):
                start = store.file_size
                oid = store.insert({"i": i, "pad": "x" * 40})
                boundaries.append((oid, start))
        return boundaries

    def test_salvage_recovers_entries_after_corrupt_region(self, tmp_path):
        path = tmp_path / "salvage.plog"
        boundaries = self._build(path)
        # Destroy a byte inside the 6th transaction's data entry.
        _corrupt_byte(path, boundaries[5][1] + 12)
        with ObjectStore(path) as store:
            report = store.last_recovery
            assert report.salvaged
            assert report.salvaged_entries > 0
            assert len(report.corrupt_regions) == 1
            for position, (oid, _) in enumerate(boundaries):
                if position == 5:
                    assert oid not in store
                else:
                    assert store.read(oid)["i"] == position

    def test_prefix_mode_stops_at_first_corruption(self, tmp_path):
        path = tmp_path / "prefix.plog"
        boundaries = self._build(path)
        _corrupt_byte(path, boundaries[5][1] + 12)
        with ObjectStore(path, salvage=False) as store:
            assert set(store.oids()) == {oid for oid, _ in boundaries[:5]}
            assert not store.last_recovery.salvaged
            assert store.last_recovery.bytes_truncated > 0

    def test_salvage_survives_two_separate_corrupt_regions(self, tmp_path):
        path = tmp_path / "two.plog"
        boundaries = self._build(path)
        _corrupt_byte(path, boundaries[2][1] + 12)
        _corrupt_byte(path, boundaries[7][1] + 12)
        with ObjectStore(path) as store:
            assert len(store.last_recovery.corrupt_regions) == 2
            live = set(store.oids())
            expected = {
                oid for position, (oid, _) in enumerate(boundaries)
                if position not in (2, 7)
            }
            assert live == expected

    def test_salvaged_store_keeps_working_and_compacts_clean(self, tmp_path):
        path = tmp_path / "heal.plog"
        boundaries = self._build(path)
        _corrupt_byte(path, boundaries[4][1] + 12)
        with ObjectStore(path) as store:
            fresh = store.insert({"i": "new"})
            store.compact()  # rewrites only live records: damage gone
            assert store.read(fresh) == {"i": "new"}
        with ObjectStore(path) as store:
            assert store.last_recovery.clean
            assert fresh in store

    def test_clean_log_reports_clean(self, tmp_path):
        path = tmp_path / "clean.plog"
        self._build(path, n=3)
        with ObjectStore(path) as store:
            report = store.last_recovery
            assert report.clean
            assert report.entries_scanned == 6  # 3 data + 3 commits
            assert report.commits_applied == 3
            assert report.corrupt_regions == ()


class TestCrashDuringCompaction:
    def test_leftover_compact_file_is_ignored_and_replaced(self, tmp_path):
        path = tmp_path / "c.plog"
        with ObjectStore(path) as store:
            oid = store.insert({"v": 1})
            store.put(oid, {"v": 2})
        # Simulate a crash that left a stale .compact temp file behind.
        stale = str(path) + ".compact"
        with open(stale, "wb") as f:
            f.write(b"garbage from a dead process")
        with ObjectStore(path) as store:
            assert store.read(oid) == {"v": 2}
            store.compact()  # must clobber the stale temp file
            assert store.read(oid) == {"v": 2}
        assert not os.path.exists(stale)


class TestCompactionCrashSweep:
    """compact() must be crash-atomic at *every* injected fault point:
    whatever step dies, reopening yields exactly the pre-compaction
    logical state (compaction never changes logical state)."""

    @staticmethod
    def _build(path):
        with ObjectStore(path) as store:
            oids = [store.insert({"i": i}) for i in range(6)]
            store.put(oids[0], {"i": 100})
            store.remove(oids[1])
            expected = {oid: store.read(oid) for oid in store.oids()}
        return expected

    @staticmethod
    def _compact(path, plan):
        store = ObjectStore(path, faults=plan)
        try:
            store.compact()
        finally:
            store.close()

    def test_crash_at_every_compaction_fault_point(self, tmp_path):
        probe_path = tmp_path / "probe.plog"
        self._build(probe_path)
        probe = FaultPlan()
        self._compact(probe_path, probe)
        counts = probe.snapshot_counts()
        assert counts["write"] >= 6  # tmp header + 5 live records + commit

        for op, index in sweep_points(counts):
            path = tmp_path / f"compact-{op}-{index}.plog"
            expected = self._build(path)
            plan = FaultPlan(seed=index).crash(op, at=index)
            try:
                self._compact(path, plan)
            except InjectedCrash:
                pass
            with ObjectStore(path) as store:
                state = {oid: store.read(oid) for oid in store.oids()}
            assert state == expected, f"state diverged at {op} #{index}"

    def test_enospc_during_compaction_keeps_old_log_serving(self, tmp_path):
        path = tmp_path / "enospc.plog"
        expected = self._build(path)
        plan = FaultPlan().fail("write", at=3)  # inside the tmp log build
        store = ObjectStore(path, faults=plan)
        with pytest.raises(OSError):
            store.compact()
        # The failed attempt cleaned up its temp file and the store
        # still answers from the old log.
        assert not os.path.exists(path.with_suffix(".plog.compact"))
        assert not os.path.exists(str(path) + ".compact")
        state = {oid: store.read(oid) for oid in store.oids()}
        assert state == expected
        store.compact()  # plan exhausted: the retry succeeds
        store.close()
        with ObjectStore(path) as reopened:
            assert {o: reopened.read(o) for o in reopened.oids()} == expected

    def test_compaction_preserves_durability_setting(self, tmp_path):
        path = tmp_path / "sync.plog"
        store = ObjectStore(path, sync=True)
        store.insert({"v": 1})
        store.compact()
        # Regression: compact() used to reopen with sync=False, silently
        # dropping the durability contract for the rest of the process.
        assert store._log.sync is True
        store.close()


class TestRepeatedCrashes:
    def test_many_crash_reopen_cycles(self, tmp_path):
        """Open, write, 'crash' (no close), reopen — ten times; committed
        state is always exactly the committed prefix."""
        path = tmp_path / "cycles.plog"
        committed: dict[int, int] = {}
        for round_number in range(10):
            store = ObjectStore(path)
            for oid, value in committed.items():
                assert store.read(oid)["v"] == value
            oid = store.insert({"v": round_number})
            committed[oid] = round_number
            # Leave an uncommitted transaction dangling, then "crash".
            txn = store.begin()
            txn.write(store.new_oid(), {"ghost": round_number})
            store._log.flush()
            store._log._file.close()
        store = ObjectStore(path)
        assert len(store) == len(committed)
        store.close()
