"""Failure injection: the store must degrade safely, never corrupt.

Simulated crash/corruption scenarios beyond the torn-tail case: bit rot
in the middle of the log, a commit marker destroyed, repeated crashes,
and crash-during-compaction.
"""

import os

import pytest

from repro.errors import UnknownOidError
from repro.storage.log import RecordLog
from repro.storage.store import ObjectStore


def _corrupt_byte(path, offset: int) -> None:
    with open(path, "r+b") as f:
        f.seek(offset)
        byte = f.read(1)
        f.seek(offset)
        f.write(bytes([byte[0] ^ 0xFF]))


class TestBitRot:
    def test_midfile_corruption_keeps_prefix(self, tmp_path):
        path = tmp_path / "rot.plog"
        offsets = []
        with ObjectStore(path) as store:
            for i in range(10):
                oid = store.insert({"i": i})
                offsets.append((oid, store.file_size))
        # Corrupt inside the 6th transaction's region.
        _corrupt_byte(path, offsets[5][1] - 10)
        with ObjectStore(path) as store:
            # Everything committed before the corruption survives.
            for oid, _ in offsets[:5]:
                assert oid in store
            # The corrupted entry and everything after is dropped.
            assert offsets[5][0] not in store or offsets[6][0] not in store

    def test_reads_never_crash_after_recovery(self, tmp_path):
        path = tmp_path / "rot2.plog"
        with ObjectStore(path) as store:
            oids = [store.insert({"i": i, "pad": "y" * 50}) for i in range(20)]
        size = os.path.getsize(path)
        _corrupt_byte(path, size // 2)
        with ObjectStore(path) as store:
            for oid in oids:
                if oid in store:
                    assert isinstance(store.read(oid), dict)
                else:
                    with pytest.raises(UnknownOidError):
                        store.read(oid)

    def test_new_writes_after_recovery(self, tmp_path):
        """A recovered store keeps working; new commits land after the
        valid prefix (the corrupt tail is abandoned)."""
        path = tmp_path / "rot3.plog"
        with ObjectStore(path) as store:
            survivor = store.insert({"keep": True})
            store.insert({"doomed": True})
        size = os.path.getsize(path)
        _corrupt_byte(path, size - 30)
        with ObjectStore(path) as store:
            fresh = store.insert({"new": True})
            assert store.read(survivor) == {"keep": True}
            assert store.read(fresh) == {"new": True}
        with ObjectStore(path) as store:
            assert fresh in store


class TestCommitMarkerLoss:
    def test_destroying_commit_marker_voids_its_transaction(self, tmp_path):
        path = tmp_path / "marker.plog"
        store = ObjectStore(path)
        first = store.insert({"n": 1})
        before_second = store.file_size
        second = store.insert({"n": 2})
        store.close()
        # The second transaction = data entry + commit marker; zap the
        # marker region (the last bytes of the file).
        size = os.path.getsize(path)
        _corrupt_byte(path, size - 4)
        with ObjectStore(path) as again:
            assert first in again
            assert second not in again
            assert again.file_size >= before_second


class TestCrashDuringCompaction:
    def test_leftover_compact_file_is_ignored_and_replaced(self, tmp_path):
        path = tmp_path / "c.plog"
        with ObjectStore(path) as store:
            oid = store.insert({"v": 1})
            store.put(oid, {"v": 2})
        # Simulate a crash that left a stale .compact temp file behind.
        stale = str(path) + ".compact"
        with open(stale, "wb") as f:
            f.write(b"garbage from a dead process")
        with ObjectStore(path) as store:
            assert store.read(oid) == {"v": 2}
            store.compact()  # must clobber the stale temp file
            assert store.read(oid) == {"v": 2}
        assert not os.path.exists(stale)


class TestRepeatedCrashes:
    def test_many_crash_reopen_cycles(self, tmp_path):
        """Open, write, 'crash' (no close), reopen — ten times; committed
        state is always exactly the committed prefix."""
        path = tmp_path / "cycles.plog"
        committed: dict[int, int] = {}
        for round_number in range(10):
            store = ObjectStore(path)
            for oid, value in committed.items():
                assert store.read(oid)["v"] == value
            oid = store.insert({"v": round_number})
            committed[oid] = round_number
            # Leave an uncommitted transaction dangling, then "crash".
            txn = store.begin()
            txn.write(store.new_oid(), {"ghost": round_number})
            store._log.flush()
            store._log._file.close()
        store = ObjectStore(path)
        assert len(store) == len(committed)
        store.close()
