"""ODMG collection wrappers."""

from hypothesis import given, strategies as st

from repro.core.collections import PBag, PDict, PList, PSet


class TestPSet:
    def test_set_ops(self):
        a, b = PSet([1, 2, 3]), PSet([3, 4])
        assert a.union_with(b) == {1, 2, 3, 4}
        assert a.intersect_with(b) == {3}
        assert a.difference_with(b) == {1, 2}
        assert isinstance(a.union_with(b), PSet)

    def test_cardinality(self):
        assert PSet([1, 2]).cardinality() == 2


class TestPBag:
    def test_occurrences(self):
        bag = PBag([1, 1, 2])
        assert bag.occurrences(1) == 2
        assert bag.occurrences(9) == 0

    def test_equality_ignores_order(self):
        assert PBag([1, 2, 2]) == PBag([2, 1, 2])
        assert PBag([1, 2]) != PBag([1, 2, 2])
        assert PBag([1, 1, 2]) != PBag([1, 2, 2])

    @given(st.lists(st.integers(), max_size=20))
    def test_property_bag_equal_to_any_permutation(self, items):
        assert PBag(items) == PBag(list(reversed(items)))


class TestPList:
    def test_preserves_order_and_duplicates(self):
        assert list(PList([3, 1, 3])) == [3, 1, 3]

    def test_element_values(self):
        assert list(PList([1, 2]).element_values()) == [1, 2]


class TestPDict:
    def test_element_values_are_values(self):
        assert sorted(PDict({"a": 1, "b": 2}).element_values()) == [1, 2]

    def test_cardinality(self):
        assert PDict({"a": 1}).cardinality() == 1
