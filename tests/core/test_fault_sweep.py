"""The acceptance sweep: crash *anywhere*, lose *nothing committed*.

A scripted workload (transactions, overwrites, deletes, a compaction,
more commits) is first run under an empty :class:`FaultPlan` to count
every write/flush/fsync it performs.  The sweep then re-runs the
workload once per counted operation with a crash injected exactly
there, reopens the store, and checks the invariant:

* reopen always succeeds;
* every transaction whose ``commit()`` returned is fully present;
* the transaction in flight at the crash is either fully applied or
  fully absent — never half of it.
"""

from typing import Any

import pytest

from repro.storage import FaultPlan, InjectedCrash, ObjectStore, sweep_points

A, B, C, D = 1001, 1002, 1003, 1004  # fixed OIDs: runs stay comparable


class Witness:
    """Tracks expected committed state alongside the scripted workload.

    ``begin(after)`` declares the state the in-flight atomic step will
    produce; ``end()`` promotes it.  If a crash interrupts a step, both
    the before and after states are acceptable on disk — anything else
    is a torn transaction.
    """

    def __init__(self) -> None:
        self.committed: dict[int, dict[str, Any]] = {}
        self.step_before: dict[int, dict[str, Any]] | None = None
        self.step_after: dict[int, dict[str, Any]] | None = None

    def begin(self, after: dict[int, dict[str, Any]]) -> None:
        self.step_before = dict(self.committed)
        self.step_after = after

    def end(self) -> None:
        assert self.step_after is not None
        self.committed = self.step_after
        self.step_before = self.step_after = None

    @property
    def acceptable_states(self) -> list[dict[int, dict[str, Any]]]:
        if self.step_before is None:
            return [dict(self.committed)]
        assert self.step_after is not None
        return [dict(self.step_before), dict(self.step_after)]


def scripted_workload(path, plan: FaultPlan | None, witness: Witness) -> None:
    store = ObjectStore(path, sync=True, faults=plan)
    try:
        witness.begin({A: {"v": 1}, B: {"v": 2}})
        with store.begin() as txn:
            txn.write(A, {"v": 1})
            txn.write(B, {"v": 2})
        witness.end()

        witness.begin({**witness.committed, A: {"v": 10}})
        store.put(A, {"v": 10})
        witness.end()

        third = {**witness.committed, C: {"v": 3}}
        del third[B]
        witness.begin(third)
        with store.begin() as txn:
            txn.write(C, {"v": 3})
            txn.delete(B)
        witness.end()

        witness.begin(dict(witness.committed))  # no logical change
        store.compact()
        witness.end()

        witness.begin({**witness.committed, D: {"v": 4}})
        store.put(D, {"v": 4})
        witness.end()
    finally:
        store.close()


def observed_state(path) -> dict[int, dict[str, Any]]:
    with ObjectStore(path) as store:
        return {oid: store.read(oid) for oid in store.oids()}


def test_workload_exposes_enough_fault_points(tmp_path):
    plan = FaultPlan()
    scripted_workload(tmp_path / "probe.plog", plan, Witness())
    assert plan.counts["write"] >= 10
    assert plan.counts["flush"] >= 5
    assert plan.counts["fsync"] >= 5  # sync=True: commits are fsynced


def test_crash_sweep_never_loses_committed_data(tmp_path):
    probe = FaultPlan()
    reference = Witness()
    scripted_workload(tmp_path / "probe.plog", probe, reference)
    final_state = dict(reference.committed)
    assert final_state == {A: {"v": 10}, C: {"v": 3}, D: {"v": 4}}

    points = list(sweep_points(probe.snapshot_counts()))
    assert len(points) == probe.total_ops
    crashed = 0
    for op, index in points:
        path = tmp_path / f"sweep-{op}-{index}.plog"
        plan = FaultPlan(seed=index).crash(op, at=index)
        witness = Witness()
        try:
            scripted_workload(path, plan, witness)
        except InjectedCrash:
            crashed += 1
        else:
            # The only non-crashing points are the final close()'s ops.
            assert witness.step_before is None
        state = observed_state(path)  # reopen must always succeed
        assert state in witness.acceptable_states, (
            f"torn state after crash on {op} #{index}: {state!r} "
            f"not in {witness.acceptable_states!r}"
        )
    assert crashed >= len(points) - 2


def test_sweep_with_random_torn_lengths(tmp_path):
    """Same sweep over writes only, with seed-varied torn prefixes."""
    probe = FaultPlan()
    scripted_workload(tmp_path / "probe.plog", probe, Witness())
    for index in range(1, probe.counts["write"] + 1):
        path = tmp_path / f"torn-{index}.plog"
        plan = FaultPlan(seed=1000 + index).torn_write(at=index)
        witness = Witness()
        with pytest.raises(InjectedCrash):
            scripted_workload(path, plan, witness)
        assert observed_state(path) in witness.acceptable_states
