"""Relationship templates (Figure 34)."""

import pytest

from repro.core.attributes import Attribute
from repro.core.schema import Schema
from repro.core.semantics import RelKind
from repro.core.templates import (
    CLASSIFICATION_EDGE,
    COMPOSITION,
    IMMUTABLE_LINK,
    TEMPLATES,
    get_template,
    relationship_from_template,
)
from repro.core import types as T
from repro.errors import (
    ConstancyError,
    ExclusivityError,
    SchemaError,
    SemanticsError,
)


@pytest.fixture
def schema():
    s = Schema()
    s.define_class("Part", [Attribute("label", T.STRING)])
    return s


class TestCatalogue:
    def test_all_templates_registered(self):
        assert set(TEMPLATES) == {
            "composition", "shared-aggregation", "classification-edge",
            "association", "immutable-link", "role-grant",
        }

    def test_get_unknown(self):
        with pytest.raises(SchemaError, match="available"):
            get_template("wormhole")

    def test_templates_are_documented(self):
        assert all(t.doc for t in TEMPLATES.values())


class TestStamping:
    def test_composition_behaviour(self, schema):
        schema.register_class(
            COMPOSITION.build("Contains", "Part", "Part")
        )
        whole = schema.create("Part", label="whole")
        part = schema.create("Part", label="part")
        other = schema.create("Part", label="other")
        schema.relate("Contains", whole, part)
        with pytest.raises(ExclusivityError):
            schema.relate("Contains", other, part)
        schema.delete(whole)
        assert part.deleted  # lifetime dependency from the template

    def test_immutable_link(self, schema):
        schema.register_class(
            IMMUTABLE_LINK.build("SerialOf", "Part", "Part")
        )
        a, b = schema.create("Part"), schema.create("Part")
        rel = schema.relate("SerialOf", a, b)
        with pytest.raises(ConstancyError):
            schema.unrelate(rel)

    def test_by_name_with_attributes(self, schema):
        relclass = relationship_from_template(
            "classification-edge",
            "PlacedIn",
            "Part",
            "Part",
            attributes=[Attribute("motivation", T.STRING)],
        )
        schema.register_class(relclass)
        a, b = schema.create("Part"), schema.create("Part")
        edge = schema.relate("PlacedIn", a, b, motivation="why not")
        assert edge.get("motivation") == "why not"
        assert "classification-edge" in relclass.doc

    def test_override_cardinality(self, schema):
        relclass = CLASSIFICATION_EDGE.build(
            "SingleChild", "Part", "Part", max_out=1
        )
        schema.register_class(relclass)
        a, b, c = (schema.create("Part") for _ in range(3))
        schema.relate("SingleChild", a, b)
        from repro.errors import CardinalityError

        with pytest.raises(CardinalityError):
            schema.relate("SingleChild", a, c)

    def test_override_semantics_field(self, schema):
        relclass = relationship_from_template(
            "role-grant",
            "Marries",
            "Part",
            "Part",
            attributes=[Attribute("date", T.STRING)],
            inherited_attributes=("date",),
        )
        schema.register_class(relclass)
        a, b = schema.create("Part"), schema.create("Part")
        schema.relate("Marries", a, b, date="1999")
        assert a.get("date") == "1999"

    def test_invalid_override_rejected_by_table3(self, schema):
        with pytest.raises(SemanticsError):
            relationship_from_template(
                "association", "Bad", "Part", "Part", exclusive=True
            )

    def test_template_instance_unmodified_by_overrides(self):
        before = COMPOSITION.semantics
        COMPOSITION.build("X", "A", "B", constant=True)
        assert COMPOSITION.semantics == before
        assert COMPOSITION.semantics.constant is False
