"""Record serialization: round-trips, edge cases, corruption."""

import datetime as dt

import pytest
from hypothesis import given, strategies as st

from repro.core.identity import OidRef
from repro.errors import SerializationError
from repro.storage.serialization import decode_record, encode_record


class TestRoundTrips:
    def test_empty_record(self):
        assert decode_record(encode_record({})) == {}

    def test_scalars(self):
        record = {
            "none": None,
            "true": True,
            "false": False,
            "int": 42,
            "neg": -17,
            "big": 2**100,
            "negbig": -(2**100),
            "float": 3.14159,
            "str": "Apium graveolens",
            "unicode": "ὗς — ŭrsus 植物",
            "bytes": b"\x00\xff\x7f",
        }
        assert decode_record(encode_record(record)) == record

    def test_containers(self):
        record = {
            "list": [1, "two", None, [3, 4]],
            "tuple": (1, 2),
            "dict": {"nested": {"deep": [True]}},
        }
        decoded = decode_record(encode_record(record))
        assert decoded["list"] == [1, "two", None, [3, 4]]
        assert decoded["tuple"] == (1, 2)
        assert decoded["dict"] == {"nested": {"deep": [True]}}

    def test_tuple_preserved_as_tuple(self):
        decoded = decode_record(encode_record({"t": (1, (2, 3))}))
        assert decoded["t"] == (1, (2, 3))
        assert isinstance(decoded["t"], tuple)

    def test_oid_refs(self):
        record = {"ref": OidRef(12345), "null_ref": OidRef(0)}
        decoded = decode_record(encode_record(record))
        assert decoded["ref"] == OidRef(12345)
        assert decoded["null_ref"] == OidRef(0)

    def test_dates(self):
        record = {
            "date": dt.date(1753, 5, 1),
            "datetime": dt.datetime(2000, 1, 2, 3, 4, 5, 678),
        }
        decoded = decode_record(encode_record(record))
        assert decoded == record
        assert isinstance(decoded["date"], dt.date)
        assert not isinstance(decoded["date"], dt.datetime)

    def test_float_precision(self):
        for value in (0.0, -0.0, 1e-300, 1e300, float("inf"), -float("inf")):
            assert decode_record(encode_record({"f": value}))["f"] == value

    def test_nan(self):
        decoded = decode_record(encode_record({"f": float("nan")}))
        assert decoded["f"] != decoded["f"]

    def test_bool_not_confused_with_int(self):
        decoded = decode_record(encode_record({"b": True, "i": 1}))
        assert decoded["b"] is True
        assert decoded["i"] == 1
        assert not isinstance(decoded["i"], bool)


class TestErrors:
    def test_non_dict_top_level(self):
        with pytest.raises(SerializationError):
            encode_record([1, 2])  # type: ignore[arg-type]

    def test_unstorable_type(self):
        with pytest.raises(SerializationError):
            encode_record({"x": object()})

    def test_non_string_keys(self):
        with pytest.raises(SerializationError):
            encode_record({1: "x"})  # type: ignore[dict-item]

    def test_truncated_data(self):
        data = encode_record({"key": "value"})
        with pytest.raises(SerializationError):
            decode_record(data[: len(data) // 2])

    def test_trailing_garbage(self):
        data = encode_record({"key": "value"})
        with pytest.raises(SerializationError):
            decode_record(data + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            decode_record(b"\xfe")


# Storable-value strategy for property-based round-trips.
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**70), max_value=2**70),
    st.floats(allow_nan=False),
    st.text(max_size=40),
    st.binary(max_size=40),
    st.builds(OidRef, st.integers(min_value=0, max_value=2**40)),
    st.dates(),
)
_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)


@given(st.dictionaries(st.text(max_size=10), _values, max_size=6))
def test_property_roundtrip(record):
    assert decode_record(encode_record(record)) == record
