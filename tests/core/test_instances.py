"""Object instances: attribute access, validation, events, lifecycle."""

import pytest

from repro.core.events import EventKind
from repro.core import types as T
from repro.errors import (
    AttributeUnknownError,
    InstanceDeletedError,
    SchemaError,
    TypeCheckError,
)


class TestCreation:
    def test_create_with_attrs(self, schema):
        alice = schema.create("Person", name="Alice", age=30)
        assert alice.get("name") == "Alice"
        assert alice.get("age") == 30

    def test_defaults_applied(self, schema):
        bob = schema.create("Person", name="Bob")
        assert bob.get("age") is None

    def test_required_attribute_enforced(self, schema):
        with pytest.raises(SchemaError):
            schema.create("Person")  # name is required

    def test_abstract_class_rejected(self):
        from tests.conftest import make_people_schema

        schema = make_people_schema()
        schema.define_class("Abstract", abstract=True)
        with pytest.raises(SchemaError):
            schema.create("Abstract")

    def test_unknown_class(self, schema):
        with pytest.raises(SchemaError):
            schema.create("Nothing")

    def test_relationship_class_not_creatable_directly(self, schema):
        with pytest.raises(SchemaError):
            schema.create("WorksFor")

    def test_failed_create_leaves_no_trace(self, schema):
        before = schema.count("Person")
        with pytest.raises(TypeCheckError):
            schema.create("Person", name="X", age="not an int")
        assert schema.count("Person") == before


class TestAttributes:
    def test_set_validates_type(self, schema):
        alice = schema.create("Person", name="Alice")
        with pytest.raises(TypeCheckError):
            alice.set("age", "forty")

    def test_required_rejects_none(self, schema):
        alice = schema.create("Person", name="Alice")
        with pytest.raises(TypeCheckError):
            alice.set("name", None)

    def test_unknown_attribute(self, schema):
        alice = schema.create("Person", name="Alice")
        with pytest.raises(AttributeUnknownError):
            alice.get("height")
        with pytest.raises(AttributeUnknownError):
            alice.set("height", 180)

    def test_item_access(self, schema):
        alice = schema.create("Person", name="Alice")
        alice["age"] = 31
        assert alice["age"] == 31

    def test_update_chains(self, schema):
        alice = schema.create("Person", name="Alice").update(age=1).update(age=2)
        assert alice.get("age") == 2

    def test_to_dict(self, schema):
        alice = schema.create("Person", name="Alice", age=5)
        assert alice.to_dict() == {"name": "Alice", "age": 5}

    def test_noop_assignment_not_dirtying(self, schema):
        alice = schema.create("Person", name="Alice")
        schema.commit()
        alice.set("name", "Alice")
        assert not alice.dirty


class TestEvents:
    def test_update_events_published(self, schema):
        seen = []
        schema.events.subscribe(
            lambda e: seen.append((e.kind, e.attribute, e.old_value, e.new_value)),
            kinds={EventKind.BEFORE_UPDATE, EventKind.AFTER_UPDATE},
        )
        alice = schema.create("Person", name="Alice")
        alice.set("age", 10)
        assert (EventKind.BEFORE_UPDATE, "age", None, 10) in seen
        assert (EventKind.AFTER_UPDATE, "age", None, 10) in seen

    def test_before_update_veto_blocks_change(self, schema):
        def veto(event):
            if event.attribute == "age" and (event.new_value or 0) < 0:
                raise ValueError("no negative ages")

        schema.events.subscribe(veto, kinds={EventKind.BEFORE_UPDATE})
        alice = schema.create("Person", name="Alice", age=5)
        with pytest.raises(ValueError):
            alice.set("age", -1)
        assert alice.get("age") == 5

    def test_after_update_veto_rolls_back_value(self, schema):
        alice = schema.create("Person", name="Alice", age=5)

        def veto(event):
            if event.attribute == "age" and event.new_value == 13:
                raise ValueError("unlucky")

        schema.events.subscribe(veto, kinds={EventKind.AFTER_UPDATE})
        with pytest.raises(ValueError):
            alice.set("age", 13)
        assert alice.get("age") == 5


class TestDeletion:
    def test_deleted_object_rejects_access(self, schema):
        alice = schema.create("Person", name="Alice")
        schema.delete(alice)
        with pytest.raises(InstanceDeletedError):
            alice.get("name")
        with pytest.raises(InstanceDeletedError):
            alice.set("name", "X")

    def test_delete_is_idempotent(self, schema):
        alice = schema.create("Person", name="Alice")
        schema.delete(alice)
        schema.delete(alice)  # no error

    def test_identity_semantics(self, schema):
        alice = schema.create("Person", name="Alice")
        same = schema.get_object(alice.oid)
        assert alice == same
        assert hash(alice) == hash(same)
        bob = schema.create("Person", name="Bob")
        assert alice != bob


class TestMethods:
    def test_method_call_publishes_event(self):
        from repro.core.attributes import Attribute, Method
        from repro.core.schema import Schema

        schema = Schema()
        schema.define_class(
            "Greeter",
            [Attribute("who", T.STRING, default="world")],
            methods=[
                Method("greet", lambda self, x="hi": f"{x} {self.get('who')}")
            ],
        )
        calls = []
        schema.events.subscribe(
            lambda e: calls.append(e.attribute), kinds={EventKind.METHOD_CALL}
        )
        g = schema.create("Greeter")
        assert g.call("greet") == "hi world"
        assert g.call("greet", "hello") == "hello world"
        assert calls == ["greet", "greet"]
