"""Collection-typed attributes on instances, incl. persistence (§4.4.6)."""

import pytest

from repro.core.attributes import Attribute
from repro.core.collections import PDict, PList, PSet
from repro.core.schema import Schema
from repro.core import types as T
from repro.errors import TypeCheckError
from repro.storage.store import ObjectStore


def make_schema(store=None) -> Schema:
    schema = Schema(store)
    schema.define_class(
        "Herbarium",
        [
            Attribute("code", T.STRING, required=True),
            Attribute("collectors", T.set_of(T.STRING)),
            Attribute("shelf_marks", T.list_of(T.INTEGER)),
            Attribute("loans", T.dict_of(T.INTEGER)),
        ],
    )
    return schema


class TestAssignment:
    def test_plain_containers_accepted(self):
        schema = make_schema()
        h = schema.create(
            "Herbarium",
            code="E",
            collectors={"Linnaeus", "Koch"},
            shelf_marks=[3, 1, 2],
            loans={"K": 4},
        )
        assert h.get("collectors") == {"Linnaeus", "Koch"}
        assert h.get("shelf_marks") == [3, 1, 2]
        assert h.get("loans") == {"K": 4}

    def test_wrapper_collections_accepted(self):
        schema = make_schema()
        h = schema.create(
            "Herbarium",
            code="E",
            collectors=PSet({"a"}),
            shelf_marks=PList([1]),
            loans=PDict({"x": 1}),
        )
        assert h.get("collectors") == {"a"}

    def test_element_type_enforced(self):
        schema = make_schema()
        with pytest.raises(TypeCheckError):
            schema.create("Herbarium", code="E", collectors={1, 2})
        with pytest.raises(TypeCheckError):
            schema.create("Herbarium", code="E", shelf_marks=["a"])
        with pytest.raises(TypeCheckError):
            schema.create("Herbarium", code="E", loans={"k": "v"})

    def test_container_kind_enforced(self):
        schema = make_schema()
        with pytest.raises(TypeCheckError):
            schema.create("Herbarium", code="E", collectors={"a": 1})

    def test_none_is_fine(self):
        schema = make_schema()
        h = schema.create("Herbarium", code="E")
        assert h.get("collectors") is None


class TestPersistence:
    def test_roundtrip_all_kinds(self, tmp_path):
        path = tmp_path / "coll.plog"
        store = ObjectStore(path)
        schema = make_schema(store)
        schema.create(
            "Herbarium",
            code="E",
            collectors={"Linnaeus", "Koch"},
            shelf_marks=[3, 1, 2],
            loans={"K": 4, "P": 7},
        )
        schema.commit()
        store.close()

        store2 = ObjectStore(path)
        schema2 = make_schema(store2)
        schema2.load_all()
        h = schema2.extent("Herbarium")[0]
        collectors = h.get("collectors")
        assert isinstance(collectors, PSet)
        assert collectors == {"Linnaeus", "Koch"}
        marks = h.get("shelf_marks")
        assert isinstance(marks, PList)
        assert marks == [3, 1, 2]
        loans = h.get("loans")
        assert isinstance(loans, PDict)
        assert loans == {"K": 4, "P": 7}
        store2.close()

    def test_update_collection_persists(self, tmp_path):
        path = tmp_path / "coll2.plog"
        store = ObjectStore(path)
        schema = make_schema(store)
        h = schema.create("Herbarium", code="E", collectors={"a"})
        schema.commit()
        h.set("collectors", {"a", "b"})
        schema.commit()
        store.close()

        store2 = ObjectStore(path)
        schema2 = make_schema(store2)
        schema2.load_all()
        assert schema2.extent("Herbarium")[0].get("collectors") == {"a", "b"}
        store2.close()


class TestQuerying:
    def test_collection_methods_in_pool(self):
        from repro.query import execute

        schema = make_schema()
        schema.create("Herbarium", code="E", collectors={"a", "b"})
        schema.create("Herbarium", code="K", collectors=set())
        result = execute(
            schema,
            "select h.code from h in Herbarium "
            "where h.collectors.notEmpty()",
        )
        assert result == ["E"]

    def test_membership_in_pool(self):
        from repro.query import execute

        schema = make_schema()
        schema.create("Herbarium", code="E", collectors={"Koch"})
        result = execute(
            schema,
            'select h.code from h in Herbarium where "Koch" in h.collectors',
        )
        assert result == ["E"]
