"""Schema: extents, transactions (journal), persistence round-trips."""

import pytest

from repro.core.schema import Schema
from repro.errors import InstanceDeletedError, UnknownOidError
from repro.storage.store import ObjectStore
from tests.conftest import make_people_schema


class TestExtents:
    def test_polymorphic_extent(self, schema):
        schema.create("Person", name="P")
        schema.create("Employee", name="E")
        assert schema.count("Person") == 2
        assert schema.count("Person", polymorphic=False) == 1
        assert schema.count("Employee") == 1

    def test_extent_sorted_by_oid(self, schema):
        objs = [schema.create("Person", name=f"p{i}") for i in range(5)]
        extent = schema.extent("Person")
        assert [o.oid for o in extent] == sorted(o.oid for o in objs)

    def test_deleted_objects_leave_extent(self, schema):
        p = schema.create("Person", name="P")
        schema.delete(p)
        assert schema.count("Person") == 0

    def test_object_root_extent_covers_everything(self, schema):
        schema.create("Person", name="P")
        schema.create("Company", title="C")
        assert schema.count("Object") == 2


class TestAbort:
    def test_abort_undoes_creation(self, schema):
        p = schema.create("Person", name="P")
        schema.abort()
        assert schema.count("Person") == 0
        assert not schema.has_object(p.oid)

    def test_abort_undoes_updates(self, schema):
        p = schema.create("Person", name="P", age=1)
        schema.commit()
        p.set("age", 99)
        p.set("name", "Q")
        schema.abort()
        assert p.get("age") == 1
        assert p.get("name") == "P"

    def test_abort_undoes_deletion(self, schema):
        p = schema.create("Person", name="P")
        schema.commit()
        schema.delete(p)
        schema.abort()
        assert schema.has_object(p.oid)
        assert p.get("name") == "P"

    def test_abort_undoes_relationships(self, schema):
        alice = schema.create("Person", name="A")
        acme = schema.create("Company", title="C")
        schema.commit()
        schema.relate("WorksFor", alice, acme)
        schema.abort()
        assert alice.related("WorksFor") == []

    def test_abort_undoes_unrelate(self, schema):
        alice = schema.create("Person", name="A")
        acme = schema.create("Company", title="C")
        rel = schema.relate("WorksFor", alice, acme)
        schema.commit()
        schema.unrelate(rel)
        schema.abort()
        assert alice.related("WorksFor") == [acme]

    def test_abort_mixed_sequence(self, schema):
        a = schema.create("Person", name="A", age=1)
        schema.commit()
        b = schema.create("Person", name="B")
        a.set("age", 2)
        schema.delete(a)
        schema.abort()
        assert not schema.has_object(b.oid)
        assert schema.has_object(a.oid)
        assert a.get("age") == 1

    def test_commit_clears_journal(self, schema):
        p = schema.create("Person", name="P")
        schema.commit()
        schema.abort()  # nothing pending: must not undo the commit
        assert schema.has_object(p.oid)


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "db.plog"
        store = ObjectStore(path)
        schema = make_people_schema(store)
        alice = schema.create("Person", name="Alice", age=30)
        acme = schema.create("Company", title="ACME")
        schema.relate("WorksFor", alice, acme, since=2001)
        schema.synonyms.declare(alice.oid, acme.oid)  # arbitrary pair
        schema.commit()
        store.close()

        store2 = ObjectStore(path)
        schema2 = make_people_schema(store2)
        assert schema2.load_all() == 3
        people = schema2.extent("Person")
        assert [p.get("name") for p in people] == ["Alice"]
        alice2 = people[0]
        assert alice2.related("WorksFor")[0].get("title") == "ACME"
        assert alice2.outgoing("WorksFor")[0].get("since") == 2001
        assert schema2.synonyms.are_synonyms(alice.oid, acme.oid)
        store2.close()

    def test_uncommitted_not_persisted(self, tmp_path):
        path = tmp_path / "db.plog"
        store = ObjectStore(path)
        schema = make_people_schema(store)
        schema.create("Person", name="ghost")
        store.close()  # no commit
        store2 = ObjectStore(path)
        schema2 = make_people_schema(store2)
        assert schema2.load_all() == 0
        store2.close()

    def test_delete_persisted(self, tmp_path):
        path = tmp_path / "db.plog"
        store = ObjectStore(path)
        schema = make_people_schema(store)
        p = schema.create("Person", name="P")
        q = schema.create("Person", name="Q")
        schema.commit()
        schema.delete(p)
        schema.commit()
        store.close()
        store2 = ObjectStore(path)
        schema2 = make_people_schema(store2)
        assert schema2.load_all() == 1
        assert schema2.extent("Person")[0].get("name") == "Q"
        store2.close()

    def test_meta_extras_roundtrip(self, tmp_path):
        path = tmp_path / "db.plog"
        store = ObjectStore(path)
        schema = make_people_schema(store)
        schema.meta_extras["custom"] = {"key": [1, 2, 3]}
        schema.create("Person", name="x")
        schema.commit()
        store.close()
        store2 = ObjectStore(path)
        schema2 = make_people_schema(store2)
        schema2.load_all()
        assert schema2.meta_extras["custom"] == {"key": [1, 2, 3]}
        store2.close()

    def test_dirty_tracking(self, persistent_schema):
        schema = persistent_schema
        p = schema.create("Person", name="P")
        assert schema.dirty_count == 1
        schema.commit()
        assert schema.dirty_count == 0
        assert not p.dirty
        p.set("age", 3)
        assert p.dirty
        assert schema.dirty_count == 1


class TestObjectTable:
    def test_get_object_unknown(self, schema):
        with pytest.raises(UnknownOidError):
            schema.get_object(999999)

    def test_get_object_deleted(self, schema):
        p = schema.create("Person", name="P")
        oid = p.oid
        schema.delete(p)
        assert not schema.has_object(oid)
        with pytest.raises(UnknownOidError):
            schema.get_object(oid)

    def test_all_objects_sorted(self, schema):
        schema.create("Person", name="a")
        schema.create("Company", title="b")
        oids = [o.oid for o in schema.all_objects()]
        assert oids == sorted(oids)


class TestIntegrity:
    def test_clean_schema_has_no_problems(self, schema):
        alice = schema.create("Person", name="A")
        acme = schema.create("Company", title="C")
        schema.relate("WorksFor", alice, acme)
        assert schema.check_integrity() == []

    def test_delete_removes_touching_edges(self, schema):
        alice = schema.create("Person", name="A")
        acme = schema.create("Company", title="C")
        rel = schema.relate("WorksFor", alice, acme)
        schema.delete(acme)
        assert rel.deleted
        assert schema.check_integrity() == []
