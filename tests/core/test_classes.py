"""Class metaobjects: inheritance, C3 linearization, attribute merging."""

import pytest

from repro.core.attributes import Attribute, Method
from repro.core.classes import PClass
from repro.core.schema import Schema
from repro.core import types as T
from repro.errors import AttributeUnknownError, SchemaError


class TestDefinition:
    def test_invalid_class_name(self):
        for bad in ("", "1abc", "with space", "a-b"):
            with pytest.raises(SchemaError):
                PClass(bad)

    def test_duplicate_attribute(self):
        with pytest.raises(SchemaError):
            PClass("X", [Attribute("a", T.STRING), Attribute("a", T.INTEGER)])

    def test_attribute_method_clash(self):
        with pytest.raises(SchemaError):
            PClass(
                "X",
                [Attribute("a", T.STRING)],
                methods=[Method("a", lambda self: None)],
            )

    def test_bad_attribute_name(self):
        with pytest.raises(SchemaError):
            Attribute("9lives", T.STRING)

    def test_default_validated_eagerly(self):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            Attribute("a", T.INTEGER, default="nope")

    def test_method_requires_callable(self):
        with pytest.raises(SchemaError):
            Method("m", "not callable")  # type: ignore[arg-type]


class TestInheritance:
    def test_implicit_object_root(self, schema):
        person = schema.get_class("Person")
        assert person.superclasses[0].name == "Object"
        assert person.is_subclass_of(schema.get_class("Object"))

    def test_attribute_inheritance(self, schema):
        employee = schema.get_class("Employee")
        attrs = employee.all_attributes()
        assert set(attrs) == {"name", "age", "salary"}

    def test_override_wins_in_subclass(self):
        schema = Schema()
        schema.define_class("A", [Attribute("x", T.INTEGER, default=1)])
        schema.define_class(
            "B", [Attribute("x", T.INTEGER, default=2)], superclasses=("A",)
        )
        assert schema.get_class("B").get_attribute("x").default == 2
        assert schema.get_class("A").get_attribute("x").default == 1

    def test_diamond_c3(self):
        schema = Schema()
        schema.define_class("Top", [Attribute("t", T.STRING)])
        schema.define_class("Left", superclasses=("Top",))
        schema.define_class("Right", superclasses=("Top",))
        schema.define_class("Bottom", superclasses=("Left", "Right"))
        bottom = schema.get_class("Bottom")
        names = [k.name for k in bottom.mro]
        assert names == ["Bottom", "Left", "Right", "Top", "Object"]
        assert bottom.has_attribute("t")

    def test_unknown_superclass(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema.define_class("X", superclasses=("Nope",))

    def test_duplicate_class_name(self, schema):
        with pytest.raises(SchemaError):
            schema.define_class("Person")

    def test_descendants(self, schema):
        person = schema.get_class("Person")
        names = {k.name for k in person.descendants()}
        assert names == {"Person", "Employee"}

    def test_is_subclass_of_self(self, schema):
        person = schema.get_class("Person")
        assert person.is_subclass_of(person)

    def test_not_subclass_sideways(self, schema):
        assert not schema.get_class("Company").is_subclass_of(
            schema.get_class("Person")
        )


class TestIntrospection:
    def test_get_attribute_unknown(self, schema):
        with pytest.raises(AttributeUnknownError):
            schema.get_class("Person").get_attribute("bogus")

    def test_methods_inherited(self):
        schema = Schema()
        schema.define_class(
            "A",
            [Attribute("x", T.INTEGER, default=2)],
            methods=[Method("double", lambda self: self.get("x") * 2)],
        )
        schema.define_class("B", superclasses=("A",))
        assert schema.get_class("B").has_method("double")
        b = schema.create("B")
        assert b.call("double") == 4

    def test_defaults(self, schema):
        defaults = schema.get_class("Employee").defaults()
        assert defaults == {"name": None, "age": None, "salary": None}

    def test_relationship_flag(self, schema):
        assert not schema.get_class("Person").is_relationship_class
        assert schema.get_class("WorksFor").is_relationship_class
