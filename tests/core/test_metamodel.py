"""Meta-model introspection (Figure 14 / 28)."""

from repro.core.metamodel import describe_class, describe_schema, diff_schemas
from tests.conftest import make_people_schema


class TestDescribe:
    def test_describe_class(self, schema):
        info = describe_class(schema.get_class("Employee"))
        assert info["name"] == "Employee"
        assert info["superclasses"] == ["Person"]
        assert set(info["attributes"]) == {"name", "age", "salary"}
        assert info["attributes"]["name"]["required"] is True
        assert "relationship" not in info

    def test_describe_relationship_class(self, schema):
        info = describe_class(schema.get_class("Owns"))
        rel = info["relationship"]
        assert rel["origin"] == "Company"
        assert rel["destination"] == "Person"
        assert rel["kind"] == "aggregation"
        assert rel["exclusive"] is True
        assert rel["lifetime_dependent"] is True

    def test_describe_types(self, schema):
        info = describe_class(schema.get_class("Person"))
        assert info["attributes"]["age"]["type"] == {
            "kind": "atomic",
            "name": "integer",
        }

    def test_describe_schema_counts(self, schema):
        schema.create("Person", name="p")
        info = describe_schema(schema)
        assert info["counts"]["Person"] == 1
        assert "WorksFor" in info["classes"]


class TestDiff:
    def test_identical_schemas(self):
        assert diff_schemas(make_people_schema(), make_people_schema()) == []

    def test_missing_class_detected(self):
        a = make_people_schema()
        b = make_people_schema()
        b.define_class("Extra")
        problems = diff_schemas(a, b)
        assert any("Extra" in p for p in problems)

    def test_attribute_difference_detected(self):
        from repro.core.attributes import Attribute
        from repro.core import types as T

        a = make_people_schema()
        b = make_people_schema()
        b.define_class("Extra2", [Attribute("x", T.STRING)])
        a.define_class("Extra2", [Attribute("x", T.INTEGER)])
        problems = diff_schemas(a, b)
        assert any("different types" in p for p in problems)
