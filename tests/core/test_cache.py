"""LRU cache behaviour."""

from repro.storage.cache import LruCache


class TestLruCache:
    def test_put_get(self):
        cache = LruCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1

    def test_miss_returns_none(self):
        cache = LruCache(4)
        assert cache.get("missing") is None

    def test_eviction_order(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)  # evicts a
        assert cache.get("a") is None
        assert cache.get("b") == 2
        assert cache.get("c") == 3

    def test_get_refreshes_recency(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)  # evicts b, not a
        assert cache.get("a") == 1
        assert cache.get("b") is None

    def test_put_existing_refreshes(self):
        cache = LruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_invalidate(self):
        cache = LruCache(4)
        cache.put("a", 1)
        cache.invalidate("a")
        assert cache.get("a") is None
        cache.invalidate("never-there")  # no error

    def test_clear(self):
        cache = LruCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0

    def test_disabled_cache(self):
        cache = LruCache(0)
        cache.put("a", 1)  # no-op when disabled
        assert cache.get("a") is None
        assert cache.misses == 1
        cache.get("a")
        assert cache.misses == 2

    def test_hit_rate(self):
        cache = LruCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("b")
        assert cache.hit_rate == 0.5

    def test_hit_rate_empty(self):
        assert LruCache(4).hit_rate == 0.0

    def test_contains(self):
        cache = LruCache(2)
        cache.put("a", 1)
        assert "a" in cache
        assert "b" not in cache
