"""Type system: validation, storable conversion, strictness."""

import datetime as dt

import pytest

from repro.core import types as T
from repro.core.collections import PDict, PList, PSet
from repro.core.identity import OidRef
from repro.errors import TypeCheckError


class TestAtomicTypes:
    def test_integer_accepts_int(self):
        T.INTEGER.validate(42)
        T.INTEGER.validate(None)

    def test_integer_rejects_bool(self):
        with pytest.raises(TypeCheckError):
            T.INTEGER.validate(True)

    def test_integer_rejects_float(self):
        with pytest.raises(TypeCheckError):
            T.INTEGER.validate(1.5)

    def test_float_accepts_int_and_float(self):
        T.FLOAT.validate(1)
        T.FLOAT.validate(1.5)

    def test_float_rejects_bool(self):
        with pytest.raises(TypeCheckError):
            T.FLOAT.validate(False)

    def test_float_to_storable_coerces(self):
        assert T.FLOAT.to_storable(1) == 1.0
        assert isinstance(T.FLOAT.to_storable(1), float)
        assert T.FLOAT.to_storable(None) is None

    def test_string(self):
        T.STRING.validate("hello")
        with pytest.raises(TypeCheckError):
            T.STRING.validate(42)

    def test_boolean(self):
        T.BOOLEAN.validate(True)
        with pytest.raises(TypeCheckError):
            T.BOOLEAN.validate(1)

    def test_date_rejects_datetime(self):
        T.DATE.validate(dt.date(2000, 1, 1))
        with pytest.raises(TypeCheckError):
            T.DATE.validate(dt.datetime(2000, 1, 1))

    def test_datetime(self):
        T.DATETIME.validate(dt.datetime(2000, 1, 1, 12))
        with pytest.raises(TypeCheckError):
            T.DATETIME.validate(dt.date(2000, 1, 1))

    def test_any_accepts_everything(self):
        T.ANY.validate(object())

    def test_equality(self):
        assert T.IntegerType() == T.INTEGER
        assert T.IntegerType() != T.FLOAT


class TestRefType:
    def test_accepts_none_and_oidref(self):
        ref = T.ref("Person")
        ref.validate(None)
        ref.validate(OidRef(7))

    def test_rejects_plain_int(self):
        with pytest.raises(TypeCheckError):
            T.ref("Person").validate(7)

    def test_to_storable_none_becomes_null_ref(self):
        stored = T.ref("Person").to_storable(None)
        assert stored == OidRef(0)

    def test_class_conformance(self, schema):
        alice = schema.create("Employee", name="Alice")
        company = schema.create("Company", title="ACME")
        ref = T.ref("Person")
        ref.validate_against(alice, schema)  # Employee is-a Person
        with pytest.raises(TypeCheckError):
            ref.validate_against(company, schema)

    def test_from_storable_resolves(self, schema):
        alice = schema.create("Person", name="Alice")
        ref = T.ref("Person")
        assert ref.from_storable(OidRef(alice.oid), schema) == alice
        assert ref.from_storable(OidRef(0), schema) is None

    def test_equality(self):
        assert T.ref("A") == T.ref("A")
        assert T.ref("A") != T.ref("B")


class TestCollectionTypes:
    def test_set_of_strings(self):
        spec = T.set_of(T.STRING)
        spec.validate({"a", "b"})
        spec.validate(PSet(["a"]))
        with pytest.raises(TypeCheckError):
            spec.validate({1})

    def test_list_roundtrip(self):
        spec = T.list_of(T.INTEGER)
        stored = spec.to_storable(PList([1, 2, 3]))
        live = spec.from_storable(stored)
        assert live == [1, 2, 3]
        assert isinstance(live, PList)

    def test_set_roundtrip(self):
        spec = T.set_of(T.STRING)
        stored = spec.to_storable({"x", "y"})
        live = spec.from_storable(stored)
        assert live == {"x", "y"}
        assert isinstance(live, PSet)

    def test_dict_roundtrip(self):
        spec = T.dict_of(T.INTEGER)
        stored = spec.to_storable(PDict({"a": 1}))
        live = spec.from_storable(stored)
        assert live == {"a": 1}
        assert isinstance(live, PDict)

    def test_bag_allows_duplicates(self):
        spec = T.bag_of(T.INTEGER)
        stored = spec.to_storable([1, 1, 2])
        live = spec.from_storable(stored)
        assert sorted(live) == [1, 1, 2]

    def test_none_passes(self):
        T.set_of(T.STRING).validate(None)
        assert T.set_of(T.STRING).to_storable(None) is None
        assert T.set_of(T.STRING).from_storable(None) is None

    def test_wrong_container_kind(self):
        with pytest.raises(TypeCheckError):
            T.set_of(T.STRING).validate({"a": 1})

    def test_unknown_kind_rejected(self):
        with pytest.raises(TypeCheckError):
            T.CollectionTypeSpec("stack", T.STRING)

    def test_name(self):
        assert T.set_of(T.STRING).name == "set<string>"
        assert T.ref("Taxon").name == "ref<Taxon>"
