"""The fault-injection layer itself: deterministic, seedable, honest.

These tests pin down the contract every resilience test builds on: ops
are counted, faults fire exactly where scheduled, crashes kill the
faulted file for good, and the same seed replays the same damage.
"""

import errno

import pytest

from repro.errors import StorageError
from repro.storage import (
    FaultPlan,
    InjectedCrash,
    ObjectStore,
    RecordLog,
    sweep_points,
)
from repro.storage.faults import OPS, Fault


class TestFaultPlanScheduling:
    def test_ops_are_counted_without_faults(self, tmp_path):
        plan = FaultPlan()
        with RecordLog(tmp_path / "a.plog", sync=True, faults=plan) as log:
            log.append_data(b"x")
            log.append_commit(1)
        assert plan.counts["write"] == 3  # header + data + commit
        assert plan.counts["flush"] >= 1
        assert plan.counts["fsync"] >= 1

    def test_counts_span_multiple_files(self, tmp_path):
        plan = FaultPlan()
        with RecordLog(tmp_path / "a.plog", faults=plan) as log:
            log.append_data(b"x")
        first = plan.counts["write"]
        with RecordLog(tmp_path / "b.plog", faults=plan) as log:
            log.append_data(b"y")
        assert plan.counts["write"] == first + 2  # header + data again

    def test_fault_fires_exactly_once(self, tmp_path):
        plan = FaultPlan().fail("write", at=2)
        log = RecordLog(tmp_path / "a.plog", faults=plan)
        with pytest.raises(OSError):
            log.append_data(b"doomed")
        assert log.append_data(b"fine") > 0  # same call count would not re-fire
        assert len(plan.fired) == 1
        log.close()

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().add(Fault(op="read", mode="error", at=1))

    def test_sweep_points_enumerates_all(self):
        counts = {"write": 3, "flush": 2, "fsync": 0}
        points = list(sweep_points(counts))
        assert len(points) == 5
        assert ("write", 1) in points and ("flush", 2) in points
        assert all(op in OPS for op, _ in points)

    def test_determinism_same_seed_same_damage(self, tmp_path):
        sizes = []
        for run in range(2):
            path = tmp_path / f"run{run}.plog"
            plan = FaultPlan(seed=42).torn_write(at=3)
            log = RecordLog(path, faults=plan)
            log.append_data(b"first entry payload")
            with pytest.raises(InjectedCrash):
                log.append_data(b"second entry payload")
            log.close()
            sizes.append(path.stat().st_size)
        assert sizes[0] == sizes[1]


class TestFaultModes:
    def test_error_mode_writes_nothing(self, tmp_path):
        path = tmp_path / "e.plog"
        plan = FaultPlan().fail("write", at=2, errno_code=errno.ENOSPC)
        log = RecordLog(path, faults=plan)
        with pytest.raises(OSError) as err:
            log.append_data(b"payload")
        assert err.value.errno == errno.ENOSPC
        log.flush()
        assert path.stat().st_size == log.size  # tail rolled back cleanly
        log.close()

    def test_short_write_persists_prefix_then_raises(self, tmp_path):
        path = tmp_path / "s.plog"
        plan = FaultPlan().short_write(at=2, keep=5)
        log = RecordLog(path, faults=plan)
        with pytest.raises(OSError):
            log.append_data(b"a-long-enough-payload")
        # append() repaired the torn tail in-process: log stays usable.
        offset = log.append_data(b"recovered")
        assert log.read_entry(offset).payload == b"recovered"
        log.close()

    def test_torn_write_kills_the_file(self, tmp_path):
        plan = FaultPlan().torn_write(at=2, keep=4)
        log = RecordLog(tmp_path / "t.plog", faults=plan)
        with pytest.raises(InjectedCrash):
            log.append_data(b"payload")
        with pytest.raises(InjectedCrash):
            log.append_data(b"after death")
        assert plan.dead
        log.close()  # must not raise: the descriptor is still released

    def test_bit_flip_is_silent_but_caught_by_crc(self, tmp_path):
        path = tmp_path / "b.plog"
        plan = FaultPlan(seed=9).bit_flip(at=2, position=10)
        log = RecordLog(path, faults=plan)
        offset = log.append_data(b"some payload bytes")
        log.flush()
        from repro.errors import CorruptRecordError

        with pytest.raises(CorruptRecordError):
            log.read_entry(offset)
        log.close()

    def test_crash_at_offset_persists_up_to_offset(self, tmp_path):
        path = tmp_path / "o.plog"
        probe = RecordLog(path)
        first = probe.append_data(b"aaaa")
        end_of_first = probe.read_entry(first).end_offset
        probe.close()
        path.unlink()

        plan = FaultPlan().crash_at_offset(end_of_first + 5)
        log = RecordLog(path, faults=plan)
        log.append_data(b"aaaa")
        with pytest.raises(InjectedCrash):
            log.append_data(b"bbbb")
        log.close()
        assert path.stat().st_size == end_of_first + 5

    def test_fsync_fault_requires_sync_log(self, tmp_path):
        # Header creation flushes without fsync, so fsync #1 is the
        # first explicit flush of a sync log.
        plan = FaultPlan().fail("fsync", at=1)
        log = RecordLog(tmp_path / "f.plog", sync=True, faults=plan)
        log.append_data(b"x")
        with pytest.raises(OSError):
            log.flush()
        log.close()


class TestTornHeader:
    def test_creation_crash_leaves_reopenable_file(self, tmp_path):
        path = tmp_path / "h.plog"
        plan = FaultPlan().torn_write(at=1, keep=7)  # header write
        with pytest.raises(InjectedCrash):
            RecordLog(path, faults=plan)
        # 7 bytes of header on disk: recovery finishes the creation.
        log = RecordLog(path)
        offset = log.append_data(b"works")
        assert log.read_entry(offset).payload == b"works"
        log.close()

    def test_foreign_file_still_rejected(self, tmp_path):
        path = tmp_path / "alien.bin"
        path.write_bytes(b"XY")  # short, but not a HEADER prefix
        with pytest.raises(StorageError):
            RecordLog(path)


class TestStoreUnderFaults:
    def test_enospc_mid_transaction_aborts_cleanly(self, tmp_path):
        path = tmp_path / "st.plog"
        plan = FaultPlan().fail("write", at=4)
        store = ObjectStore(path, faults=plan)
        keep = store.insert({"v": 1})
        with pytest.raises(OSError):
            store.insert({"v": 2})
        assert not store.in_transaction
        after = store.insert({"v": 3})
        store.close()
        with ObjectStore(path) as reopened:
            assert reopened.read(keep) == {"v": 1}
            assert reopened.read(after) == {"v": 3}
            assert len(reopened) == 2

    def test_commit_flush_failure_retracts_marker(self, tmp_path):
        path = tmp_path / "cm.plog"
        # flush #1 = header-era flush; #2 = first commit; #3 = second.
        plan = FaultPlan().fail("flush", at=3)
        store = ObjectStore(path, faults=plan)
        first = store.insert({"v": 1})
        with pytest.raises(OSError):
            store.insert({"v": 2})
        assert store.stats.aborts == 1
        assert not store.in_transaction
        third = store.insert({"v": 3})
        store.close()
        with ObjectStore(path) as reopened:
            assert set(reopened.oids()) == {first, third}
