"""Instance synonyms: union-find semantics (§4.5)."""

from hypothesis import given, strategies as st

from repro.core.synonyms import SynonymRegistry


class TestBasics:
    def test_unknown_oid_is_own_set(self):
        reg = SynonymRegistry()
        assert reg.synonyms_of(7) == {7}
        assert reg.canonical(7) == 7

    def test_declare_pairs(self):
        reg = SynonymRegistry()
        reg.declare(1, 2)
        assert reg.are_synonyms(1, 2)
        assert reg.synonyms_of(1) == {1, 2}

    def test_reflexive(self):
        reg = SynonymRegistry()
        assert reg.are_synonyms(5, 5)

    def test_transitive_merge(self):
        reg = SynonymRegistry()
        reg.declare(1, 2)
        reg.declare(3, 4)
        assert not reg.are_synonyms(1, 3)
        reg.declare(2, 3)
        assert reg.are_synonyms(1, 4)
        assert reg.synonyms_of(4) == {1, 2, 3, 4}

    def test_canonical_is_smallest(self):
        reg = SynonymRegistry()
        reg.declare(9, 3)
        reg.declare(3, 7)
        assert reg.canonical(9) == 3

    def test_declare_all(self):
        reg = SynonymRegistry()
        reg.declare_all([5, 6, 7])
        assert reg.synonyms_of(6) == {5, 6, 7}
        reg.declare_all([])  # no error
        reg.declare_all([42])  # singleton: no-op
        assert reg.synonyms_of(42) == {42}

    def test_sets_lists_only_nontrivial(self):
        reg = SynonymRegistry()
        reg.declare(1, 2)
        assert reg.sets() == [frozenset({1, 2})]

    def test_forget_member(self):
        reg = SynonymRegistry()
        reg.declare_all([1, 2, 3])
        reg.forget(2)
        assert reg.synonyms_of(2) == {2}
        assert reg.synonyms_of(1) == {1, 3}

    def test_forget_root(self):
        reg = SynonymRegistry()
        reg.declare_all([1, 2, 3])
        root = reg.canonical(1)
        reg.forget(root)
        rest = {1, 2, 3} - {root}
        assert reg.synonyms_of(next(iter(rest))) == rest

    def test_forget_until_empty(self):
        reg = SynonymRegistry()
        reg.declare(1, 2)
        reg.forget(1)
        reg.forget(2)
        assert reg.sets() == []

    def test_storable_roundtrip(self):
        reg = SynonymRegistry()
        reg.declare_all([1, 2, 3])
        reg.declare(10, 11)
        data = reg.to_storable()
        fresh = SynonymRegistry()
        fresh.load_storable(data)
        assert fresh.synonyms_of(2) == {1, 2, 3}
        assert fresh.are_synonyms(10, 11)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=30),
            st.integers(min_value=1, max_value=30),
        ),
        max_size=40,
    )
)
def test_property_equivalence_relation(pairs):
    """declare() maintains a partition: symmetric, transitive, consistent."""
    reg = SynonymRegistry()
    for a, b in pairs:
        reg.declare(a, b)
    seen = set(x for pair in pairs for x in pair)
    for x in seen:
        members = reg.synonyms_of(x)
        assert x in members
        for y in members:
            # symmetry + shared set
            assert reg.are_synonyms(y, x)
            assert reg.synonyms_of(y) == members
            assert reg.canonical(y) == min(members)
