"""Table 3: allowed combinations of relationship behaviours.

Running this module with ``-s`` prints the full reproduced table.
"""

import pytest

from repro.core.semantics import (
    Behaviour,
    Cardinality,
    CombinationRow,
    RelKind,
    RelationshipSemantics,
    UNBOUNDED,
    allowed_combinations,
    combination_problem,
    format_table3,
)
from repro.errors import SemanticsError


class TestCombinationMatrix:
    def test_exclusive_and_shareable_contradict(self):
        assert combination_problem(
            RelKind.AGGREGATION, exclusive=True, shareable=True,
            lifetime_dependent=False,
        )

    def test_exclusive_requires_aggregation(self):
        assert combination_problem(
            RelKind.ASSOCIATION, exclusive=True, shareable=False,
            lifetime_dependent=False,
        )

    def test_lifetime_requires_aggregation(self):
        assert combination_problem(
            RelKind.ASSOCIATION, exclusive=False, shareable=False,
            lifetime_dependent=True,
        )

    def test_shareable_lifetime_contradict(self):
        assert combination_problem(
            RelKind.AGGREGATION, exclusive=False, shareable=True,
            lifetime_dependent=True,
        )

    def test_plain_association_allowed(self):
        assert combination_problem(
            RelKind.ASSOCIATION, exclusive=False, shareable=True,
            lifetime_dependent=False,
        ) is None

    def test_exclusive_dependent_aggregation_allowed(self):
        assert combination_problem(
            RelKind.AGGREGATION, exclusive=True, shareable=False,
            lifetime_dependent=True,
        ) is None

    def test_table_is_exhaustive(self):
        rows = list(allowed_combinations())
        # 2 kinds × 2^4 flags
        assert len(rows) == 32
        assert all(isinstance(r, CombinationRow) for r in rows)

    def test_constant_never_affects_validity(self):
        by_key = {}
        for row in allowed_combinations():
            key = (row.kind, row.exclusive, row.shareable, row.lifetime_dependent)
            by_key.setdefault(key, set()).add(row.allowed)
        assert all(len(v) == 1 for v in by_key.values())

    def test_allowed_count(self):
        rows = list(allowed_combinations())
        allowed = [r for r in rows if r.allowed]
        # Associations: only exclusive=False, dependent=False survive
        # (2 shareable × 2 constant = 4).  Aggregations: all combos minus
        # the three contradictions (see combination_problem) = 10.
        assert len(allowed) == 14

    def test_format_table3_prints_all_rows(self, capsys):
        text = format_table3()
        print(text)
        assert len(text.splitlines()) == 34  # header + rule + 32 rows
        assert "contradictory" in text


class TestSemanticsValidation:
    def test_invalid_combination_rejected_at_declaration(self):
        with pytest.raises(SemanticsError):
            RelationshipSemantics(exclusive=True)  # association default

    def test_exclusivity_group_requires_exclusive(self):
        with pytest.raises(SemanticsError):
            RelationshipSemantics(exclusivity_group="g")

    def test_exclusive_implies_max_in_one(self):
        sem = RelationshipSemantics(
            kind=RelKind.AGGREGATION, exclusive=True
        )
        assert sem.effective_max_in == 1

    def test_exclusive_conflicting_max_in_rejected(self):
        with pytest.raises(SemanticsError):
            RelationshipSemantics(
                kind=RelKind.AGGREGATION,
                exclusive=True,
                cardinality=Cardinality(max_in=5),
            )

    def test_cardinality_bounds_validated(self):
        with pytest.raises(SemanticsError):
            Cardinality(min_out=3, max_out=2)
        with pytest.raises(SemanticsError):
            Cardinality(min_in=-1)

    def test_cardinality_presets(self):
        assert Cardinality.one_to_many().max_in == 1
        assert Cardinality.one_to_one().max_out == 1
        assert Cardinality.many_to_many().max_out == UNBOUNDED

    def test_behaviours_listing(self):
        sem = RelationshipSemantics(
            kind=RelKind.AGGREGATION,
            exclusive=True,
            lifetime_dependent=True,
            constant=True,
            inherited_attributes=("x",),
        )
        assert sem.behaviours() == {
            Behaviour.EXCLUSIVE,
            Behaviour.LIFETIME_DEPENDENT,
            Behaviour.CONSTANT,
            Behaviour.ATTRIBUTE_INHERITANCE,
        }
