"""First-class relationships: creation, semantics enforcement, roles."""

import pytest

from repro.core.attributes import Attribute
from repro.core.schema import Schema
from repro.core.semantics import Cardinality, RelationshipSemantics, RelKind
from repro.core import types as T
from repro.errors import (
    CardinalityError,
    ConstancyError,
    ExclusivityError,
    RelationshipError,
    SchemaError,
)


class TestCreation:
    def test_relate_and_navigate(self, schema):
        alice = schema.create("Person", name="Alice")
        acme = schema.create("Company", title="ACME")
        rel = schema.relate("WorksFor", alice, acme, since=1999)
        assert rel.get("since") == 1999
        assert alice.related("WorksFor") == [acme]
        assert acme.related("WorksFor", "in") == [alice]
        assert rel.origin_object() == alice
        assert rel.destination_object() == acme

    def test_endpoint_class_checked(self, schema):
        alice = schema.create("Person", name="Alice")
        bob = schema.create("Person", name="Bob")
        with pytest.raises(RelationshipError):
            schema.relate("WorksFor", alice, bob)

    def test_subclass_endpoints_accepted(self, schema):
        emp = schema.create("Employee", name="E", salary=10.0)
        acme = schema.create("Company", title="ACME")
        schema.relate("WorksFor", emp, acme)

    def test_plain_class_not_relatable(self, schema):
        alice = schema.create("Person", name="Alice")
        acme = schema.create("Company", title="ACME")
        with pytest.raises(SchemaError):
            schema.relate("Person", alice, acme)

    def test_other_end(self, schema):
        alice = schema.create("Person", name="Alice")
        acme = schema.create("Company", title="ACME")
        rel = schema.relate("WorksFor", alice, acme)
        assert rel.other_end(alice.oid) == acme.oid
        assert rel.other_end(acme.oid) == alice.oid
        with pytest.raises(RelationshipError):
            rel.other_end(99999)


class TestCardinality:
    def test_max_out_enforced(self, schema):
        alice = schema.create("Person", name="Alice")
        companies = [
            schema.create("Company", title=f"C{i}") for i in range(3)
        ]
        schema.relate("WorksFor", alice, companies[0])
        schema.relate("WorksFor", alice, companies[1])
        with pytest.raises(CardinalityError):
            schema.relate("WorksFor", alice, companies[2])

    def test_max_in(self):
        schema = Schema()
        schema.define_class("N", [Attribute("v", T.INTEGER)])
        schema.define_relationship(
            "R",
            "N",
            "N",
            semantics=RelationshipSemantics(
                cardinality=Cardinality(max_in=1)
            ),
        )
        a, b, c = (schema.create("N", v=i) for i in range(3))
        schema.relate("R", a, c)
        with pytest.raises(CardinalityError):
            schema.relate("R", b, c)

    def test_minimums_checked_deferred(self, schema):
        schema2 = Schema()
        schema2.define_class("N", [Attribute("v", T.INTEGER)])
        schema2.define_relationship(
            "Needs",
            "N",
            "N",
            semantics=RelationshipSemantics(
                cardinality=Cardinality(min_out=1)
            ),
        )
        schema2.create("N", v=1)
        problems = schema2.check_integrity()
        assert any("min 1" in p for p in problems)


class TestExclusivity:
    def test_exclusive_destination_single_owner(self, schema):
        acme = schema.create("Company", title="ACME")
        mega = schema.create("Company", title="Mega")
        alice = schema.create("Person", name="Alice")
        schema.relate("Owns", acme, alice)
        with pytest.raises(ExclusivityError):
            schema.relate("Owns", mega, alice)

    def test_exclusivity_freed_after_unrelate(self, schema):
        acme = schema.create("Company", title="ACME")
        mega = schema.create("Company", title="Mega")
        alice = schema.create("Person", name="Alice")
        rel = schema.relate("Owns", acme, alice)
        schema.unrelate(rel)
        schema.relate("Owns", mega, alice)

    def test_exclusivity_group_across_classes(self):
        schema = Schema()
        schema.define_class("N")
        for name in ("R1", "R2"):
            schema.define_relationship(
                name,
                "N",
                "N",
                semantics=RelationshipSemantics(
                    kind=RelKind.AGGREGATION,
                    exclusive=True,
                    exclusivity_group="owners",
                ),
            )
        a, b, c = (schema.create("N") for _ in range(3))
        schema.relate("R1", a, c)
        with pytest.raises(ExclusivityError):
            schema.relate("R2", b, c)


class TestConstancy:
    def test_constant_relationship_frozen(self):
        schema = Schema()
        schema.define_class("N")
        schema.define_relationship(
            "Frozen",
            "N",
            "N",
            semantics=RelationshipSemantics(constant=True),
            attributes=[Attribute("w", T.INTEGER)],
        )
        a, b = schema.create("N"), schema.create("N")
        rel = schema.relate("Frozen", a, b, w=1)  # initial attrs allowed
        assert rel.get("w") == 1
        with pytest.raises(ConstancyError):
            rel.set("w", 2)
        with pytest.raises(ConstancyError):
            schema.unrelate(rel)

    def test_deleting_endpoint_removes_constant_edge(self):
        schema = Schema()
        schema.define_class("N")
        schema.define_relationship(
            "Frozen", "N", "N",
            semantics=RelationshipSemantics(constant=True),
        )
        a, b = schema.create("N"), schema.create("N")
        rel = schema.relate("Frozen", a, b)
        schema.delete(a)
        assert rel.deleted


class TestLifetimeDependency:
    def test_parts_die_with_whole(self, schema):
        acme = schema.create("Company", title="ACME")
        alice = schema.create("Person", name="Alice")
        schema.relate("Owns", acme, alice)
        schema.delete(acme)
        assert alice.deleted

    def test_cascade_false_blocks(self, schema):
        acme = schema.create("Company", title="ACME")
        alice = schema.create("Person", name="Alice")
        schema.relate("Owns", acme, alice)
        with pytest.raises(SchemaError):
            schema.delete(acme, cascade=False)
        assert not acme.deleted
        assert not alice.deleted

    def test_deleting_part_spares_whole(self, schema):
        acme = schema.create("Company", title="ACME")
        alice = schema.create("Person", name="Alice")
        schema.relate("Owns", acme, alice)
        schema.delete(alice)
        assert not acme.deleted
        assert acme.related("Owns") == []

    def test_transitive_cascade(self):
        schema = Schema()
        schema.define_class("N", [Attribute("v", T.INTEGER)])
        schema.define_relationship(
            "Has",
            "N",
            "N",
            semantics=RelationshipSemantics(
                kind=RelKind.AGGREGATION,
                exclusive=True,
                lifetime_dependent=True,
            ),
        )
        a, b, c = (schema.create("N", v=i) for i in range(3))
        schema.relate("Has", a, b)
        schema.relate("Has", b, c)
        schema.delete(a)
        assert b.deleted and c.deleted


class TestRolesAttributeInheritance:
    """§4.4.5: objects acquire attributes through relationships (ADAM)."""

    def _wedding_schema(self) -> Schema:
        schema = Schema()
        schema.define_class("Citizen", [Attribute("name", T.STRING)])
        schema.define_relationship(
            "Marriage",
            "Citizen",
            "Citizen",
            semantics=RelationshipSemantics(
                inherited_attributes=("wedding_date",)
            ),
            attributes=[
                Attribute("wedding_date", T.STRING),
                Attribute("location", T.STRING),
            ],
        )
        return schema

    def test_both_endpoints_acquire_role_attribute(self):
        schema = self._wedding_schema()
        a = schema.create("Citizen", name="A")
        b = schema.create("Citizen", name="B")
        schema.relate("Marriage", a, b, wedding_date="1999-07-01", location="x")
        assert a.get("wedding_date") == "1999-07-01"
        assert b.get("wedding_date") == "1999-07-01"

    def test_non_inherited_attribute_not_acquired(self):
        schema = self._wedding_schema()
        a = schema.create("Citizen", name="A")
        b = schema.create("Citizen", name="B")
        schema.relate("Marriage", a, b, location="Paris")
        from repro.errors import AttributeUnknownError

        with pytest.raises(AttributeUnknownError):
            a.get("location")

    def test_role_lost_when_unrelated(self):
        schema = self._wedding_schema()
        a = schema.create("Citizen", name="A")
        b = schema.create("Citizen", name="B")
        rel = schema.relate("Marriage", a, b, wedding_date="d")
        schema.unrelate(rel)
        from repro.errors import AttributeUnknownError

        with pytest.raises(AttributeUnknownError):
            a.get("wedding_date")

    def test_roles_of(self):
        schema = self._wedding_schema()
        a = schema.create("Citizen", name="A")
        b = schema.create("Citizen", name="B")
        schema.relate("Marriage", a, b, wedding_date="d")
        assert schema.relationships.roles_of(a) == {"wedding_date": "d"}


class TestRegistryQueries:
    def test_polymorphic_relationship_query(self):
        schema = Schema()
        schema.define_class("N")
        schema.define_relationship("Base", "N", "N")
        schema.define_relationship("Derived", "N", "N", superclasses=("Base",))
        a, b = schema.create("N"), schema.create("N")
        schema.relate("Derived", a, b)
        assert len(schema.relationships.instances_of("Base")) == 1
        assert len(schema.relationships.instances_of("Base", polymorphic=False)) == 0
        assert len(a.outgoing("Base")) == 1

    def test_relationship_inheritance_requires_rel_superclass(self):
        schema = Schema()
        schema.define_class("N")
        with pytest.raises(SchemaError):
            schema.define_relationship("R", "N", "N", superclasses=("N",))

    def test_plain_class_cannot_extend_relationship(self):
        schema = Schema()
        schema.define_class("N")
        schema.define_relationship("R", "N", "N")
        from repro.core.classes import PClass

        with pytest.raises(SchemaError):
            schema.register_class(PClass("X", superclasses=("R",)))

    def test_count(self, schema):
        alice = schema.create("Person", name="A")
        acme = schema.create("Company", title="C")
        schema.relate("WorksFor", alice, acme)
        assert schema.relationships.count("WorksFor") == 1
        assert schema.relationships.count() == 1
