"""N-ary relationships: named extra participants (Figure 10)."""

import pytest

from repro.core.attributes import Attribute
from repro.core.relationships import RelationshipClass
from repro.core.schema import Schema
from repro.core import types as T
from repro.errors import RelationshipError
from repro.query import execute
from repro.storage.store import ObjectStore


def make_schema(store=None) -> Schema:
    """Determination: a taxonomist applies a name to a specimen — three
    parties, so the relationship references a third class (§2.1.1)."""
    schema = Schema(store)
    schema.define_class("Specimen", [Attribute("code", T.STRING)])
    schema.define_class("Name", [Attribute("epithet", T.STRING)])
    schema.define_class("Taxonomist", [Attribute("abbrev", T.STRING)])
    schema.define_relationship(
        "Determination",
        "Name",
        "Specimen",
        participants={"determiner": "Taxonomist"},
        attributes=[Attribute("year", T.INTEGER)],
    )
    return schema


@pytest.fixture
def schema():
    return make_schema()


class TestDefinition:
    def test_roles_declared(self, schema):
        relclass = schema.get_class("Determination")
        assert relclass.participant_roles == {"determiner": "Taxonomist"}

    def test_reserved_role_names_rejected(self):
        with pytest.raises(RelationshipError):
            RelationshipClass(
                "Bad", "Name", "Specimen", participants={"origin": "Name"}
            )


class TestCreation:
    def test_relate_with_participant(self, schema):
        name = schema.create("Name", epithet="graveolens")
        specimen = schema.create("Specimen", code="S1")
        koch = schema.create("Taxonomist", abbrev="Koch")
        rel = schema.relate(
            "Determination", name, specimen,
            participants={"determiner": koch}, year=1824,
        )
        assert rel.participant("determiner") == koch
        assert rel.endpoints() == {
            "origin": name.oid,
            "destination": specimen.oid,
            "determiner": koch.oid,
        }

    def test_participant_optional(self, schema):
        name = schema.create("Name", epithet="x")
        specimen = schema.create("Specimen", code="S")
        rel = schema.relate("Determination", name, specimen)
        assert rel.participant("determiner") is None

    def test_unknown_role_rejected(self, schema):
        name = schema.create("Name", epithet="x")
        specimen = schema.create("Specimen", code="S")
        other = schema.create("Taxonomist", abbrev="T")
        with pytest.raises(RelationshipError):
            schema.relate(
                "Determination", name, specimen,
                participants={"witness": other},
            )

    def test_role_class_checked(self, schema):
        name = schema.create("Name", epithet="x")
        specimen = schema.create("Specimen", code="S")
        with pytest.raises(RelationshipError):
            schema.relate(
                "Determination", name, specimen,
                participants={"determiner": specimen},
            )

    def test_unfilled_role_query_rejected(self, schema):
        name = schema.create("Name", epithet="x")
        specimen = schema.create("Specimen", code="S")
        rel = schema.relate("Determination", name, specimen)
        with pytest.raises(RelationshipError):
            rel.participant("witness")


class TestLifecycle:
    def test_deleting_participant_removes_edge(self, schema):
        name = schema.create("Name", epithet="x")
        specimen = schema.create("Specimen", code="S")
        koch = schema.create("Taxonomist", abbrev="Koch")
        rel = schema.relate(
            "Determination", name, specimen,
            participants={"determiner": koch},
        )
        schema.delete(koch)
        assert rel.deleted

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "nary.plog"
        store = ObjectStore(path)
        schema = make_schema(store)
        name = schema.create("Name", epithet="x")
        specimen = schema.create("Specimen", code="S")
        koch = schema.create("Taxonomist", abbrev="Koch")
        schema.relate(
            "Determination", name, specimen,
            participants={"determiner": koch}, year=1824,
        )
        schema.commit()
        store.close()

        store2 = ObjectStore(path)
        schema2 = make_schema(store2)
        schema2.load_all()
        rel = schema2.relationships.instances_of("Determination")[0]
        assert rel.participant("determiner").get("abbrev") == "Koch"
        assert rel.get("year") == 1824
        store2.close()


class TestQuerying:
    def test_participant_navigation_in_pool(self, schema):
        name = schema.create("Name", epithet="graveolens")
        specimen = schema.create("Specimen", code="S1")
        koch = schema.create("Taxonomist", abbrev="Koch")
        schema.relate(
            "Determination", name, specimen,
            participants={"determiner": koch}, year=1824,
        )
        result = execute(
            schema,
            "select r.determiner.abbrev from r in Determination "
            "where r.year = 1824",
        )
        assert result == ["Koch"]

    def test_typecheck_accepts_role(self, schema):
        from repro.query import parse, typecheck

        report = typecheck(
            schema, parse("select r.determiner from r in Determination")
        )
        assert report.ok
