"""Prometheus ODL: textual schema definition."""

import pytest

from repro.core.odl import OdlError, define_schema, parse_odl
from repro.core.schema import Schema
from repro.core.semantics import RelKind
from repro.errors import ExclusivityError

DOCUMENT = """
// The taxonomy skeleton, in ODL.
abstract class TaxonomicObject {};

class Specimen extends TaxonomicObject {
    attribute string collector;
    attribute date collected;
    attribute set<string> duplicates;
};

class Name extends TaxonomicObject {
    attribute string epithet required;
    attribute integer year default 1753;
    attribute ref<Name> successor;
};

relationship HasType (Name -> Specimen) {
    kind association;
    attribute string type_kind required;
    inherit type_kind;
    participant designator Name;
};

relationship Includes (Name -> Specimen) {
    kind aggregation;
    shareable;
    cardinality max_out 100;
    attribute string motivation;
};

relationship OwnsExclusively (Name -> Specimen) {
    kind aggregation;
    exclusive;
    lifetime_dependent;
    exclusivity_group "owners";
};
"""


@pytest.fixture
def schema():
    s = Schema()
    define_schema(s, DOCUMENT)
    return s


class TestParsing:
    def test_declarations_in_order(self):
        declarations = parse_odl(DOCUMENT)
        names = [d.name for d in declarations]
        assert names == [
            "TaxonomicObject", "Specimen", "Name",
            "HasType", "Includes", "OwnsExclusively",
        ]

    def test_class_shapes(self, schema):
        specimen = schema.get_class("Specimen")
        assert specimen.superclasses[0].name == "TaxonomicObject"
        assert specimen.get_attribute("duplicates").type_spec.name == "set<string>"
        assert schema.get_class("TaxonomicObject").abstract

    def test_attribute_modifiers(self, schema):
        name = schema.get_class("Name")
        assert name.get_attribute("epithet").required
        assert name.get_attribute("year").default == 1753
        assert name.get_attribute("successor").type_spec.name == "ref<Name>"

    def test_relationship_semantics(self, schema):
        includes = schema.get_class("Includes")
        assert includes.semantics.kind is RelKind.AGGREGATION
        assert includes.semantics.shareable
        assert includes.semantics.cardinality.max_out == 100
        owns = schema.get_class("OwnsExclusively")
        assert owns.semantics.exclusive
        assert owns.semantics.lifetime_dependent
        assert owns.semantics.exclusivity_group == "owners"

    def test_inherit_and_participant(self, schema):
        has_type = schema.get_class("HasType")
        assert has_type.semantics.inherited_attributes == ("type_kind",)
        assert has_type.participant_roles == {"designator": "Name"}

    def test_comments_ignored(self):
        parse_odl("// just a comment\n# another\nclass X {};")


class TestErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("klass X {};", "'class' or 'relationship'"),
            ("class X { attribute wibble a; };", "unknown type"),
            ("class X { attribute string a wobble; };", "unexpected token"),
            ("relationship R (A -> B) { kind weird; };", "kind"),
            ("relationship R (A -> B) { cardinality sideways 3; };",
             "cardinality"),
            ("relationship R (A -> B) { inherit ghost; };", "ghost"),
            ("class X {", "expected"),
        ],
    )
    def test_bad_documents(self, text, fragment):
        with pytest.raises(OdlError, match=fragment.replace("(", "\\(")):
            parse_odl(text)

    def test_unknown_character(self):
        with pytest.raises(OdlError):
            parse_odl("class X {}; @")


class TestBehaviour:
    def test_defined_schema_is_live(self, schema):
        name = schema.create("Name", epithet="Apium")
        specimen = schema.create("Specimen", collector="L.")
        schema.relate("HasType", name, specimen, type_kind="holotype")
        # Role acquisition flows from the ODL 'inherit' clause.
        assert specimen.get("type_kind") == "holotype"

    def test_exclusivity_group_from_odl(self, schema):
        a = schema.create("Name", epithet="A")
        b = schema.create("Name", epithet="B")
        specimen = schema.create("Specimen")
        schema.relate("OwnsExclusively", a, specimen)
        with pytest.raises(ExclusivityError):
            schema.relate("OwnsExclusively", b, specimen)

    def test_pool_over_odl_schema(self, schema):
        from repro.query import execute

        schema.create("Name", epithet="Apium", year=1753)
        result = execute(
            schema, "select n.epithet from n in Name where n.year = 1753"
        )
        assert result == ["Apium"]
