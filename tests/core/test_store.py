"""Object store: transactions, durability, recovery, compaction."""

import pytest

from repro.errors import TransactionError, UnknownOidError
from repro.storage.store import ObjectStore


class TestAutocommit:
    def test_insert_and_read(self, store):
        oid = store.insert({"name": "Apium"})
        assert store.read(oid) == {"name": "Apium"}

    def test_read_returns_fresh_copy(self, store):
        oid = store.insert({"tags": ["a"]})
        first = store.read(oid)
        first["tags"].append("mutated")
        assert store.read(oid) == {"tags": ["a"]}

    def test_overwrite(self, store):
        oid = store.insert({"v": 1})
        store.put(oid, {"v": 2})
        assert store.read(oid) == {"v": 2}

    def test_remove(self, store):
        oid = store.insert({"v": 1})
        store.remove(oid)
        with pytest.raises(UnknownOidError):
            store.read(oid)
        assert oid not in store

    def test_unknown_oid(self, store):
        with pytest.raises(UnknownOidError):
            store.read(424242)

    def test_len_and_contains(self, store):
        oids = [store.insert({"i": i}) for i in range(5)]
        assert len(store) == 5
        assert all(oid in store for oid in oids)


class TestTransactions:
    def test_commit_applies(self, store):
        with store.begin() as txn:
            oid = store.new_oid()
            txn.write(oid, {"v": 1})
        assert store.read(oid) == {"v": 1}

    def test_abort_discards(self, store):
        txn = store.begin()
        oid = store.new_oid()
        txn.write(oid, {"v": 1})
        txn.abort()
        assert oid not in store

    def test_exception_in_context_aborts(self, store):
        oid = store.new_oid()
        with pytest.raises(RuntimeError):
            with store.begin() as txn:
                txn.write(oid, {"v": 1})
                raise RuntimeError("boom")
        assert oid not in store

    def test_read_your_writes(self, store):
        with store.begin() as txn:
            oid = store.new_oid()
            txn.write(oid, {"v": 1})
            assert txn.read(oid) == {"v": 1}
            txn.write(oid, {"v": 2})
            assert txn.read(oid) == {"v": 2}

    def test_read_your_deletes(self, store):
        oid = store.insert({"v": 1})
        with store.begin() as txn:
            txn.delete(oid)
            with pytest.raises(UnknownOidError):
                txn.read(oid)

    def test_uncommitted_invisible_to_store_reads(self, store):
        txn = store.begin()
        oid = store.new_oid()
        txn.write(oid, {"v": 1})
        assert oid not in store
        txn.commit()
        assert oid in store

    def test_single_active_transaction(self, store):
        txn = store.begin()
        with pytest.raises(TransactionError):
            store.begin()
        txn.abort()
        store.begin().commit()

    def test_finished_transaction_rejects_ops(self, store):
        txn = store.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.write(1, {})
        with pytest.raises(TransactionError):
            txn.commit()

    def test_delete_unknown_raises(self, store):
        with store.begin() as txn:
            with pytest.raises(UnknownOidError):
                txn.delete(999)
            txn.abort()

    def test_delete_then_rewrite_in_txn(self, store):
        oid = store.insert({"v": 1})
        with store.begin() as txn:
            txn.delete(oid)
            txn.write(oid, {"v": 2})
        assert store.read(oid) == {"v": 2}


class TestRecovery:
    def test_reopen_sees_committed_state(self, tmp_path):
        path = tmp_path / "r.plog"
        with ObjectStore(path) as store:
            a = store.insert({"name": "a"})
            b = store.insert({"name": "b"})
            store.remove(a)
        with ObjectStore(path) as store:
            assert a not in store
            assert store.read(b) == {"name": "b"}

    def test_uncommitted_tail_ignored_on_reopen(self, tmp_path):
        path = tmp_path / "r.plog"
        store = ObjectStore(path)
        committed = store.insert({"ok": True})
        txn = store.begin()
        pending = store.new_oid()
        txn.write(pending, {"ok": False})
        store._log.flush()  # data is on disk, commit marker is not
        store._log._file.close()  # simulate crash without close()
        with ObjectStore(path) as again:
            assert committed in again
            assert pending not in again

    def test_oids_not_reused_after_reopen(self, tmp_path):
        path = tmp_path / "r.plog"
        with ObjectStore(path) as store:
            oids = [store.insert({"i": i}) for i in range(10)]
        with ObjectStore(path) as store:
            assert store.new_oid() > max(oids)

    def test_overwrite_survives_reopen(self, tmp_path):
        path = tmp_path / "r.plog"
        with ObjectStore(path) as store:
            oid = store.insert({"v": 1})
            store.put(oid, {"v": 2})
        with ObjectStore(path) as store:
            assert store.read(oid) == {"v": 2}


class TestCompaction:
    def test_compaction_shrinks_and_preserves(self, tmp_path):
        path = tmp_path / "c.plog"
        with ObjectStore(path) as store:
            oid = store.insert({"v": 0})
            for i in range(100):
                store.put(oid, {"v": i})
            before = store.file_size
            store.compact()
            after = store.file_size
            assert after < before
            assert store.read(oid) == {"v": 99}
        with ObjectStore(path) as store:
            assert store.read(oid) == {"v": 99}

    def test_compaction_drops_aborted_writes(self, tmp_path):
        path = tmp_path / "c.plog"
        with ObjectStore(path) as store:
            keep = store.insert({"keep": True})
            txn = store.begin()
            txn.write(store.new_oid(), {"junk": "x" * 1000})
            txn.abort()
            store.compact()
            assert store.read(keep) == {"keep": True}
            assert len(store) == 1

    def test_compaction_rejected_in_transaction(self, store):
        txn = store.begin()
        with pytest.raises(TransactionError):
            store.compact()
        txn.abort()


class TestStats:
    def test_counters(self, store):
        oid = store.insert({"v": 1})
        store.read(oid)
        store.read(oid)
        snap = store.stats.snapshot()
        assert snap["writes"] == 1
        assert snap["reads"] == 2
        assert snap["commits"] == 1

    def test_cache_hits(self, store):
        oid = store.insert({"v": 1})
        store.read(oid)  # put() cached it already at commit
        assert store.stats.cache_hits >= 1

    def test_reset(self, store):
        store.insert({"v": 1})
        store.reset_stats()
        assert store.stats.snapshot()["writes"] == 0

    def test_zero_cache_store_still_reads(self, tmp_path):
        with ObjectStore(tmp_path / "z.plog", cache_size=0) as store:
            oid = store.insert({"v": 1})
            assert store.read(oid) == {"v": 1}
            assert store.stats.cache_hits == 0
