"""Concurrency smoke tests: the store's locking keeps reads consistent.

The store is single-writer by design (thesis prototype likewise); these
tests assert that concurrent *readers* alongside a writer never observe
torn or half-applied state.
"""

import threading

from repro.storage.store import ObjectStore


class TestConcurrentReads:
    def test_readers_never_see_partial_records(self, tmp_path):
        with ObjectStore(tmp_path / "c.plog") as store:
            oid = store.insert({"a": 0, "b": 0})
            errors: list[str] = []
            stop = threading.Event()

            def reader():
                while not stop.is_set():
                    record = store.read(oid)
                    # Writer always keeps a == b; a torn read would differ.
                    if record["a"] != record["b"]:
                        errors.append(f"torn read: {record}")
                        return

            threads = [threading.Thread(target=reader) for _ in range(4)]
            for t in threads:
                t.start()
            for i in range(1, 200):
                store.put(oid, {"a": i, "b": i})
            stop.set()
            for t in threads:
                t.join()
            assert errors == []
            assert store.read(oid) == {"a": 199, "b": 199}

    def test_concurrent_oid_allocation_via_store(self, tmp_path):
        with ObjectStore(tmp_path / "o.plog") as store:
            seen: list[int] = []
            lock = threading.Lock()

            def allocate():
                local = [store.new_oid() for _ in range(200)]
                with lock:
                    seen.extend(local)

            threads = [threading.Thread(target=allocate) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(seen) == len(set(seen)) == 1200

    def test_iteration_while_writing(self, tmp_path):
        """items() snapshots the OID list; concurrent commits must not
        corrupt iteration."""
        with ObjectStore(tmp_path / "i.plog") as store:
            for i in range(50):
                store.insert({"i": i})
            failures: list[str] = []
            done = threading.Event()

            def writer():
                for i in range(50, 150):
                    store.insert({"i": i})
                done.set()

            def scanner():
                while not done.is_set():
                    try:
                        count = sum(1 for _ in store.items())
                    except Exception as exc:  # pragma: no cover
                        failures.append(repr(exc))
                        return
                    if count < 50:
                        failures.append(f"lost records: {count}")
                        return

            w = threading.Thread(target=writer)
            s = threading.Thread(target=scanner)
            s.start()
            w.start()
            w.join()
            s.join()
            assert failures == []
            assert len(store) == 150
