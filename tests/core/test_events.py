"""Event bus: subscription, filtering, muting, veto ordering."""

from repro.core.events import Event, EventBus, EventKind


class TestEventBus:
    def test_subscribe_all(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(e.kind))
        bus.publish(Event(kind=EventKind.AFTER_CREATE))
        bus.publish(Event(kind=EventKind.AFTER_DELETE))
        assert seen == [EventKind.AFTER_CREATE, EventKind.AFTER_DELETE]

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(
            lambda e: seen.append(e.kind), kinds={EventKind.AFTER_CREATE}
        )
        bus.publish(Event(kind=EventKind.AFTER_DELETE))
        bus.publish(Event(kind=EventKind.AFTER_CREATE))
        assert seen == [EventKind.AFTER_CREATE]

    def test_unsubscribe(self):
        bus = EventBus()
        seen = []
        unsubscribe = bus.subscribe(lambda e: seen.append(1))
        bus.publish(Event(kind=EventKind.AFTER_CREATE))
        unsubscribe()
        unsubscribe()  # idempotent
        bus.publish(Event(kind=EventKind.AFTER_CREATE))
        assert seen == [1]

    def test_dispatch_order_is_registration_order(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append("first"))
        bus.subscribe(lambda e: seen.append("second"))
        bus.publish(Event(kind=EventKind.AFTER_CREATE))
        assert seen == ["first", "second"]

    def test_exception_stops_dispatch(self):
        bus = EventBus()
        seen = []

        def boom(event):
            raise ValueError("veto")

        bus.subscribe(boom)
        bus.subscribe(lambda e: seen.append(1))
        try:
            bus.publish(Event(kind=EventKind.BEFORE_UPDATE))
        except ValueError:
            pass
        assert seen == []

    def test_muted(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(1))
        with bus.muted():
            bus.publish(Event(kind=EventKind.AFTER_CREATE))
        bus.publish(Event(kind=EventKind.AFTER_CREATE))
        assert seen == [1]

    def test_muted_nests(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda e: seen.append(1))
        with bus.muted():
            with bus.muted():
                bus.publish(Event(kind=EventKind.AFTER_CREATE))
            bus.publish(Event(kind=EventKind.AFTER_CREATE))
        bus.publish(Event(kind=EventKind.AFTER_CREATE))
        assert seen == [1]

    def test_published_counter(self):
        bus = EventBus()
        bus.publish(Event(kind=EventKind.AFTER_CREATE))
        with bus.muted():
            bus.publish(Event(kind=EventKind.AFTER_CREATE))
        assert bus.published == 1
