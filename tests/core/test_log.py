"""Append-only log: entries, checksums, recovery from torn writes."""

import pytest

from repro.errors import CorruptRecordError, StorageError
from repro.storage.log import (
    KIND_COMMIT,
    KIND_DATA,
    KIND_TOMBSTONE,
    RecordLog,
)


@pytest.fixture
def log(tmp_path):
    with RecordLog(tmp_path / "test.log") as log:
        yield log


class TestBasics:
    def test_append_and_read(self, log):
        offset = log.append_data(b"hello")
        entry = log.read_entry(offset)
        assert entry.kind == KIND_DATA
        assert entry.payload == b"hello"

    def test_multiple_entries_scan_in_order(self, log):
        payloads = [f"entry-{i}".encode() for i in range(10)]
        for p in payloads:
            log.append_data(p)
        assert [e.payload for e in log.scan()] == payloads

    def test_commit_marker(self, log):
        log.append_commit(7)
        entries = list(log.scan())
        assert entries[0].kind == KIND_COMMIT
        assert RecordLog.decode_oid_payload(entries[0].payload) == 7

    def test_tombstone(self, log):
        log.append_tombstone(99)
        entry = next(iter(log.scan()))
        assert entry.kind == KIND_TOMBSTONE

    def test_empty_payload(self, log):
        offset = log.append_data(b"")
        assert log.read_entry(offset).payload == b""

    def test_large_payload(self, log):
        blob = bytes(range(256)) * 1000
        offset = log.append_data(blob)
        assert log.read_entry(offset).payload == blob

    def test_closed_log_rejects_ops(self, tmp_path):
        log = RecordLog(tmp_path / "x.log")
        log.close()
        with pytest.raises(StorageError):
            log.append_data(b"x")


class TestPersistence:
    def test_reopen_preserves_entries(self, tmp_path):
        path = tmp_path / "persist.log"
        with RecordLog(path) as log:
            log.append_data(b"one")
            log.append_data(b"two")
            log.flush()
        with RecordLog(path) as log:
            assert [e.payload for e in log.scan()] == [b"one", b"two"]

    def test_not_a_log_file(self, tmp_path):
        path = tmp_path / "bogus.log"
        path.write_bytes(b"definitely not a log" * 10)
        with pytest.raises(StorageError):
            RecordLog(path)


class TestCorruption:
    def test_bad_offset(self, log):
        with pytest.raises(CorruptRecordError):
            log.read_entry(99999)

    def test_checksum_detects_flip(self, tmp_path):
        path = tmp_path / "corrupt.log"
        with RecordLog(path) as log:
            offset = log.append_data(b"precious data")
            log.flush()
        raw = bytearray(path.read_bytes())
        # Flip one payload byte.
        raw[offset + 7 + 3] ^= 0xFF
        path.write_bytes(bytes(raw))
        with RecordLog(path) as log:
            with pytest.raises(CorruptRecordError):
                log.read_entry(offset)

    def test_torn_tail_stops_scan(self, tmp_path):
        path = tmp_path / "torn.log"
        with RecordLog(path) as log:
            log.append_data(b"good")
            log.flush()
            size_after_good = path.stat().st_size
            log.append_data(b"this one will be torn")
            log.flush()
        # Simulate a crash mid-append: truncate inside the second entry.
        with open(path, "r+b") as f:
            f.truncate(size_after_good + 5)
        with RecordLog(path) as log:
            entries = list(log.scan())
        assert [e.payload for e in entries] == [b"good"]
