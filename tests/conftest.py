"""Shared fixtures for the Prometheus test suite."""

from __future__ import annotations

import pytest

from repro.core.attributes import Attribute
from repro.core.schema import Schema
from repro.core.semantics import Cardinality, RelationshipSemantics, RelKind
from repro.core import types as T
from repro.storage.store import ObjectStore


@pytest.fixture
def store(tmp_path):
    """A fresh persistent store on a temp file."""
    s = ObjectStore(tmp_path / "db.plog")
    yield s
    s.close()


def make_people_schema(store: ObjectStore | None = None) -> Schema:
    """A small generic schema used across core tests."""
    schema = Schema(store, name="people")
    schema.define_class(
        "Person",
        [
            Attribute("name", T.STRING, required=True),
            Attribute("age", T.INTEGER),
        ],
    )
    schema.define_class(
        "Employee",
        [Attribute("salary", T.FLOAT)],
        superclasses=("Person",),
    )
    schema.define_class(
        "Company",
        [Attribute("title", T.STRING)],
    )
    schema.define_relationship(
        "WorksFor",
        "Person",
        "Company",
        semantics=RelationshipSemantics(
            kind=RelKind.ASSOCIATION,
            cardinality=Cardinality(max_out=2),
        ),
        attributes=[Attribute("since", T.INTEGER)],
    )
    schema.define_relationship(
        "Owns",
        "Company",
        "Person",
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION, exclusive=True, lifetime_dependent=True
        ),
    )
    return schema


@pytest.fixture
def schema() -> Schema:
    """In-memory people schema."""
    return make_people_schema()


@pytest.fixture
def persistent_schema(store) -> Schema:
    """People schema over a persistent store."""
    return make_people_schema(store)
