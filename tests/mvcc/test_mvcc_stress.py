"""MVCC acceptance stress: writers never abort readers.

8 writer threads hammer shared counters through the optimistic commit
path while a reader thread continuously pins snapshots and runs
full-closure POOL queries.  Under MVCC the readers must observe
*zero* aborts — only writers can conflict, and only with each other —
every read within one snapshot must be repeatable, and the final state
must be serial-equivalent (no lost updates, exact fingerprint).
"""

import threading
import time

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.errors import ConflictError

WRITERS = 8
INCREMENTS = 20
COUNTERS = 4


def make_db():
    db = PrometheusDB()
    db.schema.define_class(
        "Counter", [Attribute("label", T.STRING), Attribute("n", T.INTEGER)]
    )
    return db


def increment_with_retry(db, oid, stats, lock, delay=0.0):
    while True:
        txn = db.begin()
        value = txn.get(oid)["n"]
        if delay:
            time.sleep(delay)
        txn.set(oid, "n", value + 1)
        try:
            txn.commit()
        except ConflictError:
            with lock:
                stats["conflicts"] += 1
            continue
        with lock:
            stats["commits"] += 1
        return


class TestReadersNeverAbort:
    def test_stress_with_concurrent_closure_reader(self):
        db = make_db()
        oids = [
            db.schema.create("Counter", label=f"c{i}", n=0).oid
            for i in range(COUNTERS)
        ]
        db.commit()

        stats = {"commits": 0, "conflicts": 0}
        lock = threading.Lock()
        stop = threading.Event()
        reader_errors = []
        reader_observations = []
        barrier = threading.Barrier(WRITERS + 1)

        def writer(worker_no):
            barrier.wait()
            for i in range(INCREMENTS):
                oid = oids[(worker_no + i) % COUNTERS]
                increment_with_retry(db, oid, stats, lock, delay=0.0002)

        def reader():
            barrier.wait()
            query = "select c.n from c in Counter"
            try:
                while not stop.is_set():
                    with db.snapshot() as snap:
                        first = snap.query(query)
                        again = snap.query(query)
                        # Repeatable read: one snapshot, one answer —
                        # regardless of commits racing underneath.
                        assert again == first
                        assert len(first) == COUNTERS
                        reader_observations.append(sum(first))
            except Exception as exc:  # noqa: BLE001 - the assertion IS the test
                reader_errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(n,)) for n in range(WRITERS)
        ]
        reader_thread = threading.Thread(target=reader)
        reader_thread.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stop.set()
        reader_thread.join()

        # Zero reader aborts: snapshot reads never conflict, never raise.
        assert reader_errors == []
        assert reader_observations, "reader never got a snapshot in"

        # Serial-equivalent fingerprint: every increment landed exactly
        # once despite the write-write retries.
        expected = WRITERS * INCREMENTS
        assert stats["commits"] == expected
        final = db.query("select c.n from c in Counter")
        assert sum(final) == expected

        # Totals the reader saw are monotonically non-decreasing:
        # snapshots are consistent prefixes of the commit order.
        assert all(
            a <= b
            for a, b in zip(reader_observations, reader_observations[1:])
        )
        assert reader_observations[-1] <= expected

    def test_snapshot_reads_do_not_block_commits(self):
        """A long-lived pinned snapshot must not stall writers — it
        only holds GC back, never the commit path."""
        db = make_db()
        oid = db.schema.create("Counter", label="solo", n=0).oid
        db.commit()
        pinned_lsn = db.lsn
        with db.snapshot(as_of=pinned_lsn) as snap:
            stats = {"commits": 0, "conflicts": 0}
            lock = threading.Lock()
            for _ in range(10):
                increment_with_retry(db, oid, stats, lock)
            assert stats["commits"] == 10
            # The pinned snapshot still reads its original state.
            assert snap.query("select c.n from c in Counter") == [0]
            # GC cannot advance past the pin.
            db.mvcc_gc()
            assert db.mvcc.gc.floor <= pinned_lsn
        assert db.query("select c.n from c in Counter") == [10]


class TestWriteWriteOnlyValidation:
    def test_reader_heavy_transactions_commit_clean(self):
        """Transactions that only *read* hot objects never conflict:
        validation considers the write set alone."""
        db = make_db()
        hot = db.schema.create("Counter", label="hot", n=0).oid
        cold = [
            db.schema.create("Counter", label=f"cold{i}", n=0).oid
            for i in range(WRITERS)
        ]
        db.commit()

        stats = {"commits": 0, "conflicts": 0}
        lock = threading.Lock()
        barrier = threading.Barrier(WRITERS * 2)

        def hot_writer():
            barrier.wait()
            for _ in range(INCREMENTS):
                increment_with_retry(db, hot, stats, lock, delay=0.0002)

        cold_conflicts = []

        def cold_writer(n):
            barrier.wait()
            for _ in range(INCREMENTS):
                while True:
                    txn = db.begin()
                    txn.get(hot)  # read the contended object...
                    value = txn.get(cold[n])["n"]
                    txn.set(cold[n], "n", value + 1)  # ...write private one
                    try:
                        txn.commit()
                        break
                    except ConflictError:  # pragma: no cover - must not happen
                        cold_conflicts.append(n)

        threads = [
            threading.Thread(target=hot_writer) for _ in range(WRITERS)
        ] + [
            threading.Thread(target=cold_writer, args=(n,))
            for n in range(WRITERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        # Write-write-only validation: reading `hot` never conflicted.
        assert cold_conflicts == []
        assert stats["commits"] == WRITERS * INCREMENTS
        rows = db.query("select c.n from c in Counter where c.label = 'hot'")
        assert rows == [WRITERS * INCREMENTS]
        for n in range(WRITERS):
            assert db.query(
                "select c.n from c in Counter where c.label = $label",
                {"label": f"cold{n}"},
            ) == [INCREMENTS]
