"""HTTP surface: ``?as_of=`` reads and machine-readable 409 payloads."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB, PrometheusServer


def get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.load(response)


def post(url, payload):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, json.load(response)


def post_error(url, payload):
    with pytest.raises(urllib.error.HTTPError) as err:
        post(url, payload)
    return err.value.code, json.load(err.value)


@pytest.fixture
def served():
    db = PrometheusDB()
    db.schema.define_class(
        "Counter", [Attribute("label", T.STRING), Attribute("n", T.INTEGER)]
    )
    db.load()
    with PrometheusServer(db) as server:
        yield server.url, db


QUERY = "select c.n from c in Counter"


class TestQueryAsOf:
    def test_as_of_query_param_and_body(self, served):
        url, db = served
        obj = db.schema.create("Counter", label="x", n=1)
        db.commit()
        old = db.lsn
        obj.set("n", 2)
        db.commit()

        status, body = post(url + "/query", {"query": QUERY})
        assert (status, body["result"]) == (200, [2])

        status, body = post(url + f"/query?as_of={old}", {"query": QUERY})
        assert (status, body["result"]) == (200, [1])
        assert body["as_of"] == old

        status, body = post(url + "/query", {"query": QUERY, "as_of": old})
        assert (status, body["result"]) == (200, [1])

    def test_unavailable_snapshot_is_404_with_window(self, served):
        url, db = served
        db.schema.create("Counter", label="x", n=1)
        db.commit()
        code, body = post_error(
            url + "/query", {"query": QUERY, "as_of": db.lsn + 999}
        )
        assert code == 404
        assert body["snapshot"] == "unavailable"
        assert body["floor"] <= body["head"] < db.lsn + 999

    def test_malformed_as_of_is_404(self, served):
        url, db = served
        db.schema.create("Counter", label="x", n=1)
        db.commit()
        code, body = post_error(
            url + "/query", {"query": QUERY, "as_of": "not-a-number"}
        )
        assert code == 404
        assert body["snapshot"] == "unavailable"


class TestConflictKinds:
    def test_write_write_conflict_payload(self, served):
        url, db = served
        oid = db.schema.create("Counter", label="shared", n=0).oid
        db.commit()

        _, body = post(url + "/session", {})
        loser = body["session"]
        _, body = post(url + "/session", {})
        winner = body["session"]

        # Both sessions read, then the winner commits first.
        post(
            url + f"/session/{loser}/apply",
            {"ops": [{"op": "set", "oid": oid, "attr": "n", "value": 1}]},
        )
        post(
            url + f"/session/{winner}/apply",
            {"ops": [{"op": "set", "oid": oid, "attr": "n", "value": 7}]},
        )
        status, _ = post(url + f"/session/{winner}/commit", {})
        assert status == 200

        code, body = post_error(url + f"/session/{loser}/commit", {})
        assert code == 409
        assert body["conflict"] is True
        assert body["conflict_kind"] == "write-write"
        assert body["stale_oids"] == [oid]
        assert body["retry"] is True

    def test_session_query_supports_as_of(self, served):
        url, db = served
        obj = db.schema.create("Counter", label="x", n=10)
        db.commit()
        old = db.lsn
        obj.set("n", 20)
        db.commit()

        _, body = post(url + "/session", {})
        sid = body["session"]
        status, body = post(
            url + f"/session/{sid}/query", {"query": QUERY, "as_of": old}
        )
        assert (status, body["result"]) == (200, [10])
