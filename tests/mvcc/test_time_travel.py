"""Time travel: ``as_of`` queries, pinned snapshots, classifications."""

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.errors import SchemaError, SnapshotError


def declare(db):
    db.schema.define_class(
        "Taxon",
        [Attribute("name", T.STRING), Attribute("rank", T.STRING)],
    )
    db.schema.define_relationship("ChildOf", "Taxon", "Taxon")


@pytest.fixture(params=["memory", "store"])
def db(request, tmp_path):
    database = PrometheusDB(
        tmp_path / "tt.plog" if request.param == "store" else None
    )
    declare(database)
    database.load()
    yield database
    database.close()


@pytest.fixture
def history(db):
    """Three commits; returns [(lsn, expected name set)] per commit."""
    steps = []
    a = db.schema.create("Taxon", name="Quercus", rank="genus")
    db.commit()
    steps.append((db.lsn, {"Quercus"}))
    b = db.schema.create("Taxon", name="Fagus", rank="genus")
    db.commit()
    steps.append((db.lsn, {"Quercus", "Fagus"}))
    a.set("name", "Quercus_sensu_lato")
    db.schema.delete(b)
    db.commit()
    steps.append((db.lsn, {"Quercus_sensu_lato"}))
    return steps


QUERY = "select t.name from t in Taxon"


class TestAsOfQueries:
    def test_every_commit_lsn_is_queryable(self, db, history):
        for lsn, expected in history:
            assert set(db.query(QUERY, as_of=lsn)) == expected

    def test_as_of_head_equals_live(self, db, history):
        assert set(db.query(QUERY, as_of=db.lsn)) == set(db.query(QUERY))

    def test_future_lsn_rejected(self, db, history):
        with pytest.raises(SnapshotError, match="not yet available"):
            db.query(QUERY, as_of=history[-1][0] + 10_000)

    def test_collected_lsn_rejected(self, db, history):
        first_lsn = history[0][0]
        db.mvcc_gc()  # nothing pinned: floor advances to head
        with pytest.raises(SnapshotError, match="retained history"):
            db.query(QUERY, as_of=first_lsn - 1 if first_lsn > 0 else -1)

    def test_non_integer_as_of_rejected(self, db, history):
        with pytest.raises(SnapshotError, match="integer"):
            db.query(QUERY, as_of="yesterday")

    def test_explain_as_of_is_scan_only(self, db, history):
        db.indexes.create_index("Taxon", "name")
        lsn, _ = history[1]
        live = db.query(
            "EXPLAIN select t from t in Taxon where t.name = 'Fagus'"
        )
        assert live["plan"]["indexes_considered"] == ["Taxon.name"]
        report = db.query(
            "EXPLAIN select t from t in Taxon where t.name = 'Fagus'",
            as_of=lsn,
        )
        # Snapshot plans compile without the index catalog: live index
        # state must never leak into a historical read.
        assert report["plan"]["indexes_considered"] == []
        assert report["plan"]["index_used"] is None
        assert all(
            not p.startswith("index:")
            for p in report["plan"]["access_paths"]
        )
        assert report["rows"] == 1

    def test_plan_cache_never_crosses_the_as_of_boundary(self, db, history):
        """A live plan and an as_of plan for the same text are distinct
        cache entries — the snapshot LSN is part of the stamp."""
        planner = db.planner
        text = "select t from t in Taxon where t.rank = 'genus'"
        db.query(text)
        misses_before = planner.misses
        db.query(text)  # warm: live plan now cached
        assert planner.misses == misses_before
        db.query(text, as_of=history[0][0])  # must compile its own plan
        assert planner.misses == misses_before + 1
        db.query(text, as_of=history[0][0])  # …which is itself cached
        assert planner.misses == misses_before + 1


class TestDatabaseSnapshot:
    def test_snapshot_pins_against_gc(self, db, history):
        first_lsn, expected = history[0]
        snap = db.snapshot(as_of=first_lsn)
        db.mvcc_gc()
        # The pin held the floor: the old version is still resolvable.
        assert set(snap.query(QUERY)) == expected
        snap.release()
        db.release_snapshots()  # drop the view cache's own pin too
        db.mvcc_gc()
        with pytest.raises(SnapshotError):
            db.query(QUERY, as_of=first_lsn)

    def test_snapshot_default_is_now(self, db, history):
        with db.snapshot() as snap:
            assert snap.lsn == db.lsn
            assert set(snap.query(QUERY)) == history[-1][1]

    def test_released_snapshot_refuses_reads(self, db, history):
        snap = db.snapshot()
        snap.release()
        with pytest.raises(SnapshotError, match="released"):
            snap.query(QUERY)

    def test_snapshot_schema_is_read_only(self, db, history):
        with db.snapshot(as_of=history[0][0]) as snap:
            view = snap.schema
            obj = next(iter(view.all_objects()))
            with pytest.raises(SchemaError):
                obj.set("name", "mutated-the-past")

    def test_snapshot_relationships_materialized(self, db, history):
        parent = db.schema.create("Taxon", name="Fagaceae", rank="family")
        child = db.schema.create("Taxon", name="Castanea", rank="genus")
        db.schema.relate("ChildOf", child, parent)
        db.commit()
        lsn = db.lsn
        db.schema.delete(child)
        db.commit()
        traversal = (
            "select c.name from c in Taxon, p in c->ChildOf "
            "where p.name = 'Fagaceae'"
        )
        assert db.query(traversal, as_of=lsn) == ["Castanea"]
        assert db.query(traversal) == []


class TestTimeTravelClassifications:
    def test_classifications_as_of(self, db):
        """The paper's revision scenario: ask what a classification
        looked like before the taxonomist reworked it."""
        fam = db.schema.create("Taxon", name="Fagaceae", rank="family")
        quercus = db.schema.create("Taxon", name="Quercus", rank="genus")
        fagus = db.schema.create("Taxon", name="Fagus", rank="genus")
        e1 = db.schema.relate("ChildOf", quercus, fam)
        e2 = db.schema.relate("ChildOf", fagus, fam)
        linnaeus = db.classifications.create("linnaeus-1753", author="L.")
        linnaeus.add_edge(e1)
        db.commit()
        old_lsn = db.lsn

        linnaeus.add_edge(e2)
        revised = db.classifications.create("engler-1924", author="Engler")
        revised.add_edge(e2)
        db.commit()

        assert db.classifications.names() == ["engler-1924", "linnaeus-1753"]
        with db.snapshot(as_of=old_lsn) as snap:
            then = snap.classifications
            assert then.names() == ["linnaeus-1753"]
            assert len(then.get("linnaeus-1753")) == 1
        # Live state is untouched by the excursion.
        assert len(db.classifications.get("linnaeus-1753")) == 2


class TestWatermarkMetrics:
    def test_mvcc_metrics_exported(self, db, history):
        db.query(QUERY, as_of=history[0][0])
        pinned = db.snapshot(as_of=history[1][0])
        text = db.telemetry.registry.render_prometheus()
        assert "repro_mvcc_pinned_snapshots" in text
        assert "repro_mvcc_watermark_lsn" in text
        assert "repro_mvcc_versions_appended_total" in text
        snap = db.mvcc.telemetry_snapshot()
        assert snap["pinned_snapshots"] >= 1
        assert snap["watermark_lsn"] <= history[1][0]
        assert snap["snapshot_reads"] >= 1
        pinned.release()

    def test_gc_interval_runs_automatically(self, tmp_path):
        database = PrometheusDB(mvcc=True)
        declare(database)
        database.mvcc.gc.interval_commits = 10
        obj = database.schema.create("Taxon", name="x", rank="genus")
        database.commit()
        for i in range(25):
            obj.set("rank", f"rank-{i}")
            database.commit()
        assert database.mvcc.gc.runs >= 2
        assert database.mvcc.telemetry_snapshot()["versions_collected"] > 0


class TestMvccDisabled:
    def test_mvcc_false_keeps_live_reads_working(self):
        database = PrometheusDB(mvcc=False)
        declare(database)
        database.schema.create("Taxon", name="Quercus", rank="genus")
        database.commit()
        assert database.query(QUERY) == ["Quercus"]
        with pytest.raises(SnapshotError):
            database.query(QUERY, as_of=database.lsn)
        with pytest.raises(SnapshotError):
            database.snapshot()
