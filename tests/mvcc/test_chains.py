"""Version chains, snapshot pins, and the GC watermark (unit level)."""

import random

import pytest

from repro.mvcc import MvccStore, SnapshotRegistry, VersionChain, VersionStore
from repro.mvcc.gc import VersionGC


class TestVersionChain:
    def test_visible_at_picks_newest_at_or_below(self):
        chain = VersionChain()
        chain.append(10, {"v": "a"})
        chain.append(20, {"v": "b"})
        chain.append(30, {"v": "c"})
        assert chain.visible_at(5) == (False, None)
        assert chain.visible_at(10) == (True, {"v": "a"})
        assert chain.visible_at(19) == (True, {"v": "a"})
        assert chain.visible_at(20) == (True, {"v": "b"})
        assert chain.visible_at(999) == (True, {"v": "c"})

    def test_tombstone_is_absence(self):
        chain = VersionChain()
        chain.append(10, {"v": "a"})
        chain.append(20, None)
        found, record = chain.visible_at(25)
        assert found and record is None
        assert chain.visible_at(10) == (True, {"v": "a"})

    def test_equal_lsn_replaces_tail(self):
        chain = VersionChain()
        chain.append(10, {"v": "a"})
        chain.append(10, {"v": "b"})
        assert chain.visible_at(10) == (True, {"v": "b"})
        assert len(chain) == 1

    def test_older_append_ignored(self):
        chain = VersionChain()
        chain.append(20, {"v": "b"})
        chain.append(10, {"v": "stale"})
        # The stale version was not spliced in: nothing below 20.
        assert chain.visible_at(15) == (False, None)
        assert chain.visible_at(20) == (True, {"v": "b"})
        assert len(chain) == 1

    def test_collect_below_keeps_newest_at_watermark(self):
        chain = VersionChain()
        for lsn in (10, 20, 30, 40):
            chain.append(lsn, {"lsn": lsn})
        collected = chain.collect_below(30)
        # 10 and 20 go; 30 stays because a snapshot pinned at 30..39
        # still resolves to it.
        assert collected == 2
        assert chain.visible_at(30) == (True, {"lsn": 30})
        assert chain.visible_at(35) == (True, {"lsn": 30})
        assert chain.visible_at(40) == (True, {"lsn": 40})
        # Below the watermark nothing is materializable any more.
        assert chain.visible_at(29) == (False, None)


class TestVersionStore:
    def test_lookup_untracked_vs_absent(self):
        store = VersionStore()
        store.append(1, 10, {"v": "a"})
        assert store.lookup(99, 10) == (False, None)  # never seen
        assert store.lookup(1, 5) == (True, None)  # tracked, not yet born
        assert store.lookup(1, 10) == (True, {"v": "a"})

    def test_dead_chain_removed_by_collect(self):
        store = VersionStore()
        store.append(1, 10, {"v": "a"})
        store.append(1, 20, None)
        store.collect(30)
        assert store.lookup(1, 30) == (False, None)
        assert len(store) == 0

    def test_items_at_materializes_only_live(self):
        store = VersionStore()
        store.append(1, 10, {"v": "a"})
        store.append(2, 20, {"v": "b"})
        store.append(1, 30, None)
        assert dict(store.items_at(25)) == {1: {"v": "a"}, 2: {"v": "b"}}
        assert dict(store.items_at(30)) == {2: {"v": "b"}}


class TestSnapshotRegistry:
    def test_refcounted_pins(self):
        registry = SnapshotRegistry()
        a = registry.pin(10)
        b = registry.pin(10)
        c = registry.pin(20)
        assert registry.oldest() == 10
        a.release()
        assert registry.oldest() == 10  # b still holds 10
        b.release()
        assert registry.oldest() == 20
        c.release()
        assert registry.oldest() is None

    def test_release_is_idempotent(self):
        registry = SnapshotRegistry()
        pin = registry.pin(10)
        pin.release()
        pin.release()
        assert registry.count == 0

    def test_context_manager(self):
        registry = SnapshotRegistry()
        with registry.pin(5):
            assert registry.count == 1
        assert registry.count == 0


class TestVersionGC:
    def test_pin_below_floor_refused(self):
        store = VersionStore()
        registry = SnapshotRegistry()
        gc = VersionGC(store, registry)
        gc.set_floor(100)
        assert gc.try_pin(99) is None
        assert gc.try_pin(100) is not None

    def test_watermark_is_oldest_pin(self):
        store = VersionStore()
        registry = SnapshotRegistry()
        gc = VersionGC(store, registry)
        gc.note_head(50)
        pin = gc.try_pin(20)
        assert gc.watermark() == 20
        pin.release()
        assert gc.watermark() == 50  # no pins: watermark rides the head

    def test_run_advances_floor(self):
        store = VersionStore()
        registry = SnapshotRegistry()
        gc = VersionGC(store, registry)
        store.append(1, 10, {"v": "a"})
        store.append(1, 30, {"v": "b"})
        gc.note_head(30)
        gc.run()
        assert gc.floor == 30
        assert gc.try_pin(10) is None


class TestGcPinnedSafety:
    """Satellite: seeded sweep proving GC never collects a version
    reachable from any pinned snapshot."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_no_pinned_version_collected(self, seed):
        rng = random.Random(seed)
        mvcc = MvccStore(gc_interval_commits=1)
        oids = list(range(1, 13))
        lsn = 0
        pinned = []  # (pin, lsn, expected visible dict)

        def visible_now(at):
            return {
                oid: rec
                for oid, rec in mvcc.versions.items_at(at)
            }

        for round_no in range(120):
            lsn += rng.randint(1, 5)
            writes = {
                oid: {"round": round_no, "oid": oid}
                for oid in rng.sample(oids, rng.randint(1, 4))
            }
            deletes = []
            if rng.random() < 0.2:
                victim = rng.choice(oids)
                writes.pop(victim, None)
                deletes = [victim]
            mvcc.apply_commit(lsn, writes, deletes)
            if rng.random() < 0.3:
                pin = mvcc.pin(lsn)
                assert pin is not None
                pinned.append((pin, lsn, visible_now(lsn)))
            if rng.random() < 0.4:
                mvcc.run_gc()
            if pinned and rng.random() < 0.2:
                pin, _, _ = pinned.pop(rng.randrange(len(pinned)))
                pin.release()

        mvcc.run_gc()
        # Every still-pinned snapshot must materialize exactly the
        # state it pinned — GC collected nothing it could reach.
        for pin, at, expected in pinned:
            assert visible_now(at) == expected, f"snapshot at {at} damaged"
            for oid, record in expected.items():
                assert mvcc.lookup(oid, at) == (True, record)

    def test_released_history_is_collected(self):
        mvcc = MvccStore()
        for lsn in range(1, 51):
            mvcc.apply_commit(lsn, {1: {"n": lsn}})
        assert mvcc.versions.live_versions() == 50
        collected = mvcc.run_gc()  # no pins: watermark = head
        assert collected == 49
        assert mvcc.lookup(1, 50) == (True, {"n": 50})
