"""Point-in-time reads on replicas: same LSN, same answer, every node.

The replication LSN domain *is* the MVCC LSN domain (log byte offsets),
so ``as_of=L`` on the primary and on any replica that has applied past
``L`` must return byte-identical results — even while the replica lags
behind on newer commits it has not pulled yet.
"""

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.errors import SnapshotError
from repro.replication import LogShipper, ReplicaApplier, ReplicationClient


def declare(db):
    db.schema.define_class(
        "Entry",
        [Attribute("key", T.STRING), Attribute("value", T.INTEGER)],
    )


@pytest.fixture
def primary(tmp_path):
    db = PrometheusDB(tmp_path / "primary.plog")
    declare(db)
    db.load()
    yield db
    db.close()


@pytest.fixture
def shipper(primary):
    return LogShipper(primary.store)


@pytest.fixture
def replica(tmp_path, shipper):
    db = PrometheusDB(tmp_path / "replica.plog", read_only=True)
    declare(db)
    db.load()
    applier = ReplicaApplier(db)
    client = ReplicationClient(applier, shipper, name="replica-asof")
    yield db, applier, client
    client.stop()
    db.close()


QUERY = "select e.value from e in Entry"


def commit_entry(db, key, value):
    txn = db.transactions.begin()
    txn.create("Entry", key=key, value=value)
    txn.commit()
    return db.lsn


def set_value(db, oid, value):
    txn = db.transactions.begin()
    txn.set(oid, "value", value)
    txn.commit()
    return db.lsn


class TestLaggingReplicaAsOf:
    def test_as_of_identical_on_lagging_replica(self, primary, replica):
        rdb, applier, client = replica
        lsns = [commit_entry(primary, f"k{i}", i) for i in range(5)]
        client.catch_up()
        # Replica now at LSN 5-commits; primary keeps going.
        later = [commit_entry(primary, f"k{i}", i) for i in range(5, 8)]
        assert applier.applied_lsn < primary.lsn

        for lsn in lsns:
            on_primary = primary.query(QUERY, as_of=lsn)
            on_replica = applier.query(QUERY, as_of=lsn)
            assert on_replica == on_primary

        # LSNs the replica has not applied yet are refused, not wrong.
        with pytest.raises(SnapshotError):
            applier.query(QUERY, as_of=later[-1])

        # After catch-up every LSN resolves identically on both nodes.
        client.catch_up()
        for lsn in lsns + later:
            assert applier.query(QUERY, as_of=lsn) == primary.query(
                QUERY, as_of=lsn
            )

    def test_update_history_survives_shipping(self, primary, replica):
        rdb, applier, client = replica
        txn = primary.transactions.begin()
        oid = txn.create("Entry", key="versioned", value=1)
        txn.commit()
        v1 = primary.lsn
        v2 = set_value(primary, oid, 2)
        v3 = set_value(primary, oid, 3)
        client.catch_up()

        for lsn, expected in ((v1, [1]), (v2, [2]), (v3, [3])):
            assert applier.query(QUERY, as_of=lsn) == expected
            assert primary.query(QUERY, as_of=lsn) == expected

    def test_replica_chains_feed_from_commit_markers(self, primary, replica):
        """Each shipped commit lands as ONE chain version at the
        primary's commit LSN — not one version per record write."""
        rdb, applier, client = replica
        txn = primary.transactions.begin()
        txn.create("Entry", key="a", value=1)
        txn.create("Entry", key="b", value=2)
        txn.commit()
        batch_lsn = primary.lsn
        client.catch_up()

        snap = rdb.mvcc.telemetry_snapshot()
        assert snap["head_lsn"] == batch_lsn
        # Both records stamped with the same commit LSN: the commit is
        # atomic in history exactly as it was atomic in execution.
        assert sorted(applier.query(QUERY, as_of=batch_lsn)) == [1, 2]
        before = batch_lsn - 1
        if before > rdb.mvcc.floor:
            assert applier.query(QUERY, as_of=before) == []

    def test_resync_resets_version_chains(self, primary, shipper, replica):
        rdb, applier, client = replica
        commit_entry(primary, "a", 1)
        client.catch_up()
        old_lsn = applier.applied_lsn
        applier.reset()
        # Resync discards history: the old pinned window is gone...
        with pytest.raises(SnapshotError):
            applier.query(QUERY, as_of=old_lsn)
        client.catch_up()
        # ...and re-shipping rebuilds it from the log.
        assert applier.query(QUERY, as_of=applier.applied_lsn) == [1]
