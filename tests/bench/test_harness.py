"""Measurement harness: sweeps produce well-formed, correct-shape series."""

from repro.bench import (
    SweepRow,
    format_series,
    measure,
    ratio_growth,
    sweep_s1,
    sweep_s2,
    sweep_t5,
)


class TestMeasure:
    def test_measure_returns_positive_ns(self):
        ns = measure(lambda: sum(range(50)), number=20, repeat=2)
        assert ns > 0

    def test_setup_runs_per_repeat(self):
        runs = []
        measure(lambda: None, number=1, repeat=3, setup=lambda: runs.append(1))
        assert len(runs) == 3


class TestSweepRows:
    def test_ratio(self):
        row = SweepRow(size=10, raw_ns=100.0, prometheus_ns=250.0)
        assert row.ratio == 2.5

    def test_format_series(self):
        rows = [SweepRow(size=10, raw_ns=100.0, prometheus_ns=200.0)]
        text = format_series("title", rows)
        assert "title" in text
        assert "2.00" in text

    def test_ratio_growth(self):
        rows = [
            SweepRow(size=1, raw_ns=100, prometheus_ns=200),
            SweepRow(size=2, raw_ns=100, prometheus_ns=400),
        ]
        assert ratio_growth(rows) == 2.0
        assert ratio_growth(rows[:1]) == 1.0


class TestSweepsSmoke:
    """Tiny sweeps: assert structure; shape assertions live in the
    benchmark scripts where sizes are large enough to be stable."""

    def test_t5(self):
        rows = sweep_t5([20, 40], ops_per_point=20)
        assert [r.size for r in rows] == [20, 40]
        assert all(r.raw_ns > 0 and r.prometheus_ns > 0 for r in rows)

    def test_s1(self):
        rows = sweep_s1([5, 10], ops_per_point=5)
        assert [r.size for r in rows] == [5, 10]
        assert all(r.prometheus_ns > 0 for r in rows)

    def test_s2(self):
        rows = sweep_s2([2, 4], leaves_per_group=2)
        assert [r.size for r in rows] == [2, 4]
        # Comparison always costs more than a raw set intersection.
        assert all(r.ratio > 1 for r in rows)
