"""OO7 benchmark substrate: construction and workloads."""

import pytest

from repro.core.schema import Schema
from repro.bench import (
    OO7Config,
    build_oo7,
    define_oo7_schema,
    delete_composite,
    insert_composite,
    query_exact,
    query_range,
    query_scan,
    traverse_t1,
    traverse_t2,
    traverse_t6,
)


@pytest.fixture(scope="module")
def handles():
    schema = Schema()
    define_oo7_schema(schema)
    return build_oo7(schema, OO7Config.tiny())


class TestConstruction:
    def test_scale_matches_config(self, handles):
        cfg = handles.config
        assert len(handles.composite_parts) == cfg.num_comp_per_module
        assert (
            len(handles.atomic_parts)
            == cfg.num_comp_per_module * cfg.num_atomic_per_comp
        )
        assert len(handles.documents) == cfg.num_comp_per_module
        # Complete assembly tree: levels-1 inner nodes of fan-out k.
        k = cfg.num_assm_per_assm
        inner = sum(k**i for i in range(cfg.num_assm_levels - 1))
        assert len(handles.complex_assemblies) == inner
        assert len(handles.base_assemblies) == k ** (cfg.num_assm_levels - 1)

    def test_deterministic(self):
        s1, s2 = Schema(), Schema()
        define_oo7_schema(s1)
        define_oo7_schema(s2)
        h1 = build_oo7(s1, OO7Config.tiny())
        h2 = build_oo7(s2, OO7Config.tiny())
        assert h1.totals == h2.totals
        x1 = sorted(a.get("x") for a in h1.atomic_parts)
        x2 = sorted(a.get("x") for a in h2.atomic_parts)
        assert x1 == x2

    def test_every_composite_has_root_part_and_doc(self, handles):
        for composite in handles.composite_parts:
            assert len(composite.related("RootPart")) == 1
            assert len(composite.related("Documentation")) == 1

    def test_connection_graph_connected(self, handles):
        """Each private graph is reachable from its root part."""
        from repro.bench.workload import _dfs_atomic

        for composite in handles.composite_parts:
            visits = _dfs_atomic(handles.schema, composite)
            assert visits == handles.config.num_atomic_per_comp


class TestTraversals:
    def test_t1_visits_atomic_parts(self, handles):
        visits = traverse_t1(handles)
        # Every base assembly touches its shared composites' full graphs.
        assert visits > 0
        assert visits % handles.config.num_atomic_per_comp == 0

    def test_t2a_updates_one_per_composite(self, handles):
        updates = traverse_t2(handles, "a")
        assert updates == len(handles.composite_parts)

    def test_t2b_updates_all(self, handles):
        updates = traverse_t2(handles, "b")
        assert updates == len(handles.atomic_parts)

    def test_t2c_updates_all_four_times(self, handles):
        updates = traverse_t2(handles, "c")
        assert updates == len(handles.atomic_parts) * 4

    def test_t2_swap_is_involution(self, handles):
        atom = handles.atomic_parts[0]
        x, y = atom.get("x"), atom.get("y")
        traverse_t2(handles, "b")
        traverse_t2(handles, "b")
        assert (atom.get("x"), atom.get("y")) == (x, y)

    def test_t6_visits_roots_only(self, handles):
        visits = traverse_t6(handles)
        assert visits <= traverse_t1(handles)
        assert visits > 0


class TestQueries:
    def test_exact(self, handles):
        idents = [handles.atomic_parts[i].get("ident") for i in (0, 3, 5)]
        assert query_exact(handles, idents) == 3
        assert query_exact(handles, [999999999]) == 0

    def test_range(self, handles):
        assert query_range(handles, 1000, 9999) == len(handles.atomic_parts)
        assert query_range(handles, -5, -1) == 0

    def test_scan(self, handles):
        assert query_scan(handles) == len(handles.atomic_parts)


class TestStructuralModifications:
    def test_insert_then_delete_restores_counts(self):
        schema = Schema()
        define_oo7_schema(schema)
        handles = build_oo7(schema, OO7Config.tiny())
        before = dict(handles.totals)
        composite = insert_composite(handles, ident_base=50_000_000)
        assert len(handles.composite_parts) == before["composite_parts"] + 1
        removed = delete_composite(handles, composite)
        assert removed == 1 + handles.config.num_atomic_per_comp + 1
        assert handles.totals == before

    def test_delete_cascades_private_parts(self):
        schema = Schema()
        define_oo7_schema(schema)
        handles = build_oo7(schema, OO7Config.tiny())
        composite = handles.composite_parts[0]
        atoms = composite.related("ComponentPrivate")
        document = composite.related("Documentation")[0]
        delete_composite(handles, composite)
        assert all(a.deleted for a in atoms)
        assert document.deleted

    def test_exclusivity_of_private_parts(self):
        schema = Schema()
        define_oo7_schema(schema)
        handles = build_oo7(schema, OO7Config.tiny())
        from repro.errors import ExclusivityError

        atom = handles.atomic_parts[0]
        other = handles.composite_parts[-1]
        with pytest.raises(ExclusivityError):
            schema.relate("ComponentPrivate", other, atom)

    def test_shared_composites_are_shareable(self):
        schema = Schema()
        define_oo7_schema(schema)
        handles = build_oo7(schema, OO7Config.tiny())
        composite = handles.composite_parts[0]
        for base in handles.base_assemblies[:2]:
            schema.relate("ComponentShared", base, composite)  # no error
