"""Name derivation — including the exact Figure 3 reproduction."""

import pytest

from repro.taxonomy import (
    HOLOTYPE,
    NameDeriver,
    TaxonomyDatabase,
    build_apium_scenario,
    check_ascriptions,
    placement_anchor_rank,
)


class TestAnchorRank:
    def test_species_anchor_is_genus(self):
        assert placement_anchor_rank("Species").name == "Genus"

    def test_infrageneric_anchor_is_genus(self):
        assert placement_anchor_rank("Sectio").name == "Genus"
        assert placement_anchor_rank("Series").name == "Genus"

    def test_infraspecific_anchor_is_species(self):
        assert placement_anchor_rank("Subspecies").name == "Species"
        assert placement_anchor_rank("Varietas").name == "Species"

    def test_genus_and_above_uninomial(self):
        assert placement_anchor_rank("Genus") is None
        assert placement_anchor_rank("Familia") is None


class TestFigure3:
    """The thesis's worked derivation example, reproduced end to end."""

    @pytest.fixture
    def derived(self):
        scenario = build_apium_scenario()
        deriver = NameDeriver(scenario.taxdb, author="Raguenaud", year=2000)
        results = deriver.derive(scenario.classification)
        return scenario, results

    def test_taxon1_becomes_heliosciadium(self, derived):
        scenario, _ = derived
        name = scenario.taxdb.calculated_name(scenario.taxon1)
        assert scenario.taxdb.full_name(name) == "Heliosciadium W.D.J.Koch"
        assert name.oid == scenario.nt_heliosciadium.oid

    def test_taxon2_new_combination_published(self, derived):
        scenario, results = derived
        name = scenario.taxdb.calculated_name(scenario.taxon2)
        assert (
            scenario.taxdb.full_name(name)
            == "Heliosciadium repens (Jacq.)Raguenaud"
        )
        species_result = [r for r in results if r.ct_oid == scenario.taxon2.oid][0]
        assert species_result.action == "new-combination"

    def test_new_combination_carries_basionym(self, derived):
        scenario, _ = derived
        name = scenario.taxdb.calculated_name(scenario.taxon2)
        basionym = scenario.taxdb.basionym_of(name)
        assert basionym.oid == scenario.nt_repens_basionym.oid

    def test_new_combination_keeps_type(self, derived):
        scenario, _ = derived
        name = scenario.taxdb.calculated_name(scenario.taxon2)
        assert (
            scenario.taxdb.primary_type(name).oid
            == scenario.specimen_repens.oid
        )

    def test_oldest_candidate_chosen(self, derived):
        """Apium repens (1821) beats Heliosciadium nodiflorum (1824)."""
        scenario, results = derived
        species_result = [r for r in results if r.ct_oid == scenario.taxon2.oid][0]
        assert scenario.nt_apium_repens.oid in species_result.candidates
        assert scenario.nt_heliosciadium_nodiflorum.oid in species_result.candidates
        # The chosen epithet is repens, not nodiflorum.
        name = scenario.taxdb.calculated_name(scenario.taxon2)
        assert name.get("epithet") == "repens"

    def test_derivation_is_traced(self, derived):
        scenario, _ = derived
        entries = scenario.taxdb.trace.for_classification(
            scenario.classification.name
        )
        assert any(e.operation == "derive-names" for e in entries)

    def test_rederivation_is_stable(self, derived):
        """Deriving again finds the published combination, creates nothing."""
        scenario, _ = derived
        names_before = len(scenario.taxdb.names())
        deriver = NameDeriver(scenario.taxdb, author="Again", year=2001)
        results = deriver.derive(scenario.classification)
        assert all(r.action == "existing" for r in results)
        assert len(scenario.taxdb.names()) == names_before


class TestNewNamePublication:
    def test_empty_group_elects_type_and_publishes(self):
        taxdb = TaxonomyDatabase()
        c = taxdb.new_classification("c")
        genus = taxdb.new_taxon("Genus", working_name="Novagenus")
        species = taxdb.new_taxon("Species", working_name="novaspecies")
        taxdb.place(c, genus, species)
        specimens = [taxdb.new_specimen() for _ in range(2)]
        for s in specimens:
            taxdb.place(c, species, s)
        deriver = NameDeriver(taxdb, author="Me", year=2026)
        results = deriver.derive(c)
        assert [r.action for r in results] == ["new-name", "new-name"]
        genus_nt = taxdb.calculated_name(genus)
        species_nt = taxdb.calculated_name(species)
        assert genus_nt.get("epithet") == "Novagenus"
        assert species_nt.get("epithet") == "novaspecies"
        assert taxdb.full_name(species_nt) == "Novagenus novaspecies Me"
        # The elected holotype is the lowest-oid specimen.
        assert taxdb.primary_type(species_nt).oid == min(s.oid for s in specimens)

    def test_bare_group_without_specimens_fails(self):
        taxdb = TaxonomyDatabase()
        c = taxdb.new_classification("c")
        genus = taxdb.new_taxon("Genus", working_name="Emptius")
        sp = taxdb.new_taxon("Species", working_name="vacuus")
        taxdb.place(c, genus, sp)
        deriver = NameDeriver(taxdb, author="Me", year=2026)
        results = deriver.derive(c)
        assert all(r.action == "failed" for r in results)

    def test_bad_working_name_corrected_for_rank(self):
        taxdb = TaxonomyDatabase()
        c = taxdb.new_classification("c")
        family = taxdb.new_taxon("Familia", working_name="Apiales")
        taxdb.place(
            c, family, taxdb.new_taxon("Genus", working_name="Apium")
        )
        genus = c.children(family)[0]
        specimen = taxdb.new_specimen()
        species = taxdb.new_taxon("Species", working_name="x")
        taxdb.place(c, genus, species)
        taxdb.place(c, species, specimen)
        deriver = NameDeriver(taxdb, author="Me", year=2026)
        deriver.derive(c)
        family_nt = taxdb.calculated_name(family)
        assert family_nt.get("epithet").endswith("aceae")


class TestHistoricalAscriptions:
    def test_mismatch_detected(self):
        """§7.1.2: a historically ascribed name that no longer derives."""
        scenario = build_apium_scenario()
        taxdb = scenario.taxdb
        # The historical publication called Taxon 2 "Apium repens".
        taxdb.ascribe_name(scenario.taxon2, scenario.nt_apium_repens)
        NameDeriver(taxdb, author="Raguenaud", year=2000).derive(
            scenario.classification
        )
        mismatches = check_ascriptions(taxdb, scenario.classification)
        assert len(mismatches) == 1
        ct_oid, ascribed, calculated = mismatches[0]
        assert ct_oid == scenario.taxon2.oid
        assert ascribed == "Apium repens (Jacq.)Lag."
        assert calculated == "Heliosciadium repens (Jacq.)Raguenaud"

    def test_match_not_reported(self):
        scenario = build_apium_scenario()
        taxdb = scenario.taxdb
        taxdb.ascribe_name(scenario.taxon1, scenario.nt_heliosciadium)
        NameDeriver(taxdb, author="R", year=2000).derive(scenario.classification)
        mismatches = check_ascriptions(taxdb, scenario.classification)
        assert all(oid != scenario.taxon1.oid for oid, _, _ in mismatches)
