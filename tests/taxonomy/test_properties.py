"""Property-based tests over the taxonomy substrate."""

from hypothesis import given, settings, strategies as st

from repro.taxonomy import (
    FloraParameters,
    NameDeriver,
    generate_flora,
)
from repro.taxonomy.nomenclature import (
    RANK_ENDINGS,
    authorship,
    correct_ending,
    epithet_problems,
    format_full_name,
)
from repro.taxonomy.ranks import RANK_SEQUENCE

_ranked = st.sampled_from([r.name for r in RANK_SEQUENCE])
_word = st.from_regex(r"[A-Za-z]{3,12}", fullmatch=True)


class TestNomenclatureProperties:
    @given(_word, st.sampled_from(sorted(RANK_ENDINGS)))
    def test_correct_ending_idempotent(self, word, rank):
        once = correct_ending(word, rank)
        assert correct_ending(once, rank) == once

    @given(_word, st.sampled_from(sorted(RANK_ENDINGS)))
    def test_correct_ending_produces_required_suffix(self, word, rank):
        from repro.taxonomy.nomenclature import FAMILY_ENDING_EXCEPTIONS

        fixed = correct_ending(word, rank)
        if rank == "Familia" and word in FAMILY_ENDING_EXCEPTIONS:
            assert fixed == word
        else:
            assert fixed.endswith(RANK_ENDINGS[rank])

    @given(_word, _word)
    def test_authorship_brackets_exactly_once(self, author, basionym_author):
        cite = authorship(author, basionym_author)
        assert cite.count("(") == 1
        assert cite == f"({basionym_author}){author}"
        # And re-deriving with the already-bracketed author is stable.
        assert authorship(cite, basionym_author) == cite

    @given(_word, _ranked)
    def test_epithet_problems_never_raises(self, word, rank):
        # The message-returning form must be total over arbitrary words.
        result = epithet_problems(word, rank)
        assert result is None or isinstance(result, str)

    @given(_word, _word)
    def test_binomial_contains_both_parts(self, genus, species):
        full = format_full_name(
            species.lower(), "Species", "L.",
            parent_epithets=(genus.capitalize(),),
        )
        assert genus.capitalize() in full
        assert species.lower() in full
        assert full.endswith("L.")


class TestDerivationProperties:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=1, max_value=10_000))
    def test_generated_floras_always_derive_to_ascribed_names(self, seed):
        """For any seed, deriving names over the generated flora finds
        exactly the ascribed nomenclature — the generator and the ICBN
        algorithm agree by construction."""
        flora = generate_flora(
            FloraParameters(
                families=1,
                genera_per_family=2,
                species_per_genus=2,
                specimens_per_species=1,
                seed=seed,
            )
        )
        taxdb = flora.taxdb
        results = NameDeriver(taxdb, author="Prop", year=2026).derive(
            flora.classification
        )
        assert all(r.action == "existing" for r in results)
        for ct in flora.species_taxa + flora.genus_taxa + flora.family_taxa:
            assert (
                taxdb.calculated_name(ct).oid == taxdb.ascribed_name(ct).oid
            )

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=1, max_value=10_000))
    def test_derivation_publishes_nothing_on_consistent_data(self, seed):
        flora = generate_flora(
            FloraParameters(
                families=1, genera_per_family=2, species_per_genus=2,
                specimens_per_species=1, seed=seed,
            )
        )
        before = len(flora.taxdb.names())
        NameDeriver(flora.taxdb, author="Prop", year=2026).derive(
            flora.classification
        )
        assert len(flora.taxdb.names()) == before
