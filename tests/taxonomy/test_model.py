"""The taxonomic model: names, typification, circumscriptions."""

import pytest

from repro.errors import TaxonomyError, TypificationError
from repro.taxonomy import (
    HOLOTYPE,
    ISOTYPE,
    LECTOTYPE,
    NEOTYPE,
    SYNTYPE,
    TaxonomyDatabase,
)


@pytest.fixture
def taxdb():
    return TaxonomyDatabase()


class TestNames:
    def test_publish_validates_epithet(self, taxdb):
        from repro.errors import NomenclatureError

        with pytest.raises(NomenclatureError):
            taxdb.publish_name("apium", "Genus")

    def test_publish_without_validation(self, taxdb):
        nt = taxdb.publish_name("apium", "Genus", validate=False)
        assert nt.get("epithet") == "apium"

    def test_unknown_status(self, taxdb):
        with pytest.raises(TaxonomyError):
            taxdb.publish_name("Apium", "Genus", status="dubious")

    def test_placement_chain_in_full_name(self, taxdb):
        genus = taxdb.publish_name("Apium", "Genus", author="L.", year=1753)
        species = taxdb.publish_name(
            "graveolens", "Species", author="L.", year=1753, placement=genus
        )
        assert taxdb.full_name(species) == "Apium graveolens L."
        assert taxdb.full_name(genus) == "Apium L."

    def test_basionym_authorship(self, taxdb):
        basionym = taxdb.publish_name("repens", "Species", author="Jacq.")
        genus = taxdb.publish_name("Apium", "Genus", author="L.")
        combo = taxdb.publish_name(
            "repens", "Species", author="Lag.",
            placement=genus, basionym=basionym,
        )
        assert taxdb.full_name(combo) == "Apium repens (Jacq.)Lag."

    def test_placement_must_be_nt(self, taxdb):
        specimen = taxdb.new_specimen()
        with pytest.raises(TaxonomyError):
            taxdb.publish_name("Apium", "Genus", placement=specimen)

    def test_find_names(self, taxdb):
        taxdb.publish_name("Apium", "Genus", author="L.")
        taxdb.publish_name("Bpium", "Genus", author="K.", validate=False)
        assert len(taxdb.find_names(rank="Genus")) == 2
        assert len(taxdb.find_names(epithet="Apium")) == 1
        assert len(taxdb.find_names(author="K.")) == 1


class TestTypification:
    def test_holotype_designation(self, taxdb):
        nt = taxdb.publish_name("Apium", "Genus")
        specimen = taxdb.new_specimen(collector="L.")
        taxdb.typify(nt, specimen, HOLOTYPE)
        assert taxdb.primary_type(nt) == specimen
        assert taxdb.types_of(nt) == [(HOLOTYPE, specimen)]

    def test_only_one_primary_type(self, taxdb):
        nt = taxdb.publish_name("Apium", "Genus")
        s1, s2 = taxdb.new_specimen(), taxdb.new_specimen()
        taxdb.typify(nt, s1, HOLOTYPE)
        for kind in (HOLOTYPE, LECTOTYPE, NEOTYPE):
            with pytest.raises(TypificationError):
                taxdb.typify(nt, s2, kind)

    def test_many_isotypes_and_syntypes(self, taxdb):
        nt = taxdb.publish_name("Apium", "Genus")
        for _ in range(3):
            taxdb.typify(nt, taxdb.new_specimen(), ISOTYPE)
        taxdb.typify(nt, taxdb.new_specimen(), SYNTYPE)
        assert len(taxdb.types_of(nt)) == 4

    def test_isotypes_do_not_govern(self, taxdb):
        nt = taxdb.publish_name("Apium", "Genus")
        iso = taxdb.new_specimen()
        taxdb.typify(nt, iso, ISOTYPE)
        assert taxdb.primary_type(nt) is None
        lecto = taxdb.new_specimen()
        taxdb.typify(nt, lecto, LECTOTYPE)
        assert taxdb.primary_type(nt) == lecto

    def test_priority_holo_over_lecto(self, taxdb):
        # A name cannot have both, but priority is expressed in lookup
        # order; check lectotype alone governs, then is outranked in a
        # name that has a holotype.
        nt = taxdb.publish_name("Apium", "Genus")
        lecto = taxdb.new_specimen()
        taxdb.typify(nt, lecto, LECTOTYPE)
        assert taxdb.primary_type(nt) == lecto

    def test_nt_as_type(self, taxdb):
        genus = taxdb.publish_name("Apium", "Genus")
        species = taxdb.publish_name("graveolens", "Species")
        taxdb.typify(genus, species, HOLOTYPE)
        assert taxdb.primary_type(genus) == species
        assert taxdb.names_typified_by(species) == [genus]

    def test_unknown_kind(self, taxdb):
        nt = taxdb.publish_name("Apium", "Genus")
        with pytest.raises(TypificationError):
            taxdb.typify(nt, taxdb.new_specimen(), "paratype")

    def test_type_must_be_specimen_or_nt(self, taxdb):
        nt = taxdb.publish_name("Apium", "Genus")
        ct = taxdb.new_taxon("Genus")
        with pytest.raises(TypificationError):
            taxdb.typify(nt, ct, HOLOTYPE)

    def test_role_acquisition(self, taxdb):
        """A specimen used as a type acquires the type_kind role (§4.4.5)."""
        nt = taxdb.publish_name("Apium", "Genus")
        specimen = taxdb.new_specimen()
        assert taxdb.type_role(specimen) is None
        taxdb.typify(nt, specimen, HOLOTYPE)
        assert taxdb.type_role(specimen) == HOLOTYPE
        assert specimen.get("type_kind") == HOLOTYPE


class TestTaxaAndPlacement:
    def test_working_name(self, taxdb):
        ct = taxdb.new_taxon("Genus", working_name="Taxon 1")
        assert taxdb.working_name_of(ct) == "Taxon 1"
        assert taxdb.display_name(ct) == "Taxon 1"

    def test_working_name_dies_with_taxon(self, taxdb):
        ct = taxdb.new_taxon("Genus", working_name="W")
        assert taxdb.schema.count("WorkingName") == 1
        taxdb.schema.delete(ct)
        assert taxdb.schema.count("WorkingName") == 0

    def test_place_enforces_rank_order(self, taxdb):
        c = taxdb.new_classification("c")
        genus = taxdb.new_taxon("Genus")
        family = taxdb.new_taxon("Familia")
        from repro.errors import RankOrderError

        with pytest.raises(RankOrderError):
            taxdb.place(c, genus, family)

    def test_place_single_parent_per_classification(self, taxdb):
        c = taxdb.new_classification("c")
        g1, g2 = taxdb.new_taxon("Genus"), taxdb.new_taxon("Genus")
        sp = taxdb.new_taxon("Species")
        taxdb.place(c, g1, sp)
        with pytest.raises(TaxonomyError):
            taxdb.place(c, g2, sp)

    def test_same_taxon_in_two_classifications(self, taxdb):
        c1, c2 = taxdb.new_classification("a"), taxdb.new_classification("b")
        g1, g2 = taxdb.new_taxon("Genus"), taxdb.new_taxon("Genus")
        sp = taxdb.new_taxon("Species")
        taxdb.place(c1, g1, sp)
        taxdb.place(c2, g2, sp)  # overlap across classifications is fine
        assert c1.parents(sp) == [g1]
        assert c2.parents(sp) == [g2]

    def test_parent_must_be_ct(self, taxdb):
        c = taxdb.new_classification("c")
        s1, s2 = taxdb.new_specimen(), taxdb.new_specimen()
        with pytest.raises(TaxonomyError):
            taxdb.place(c, s1, s2)

    def test_nt_not_placeable(self, taxdb):
        c = taxdb.new_classification("c")
        g = taxdb.new_taxon("Genus")
        nt = taxdb.publish_name("Apium", "Genus")
        with pytest.raises(TaxonomyError):
            taxdb.place(c, g, nt)

    def test_place_records_trace(self, taxdb):
        c = taxdb.new_classification("c")
        g = taxdb.new_taxon("Genus")
        sp = taxdb.new_taxon("Species")
        taxdb.place(c, g, sp, motivation="petals", actor="me")
        entries = taxdb.trace.for_object(sp.oid)
        assert entries and entries[0].reason == "petals"

    def test_specimens_under_recursive(self, taxdb):
        c = taxdb.new_classification("c")
        family = taxdb.new_taxon("Familia")
        genus = taxdb.new_taxon("Genus")
        species = taxdb.new_taxon("Species")
        taxdb.place(c, family, genus)
        taxdb.place(c, genus, species)
        specimens = [taxdb.new_specimen() for _ in range(3)]
        for s in specimens:
            taxdb.place(c, species, s)
        assert set(taxdb.specimens_under(c, family)) == set(specimens)
        assert set(taxdb.specimens_under(c, species)) == set(specimens)

    def test_taxa_at_rank(self, taxdb):
        c = taxdb.new_classification("c")
        g = taxdb.new_taxon("Genus")
        s1, s2 = taxdb.new_taxon("Species"), taxdb.new_taxon("Species")
        taxdb.place(c, g, s1)
        taxdb.place(c, g, s2)
        assert taxdb.taxa_at_rank(c, "Species") == [s1, s2]
        assert taxdb.taxa_at_rank(c, "Genus") == [g]

    def test_iter_taxa_top_down(self, taxdb):
        c = taxdb.new_classification("c")
        family = taxdb.new_taxon("Familia")
        genus = taxdb.new_taxon("Genus")
        species = taxdb.new_taxon("Species")
        taxdb.place(c, family, genus)
        taxdb.place(c, genus, species)
        order = list(taxdb.iter_taxa_top_down(c))
        assert order == [family, genus, species]

    def test_ascribed_and_calculated_names(self, taxdb):
        ct = taxdb.new_taxon("Genus", working_name="w")
        nt1 = taxdb.publish_name("Apium", "Genus", author="L.")
        nt2 = taxdb.publish_name("Helosciadium", "Genus", author="K.")
        taxdb.ascribe_name(ct, nt1)
        assert taxdb.ascribed_name(ct) == nt1
        assert taxdb.display_name(ct) == "Apium L."
        taxdb.set_calculated_name(ct, nt2)
        assert taxdb.display_name(ct) == "Helosciadium K."
        # replacing is allowed
        taxdb.set_calculated_name(ct, nt1)
        assert taxdb.calculated_name(ct) == nt1


class TestPersistence:
    def test_taxonomy_roundtrip(self, tmp_path):
        from repro.storage.store import ObjectStore

        path = tmp_path / "tax.plog"
        store = ObjectStore(path)
        taxdb = TaxonomyDatabase(store)
        genus_nt = taxdb.publish_name("Apium", "Genus", author="L.", year=1753)
        specimen = taxdb.new_specimen(collector="L.")
        taxdb.typify(genus_nt, specimen, HOLOTYPE)
        c = taxdb.new_classification("rev", author="me")
        genus_ct = taxdb.new_taxon("Genus", working_name="G")
        taxdb.place(c, genus_ct, taxdb.new_taxon("Species", working_name="s"))
        taxdb.commit()
        store.close()

        store2 = ObjectStore(path)
        taxdb2 = TaxonomyDatabase(store2)
        assert len(taxdb2.names()) == 1
        nt = taxdb2.names()[0]
        assert taxdb2.full_name(nt) == "Apium L."
        assert taxdb2.primary_type(nt) is not None
        c2 = taxdb2.classifications.get("rev")
        assert len(c2) == 1
        assert taxdb2.working_name_of(c2.roots()[0]) == "G"
        assert len(taxdb2.trace) == 1
        store2.close()
