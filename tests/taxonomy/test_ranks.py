"""ICBN rank hierarchy (Figure 1)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import RankOrderError
from repro.taxonomy.ranks import (
    RANK_SEQUENCE,
    RankCategory,
    get_rank,
    is_rank,
    primary_ranks,
    ranks_between,
    species_placement_valid,
    validate_placement,
    validate_rank_selection,
    walk_down,
)


class TestSequence:
    def test_full_sequence_length(self):
        # 7 primary + 5 secondary, each with a sub-rank.
        assert len(RANK_SEQUENCE) == 24

    def test_strictly_increasing_orders(self):
        orders = [r.order for r in RANK_SEQUENCE]
        assert orders == sorted(orders)
        assert len(set(orders)) == len(orders)

    def test_primary_ranks(self):
        names = [r.name for r in primary_ranks()]
        assert names == [
            "Regnum", "Divisio", "Classis", "Ordo", "Familia", "Genus",
            "Species",
        ]

    def test_each_rank_followed_by_its_sub(self):
        by_name = {r.name: r for r in RANK_SEQUENCE}
        for rank in RANK_SEQUENCE:
            if rank.category is RankCategory.SUB:
                continue
            sub = by_name["Sub" + rank.name.lower()]
            assert sub.order == rank.order + 10

    def test_key_orderings(self):
        assert get_rank("Genus").is_above(get_rank("Species"))
        assert get_rank("Familia").is_above(get_rank("Tribus"))
        assert get_rank("Tribus").is_above(get_rank("Genus"))
        assert get_rank("Sectio").is_above(get_rank("Series"))
        assert get_rank("Species").is_above(get_rank("Varietas"))
        assert get_rank("Species") < get_rank("Subspecies")


class TestLookup:
    def test_case_insensitive(self):
        assert get_rank("genus") == get_rank("Genus")

    def test_aliases(self):
        assert get_rank("family").name == "Familia"
        assert get_rank("kingdom").name == "Regnum"
        assert get_rank("phyllum").name == "Divisio"  # thesis spelling

    def test_unknown(self):
        with pytest.raises(RankOrderError):
            get_rank("Megagenus")

    def test_is_rank(self):
        assert is_rank("Species")
        assert is_rank("variety")
        assert not is_rank("Shoebox")


class TestPlacementRules:
    def test_valid_placement(self):
        validate_placement("Genus", "Species")
        validate_placement("Familia", "Genus")
        validate_placement("Genus", "Sectio")

    def test_same_rank_rejected(self):
        with pytest.raises(RankOrderError):
            validate_placement("Genus", "Genus")

    def test_inverted_rejected(self):
        with pytest.raises(RankOrderError):
            validate_placement("Species", "Genus")

    def test_species_placement_window(self):
        assert species_placement_valid("Genus")
        assert species_placement_valid("Subgenus")
        assert species_placement_valid("Sectio")
        assert species_placement_valid("Series")
        assert species_placement_valid("Subseries")
        assert not species_placement_valid("Species")
        assert not species_placement_valid("Familia")


class TestSelections:
    def test_valid_selection(self):
        ranks = validate_rank_selection(
            ["Regnum", "Divisio", "Ordo", "Genus", "Sectio", "Species"]
        )
        assert [r.name for r in ranks][0] == "Regnum"

    def test_non_descending_rejected(self):
        with pytest.raises(RankOrderError):
            validate_rank_selection(["Genus", "Familia"])

    def test_ranks_between(self):
        window = ranks_between("Genus", "Species")
        names = [r.name for r in window]
        assert names[0] == "Genus"
        assert names[-1] == "Species"
        assert "Sectio" in names
        assert "Familia" not in names

    def test_ranks_between_exclusive(self):
        window = ranks_between(
            "Genus", "Species", include_lower=False
        )
        assert window[-1].name != "Species"

    def test_ranks_between_inverted(self):
        with pytest.raises(RankOrderError):
            ranks_between("Species", "Genus")

    def test_walk_down(self):
        below = list(walk_down("Varietas"))
        assert [r.name for r in below] == ["Subvarietas", "Forma", "Subforma"]


@given(st.sampled_from(RANK_SEQUENCE), st.sampled_from(RANK_SEQUENCE))
def test_property_comparisons_consistent(a, b):
    assert (a.is_above(b)) == (b.is_below(a))
    assert (a < b) == (a.order < b.order)
    if a.is_above(b):
        validate_placement(a, b)
    else:
        with pytest.raises(RankOrderError):
            validate_placement(a, b)
