"""The Figure 4 multiple-classifications scenario, end to end."""

import pytest

from repro.classification import Context, OverlapKind
from repro.taxonomy import (
    NameDeriver,
    build_shapes_scenario,
    compare_taxonomic,
    deceptive_names,
    name_based_synonyms,
)


@pytest.fixture(scope="module")
def scenario():
    sc = build_shapes_scenario()
    # Derive names for all four classifications, in chronological order.
    for key, author, year in (
        ("T1", "T1", 1900),
        ("T2", "T2", 1920),
        ("T3", "T3", 1950),
        ("T4", "T4", 1980),
    ):
        NameDeriver(sc.taxdb, author=author, year=year).derive(
            sc.classifications[key]
        )
    return sc


class TestOverlappingClassifications:
    def test_four_classifications_over_shared_specimens(self, scenario):
        taxdb = scenario.taxdb
        manager = taxdb.classifications
        assert len(manager) == 4
        white_square = scenario.specimens["white_square"]
        classified_in = [
            c.name for c in manager.classifications_of_node(white_square)
        ]
        assert len(classified_in) == 4

    def test_mid_grey_square_ignored_by_t3(self, scenario):
        """Taxonomist 3 deliberately ignores the mid-grey square (§2.1.3)."""
        grey = scenario.specimens["grey_square"]
        t3 = scenario.classifications["T3"]
        assert grey.oid not in t3.node_oids()
        t1 = scenario.classifications["T1"]
        assert grey.oid in t1.node_oids()

    def test_contexts_report_different_parents(self, scenario):
        taxdb = scenario.taxdb
        ctx = Context.of(taxdb.classifications, "T2 sections", "T3 brightness")
        white_circle = scenario.specimens["white_circle"]
        placements = ctx.placements_of(white_circle)
        t2_parent = placements["T2 sections"][0]
        t3_parent = placements["T3 brightness"][0]
        assert taxdb.working_name_of(t2_parent) == "Circles"
        assert taxdb.working_name_of(t3_parent) == "brightness white"
        assert not ctx.agreement(white_circle)


class TestTypePrecedence:
    def test_white_group_named_squares(self, scenario):
        """The brightness-white group contains the white square — the
        oldest type — so the ICBN forces the name 'Squares' on a group
        full of circles and ovals (the thesis's unintuitive result)."""
        taxdb = scenario.taxdb
        white_ct = scenario.taxa["T3/white"]
        name = taxdb.calculated_name(white_ct)
        assert name.get("epithet") == "Squares"

    def test_every_t3_group_reuses_an_old_name(self, scenario):
        taxdb = scenario.taxdb
        for key in ("white", "pale", "light-grey", "dark-grey", "black"):
            ct = scenario.taxa[f"T3/{key}"]
            nt = taxdb.calculated_name(ct)
            assert nt is not None
            assert nt.get("year") in (1900, 1920)  # no new names needed

    def test_top_groups_all_named_shapes(self, scenario):
        taxdb = scenario.taxdb
        for key in ("T1", "T2", "T3", "T4"):
            top = scenario.taxa[f"{key}/Shapes"]
            nt = taxdb.calculated_name(top)
            assert nt.get("epithet") == "Shapes"

    def test_diamonds_get_new_name_in_t4(self, scenario):
        taxdb = scenario.taxdb
        diamonds = scenario.taxa["T4/Diamonds"]
        nt = taxdb.calculated_name(diamonds)
        assert nt.get("year") == 1980
        assert nt.get("author") == "T4"


class TestSynonymDiscovery:
    def test_specimen_based_full_synonyms_t2_t4(self, scenario):
        """T4 repeats T2's species groups (plus diamonds): the repeated
        groups are full specimen-based synonyms."""
        taxdb = scenario.taxdb
        report = compare_taxonomic(
            taxdb,
            scenario.classifications["T2"],
            scenario.classifications["T4"],
        )
        fulls = report.full_synonyms()
        full_pairs = {(p.taxon_a, p.taxon_b) for p in fulls}
        assert (
            scenario.taxa["T2/Squares"].oid,
            scenario.taxa["T4/Squares"].oid,
        ) in full_pairs

    def test_homotypic_flagging(self, scenario):
        taxdb = scenario.taxdb
        report = compare_taxonomic(
            taxdb,
            scenario.classifications["T2"],
            scenario.classifications["T4"],
        )
        squares_pair = [
            p
            for p in report.full_synonyms()
            if p.taxon_a == scenario.taxa["T2/Squares"].oid
            and p.taxon_b == scenario.taxa["T4/Squares"].oid
        ][0]
        assert squares_pair.homotypic is True

    def test_pro_parte_t2_vs_t3(self, scenario):
        """Brightness groups cut across shape groups: pro-parte synonymy."""
        taxdb = scenario.taxdb
        report = compare_taxonomic(
            taxdb,
            scenario.classifications["T2"],
            scenario.classifications["T3"],
        )
        squares_t2 = scenario.taxa["T2/Squares"].oid
        white_t3 = scenario.taxa["T3/white"].oid
        pair = [
            p
            for p in report.synonym_pairs
            if p.taxon_a == squares_t2 and p.taxon_b == white_t3
        ][0]
        assert pair.kind is OverlapKind.PARTIAL

    def test_name_based_synonyms_exist(self, scenario):
        taxdb = scenario.taxdb
        pairs = name_based_synonyms(
            taxdb,
            scenario.classifications["T2"],
            scenario.classifications["T3"],
        )
        epithets = {p.epithet for p in pairs}
        assert "Squares" in epithets

    def test_deceptive_names_detected(self, scenario):
        """Same name, different circumscription: T2/Squares vs T3's
        'Squares' (the white-brightness group) — exactly the trap the
        thesis's pharmaceutical example warns about."""
        taxdb = scenario.taxdb
        traps = deceptive_names(
            taxdb,
            scenario.classifications["T2"],
            scenario.classifications["T3"],
        )
        assert any(p.epithet == "Squares" for p in traps)
