"""Taxonomic synonym discovery: specimen-based vs name-based."""

import pytest

from repro.classification import OverlapKind
from repro.taxonomy import (
    HOLOTYPE,
    TaxonomyDatabase,
    compare_taxonomic,
    deceptive_names,
    name_based_synonyms,
)


@pytest.fixture
def setup():
    """Two classifications of four specimens.

    c1: A={s0,s1}, B={s2,s3};  c2: X={s0,s1}, Y={s2,s9new}.
    A and X share the same type specimen (homotypic full synonyms).
    """
    taxdb = TaxonomyDatabase()
    specimens = [taxdb.new_specimen(field_name=f"s{i}") for i in range(4)]
    extra = taxdb.new_specimen(field_name="s9new")

    genus_nt = taxdb.publish_name("Apium", "Genus", author="L.", year=1753)
    nt_a = taxdb.publish_name(
        "alba", "Species", author="L.", year=1753, placement=genus_nt
    )
    taxdb.typify(nt_a, specimens[0], HOLOTYPE)
    nt_b = taxdb.publish_name(
        "bella", "Species", author="L.", year=1760, placement=genus_nt
    )
    taxdb.typify(nt_b, specimens[2], HOLOTYPE)

    c1 = taxdb.new_classification("c1", author="one")
    c2 = taxdb.new_classification("c2", author="two")
    taxa = {}
    for name, classification, members, nt in (
        ("A", c1, specimens[:2], nt_a),
        ("B", c1, specimens[2:4], nt_b),
        ("X", c2, specimens[:2], nt_a),
        ("Y", c2, [specimens[2], extra], nt_b),
    ):
        ct = taxdb.new_taxon("Species", working_name=name)
        taxdb.ascribe_name(ct, nt)
        for member in members:
            taxdb.place(classification, ct, member)
        taxa[name] = ct
    return taxdb, c1, c2, taxa, specimens


class TestSpecimenBased:
    def test_full_homotypic_synonym(self, setup):
        taxdb, c1, c2, taxa, _ = setup
        report = compare_taxonomic(taxdb, c1, c2)
        fulls = report.full_synonyms()
        assert [(p.taxon_a, p.taxon_b) for p in fulls] == [
            (taxa["A"].oid, taxa["X"].oid)
        ]
        assert fulls[0].homotypic is True

    def test_pro_parte_homotypic(self, setup):
        taxdb, c1, c2, taxa, _ = setup
        report = compare_taxonomic(taxdb, c1, c2)
        partials = report.pro_parte_synonyms()
        pair = [p for p in partials if p.taxon_a == taxa["B"].oid][0]
        assert pair.taxon_b == taxa["Y"].oid
        assert pair.kind in (OverlapKind.PARTIAL,)
        assert pair.homotypic is True  # same type, different delimitation

    def test_heterotypic_when_types_differ(self, setup):
        taxdb, c1, c2, taxa, specimens = setup
        # Re-type Y's name copy: give Y an ascribed name typified elsewhere.
        other_nt = taxdb.publish_name(
            "cera", "Species", author="K.", year=1800
        )
        taxdb.typify(other_nt, specimens[3], HOLOTYPE)
        taxdb.ascribe_name(taxa["Y"], other_nt)
        report = compare_taxonomic(taxdb, c1, c2)
        pair = [
            p
            for p in report.pro_parte_synonyms()
            if p.taxon_a == taxa["B"].oid and p.taxon_b == taxa["Y"].oid
        ][0]
        assert pair.homotypic is False


class TestNameBased:
    def test_same_name_pairs(self, setup):
        taxdb, c1, c2, taxa, _ = setup
        pairs = name_based_synonyms(taxdb, c1, c2)
        keyed = {(p.taxon_a, p.taxon_b): p for p in pairs}
        assert (taxa["A"].oid, taxa["X"].oid) in keyed
        assert keyed[(taxa["A"].oid, taxa["X"].oid)].same_name_object

    def test_deceptive_pair_detected(self, setup):
        """B and Y carry the same name but different circumscriptions."""
        taxdb, c1, c2, taxa, _ = setup
        traps = deceptive_names(taxdb, c1, c2)
        assert any(
            (p.taxon_a, p.taxon_b) == (taxa["B"].oid, taxa["Y"].oid)
            for p in traps
        )
        # A/X is NOT deceptive: full overlap.
        assert not any(
            (p.taxon_a, p.taxon_b) == (taxa["A"].oid, taxa["X"].oid)
            for p in traps
        )


class TestInstanceSynonyms:
    def test_duplicate_specimens_counted_once(self, setup):
        """§4.5: two records of the same physical specimen, declared
        instance synonyms, unify the circumscriptions."""
        taxdb, c1, c2, taxa, specimens = setup
        duplicate = taxdb.new_specimen(field_name="s0-dup")
        taxdb.place(c2, taxa["X"], duplicate)
        report = compare_taxonomic(taxdb, c1, c2)
        pair = [
            p
            for p in report.synonym_pairs
            if (p.taxon_a, p.taxon_b) == (taxa["A"].oid, taxa["X"].oid)
        ][0]
        assert pair.kind is not OverlapKind.FULL  # dup breaks equality
        taxdb.schema.synonyms.declare(specimens[0].oid, duplicate.oid)
        report2 = compare_taxonomic(taxdb, c1, c2)
        pair2 = [
            p
            for p in report2.synonym_pairs
            if (p.taxon_a, p.taxon_b) == (taxa["A"].oid, taxa["X"].oid)
        ][0]
        assert pair2.kind is OverlapKind.FULL
