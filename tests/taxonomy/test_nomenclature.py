"""ICBN name-formation rules (§2.1.2)."""

import pytest

from repro.errors import NomenclatureError
from repro.taxonomy.nomenclature import (
    FAMILY_ENDING_EXCEPTIONS,
    authorship,
    correct_ending,
    epithet_problems,
    expected_ending,
    format_full_name,
    is_multinomial,
    needs_placement,
    requires_capital,
    validate_epithet,
)


class TestCapitalisation:
    def test_above_species_capitalised(self):
        for rank in ("Genus", "Familia", "Sectio", "Series", "Subgenus"):
            assert requires_capital(rank)

    def test_species_and_below_lowercase(self):
        for rank in ("Species", "Subspecies", "Varietas", "Forma"):
            assert not requires_capital(rank)

    def test_wrong_case_rejected(self):
        with pytest.raises(NomenclatureError):
            validate_epithet("apium", "Genus")
        with pytest.raises(NomenclatureError):
            validate_epithet("Graveolens", "Species")

    def test_correct_case_accepted(self):
        validate_epithet("Apium", "Genus")
        validate_epithet("graveolens", "Species")


class TestWordForm:
    def test_multi_word_rejected(self):
        with pytest.raises(NomenclatureError):
            validate_epithet("Apium graveolens", "Genus")

    def test_hyphen_only_at_genus(self):
        validate_epithet("Rosa-sinensis", "Genus")
        with pytest.raises(NomenclatureError):
            validate_epithet("semi-alba", "Species")

    def test_empty_and_whitespace(self):
        with pytest.raises(NomenclatureError):
            validate_epithet("", "Genus")
        with pytest.raises(NomenclatureError):
            validate_epithet(" Apium", "Genus")

    def test_digits_rejected(self):
        with pytest.raises(NomenclatureError):
            validate_epithet("Apium2", "Genus")


class TestEndings:
    def test_family_must_end_aceae(self):
        validate_epithet("Apiaceae", "Familia")
        with pytest.raises(NomenclatureError):
            validate_epithet("Apiales", "Familia")

    def test_eight_family_exceptions(self):
        assert len(FAMILY_ENDING_EXCEPTIONS) == 8
        for name in FAMILY_ENDING_EXCEPTIONS:
            validate_epithet(name, "Familia")

    def test_subfamily_tribe_subtribe(self):
        validate_epithet("Apioideae", "Subfamilia")
        validate_epithet("Apieae", "Tribus")
        validate_epithet("Apiinea", "Subtribus")
        with pytest.raises(NomenclatureError):
            validate_epithet("Apiaceae", "Subfamilia")

    def test_expected_ending(self):
        assert expected_ending("Familia") == "aceae"
        assert expected_ending("Genus") is None

    def test_correct_ending(self):
        assert correct_ending("Apiales", "Familia") == "Apialesaceae"
        assert correct_ending("Apiaceae", "Subfamilia") == "Apioideae"
        assert correct_ending("Palmae", "Familia") == "Palmae"  # conserved
        assert correct_ending("Apium", "Genus") == "Apium"

    def test_epithet_problems_returns_message(self):
        assert epithet_problems("Apium", "Genus") is None
        assert "aceae" in epithet_problems("Wrongus", "Familia")


class TestNameAssembly:
    def test_is_multinomial(self):
        assert is_multinomial("Species")
        assert is_multinomial("Subspecies")
        assert not is_multinomial("Genus")

    def test_needs_placement(self):
        assert needs_placement("Species")
        assert needs_placement("Sectio")
        assert not needs_placement("Genus")
        assert not needs_placement("Familia")

    def test_authorship_plain(self):
        assert authorship("L.") == "L."

    def test_authorship_with_basionym(self):
        assert authorship("Lag.", "Jacq.") == "(Jacq.)Lag."

    def test_authorship_already_bracketed(self):
        assert authorship("(Jacq.)Lag.", "Jacq.") == "(Jacq.)Lag."

    def test_format_uninomial(self):
        assert format_full_name("Apium", "Genus", "L.") == "Apium L."

    def test_format_binomial(self):
        assert (
            format_full_name(
                "graveolens", "Species", "L.", parent_epithets=("Apium",)
            )
            == "Apium graveolens L."
        )

    def test_format_recombination(self):
        assert (
            format_full_name(
                "repens",
                "Species",
                "Raguenaud",
                parent_epithets=("Heliosciadium",),
                basionym_author="Jacq.",
            )
            == "Heliosciadium repens (Jacq.)Raguenaud"
        )

    def test_format_without_author(self):
        assert format_full_name("Apium", "Genus") == "Apium"
