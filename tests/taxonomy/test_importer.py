"""Legacy-data import (requirement 10)."""

import pytest

from repro.taxonomy import NameDeriver, TaxonomyDatabase
from repro.taxonomy.importer import (
    import_classification,
    import_names,
    import_specimens,
)

NAMES_CSV = """epithet,rank,author,year,publication,parent,basionym_author,status
Apium,Genus,L.,1753,Sp. Pl.,,,
graveolens,Species,L.,1753,Sp. Pl.,Apium,,
repens,Species,Jacq.,1798,,,,
repens,Species,Lag.,1821,,Apium,Jacq.,
Heliosciadium,Genus,W.D.J.Koch,1824,,,,
"""

SPECIMENS_CSV = """collector,collection_number,herbarium,field_name,collected,type_of,type_kind
Linnaeus,Herb.107,BM,apium-1,1753-05-01,graveolens,lectotype
Jacquin,J-1,W,repens-1,,repens,holotype
Anon,A-1,E,loose-1,,,
"""

PLACEMENTS_CSV = """child,child_rank,parent,parent_rank,specimen,motivation
GenusGroup,Genus,,,,
SpeciesGroup,Species,GenusGroup,Genus,,leaf shape
,,SpeciesGroup,,apium-1,
,,SpeciesGroup,,repens-1,
"""


@pytest.fixture
def taxdb():
    return TaxonomyDatabase()


class TestImportNames:
    def test_names_created_with_placements(self, taxdb):
        report = import_names(taxdb, NAMES_CSV)
        assert report.created_count == 5
        assert report.skipped == []
        combo = [
            nt
            for nt in taxdb.find_names(epithet="repens")
            if nt.get("author") == "Lag."
        ][0]
        assert taxdb.placement_of(combo).get("epithet") == "Apium"
        assert taxdb.full_name(combo) == "Apium repens (Jacq.)Lag."

    def test_basionym_linked(self, taxdb):
        import_names(taxdb, NAMES_CSV)
        combo = [
            nt
            for nt in taxdb.find_names(epithet="repens")
            if nt.get("author") == "Lag."
        ][0]
        assert taxdb.basionym_of(combo).get("author") == "Jacq."

    def test_unknown_parent_created_as_bare_genus(self, taxdb):
        report = import_names(
            taxdb,
            "epithet,rank,parent\nminor,Species,Ghostia\n",
        )
        assert report.created_count == 1
        ghost = taxdb.find_names(epithet="Ghostia")
        assert len(ghost) == 1
        assert ghost[0].get("rank") == "Genus"

    def test_bad_rows_reported(self, taxdb):
        report = import_names(
            taxdb,
            "epithet,rank\n,Genus\nApium,Megarank\n",
        )
        assert report.created_count == 0
        assert len(report.skipped) == 2
        assert "missing epithet" in report.skipped[0][1]
        assert "unknown rank" in report.skipped[1][1]

    def test_dict_rows_accepted(self, taxdb):
        report = import_names(
            taxdb, [{"epithet": "Apium", "rank": "Genus", "year": "1753"}]
        )
        assert report.created_count == 1
        assert taxdb.names()[0].get("year") == 1753


class TestImportSpecimens:
    def test_specimens_and_types(self, taxdb):
        import_names(taxdb, NAMES_CSV)
        report = import_specimens(taxdb, SPECIMENS_CSV)
        assert report.created_count == 3
        assert report.linked == 2
        graveolens = taxdb.find_names(epithet="graveolens")[0]
        primary = taxdb.primary_type(graveolens)
        assert primary.get("field_name") == "apium-1"
        assert primary.get("collected") is not None

    def test_unknown_type_target_reported(self, taxdb):
        report = import_specimens(
            taxdb,
            "collector,field_name,type_of\nX,s1,ghostium\n",
        )
        assert report.created_count == 1  # specimen still created
        assert any("ghostium" in why for _, why in report.skipped)

    def test_bad_date_skipped(self, taxdb):
        report = import_specimens(
            taxdb, "collector,collected\nX,not-a-date\n"
        )
        assert report.created_count == 0
        assert any("bad date" in why for _, why in report.skipped)


class TestImportClassification:
    def test_full_pipeline_to_derivation(self, taxdb):
        """Legacy import end-to-end: names + specimens + a classification,
        then automatic name derivation over the imported data."""
        import_names(taxdb, NAMES_CSV)
        import_specimens(taxdb, SPECIMENS_CSV)
        # The flat tables carry no name-to-name typification; complete the
        # type hierarchy the way a curator would (Apium typified by its
        # type species).
        apium = taxdb.find_names(epithet="Apium")[0]
        graveolens = taxdb.find_names(epithet="graveolens")[0]
        taxdb.typify(apium, graveolens, "holotype")
        classification, report = import_classification(
            taxdb, "legacy revision", PLACEMENTS_CSV, author="importer"
        )
        assert report.created_count == 2  # two CTs
        assert report.linked == 3  # one CT placement + two specimens
        assert classification.is_tree()
        results = NameDeriver(taxdb, author="Imp", year=2026).derive(
            classification
        )
        assert all(r.succeeded for r in results)
        genus_ct = [
            t for t in taxdb.taxa() if taxdb.working_name_of(t) == "GenusGroup"
        ][0]
        assert taxdb.display_name(genus_ct) == "Apium L."

    def test_rank_violations_reported_not_raised(self, taxdb):
        _, report = import_classification(
            taxdb,
            "bad",
            "child,child_rank,parent,parent_rank\n"
            "G,Genus,,\n"
            "F,Familia,G,Genus\n",  # family under genus: invalid
        )
        assert any("rank" in why.lower() for _, why in report.skipped)

    def test_unknown_specimen_reported(self, taxdb):
        _, report = import_classification(
            taxdb,
            "c",
            "child,child_rank,parent,parent_rank,specimen\n"
            "G,Genus,,,\n"
            ",,G,,phantom\n",
        )
        assert any("phantom" in why for _, why in report.skipped)
