"""Synthetic flora generator: shape, determinism, derivability."""

import pytest

from repro.taxonomy import (
    FloraParameters,
    NameDeriver,
    generate_flora,
)


@pytest.fixture(scope="module")
def flora():
    return generate_flora(
        FloraParameters(
            families=2, genera_per_family=2, species_per_genus=3,
            specimens_per_species=2, seed=42,
        )
    )


class TestShape:
    def test_counts(self, flora):
        p = flora.params
        assert len(flora.family_taxa) == p.families
        assert len(flora.genus_taxa) == p.families * p.genera_per_family
        assert len(flora.species_taxa) == p.total_species
        assert len(flora.specimens) == p.total_specimens

    def test_classification_is_tree(self, flora):
        assert flora.classification.is_tree()
        assert len(flora.classification.roots()) == flora.params.families

    def test_every_species_typified(self, flora):
        taxdb = flora.taxdb
        for species_ct in flora.species_taxa:
            nt = taxdb.ascribed_name(species_ct)
            assert nt is not None
            assert taxdb.primary_type(nt) is not None

    def test_ranks_descend(self, flora):
        taxdb = flora.taxdb
        c = flora.classification
        for genus in flora.genus_taxa:
            parents = c.parents(genus)
            assert [p.get("rank") for p in parents] == ["Familia"]

    def test_epithets_validate(self, flora):
        from repro.taxonomy.nomenclature import epithet_problems

        for nt in flora.taxdb.names():
            assert epithet_problems(nt.get("epithet"), nt.get("rank")) is None


class TestDeterminism:
    def test_same_seed_same_flora(self):
        params = FloraParameters(families=1, genera_per_family=2,
                                 species_per_genus=2, specimens_per_species=1)
        a = generate_flora(params)
        b = generate_flora(params)
        names_a = sorted(n.get("epithet") for n in a.taxdb.names())
        names_b = sorted(n.get("epithet") for n in b.taxdb.names())
        assert names_a == names_b

    def test_different_seed_differs(self):
        base = FloraParameters(families=1, genera_per_family=2,
                               species_per_genus=2, specimens_per_species=1)
        other = FloraParameters(families=1, genera_per_family=2,
                                species_per_genus=2, specimens_per_species=1,
                                seed=base.seed + 1)
        a = generate_flora(base)
        b = generate_flora(other)
        names_a = sorted(n.get("epithet") for n in a.taxdb.names())
        names_b = sorted(n.get("epithet") for n in b.taxdb.names())
        assert names_a != names_b


class TestDerivability:
    def test_derivation_reproduces_ascribed_names(self, flora):
        """The generated nomenclature is consistent: deriving names over
        the generated classification finds the ascribed names."""
        taxdb = flora.taxdb
        results = NameDeriver(taxdb, author="Check", year=2026).derive(
            flora.classification
        )
        assert all(r.succeeded for r in results)
        mismatch = 0
        for species_ct in flora.species_taxa:
            ascribed = taxdb.ascribed_name(species_ct)
            calculated = taxdb.calculated_name(species_ct)
            if ascribed.oid != calculated.oid:
                mismatch += 1
        assert mismatch == 0
