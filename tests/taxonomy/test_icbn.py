"""ICBN rules (Figures 35–40) enforced through the rule engine."""

import pytest

from repro.errors import ConstraintViolation
from repro.rules import OnViolation, RuleEngine
from repro.taxonomy import HOLOTYPE, TaxonomyDatabase
from repro.taxonomy.icbn_rules import (
    all_icbn_rules,
    install_icbn_rules,
)


@pytest.fixture
def taxdb():
    return TaxonomyDatabase()


@pytest.fixture
def engine(taxdb):
    return install_icbn_rules(taxdb)


class TestFamilyNameRule:
    def test_wrong_ending_rejected(self, taxdb, engine):
        with pytest.raises(ConstraintViolation, match="icbn_family_name"):
            taxdb.publish_name("Apiales", "Familia", validate=False)

    def test_correct_ending_accepted(self, taxdb, engine):
        taxdb.publish_name("Apiaceae", "Familia")

    def test_conserved_exception_accepted(self, taxdb, engine):
        taxdb.publish_name("Compositae", "Familia", validate=False)

    def test_rank_change_rechecked(self, taxdb, engine):
        nt = taxdb.publish_name("Apium", "Genus")
        with pytest.raises(ConstraintViolation):
            nt.set("rank", "Familia")
        assert nt.get("rank") == "Genus"  # rolled back

    def test_other_ranks_unaffected(self, taxdb, engine):
        taxdb.publish_name("Apium", "Genus")  # no -aceae needed


class TestGenusNameRule:
    def test_lowercase_rejected(self, taxdb, engine):
        with pytest.raises(ConstraintViolation, match="icbn_genus_name"):
            taxdb.publish_name("apium", "Genus", validate=False)

    def test_hyphen_allowed(self, taxdb, engine):
        taxdb.publish_name("Rosa-sinensis", "Genus")


class TestTypeExistenceRule:
    def test_warns_by_default_at_commit(self, taxdb, engine):
        taxdb.publish_name("Apium", "Genus")
        taxdb.commit()
        assert any(
            v.rule_name == "icbn_type_existence" for v in engine.warnings
        )

    def test_typified_name_passes(self, taxdb, engine):
        nt = taxdb.publish_name("Apium", "Genus")
        taxdb.typify(nt, taxdb.new_specimen(), HOLOTYPE)
        taxdb.commit()
        assert engine.warnings == []

    def test_strict_mode_aborts(self, taxdb):
        engine = install_icbn_rules(taxdb, strict_types=True)
        taxdb.publish_name("Apium", "Genus")
        with pytest.raises(ConstraintViolation):
            taxdb.commit()
        # automatic transaction abortion: nothing persisted in-session
        assert taxdb.schema.dirty_count == 0
        assert taxdb.names() == []

    def test_invalid_names_exempt(self, taxdb, engine):
        taxdb.publish_name("Dubium", "Genus", status="invalid")
        taxdb.commit()
        assert engine.warnings == []


class TestRankWindowRules:
    def test_species_under_family_rejected(self, taxdb, engine):
        c = taxdb.new_classification("c")
        family = taxdb.new_taxon("Familia")
        species = taxdb.new_taxon("Species")
        with pytest.raises(ConstraintViolation, match="icbn_species_rank"):
            taxdb.place(c, family, species)

    def test_species_under_genus_ok(self, taxdb, engine):
        c = taxdb.new_classification("c")
        taxdb.place(c, taxdb.new_taxon("Genus"), taxdb.new_taxon("Species"))

    def test_species_under_sectio_ok(self, taxdb, engine):
        c = taxdb.new_classification("c")
        taxdb.place(c, taxdb.new_taxon("Sectio"), taxdb.new_taxon("Species"))

    def test_series_under_family_rejected(self, taxdb, engine):
        c = taxdb.new_classification("c")
        with pytest.raises(ConstraintViolation, match="icbn_series_rank"):
            taxdb.place(c, taxdb.new_taxon("Familia"), taxdb.new_taxon("Series"))

    def test_series_under_genus_ok(self, taxdb, engine):
        c = taxdb.new_classification("c")
        taxdb.place(c, taxdb.new_taxon("Genus"), taxdb.new_taxon("Series"))


class TestPlacementRule:
    def test_direct_relate_checked(self, taxdb, engine):
        """The relationship rule guards even raw schema.relate calls that
        bypass the TaxonomyDatabase.place API."""
        genus = taxdb.new_taxon("Genus")
        family = taxdb.new_taxon("Familia")
        with pytest.raises(ConstraintViolation, match="icbn_placement"):
            taxdb.schema.relate("Includes", genus, family)

    def test_specimen_placement_unconstrained(self, taxdb, engine):
        species = taxdb.new_taxon("Species")
        taxdb.schema.relate("Includes", species, taxdb.new_specimen())


class TestEpithetFormRule:
    def test_warns_on_bad_epithet(self, taxdb, engine):
        # Capitalised Species epithet: violates §2.1.2 form (the genus
        # rule does not apply at this rank, so only the warning fires).
        taxdb.publish_name("Graveolens", "Species", validate=False)
        assert any(
            v.rule_name == "icbn_epithet_form" for v in engine.warnings
        )


class TestAudit:
    def test_check_all_invariants_reports_existing_violations(self, taxdb):
        # Insert bad data BEFORE installing rules (historical import).
        taxdb.publish_name("Apiales", "Familia", validate=False)
        engine = install_icbn_rules(taxdb)
        violations = engine.check_all_invariants()
        assert any(v.rule_name == "icbn_family_name" for v in violations)

    def test_rule_inventory(self):
        rules = all_icbn_rules()
        names = {r.name for r in rules}
        assert names == {
            "icbn_family_name",
            "icbn_genus_name",
            "icbn_type_existence",
            "icbn_species_rank",
            "icbn_series_rank",
            "icbn_placement",
            "icbn_epithet_form",
        }

    def test_interactive_override(self, taxdb):
        """Interactive rules (§5.2): the handler may accept a violation."""
        engine = RuleEngine(taxdb.schema)
        from repro.taxonomy.icbn_rules import family_name_rule

        rule = family_name_rule()
        rule.on_violation = OnViolation.INTERACTIVE
        engine.register(rule)
        decisions = []

        def handler(r, ctx):
            decisions.append(r.name)
            return True  # taxonomist accepts the exception

        engine.set_interactive_handler(handler)
        nt = taxdb.publish_name("Apiales", "Familia", validate=False)
        assert nt.get("epithet") == "Apiales"
        # The rule fires on both the attribute update and the creation
        # event; the handler accepted each time.
        assert set(decisions) == {"icbn_family_name"}
        assert len(decisions) >= 1


class TestAutonymRule:
    """The autonym ACTION rule (§5.2 automatic actions)."""

    @pytest.fixture
    def autonym_taxdb(self):
        taxdb = TaxonomyDatabase()
        install_icbn_rules(taxdb, autonyms=True)
        return taxdb

    def test_autonym_established(self, autonym_taxdb):
        taxdb = autonym_taxdb
        genus = taxdb.publish_name("Apium", "Genus", author="L.", year=1753)
        species = taxdb.publish_name(
            "graveolens", "Species", author="L.", year=1753, placement=genus
        )
        taxdb.publish_name(
            "dulce", "Varietas", author="Mill.", year=1768, placement=species
        )
        autonyms = [
            nt
            for nt in taxdb.find_names(epithet="graveolens", rank="Varietas")
        ]
        assert len(autonyms) == 1
        autonym = autonyms[0]
        assert taxdb.placement_of(autonym).oid == species.oid
        assert autonym.get("author") == ""  # no author citation
        assert (
            taxdb.full_name(autonym) == "Apium graveolens graveolens"
        )

    def test_rule_is_self_terminating(self, autonym_taxdb):
        """The autonym's own placement has matching epithets, so the rule
        does not recurse (no cascade error, exactly one autonym)."""
        taxdb = autonym_taxdb
        genus = taxdb.publish_name("Apium", "Genus")
        species = taxdb.publish_name(
            "graveolens", "Species", placement=genus
        )
        taxdb.publish_name("dulce", "Varietas", placement=species)
        taxdb.publish_name("rapaceum", "Varietas", placement=species)
        autonyms = taxdb.find_names(epithet="graveolens", rank="Varietas")
        assert len(autonyms) == 1  # established once, reused after

    def test_no_autonym_for_species_in_genus(self, autonym_taxdb):
        """Placement in a Genus is not infraspecific: no autonym."""
        taxdb = autonym_taxdb
        genus = taxdb.publish_name("Apium", "Genus")
        taxdb.publish_name("graveolens", "Species", placement=genus)
        assert taxdb.find_names(epithet="Apium", rank="Species") == []

    def test_disabled_by_default(self, taxdb, engine):
        genus = taxdb.publish_name("Apium", "Genus")
        species = taxdb.publish_name("graveolens", "Species", placement=genus)
        taxdb.publish_name("dulce", "Varietas", placement=species)
        assert taxdb.find_names(epithet="graveolens", rank="Varietas") == []
