"""Response-cache invalidation on shard-map epoch changes.

The server's pre-serialized response cache keys entries on a freshness
stamp.  Before this PR the stamp covered schema version, index epoch,
LSN, and event position — a shard-map change (rebalance, split) left
stale entries servable even though routing had moved data.  These
tests pin the fix: the stamp now folds in ``db.shard_map_epoch``, so
bumping the epoch (in-memory on a plain node, via ``stamp_shard_map``
on a store-backed node) must turn the next identical request into a
miss, while an unchanged epoch still hits.
"""

from __future__ import annotations

import http.client
import json
import os

import pytest

from repro.engine import PrometheusDB, PrometheusServer
from repro.errors import StorageError


def _post(server, path, payload):
    conn = http.client.HTTPConnection(*server.address, timeout=15)
    try:
        conn.request("POST", path, json.dumps(payload).encode(), {})
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _build_db(store_path=None):
    db = PrometheusDB(path=store_path) if store_path else PrometheusDB()
    from repro.core import types as T
    from repro.core.attributes import Attribute

    db.schema.define_class("Taxon", [Attribute("epithet", T.STRING)])
    with db.begin() as txn:
        txn.create("Taxon", epithet="Ranunculus")
    return db


QUERY = {"query": "select t from t in Taxon"}


class TestEpochInStamp:
    def test_stamp_includes_shard_map_epoch(self):
        db = _build_db()
        server = PrometheusServer(db)
        stamp = server.handlers._stamp()
        assert db.shard_map_epoch in stamp
        db.shard_map_epoch = 5
        assert server.handlers._stamp() != stamp

    def test_setter_rejected_on_store_backed_nodes(self, tmp_path):
        db = _build_db(os.path.join(tmp_path, "node.db"))
        try:
            with pytest.raises(StorageError):
                db.shard_map_epoch = 3
        finally:
            db.close()


class TestCacheInvalidation:
    def test_epoch_bump_invalidates_cached_response(self):
        db = _build_db()
        with PrometheusServer(db) as server:
            handlers = server.handlers
            first = _post(server, "/query", QUERY)
            hits_before = handlers.cache.hits
            second = _post(server, "/query", QUERY)
            assert first == second
            assert handlers.cache.hits == hits_before + 1

            db.shard_map_epoch = db.shard_map_epoch + 1
            hits_before = handlers.cache.hits
            misses_before = handlers.cache.misses
            third = _post(server, "/query", QUERY)
            assert third[0] == 200
            assert handlers.cache.hits == hits_before
            assert handlers.cache.misses == misses_before + 1

    def test_unchanged_epoch_still_hits(self):
        db = _build_db()
        with PrometheusServer(db) as server:
            handlers = server.handlers
            _post(server, "/query", QUERY)
            hits_before = handlers.cache.hits
            _post(server, "/query", QUERY)
            _post(server, "/query", QUERY)
            assert handlers.cache.hits == hits_before + 2

    def test_store_backed_stamp_invalidates_over_restarted_cache(
        self, tmp_path
    ):
        """On a store-backed node the epoch arrives via the log: a
        ``stamp_shard_map`` commit must invalidate just like an
        in-memory bump."""
        db = _build_db(os.path.join(tmp_path, "node.db"))
        try:
            with PrometheusServer(db) as server:
                handlers = server.handlers
                _post(server, "/query", QUERY)
                hits_before = handlers.cache.hits
                _post(server, "/query", QUERY)
                assert handlers.cache.hits == hits_before + 1

                db.store.stamp_shard_map(1, b"{}")
                misses_before = handlers.cache.misses
                status, _ = _post(server, "/query", QUERY)
                assert status == 200
                assert handlers.cache.misses == misses_before + 1
        finally:
            db.close()
