"""Shard-map unit tests: routing, pruning, evolution, persistence.

The map is the sharding layer's single source of placement truth, so
these tests pin its invariants directly: full keyspace coverage,
deterministic routing (range for string keys, hash ring otherwise),
sound pruning (a pruned-out shard can never hold a matching object),
monotonic epochs, and durability — the stamp survives crash recovery,
log compaction, and byte-replication to a replica store.
"""

from __future__ import annotations

import os

import pytest

from repro.sharding import ShardMap, ShardMapError, ShardRange
from repro.sharding.shardmap import _prefix_upper
from repro.storage.store import ObjectStore


def four_shard() -> ShardMap:
    return ShardMap.uniform(
        ("s0", "s1", "s2", "s3"), "rank", ("genus", "kingdom", "species")
    )


class TestConstruction:
    def test_single_covers_everything(self):
        m = ShardMap.single("only")
        assert m.route("anything", 1) == "only"
        assert m.route(None, 1) == "only"
        assert m.shards == ("only",)

    def test_rejects_gap(self):
        with pytest.raises(ShardMapError):
            ShardMap("rank", [
                ShardRange("a", None, "g"),
                ShardRange("b", "h", None),  # gap [g, h)
            ])

    def test_rejects_unbounded_interior(self):
        with pytest.raises(ShardMapError):
            ShardMap("rank", [ShardRange("a", None, "g"),
                              ShardRange("b", "g", "x")])

    def test_rejects_empty_map(self):
        with pytest.raises(ShardMapError):
            ShardMap("rank", [])

    def test_uniform_needs_matching_split_points(self):
        with pytest.raises(ShardMapError):
            ShardMap.uniform(("a", "b", "c"), "rank", ("m",))


class TestRouting:
    def test_keys_route_by_range(self):
        m = four_shard()
        assert m.route("family", 1) == "s0"
        assert m.route("genus", 1) == "s1"
        assert m.route("kingdom", 1) == "s2"
        assert m.route("species", 1) == "s3"
        assert m.route("zzz", 1) == "s3"

    def test_non_string_keys_hash_deterministically(self):
        m = four_shard()
        for key in (None, 7, 3.5, True):
            assert m.route(key, 42) == m.route(key, 42)
            assert m.route(key, 42) in m.shards
        # Different OIDs spread across the ring.
        homes = {m.route(None, oid) for oid in range(200)}
        assert len(homes) > 1

    def test_ring_changes_with_membership(self):
        m = four_shard()
        shrunk = m.reassign(None, "genus", "s1")
        assert "s0" not in shrunk.shards
        # Pruning soundness for hash-placed objects relies on the ring
        # being exactly the range-owning shards.
        assert set(shrunk.shards) == {r.shard for r in shrunk.ranges}


class TestPruning:
    def test_equality_prunes_to_one_shard(self):
        m = four_shard()
        assert m.shards_for_equality("genus") == ("s1",)
        assert m.shards_for_equality("abc") == ("s0",)

    def test_non_string_equality_cannot_prune(self):
        m = four_shard()
        assert m.shards_for_equality(None) == m.shards
        assert m.shards_for_equality(5) == m.shards

    def test_prefix_prunes_to_overlapping_ranges(self):
        m = four_shard()
        # "k*" straddles the "kingdom" boundary: "k" itself sorts into
        # [genus, kingdom) while "kingdom…" sorts into [kingdom, species).
        assert m.shards_for_prefix("k") == ("s1", "s2")
        assert m.shards_for_prefix("king") == ("s1", "s2")
        assert m.shards_for_prefix("kingdom") == ("s2",)
        assert m.shards_for_prefix("gen") == ("s0", "s1")
        assert m.shards_for_prefix("genus") == ("s1",)
        assert m.shards_for_prefix("t") == ("s3",)
        assert m.shards_for_prefix("") == m.shards

    def test_prefix_upper_is_a_string_successor(self):
        assert _prefix_upper("abc") == "abd"
        assert "abc" < "abcz" < _prefix_upper("abc")
        assert _prefix_upper(chr(0x10FFFF)) is None


class TestEvolution:
    def test_split_bumps_epoch_and_stays_covering(self):
        m = four_shard()
        split = m.split("s3", "x", "s4")
        assert split.epoch == m.epoch + 1
        assert split.route("w", 1) == "s3"
        assert split.route("x", 1) == "s4"
        # Old map untouched (maps are immutable values).
        assert m.route("x", 1) == "s3"

    def test_split_rejects_point_outside_range(self):
        with pytest.raises(ShardMapError):
            four_shard().split("s0", "zzz", "s9")

    def test_reassign_requires_exact_range(self):
        with pytest.raises(ShardMapError):
            four_shard().reassign("a", "b", "s1")

    def test_blob_roundtrip(self):
        m = four_shard().split("s1", "h", "s5")
        again = ShardMap.from_blob(m.to_blob())
        assert again.describe() == m.describe()

    def test_bad_blob_raises(self):
        with pytest.raises(ShardMapError):
            ShardMap.from_blob(b"not json at all")
        with pytest.raises(ShardMapError):
            ShardMap.from_blob(b'{"epoch": 1}')


class TestPersistence:
    def test_stamp_survives_recovery_and_compaction(self, tmp_path):
        path = os.path.join(tmp_path, "shard.db")
        blob = four_shard().to_blob()
        store = ObjectStore(path)
        store.put(1, {"a": 1})
        store.stamp_shard_map(2, blob)
        store.close()

        recovered = ObjectStore(path)
        assert recovered.shard_map_epoch == 2
        assert ShardMap.from_blob(recovered.shard_map_blob).shards == (
            "s0", "s1", "s2", "s3",
        )
        recovered.compact()
        recovered.close()

        compacted = ObjectStore(path)
        assert compacted.shard_map_epoch == 2
        assert compacted.shard_map_blob == blob
        assert compacted.telemetry_snapshot()["shard_map_epoch"] == 2
        compacted.close()

    def test_stamp_is_monotonic(self, tmp_path):
        store = ObjectStore(os.path.join(tmp_path, "s.db"))
        store.stamp_shard_map(3, b"{}")
        with pytest.raises(Exception):
            store.stamp_shard_map(3, b"{}")
        with pytest.raises(Exception):
            store.stamp_shard_map(2, b"{}")
        store.stamp_shard_map(4, b"{}")
        assert store.shard_map_epoch == 4
        store.close()

    def test_stamp_replicates_byte_for_byte(self, tmp_path):
        blob = four_shard().to_blob()
        primary = ObjectStore(os.path.join(tmp_path, "p.db"))
        primary.put(5, {"x": 1})
        primary.stamp_shard_map(7, blob)
        replica = ObjectStore(
            os.path.join(tmp_path, "r.db"), read_only=True
        )
        data = primary.read_log_bytes(
            replica.replication_position, primary.replication_position
        )
        replica.apply_replicated(data)
        assert replica.shard_map_epoch == 7
        assert replica.shard_map_blob == blob
        assert replica.fingerprint() == primary.fingerprint()
        primary.close()
        replica.close()
