"""Shard-topology differential suite and sharding unit tests."""
