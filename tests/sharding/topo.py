"""Shared harness: build logically identical 1-shard and N-shard
databases and compare their answers byte-for-byte.

Both topologies are populated through the *coordinator* API with the
same seeded operation stream; the coordinator owns the global OID
allocator, so the two databases hold objects with identical OIDs and
attribute values — only placement differs.  Any observable difference
between them is therefore a distribution bug, never a data artifact.
"""

from __future__ import annotations

import random

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.sharding import ShardedDatabase, ShardExecutionError, ShardMap

from tests.query.qgen import RANKS, REGIONS

#: Split points that spread the four RANKS values across four shards.
SPLIT_POINTS = ("genus", "kingdom", "species")

#: A small fixed panel covering every plan mode: full scan, count
#: pushdown, pruned equality, pruned prefix + top-n, distinct,
#: cross-category traversal, closure traversal.
CHECKS = (
    "select a from a in Base",
    "select count(a) from a in Base",
    'select a.name from a in Base where a.rank = "genus"',
    'select a from a in Base where a.rank like "k%" order by a.size limit 3',
    "select distinct a.rank from a in Base order by a.rank",
    "select b.label from a in Base, b in a->Bridges where a.flag",
    "select b from a in Base, b in a->Links+ where a.size > 4",
)


def fuzz_ddl(schema) -> None:
    """The tests/query fuzz schema (Base/Leaf/Links + Cat/Bridges)."""
    schema.define_class(
        "Base",
        [
            Attribute("name", T.STRING),
            Attribute("rank", T.STRING),
            Attribute("size", T.INTEGER),
            Attribute("score", T.FLOAT),
            Attribute("flag", T.BOOLEAN),
            Attribute("year", T.INTEGER, required=False),
        ],
    )
    schema.define_class(
        "Leaf", [Attribute("extra", T.INTEGER)], superclasses=["Base"]
    )
    schema.define_class(
        "Cat",
        [
            Attribute("label", T.STRING),
            Attribute("region", T.STRING),
            Attribute("area", T.INTEGER),
            Attribute("wet", T.BOOLEAN),
        ],
    )
    schema.define_relationship("Links", "Base", "Base")
    schema.define_relationship("Bridges", "Base", "Cat")


def index_ddl(db) -> None:
    db.indexes.create_index("Base", "name", kind="hash")
    db.indexes.create_index("Base", "size", kind="btree")
    db.indexes.create_index("Base", "year", kind="btree")
    db.indexes.create_index("Base", "rank", kind="hash")


def make_map(shards: int) -> ShardMap:
    if shards == 1:
        return ShardMap.single("s0", key_attr="rank")
    names = tuple(f"s{i}" for i in range(shards))
    points = SPLIT_POINTS[: shards - 1]
    return ShardMap.uniform(names, "rank", points)


def build_topology(shards: int) -> ShardedDatabase:
    return ShardedDatabase(make_map(shards), fuzz_ddl, index_ddl=index_ddl)


def populate(db: ShardedDatabase, seed: int) -> dict[str, list[int]]:
    """Deterministic seeded population through the coordinator API.

    ~15% of Base rows get a non-RANKS rank and a few get None — those
    fall through range routing to the hash ring, exercising fallback
    placement and re-homing.
    """
    rng = random.Random(seed * 7919 + 13)
    bases: list[int] = []
    for _ in range(rng.randrange(30, 45)):
        cls = "Leaf" if rng.random() < 0.4 else "Base"
        roll = rng.random()
        if roll < 0.08:
            rank = None
        elif roll < 0.15:
            rank = f"x{rng.randrange(0, 5)}"  # off-taxonomy string
        else:
            rank = rng.choice(RANKS)
        attrs = {
            "name": f"{rng.choice(['n', 'm'])}{rng.randrange(0, 40)}",
            "rank": rank,
            "size": rng.randrange(-2, 12),
            "score": rng.randrange(0, 100) / 10.0,
            "flag": rng.random() < 0.5,
            "year": None if rng.random() < 0.3 else rng.randrange(1750, 1760),
        }
        if cls == "Leaf":
            attrs["extra"] = rng.randrange(0, 5)
        bases.append(db.create(cls, **attrs))
    cats: list[int] = []
    for _ in range(rng.randrange(8, 16)):
        cats.append(
            db.create(
                "Cat",
                label=f"c{rng.randrange(0, 30)}",
                region=rng.choice(REGIONS),
                area=rng.randrange(-2, 12),
                wet=rng.random() < 0.5,
            )
        )
    for _ in range(rng.randrange(20, 60)):
        a, b = rng.choice(bases), rng.choice(bases)
        if a != b:
            db.relate("Links", a, b)
    for _ in range(rng.randrange(10, 30)):
        db.relate("Bridges", rng.choice(bases), rng.choice(cats))
    db.commit()
    return {"bases": bases, "cats": cats}


def observe(db: ShardedDatabase, text: str, as_of: int | None = None):
    """('ok', canonical json) or ('err', deterministic error identity)."""
    try:
        result = db.query(text, check=False, as_of=as_of)
    except ShardExecutionError as exc:
        return ("err", tuple(exc.kinds))
    except Exception as exc:  # noqa: BLE001 — classify, don't mask
        return ("err", type(exc).__name__)
    return ("ok", db.jsonable_result(result))


def pair(seed: int) -> tuple[ShardedDatabase, ShardedDatabase]:
    """Identically populated (1-shard, 4-shard) databases."""
    single, sharded = build_topology(1), build_topology(4)
    populate(single, seed)
    populate(sharded, seed)
    return single, sharded
