"""Coordinator unit tests: plan classification, pruning, fan-out
failure handling, distributed EXPLAIN, and shard telemetry.

The differential suite proves the *answers* are right; this file pins
the *mechanisms* — which physical mode each query shape takes, that
pruning narrows fan-out exactly when the key predicate allows, and
that shard failures surface as one deterministic error (semantic
failures by exception kind, infrastructure failures as ``__infra__``
with federation's breakers engaged).
"""

from __future__ import annotations

import pytest

from repro.errors import PrometheusError
from repro.sharding import ShardedDatabase, ShardExecutionError
from repro.telemetry import Telemetry

from .topo import build_topology, pair, populate


class TestPlanModes:
    @pytest.fixture(scope="class")
    def db(self):
        db = build_topology(4)
        populate(db, 31)
        return db

    def _mode(self, db, text, **kwargs):
        return db.explain(text, **kwargs)

    def test_single_extent_scan_scatters(self, db):
        plan = self._mode(db, "select a from a in Base")
        assert plan["mode"] == "scatter"
        assert plan["shards"] == ["s0", "s1", "s2", "s3"]
        assert not plan["pruned"]
        assert plan["total_shards"] == 4
        assert plan["shard_map_epoch"] == db.map.epoch

    def test_bare_count_takes_count_pushdown(self, db):
        plan = self._mode(db, "select count(a) from a in Base")
        assert plan["mode"] == "scatter_count"
        assert "count" in plan["pushed_query"]

    def test_order_limit_pushes_topn(self, db):
        plan = self._mode(
            db, "select a from a in Base order by a.size limit 5"
        )
        assert plan["mode"] == "scatter"
        assert plan["push_order"] and plan["push_limit"]
        assert "limit 5" in plan["pushed_query"]

    def test_distinct_blocks_limit_pushdown(self, db):
        plan = self._mode(
            db,
            "select distinct a.name from a in Base "
            "order by a.name limit 5",
        )
        assert plan["mode"] == "scatter"
        assert not plan["push_limit"]
        assert "limit" not in plan["pushed_query"]

    @pytest.mark.parametrize(
        "text,why",
        [
            ("select b from a in Base, b in a->Links", "Traversal"),
            ("select a from a in Base, b in Base where a.size = b.size",
             "extent"),
            ("select sum(a.size) from a in Base", "aggregate"),
            ("select a.rank from a in Base group by a.rank", "group"),
            ("select l from l in Links", "relationship"),
        ],
    )
    def test_cross_shard_shapes_gather(self, db, text, why):
        plan = self._mode(db, text)
        assert plan["mode"] == "gather", text
        assert plan["reason"]

    def test_as_of_always_gathers(self, db):
        seq = db.commit()
        plan = self._mode(db, "select a from a in Base", as_of=seq)
        assert plan["mode"] == "gather"
        assert "as_of" in plan["reason"]


class TestPruning:
    @pytest.fixture(scope="class")
    def db(self):
        db = build_topology(4)
        populate(db, 37)
        return db

    def test_key_equality_prunes_to_one_shard(self, db):
        plan = db.explain(
            'select a from a in Base where a.rank = "genus"'
        )
        assert plan["pruned"]
        assert plan["shards"] == ["s1"]

    def test_like_prefix_prunes(self, db):
        plan = db.explain(
            'select a from a in Base where a.rank like "kingdom%"'
        )
        assert plan["pruned"]
        assert plan["shards"] == ["s2"]

    def test_or_disables_pruning(self, db):
        plan = db.explain(
            'select a from a in Base '
            'where (a.rank = "genus" or a.flag)'
        )
        assert not plan["pruned"]
        assert len(plan["shards"]) == 4

    def test_contradictory_conjuncts_prune_to_nothing(self, db):
        plan = db.explain(
            'select a from a in Base '
            'where a.rank = "genus" and a.rank = "species"'
        )
        assert plan["pruned"]
        assert plan["shards"] == []
        # And the scatter over zero shards returns an empty result.
        assert db.query(
            'select a from a in Base '
            'where a.rank = "genus" and a.rank = "species"',
            check=False,
        ) == []

    def test_underscore_wildcard_blocks_prefix_pruning(self, db):
        plan = db.explain(
            'select a from a in Base where a.rank like "gen_s%"'
        )
        assert not plan["pruned"]


class TestFanoutFailures:
    def test_semantic_failures_dedupe_by_kind(self):
        db = build_topology(4)
        populate(db, 41)

        def boom(text, params=None, as_of=None):
            raise PrometheusError("shard-side failure")

        for name in ("s1", "s3"):
            db.shards[name].query = boom
        with pytest.raises(ShardExecutionError) as err:
            db.query("select a from a in Base", check=False)
        assert err.value.kinds == ["PrometheusError"]

    def test_infra_failure_surfaces_and_trips_breaker(self):
        db = build_topology(4)
        populate(db, 43)

        def dead(text, params=None, as_of=None):
            raise ConnectionError("")  # empty message on purpose

        db.shards["s2"].query = dead
        for _ in range(db.federation.breaker_threshold):
            with pytest.raises(ShardExecutionError) as err:
                db.query("select a from a in Base", check=False)
            assert err.value.kinds == ["__infra__"]
        assert db.federation.breaker("s2").state == "open"
        # Breaker-open is still a deterministic infra failure, not a
        # silent partial result.
        with pytest.raises(ShardExecutionError) as err:
            db.query("select a from a in Base", check=False)
        assert err.value.kinds == ["__infra__"]

    def test_pruned_query_avoids_the_dead_shard(self):
        db = build_topology(4)
        populate(db, 47)

        def dead(text, params=None, as_of=None):
            raise ConnectionError("down")

        db.shards["s0"].query = dead
        # rank="genus" routes to s1 only: the dead shard is never asked.
        rows = db.query(
            'select a.name from a in Base where a.rank = "genus"',
            check=False,
        )
        assert isinstance(rows, list)


class TestTelemetry:
    def test_query_and_prune_counters_advance(self):
        telemetry = Telemetry()
        from .topo import fuzz_ddl, index_ddl, make_map

        db = ShardedDatabase(
            make_map(4), fuzz_ddl, index_ddl=index_ddl,
            telemetry=telemetry,
        )
        populate(db, 53)
        db.query("select a from a in Base", check=False)
        db.query(
            'select a from a in Base where a.rank = "genus"',
            check=False,
        )
        text = telemetry.registry.render_prometheus()
        assert 'repro_shard_queries_total{mode="scatter"}' in text
        assert "repro_shard_pruned_total 1" in text
        assert "repro_shard_map_epoch 1" in text

    def test_rebalance_metrics(self):
        from repro.sharding import ExtentRebalancer
        from .topo import fuzz_ddl, index_ddl, make_map

        telemetry = Telemetry()
        db = ShardedDatabase(
            make_map(4), fuzz_ddl, index_ddl=index_ddl,
            telemetry=telemetry,
        )
        populate(db, 59)
        ExtentRebalancer(db).move_range(None, "genus", "s2")
        text = telemetry.registry.render_prometheus()
        assert "repro_shard_rebalance_total 1" in text
        assert "repro_shard_moved_objects_total" in text
        assert "repro_shard_map_epoch 2" in text
