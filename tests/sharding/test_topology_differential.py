"""Shard-topology differential fuzzing: 1 shard vs 4 shards.

The central correctness claim of the sharding layer is that the
physical topology is *unobservable*: for any query, any session, any
time-travel read, a 4-shard database answers byte-identically to a
1-shard database holding the same logical data.  This suite proves it
the same way ``tests/query/test_differential.py`` proves
planner/reference agreement: replay ≥500 seeded qgen queries (three
fixed seeds plus the run-derived one) against both topologies and
compare canonical JSON; on divergence, greedily shrink to the minimal
divergent query before failing.

Because both topologies execute through the same coordinator code with
the same global OID allocator, a divergence here is necessarily a
distribution bug — pushdown unsoundness, a pruning hole, a cross-shard
traversal miss — not a data artifact.
"""

from __future__ import annotations

import pytest

from repro.sharding import ShardedDatabase

from tests import fuzzseeds
from tests.query.qgen import QueryGen, QuerySpec, shrink

from .topo import CHECKS, observe, pair

SEED_ENV = "SHARD_FUZZ_SEED"
FIXED_SEEDS = (101, 202, 303)
CASES_PER_SEED = 170  # 3 seeds x 170 = 510 >= the 500-case gate


def run_seed(seed: int, cases: int) -> None:
    single, sharded = pair(seed)
    failure = None
    gen = QueryGen(seed)
    for case in range(cases):
        spec = gen.spec()
        text = spec.text()
        ref = observe(single, text)
        got = observe(sharded, text)
        if ref != got:
            failure = (case, spec, ref, got)
            break
    if failure is None:
        return
    case, spec, ref, got = failure

    def still_fails(candidate: QuerySpec) -> bool:
        text = candidate.text()
        return observe(single, text) != observe(sharded, text)

    minimal = shrink(spec, still_fails)
    ref = observe(single, minimal.text())
    got = observe(sharded, minimal.text())
    pytest.fail(
        "topology divergence (1 shard vs 4 shards)\n"
        f"  seed       : {seed} (case {case})\n"
        f"  minimal    : {minimal.text()}\n"
        f"  original   : {spec.text()}\n"
        f"  1-shard    : {ref}\n"
        f"  4-shard    : {got}\n"
        + fuzzseeds.repro_line(
            SEED_ENV, seed, "tests/sharding -k extra"
        )
    )


@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_topologies_agree_fixed_seeds(seed):
    run_seed(seed, CASES_PER_SEED)


def test_topologies_agree_extra_seed(capsys):
    """The run seed: env override, or GITHUB_RUN_ID-derived in CI."""
    seed = fuzzseeds.run_seed(SEED_ENV)
    if seed is None:
        pytest.skip(f"{SEED_ENV} / GITHUB_RUN_ID not set")
    with capsys.disabled():
        print(f"\n[shard-fuzz] extra seed: {seed}")
    run_seed(seed, CASES_PER_SEED)


def _assert_all_agree(single, sharded, as_of=None):
    for text in CHECKS:
        assert observe(single, text, as_of) == observe(
            sharded, text, as_of
        ), text


class TestSessions:
    def test_staged_sessions_agree(self):
        single, sharded = pair(7)
        for db in (single, sharded):
            session = db.session()
            x = session.create("Base", name="sx", rank="genus", size=1,
                               score=0.5, flag=True, year=None)
            y = session.create(
                "Cat", label="cx", region="arctic", area=3, wet=False
            )
            session.relate("Bridges", x, y)
            session.set(x, "size", 9)
            session.commit()
        _assert_all_agree(single, sharded)

    def test_aborted_session_changes_nothing(self):
        single, sharded = pair(8)
        before = [observe(sharded, t) for t in CHECKS]
        session = sharded.session()
        session.create("Base", name="ghost", rank="genus", size=1,
                       score=0.0, flag=False, year=None)
        session.abort()
        assert [observe(sharded, t) for t in CHECKS] == before


class TestTimeTravel:
    def test_as_of_agrees_across_growth(self):
        single, sharded = pair(11)
        seqs = []
        for db in (single, sharded):
            db.create("Base", name="late", rank="species", size=2,
                      score=1.0, flag=True, year=1755)
            seqs.append(db.commit())
        assert seqs[0] == seqs[1]
        _assert_all_agree(single, sharded, as_of=1)
        _assert_all_agree(single, sharded, as_of=seqs[0])
        _assert_all_agree(single, sharded)

    def test_invalid_sequence_rejected_identically(self):
        single, sharded = pair(12)
        for bad in (0, 99, -3):
            assert observe(single, CHECKS[0], as_of=bad) == observe(
                sharded, CHECKS[0], as_of=bad
            )


class TestKeyRelocation:
    def test_key_change_keeps_pruned_queries_exact(self):
        single, sharded = pair(13)
        # Find a genus-ranked object and move it to species: on the
        # 4-shard topology this crosses a shard boundary.
        rows = sharded.query(
            'select a from a in Base where a.rank = "genus"', check=False
        )
        assert rows, "fuzz population should include genus rows"
        oid = rows[0].oid
        for db in (single, sharded):
            db.set(oid, "rank", "species")
            db.commit()
        _assert_all_agree(single, sharded)
        # The pruning invariant: a species-pinned query must see it.
        text = 'select a.name from a in Base where a.rank = "species"'
        assert observe(single, text) == observe(sharded, text)


class TestRebalanceAgreement:
    def test_rebalance_preserves_agreement_and_history(self):
        from repro.sharding import ExtentRebalancer

        single, sharded = pair(17)
        seq_before = sharded.seq
        report = ExtentRebalancer(sharded).move_range(
            None, "genus", "s3"
        )
        assert report.new_epoch == report.old_epoch + 1
        _assert_all_agree(single, sharded)
        # Reads pinned before the rebalance still agree (the moved
        # range's history lives on the source shard's snapshots).
        _assert_all_agree(single, sharded, as_of=seq_before)


class TestErrorDeterminism:
    def test_unknown_extent_fails_identically(self):
        single, sharded = pair(19)
        text = "select z from z in NoSuchClass"
        ref, got = observe(single, text), observe(sharded, text)
        assert ref == got
        assert ref[0] == "err"


def test_case_budget_meets_the_gate():
    assert len(FIXED_SEEDS) * CASES_PER_SEED >= 500
