"""Extent rebalancing over PLSB frames: moves, reports, fault injection.

The rebalancer ships record batches through the replication frame
codec, so every hop is CRC-32 gated.  The fault tests override the
``_ship`` seam to corrupt or truncate frames mid-flight and assert the
move aborts *before* any record is installed — placement and shard map
stay consistent with the pre-rebalance state.
"""

from __future__ import annotations

import pytest

from repro.errors import ReplicationError
from repro.sharding import ExtentRebalancer, ShardingError

from .topo import CHECKS, observe, pair


class _CorruptingRebalancer(ExtentRebalancer):
    """Flips one payload byte of the first shipped frame."""

    def __init__(self, db, **kwargs):
        super().__init__(db, **kwargs)
        self.shipped = 0

    def _ship(self, frame: bytes) -> bytes:
        self.shipped += 1
        if self.shipped == 1:
            # Flip a byte inside the payload (headers start the frame).
            corrupt = bytearray(frame)
            corrupt[-1] ^= 0xFF
            return bytes(corrupt)
        return frame


class _TruncatingRebalancer(ExtentRebalancer):
    def _ship(self, frame: bytes) -> bytes:
        return frame[: len(frame) // 2]


class TestMoveRange:
    def test_report_accounts_for_every_move(self):
        _, sharded = pair(23)
        placement_before = dict(sharded.router.counts())
        report = ExtentRebalancer(sharded, batch_size=4).move_range(
            None, "genus", "s2"
        )
        assert report.target == "s2"
        assert report.sources == ["s0"]
        assert report.moved_objects > 0
        assert report.frames >= 1
        assert report.bytes_shipped > 0
        assert report.new_epoch == report.old_epoch + 1
        # Everything s0 owned moved off (its range is gone and the
        # fallback ring no longer includes it).
        assert sharded.router.counts().get("s0", 0) == 0
        moved_total = report.moved_objects + report.moved_edges
        assert moved_total + report.rehomed >= placement_before.get(
            "s0", 0
        )
        d = report.as_dict()
        assert d["epoch"] == [report.old_epoch, report.new_epoch]

    def test_unknown_target_rejected(self):
        _, sharded = pair(24)
        with pytest.raises(ShardingError):
            ExtentRebalancer(sharded).move_range(None, "genus", "nope")

    def test_batch_size_validated(self):
        _, sharded = pair(24)
        with pytest.raises(ShardingError):
            ExtentRebalancer(sharded, batch_size=0)

    def test_queries_agree_after_chained_rebalances(self):
        single, sharded = pair(25)
        rebalancer = ExtentRebalancer(sharded, batch_size=3)
        rebalancer.move_range(None, "genus", "s3")
        rebalancer.move_range("kingdom", "species", "s1")
        for text in CHECKS:
            assert observe(single, text) == observe(sharded, text), text


class TestFrameFaults:
    def test_corrupt_frame_aborts_before_any_install(self):
        _, sharded = pair(26)
        epoch_before = sharded.map.epoch
        placement_before = dict(sharded.router.counts())
        answers_before = [observe(sharded, t) for t in CHECKS]
        rebalancer = _CorruptingRebalancer(sharded, batch_size=10_000)
        with pytest.raises(ReplicationError):
            rebalancer.move_range(None, "genus", "s2")
        assert sharded.map.epoch == epoch_before
        assert dict(sharded.router.counts()) == placement_before
        assert [observe(sharded, t) for t in CHECKS] == answers_before

    def test_truncated_frame_rejected(self):
        _, sharded = pair(27)
        with pytest.raises(ReplicationError):
            _TruncatingRebalancer(sharded).move_range(
                None, "genus", "s2"
            )
