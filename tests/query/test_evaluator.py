"""POOL evaluation semantics."""

import pytest

from repro.classification import GraphView
from repro.errors import EvaluationError
from repro.query import execute


def q(shapes, text, **params):
    return execute(
        shapes.taxdb.schema,
        text,
        classifications=shapes.taxdb.classifications,
        params=params or None,
    )


class TestSelectBasics:
    def test_extent_scan(self, shapes):
        result = q(shapes, "select s from s in Specimen")
        assert len(result) == 11

    def test_projection(self, shapes):
        result = q(
            shapes,
            'select s.field_name from s in Specimen '
            'where s.field_name = "white_square"',
        )
        assert result == ["white_square"]

    def test_star_single_binding_returns_objects(self, shapes):
        result = q(shapes, "select * from s in Specimen limit 1")
        assert result[0].pclass.name == "Specimen"

    def test_multi_projection_returns_rows(self, shapes):
        rows = q(
            shapes,
            "select s.field_name as name, s.oid as o from s in Specimen limit 2",
        )
        assert set(rows[0]) == {"name", "o"}

    def test_where_filters(self, shapes):
        result = q(
            shapes,
            'select s from s in Specimen where s.field_name like "white%"',
        )
        assert len(result) == 4

    def test_order_by_desc(self, shapes):
        names = q(
            shapes,
            "select s.field_name from s in Specimen order by s.field_name desc",
        )
        assert names == sorted(names, reverse=True)

    def test_limit(self, shapes):
        assert len(q(shapes, "select s from s in Specimen limit 3")) == 3

    def test_distinct(self, shapes):
        ranks = q(
            shapes,
            "select distinct t.rank from t in CircumscriptionTaxon",
        )
        assert sorted(ranks) == ["Genus", "Sectio", "Species"]

    def test_cartesian_product(self, shapes):
        pairs = q(
            shapes,
            "select n from n in NomenclaturalTaxon, w in WorkingName "
            'where n.rank = "Genus"',
        )
        # one genus NT × every working name
        genus_count = len(
            q(shapes, 'select n from n in NomenclaturalTaxon where n.rank = "Genus"')
        )
        working = len(q(shapes, "select w from w in WorkingName"))
        assert len(pairs) == genus_count * working

    def test_dependent_binding(self, shapes):
        result = q(
            shapes,
            "select x.field_name from t in CircumscriptionTaxon, "
            "x in (Specimen) t->Includes "
            'where t.rank = "Species" order by x.field_name limit 2',
        )
        assert len(result) == 2

    def test_parameters(self, shapes):
        white = shapes.specimens["white_square"]
        result = q(
            shapes,
            "select s.field_name from s in Specimen where s.oid = $oid",
            oid=white.oid,
        )
        assert result == ["white_square"]

    def test_missing_parameter(self, shapes):
        with pytest.raises(EvaluationError):
            q(shapes, "select s from s in Specimen where s.oid = $nope")

    def test_unknown_extent(self, shapes):
        with pytest.raises(EvaluationError):
            q(shapes, "select x from x in Nothing")

    def test_subquery_in_from(self, shapes):
        result = q(
            shapes,
            "select y.field_name from y in "
            '(select s from s in Specimen where s.field_name like "dark%")',
        )
        assert sorted(result) == ["dark_circle", "dark_triangle"]

    def test_exists(self, shapes):
        result = q(
            shapes,
            "select w.label from w in WorkingName where exists "
            "(select s from s in Specimen where s.field_name = w.label)",
        )
        # Working names coincide with specimen field names nowhere.
        assert result == []


class TestAggregates:
    def test_count_folds(self, shapes):
        assert q(shapes, "select count(s) from s in Specimen") == [11]

    def test_count_with_where(self, shapes):
        assert q(
            shapes,
            'select count(s) from s in Specimen where s.field_name like "white%"',
        ) == [4]

    def test_min_max(self, shapes):
        low = q(shapes, "select min(s.oid) from s in Specimen")[0]
        high = q(shapes, "select max(s.oid) from s in Specimen")[0]
        assert 0 < low < high

    def test_per_row_count_preserved(self, shapes):
        counts = q(
            shapes,
            "select count(t->Includes) from t in CircumscriptionTaxon "
            'where t.rank = "Genus" order by t.oid',
        )
        assert len(counts) == 4
        assert all(c >= 2 for c in counts)


class TestTraversal:
    def test_single_hop(self, shapes):
        top = shapes.taxa["T1/Shapes"]
        children = q(
            shapes,
            "select c from t in CircumscriptionTaxon, c in t->Includes "
            "where t.oid = $oid",
            oid=top.oid,
        )
        assert len(children) == 3

    def test_scoped_closure(self, shapes):
        top = shapes.taxa["T2/Shapes"]
        result = q(
            shapes,
            "select x.field_name from t in CircumscriptionTaxon, "
            'x in (Specimen) t->Includes["T2 sections"]* '
            "where t.oid = $oid",
            oid=top.oid,
        )
        assert len(result) == 9  # all T2 specimens

    def test_unscoped_closure_spans_classifications(self, shapes):
        top = shapes.taxa["T1/Shapes"]
        scoped = q(
            shapes,
            "select x from t in CircumscriptionTaxon, "
            'x in (Specimen) t->Includes["T1 shapes"]* where t.oid = $oid',
            oid=top.oid,
        )
        assert len(scoped) == 6

    def test_inverse_closure(self, shapes):
        white = shapes.specimens["white_square"]
        ancestors = q(
            shapes,
            "select a from s in Specimen, "
            'a in s<-Includes["T2 sections"]+ where s.oid = $oid',
            oid=white.oid,
        )
        assert len(ancestors) == 3  # species, sectio, genus CTs

    def test_depth_bounds(self, shapes):
        top = shapes.taxa["T2/Shapes"]
        exactly_two = q(
            shapes,
            "select n from t in CircumscriptionTaxon, "
            'n in t->Includes["T2 sections"]{2} where t.oid = $oid',
            oid=top.oid,
        )
        # depth 2 from genus = species CTs (5 of them)
        assert len(exactly_two) == 5

    def test_min_depth_zero_includes_start(self, shapes):
        top = shapes.taxa["T1/Shapes"]
        result = q(
            shapes,
            "select n from t in CircumscriptionTaxon, "
            'n in t->Includes["T1 shapes"]* where t.oid = $oid',
            oid=top.oid,
        )
        assert any(n.oid == top.oid for n in result)

    def test_traversal_on_unknown_relationship(self, shapes):
        with pytest.raises(EvaluationError):
            q(shapes, "select x from s in Specimen, x in s->Nothing")

    def test_relationship_extent_and_endpoints(self, shapes):
        rows = q(
            shapes,
            "select r.origin.rank from r in Includes "
            'where r.destination.field_name = "white_square" '
            'order by r.origin.rank',
        )
        assert rows == ["Species"] * 4  # placed in a Species group 4 times


class TestDowncastAndFunctions:
    def test_downcast_filters(self, shapes):
        mixed = q(
            shapes,
            "select x from t in CircumscriptionTaxon, "
            'x in (Specimen) t->Includes["T2 sections"]* '
            'where t.rank = "Genus" limit 100',
        )
        assert mixed
        assert all(x.pclass.name == "Specimen" for x in mixed)

    def test_class_of(self, shapes):
        result = q(
            shapes,
            "select class_of(s) from s in Specimen limit 1",
        )
        assert result == ["Specimen"]

    def test_oid_function(self, shapes):
        white = shapes.specimens["white_square"]
        assert q(
            shapes,
            "select oid(s) from s in Specimen where s.oid = $o",
            o=white.oid,
        ) == [white.oid]

    def test_string_methods(self, shapes):
        result = q(
            shapes,
            "select s.field_name.upper() from s in Specimen "
            'where s.field_name.startsWith("grey")',
        )
        assert result == ["GREY_SQUARE"]

    def test_nvl(self, shapes):
        result = q(
            shapes,
            'select nvl(s.herbarium, "?") from s in Specimen limit 1',
        )
        assert result == ["?"]

    def test_roles_function(self, shapes):
        white = shapes.specimens["white_square"]
        roles = q(
            shapes,
            "select roles(s) from s in Specimen where s.oid = $o",
            o=white.oid,
        )[0]
        assert roles.get("type_kind") == "holotype"


class TestExtractGraph:
    def test_extract_returns_view(self, shapes):
        top = shapes.taxa["T1/Shapes"]
        view = q(
            shapes,
            "extract graph from first((select t from t in "
            "CircumscriptionTaxon where t.oid = $o)) via Includes "
            'in classification "T1 shapes"',
            o=top.oid,
        )
        assert isinstance(view, GraphView)
        assert view.node_count == 10
        assert view.edge_count == 9

    def test_extract_depth_limited(self, shapes):
        top = shapes.taxa["T1/Shapes"]
        view = q(
            shapes,
            "extract graph from first((select t from t in "
            "CircumscriptionTaxon where t.oid = $o)) via Includes depth 1 "
            'in classification "T1 shapes"',
            o=top.oid,
        )
        assert view.node_count == 4  # genus + 3 species groups


class TestInstanceSynonymsInPool:
    def test_synonyms_of_function(self):
        from repro.core.attributes import Attribute
        from repro.core.schema import Schema
        from repro.core import types as T

        schema = Schema()
        schema.define_class("Specimen2", [Attribute("code", T.STRING)])
        a = schema.create("Specimen2", code="a")
        b = schema.create("Specimen2", code="b")
        c = schema.create("Specimen2", code="c")
        schema.synonyms.declare(a.oid, b.oid)
        result = execute(
            schema,
            "select s2.code from s in Specimen2, s2 in synonyms_of(s) "
            "where s.code = 'a' order by s2.code",
        )
        assert result == ["a", "b"]
        lone = execute(
            schema,
            "select count(synonyms_of(s)) from s in Specimen2 "
            "where s.code = 'c'",
        )
        assert lone == [1]


class TestSetOperations:
    """OQL set operators (union / intersect / except)."""

    def test_union_dedupes_by_identity(self, shapes):
        result = q(
            shapes,
            'select s from s in Specimen where s.field_name like "white%" '
            'union '
            'select s from s in Specimen where s.field_name like "%square"',
        )
        names = sorted(x.get("field_name") for x in result)
        assert names == [
            "grey_square", "white_circle", "white_oval",
            "white_rectangle", "white_square",
        ]

    def test_intersect(self, shapes):
        result = q(
            shapes,
            'select s from s in Specimen where s.field_name like "white%" '
            'intersect '
            'select s from s in Specimen where s.field_name like "%square"',
        )
        assert [x.get("field_name") for x in result] == ["white_square"]

    def test_except(self, shapes):
        result = q(
            shapes,
            "select s.field_name from s in Specimen "
            "except "
            'select s.field_name from s in Specimen '
            'where s.field_name like "white%"',
        )
        assert len(result) == 7
        assert not any(name.startswith("white") for name in result)

    def test_chained_left_associative(self, shapes):
        result = q(
            shapes,
            'select s.field_name from s in Specimen '
            'where s.field_name like "white%" '
            "union "
            'select s.field_name from s in Specimen '
            'where s.field_name like "dark%" '
            "except "
            'select s.field_name from s in Specimen '
            'where s.field_name = "dark_circle"',
        )
        assert "dark_circle" not in result
        assert "dark_triangle" in result

    def test_parenthesised_grouping(self, shapes):
        result = q(
            shapes,
            'select s.field_name from s in Specimen '
            'where s.field_name like "white%" '
            "except "
            "("
            'select s.field_name from s in Specimen '
            'where s.field_name = "white_oval" '
            "union "
            'select s.field_name from s in Specimen '
            'where s.field_name = "white_circle"'
            ")",
        )
        assert sorted(result) == ["white_rectangle", "white_square"]

    def test_unparse_roundtrip(self, shapes):
        from repro.query import parse

        text = (
            "select s from s in Specimen union "
            "select s from s in Specimen where (s.oid > 3)"
        )
        ast = parse(text)
        assert parse(ast.unparse()).unparse() == ast.unparse()

    def test_typecheck_covers_both_sides(self, shapes):
        from repro.query import parse, typecheck

        report = typecheck(
            shapes.taxdb.schema,
            parse(
                "select s from s in Specimen union "
                "select x from x in Martians"
            ),
        )
        assert any("Martians" in e for e in report.errors)


class TestGroupBy:
    def test_count_per_group(self, shapes):
        rows = q(
            shapes,
            "select t.rank as rank, count(t) as n "
            "from t in CircumscriptionTaxon "
            "group by t.rank order by rank",
        )
        by_rank = {r["rank"]: r["n"] for r in rows}
        # T1: 3 species groups, T2: 5, T3: 5, T4: 6 -> 19
        assert by_rank == {"Genus": 4, "Sectio": 6, "Species": 19}

    def test_having_filters_groups(self, shapes):
        rows = q(
            shapes,
            "select t.rank as rank, count(t) as n "
            "from t in CircumscriptionTaxon "
            "group by t.rank having count(t) > 5 order by rank",
        )
        assert [r["rank"] for r in rows] == ["Sectio", "Species"]

    def test_min_max_aggregates_in_groups(self, shapes):
        rows = q(
            shapes,
            "select n.rank as rank, min(n.year) as first, max(n.year) as last "
            "from n in NomenclaturalTaxon group by n.rank order by rank",
        )
        species = [r for r in rows if r["rank"] == "Species"][0]
        assert species["first"] == 1900
        assert species["last"] == 1920

    def test_single_projection_scalar(self, shapes):
        counts = q(
            shapes,
            "select count(t) from t in CircumscriptionTaxon "
            "group by t.rank order by count(t)",
        )
        assert counts == [4, 6, 19]

    def test_group_by_requires_projection(self, shapes):
        from repro.errors import EvaluationError as EvalError

        with pytest.raises(EvalError):
            q(
                shapes,
                "select * from t in CircumscriptionTaxon group by t.rank",
            )

    def test_unparse_roundtrip(self, shapes):
        from repro.query import parse

        text = (
            "select t.rank as r, count(t) as n from t in "
            "CircumscriptionTaxon group by t.rank having (count(t) > 2) "
            "order by r"
        )
        ast = parse(text)
        assert parse(ast.unparse()).unparse() == ast.unparse()

    def test_typecheck_group_by(self, shapes):
        from repro.query import parse, typecheck

        report = typecheck(
            shapes.taxdb.schema,
            parse(
                "select count(t) from t in CircumscriptionTaxon "
                "group by t.bogus"
            ),
        )
        assert any("bogus" in e for e in report.errors)
