"""Seeded random POOL query generator + reducing shrinker.

Used by the differential harness (``test_differential.py``): every
generated query is executed through the cost-based planner *and* the
retained naive reference evaluator, and the result sets must agree.
Queries are built as a structured :class:`QuerySpec` (not raw text) so
a failing case can be *shrunk* — conjuncts dropped, clauses stripped,
bindings removed — down to a minimal still-failing query before it is
reported.

The generator deliberately avoids arithmetic that can raise
(division/modulo) and type-mismatched comparisons (``size = "x"``), so
every query is deterministic and the only interesting behaviour is
access-path selection.  Nulls, on the other hand, are generated
aggressively: the fuzz schema's ``year`` attribute is None for ~30% of
rows, which exercises the None-safe range-probe and null-ordering
paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

#: Attribute name -> kind, shared by predicate and value generators.
ATTRS = {
    "name": "str",
    "rank": "str",
    "size": "int",
    "score": "float",
    "flag": "bool",
    "year": "nullable_int",
}

RANKS = ("kingdom", "family", "genus", "species")


@dataclass
class QuerySpec:
    """One generated SELECT, structured for shrinking."""

    bindings: list[tuple[str, str]]  # (variable, source text)
    conjuncts: list[str] = field(default_factory=list)  # ANDed predicates
    projection: str | None = None  # None = bare first variable
    order_by: str | None = None
    limit: int | None = None
    distinct: bool = False

    def text(self) -> str:
        proj = self.projection or self.bindings[0][0]
        parts = ["select"]
        if self.distinct:
            parts.append("distinct")
        parts.append(proj)
        parts.append("from")
        parts.append(
            ", ".join(f"{var} in {source}" for var, source in self.bindings)
        )
        if self.conjuncts:
            parts.append("where")
            parts.append(" and ".join(self.conjuncts))
        if self.order_by:
            parts.append(f"order by {self.order_by}")
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        return " ".join(parts)


class QueryGen:
    """Seeded generator over the fuzz schema (Base / Leaf / Links)."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    # -- value pools (type-correct by construction) ---------------------

    def _value(self, kind: str) -> str:
        rng = self.rng
        if kind == "str":
            return f'"{rng.choice(["n", "m"])}{rng.randrange(0, 40)}"'
        if kind == "int":
            return str(rng.randrange(-2, 12))
        if kind == "float":
            return f"{rng.randrange(0, 100) / 10.0}"
        if kind == "bool":
            return rng.choice(("true", "false"))
        if kind == "nullable_int":
            return str(rng.randrange(1750, 1760))
        raise AssertionError(kind)

    def _attr(self) -> tuple[str, str]:
        name = self.rng.choice(list(ATTRS))
        return name, ATTRS[name]

    # -- predicates -----------------------------------------------------

    def _comparison(self, var: str) -> str:
        attr, kind = self._attr()
        value = self._value(kind)
        if kind in ("str", "bool"):
            op = self.rng.choice(("=", "!=", "="))
        else:
            op = self.rng.choice(("=", "!=", "<", "<=", ">", ">="))
        if kind == "str" and self.rng.random() < 0.25:
            prefix = self.rng.choice(("n", "m", "n1"))
            return f'{var}.{attr} like "{prefix}%"'
        if self.rng.random() < 0.15:  # reversed operand order
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            return f"{value} {flipped} {var}.{attr}"
        return f"{var}.{attr} {op} {value}"

    def _predicate(self, variables: list[str], depth: int = 0) -> str:
        rng = self.rng
        var = rng.choice(variables)
        roll = rng.random()
        if depth < 2 and roll < 0.18:
            left = self._predicate(variables, depth + 1)
            right = self._predicate(variables, depth + 1)
            return f"({left} or {right})"
        if depth < 2 and roll < 0.26:
            return f"(not {self._predicate(variables, depth + 1)})"
        if roll < 0.32:
            return f"{var}.flag"
        if len(variables) > 1 and roll < 0.40:
            a, b = rng.sample(variables, 2)
            attr = rng.choice(("size", "rank"))
            op = rng.choice(("=", "!="))
            return f"{a}.{attr} {op} {b}.{attr}"
        return self._comparison(var)

    # -- whole queries --------------------------------------------------

    def _source(self, prev_var: str | None) -> str:
        rng = self.rng
        if prev_var is None or rng.random() < 0.5:
            return rng.choice(("Base", "Base", "Leaf"))
        arrow = rng.choice(("->", "<-"))
        closure = rng.choice(("", "", "+", "*", "{1,2}", "{0,2}", "{2,3}"))
        return f"{prev_var}{arrow}Links{closure}"

    def spec(self) -> QuerySpec:
        rng = self.rng
        bindings = [("a", self._source(None))]
        if rng.random() < 0.45:
            bindings.append(("b", self._source("a")))
        variables = [var for var, _ in bindings]
        conjuncts = [
            self._predicate(variables)
            for _ in range(rng.choice((0, 1, 1, 1, 2, 2, 3)))
        ]
        projection: str | None = None
        roll = rng.random()
        proj_var = rng.choice(variables)
        if roll < 0.35:
            attr = rng.choice(list(ATTRS))
            projection = f"{proj_var}.{attr}"
        elif roll < 0.45:
            projection = f"(Leaf) {proj_var}"
        elif roll < 0.55 and len(variables) > 1:
            projection = ", ".join(f"{v}.size" for v in variables)
        order_by = None
        if rng.random() < 0.4:
            attr = rng.choice(("size", "name", "year", "score"))
            direction = rng.choice(("", " desc", " asc"))
            order_by = f"{rng.choice(variables)}.{attr}{direction}"
        limit = rng.choice((None, None, None, 1, 2, 5, 10))
        distinct = rng.random() < 0.25
        return QuerySpec(
            bindings=bindings,
            conjuncts=conjuncts,
            projection=projection,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )


def shrink(spec: QuerySpec, still_fails) -> QuerySpec:
    """Greedy reducing shrinker.

    Repeatedly tries structural reductions, keeping any that still
    reproduce the failure (``still_fails(spec) -> bool``), until no
    reduction applies.  Returns the minimal failing spec.
    """
    changed = True
    while changed:
        changed = False
        for candidate in _reductions(spec):
            if still_fails(candidate):
                spec = candidate
                changed = True
                break
    return spec


def _reductions(spec: QuerySpec):
    for index in range(len(spec.conjuncts)):
        rest = spec.conjuncts[:index] + spec.conjuncts[index + 1:]
        yield replace(spec, conjuncts=rest)
    if spec.order_by:
        yield replace(spec, order_by=None)
    if spec.limit is not None:
        yield replace(spec, limit=None)
    if spec.distinct:
        yield replace(spec, distinct=False)
    if spec.projection is not None:
        yield replace(spec, projection=None)
    if len(spec.bindings) > 1:
        # Dropping binding b requires nothing else to mention it.
        survivor = spec.bindings[0][0]
        dropped = {var for var, _ in spec.bindings[1:]}
        mentions = " ".join(spec.conjuncts) + " " + (spec.projection or "") + \
            " " + (spec.order_by or "")
        if not any(f"{var}." in mentions or f"{var}-" in mentions
                   or f"{var}<" in mentions or f" {var} " in f" {mentions} "
                   for var in dropped):
            yield replace(
                spec, bindings=spec.bindings[:1], projection=spec.projection
                if spec.projection and survivor in spec.projection
                else None,
            )
