"""Seeded random POOL query generator + reducing shrinker.

Used by the differential harness (``test_differential.py``): every
generated query is executed through the cost-based planner *and* the
retained naive reference evaluator, and the result sets must agree.
Queries are built as a structured :class:`QuerySpec` (not raw text) so
a failing case can be *shrunk* — conjuncts dropped, clauses stripped,
bindings removed — down to a minimal still-failing query before it is
reported.

The fuzz schema spans **two categories** (in the paper's sense of
parallel taxonomic hierarchies): ``Base``/``Leaf`` with the
``Links`` Base-to-Base digraph, and ``Cat`` reached through the
cross-category ``Bridges`` (Base-to-Cat) relationship.  The generator
tracks which category each bound variable ranges over, so predicates,
projections and ORDER BY clauses always name attributes the variable
actually has — the interesting behaviour stays access-path selection
and traversal semantics, never trivial type errors.

The generator deliberately avoids arithmetic that can raise
(division/modulo) and type-mismatched comparisons (``size = "x"``), so
every query is deterministic.  Nulls, on the other hand, are generated
aggressively: the fuzz schema's ``year`` attribute is None for ~30% of
rows, which exercises the None-safe range-probe and null-ordering
paths.  ``rank`` comparisons draw from the real :data:`RANKS` pool (a
sharded deployment keys placement on ``rank``, so these are the
predicates that exercise shard pruning), and roughly a third of the
specs are forced into the ORDER BY + LIMIT + predicate shape that
stresses top-n pushdown.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

#: Base/Leaf attribute name -> kind, shared by predicate and value
#: generators.
ATTRS = {
    "name": "str",
    "rank": "str",
    "size": "int",
    "score": "float",
    "flag": "bool",
    "year": "nullable_int",
}

#: Cat (the second category) attribute name -> kind.
CAT_ATTRS = {
    "label": "str",
    "region": "str",
    "area": "int",
    "wet": "bool",
}

RANKS = ("kingdom", "family", "genus", "species")

REGIONS = ("arctic", "boreal", "temperate", "tropical")

#: category -> (attr table, bare-bool attr, int attr, str attr,
#:              orderable attrs)
_CATEGORIES = {
    "base": (ATTRS, "flag", "size", "rank", ("size", "name", "year", "score")),
    "cat": (CAT_ATTRS, "wet", "area", "region", ("area", "label", "region")),
}


@dataclass
class QuerySpec:
    """One generated SELECT, structured for shrinking."""

    bindings: list[tuple[str, str]]  # (variable, source text)
    conjuncts: list[str] = field(default_factory=list)  # ANDed predicates
    projection: str | None = None  # None = bare first variable
    order_by: str | None = None
    limit: int | None = None
    distinct: bool = False

    def text(self) -> str:
        proj = self.projection or self.bindings[0][0]
        parts = ["select"]
        if self.distinct:
            parts.append("distinct")
        parts.append(proj)
        parts.append("from")
        parts.append(
            ", ".join(f"{var} in {source}" for var, source in self.bindings)
        )
        if self.conjuncts:
            parts.append("where")
            parts.append(" and ".join(self.conjuncts))
        if self.order_by:
            parts.append(f"order by {self.order_by}")
        if self.limit is not None:
            parts.append(f"limit {self.limit}")
        return " ".join(parts)


class QueryGen:
    """Seeded generator over the fuzz schema (Base/Leaf/Links + Cat/Bridges)."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)

    # -- value pools (type-correct by construction) ---------------------

    def _value(self, kind: str, attr: str | None = None) -> str:
        rng = self.rng
        if kind == "str":
            if attr == "rank":
                # Real rank values (plus one miss) so equality predicates
                # actually select rows — and, on a sharded deployment
                # keyed on rank, actually prune shards.
                return f'"{rng.choice(RANKS + ("variety",))}"'
            if attr == "region":
                return f'"{rng.choice(REGIONS + ("abyssal",))}"'
            return f'"{rng.choice(["n", "m"])}{rng.randrange(0, 40)}"'
        if kind == "int":
            return str(rng.randrange(-2, 12))
        if kind == "float":
            return f"{rng.randrange(0, 100) / 10.0}"
        if kind == "bool":
            return rng.choice(("true", "false"))
        if kind == "nullable_int":
            return str(rng.randrange(1750, 1760))
        raise AssertionError(kind)

    def _attr(self, category: str) -> tuple[str, str]:
        table = _CATEGORIES[category][0]
        name = self.rng.choice(list(table))
        return name, table[name]

    # -- predicates -----------------------------------------------------

    def _comparison(self, var: str, category: str) -> str:
        attr, kind = self._attr(category)
        value = self._value(kind, attr)
        if kind in ("str", "bool"):
            op = self.rng.choice(("=", "!=", "="))
        else:
            op = self.rng.choice(("=", "!=", "<", "<=", ">", ">="))
        if kind == "str" and self.rng.random() < 0.25:
            if attr == "rank":
                prefix = self.rng.choice(("k", "f", "g", "s", "gen", "spec"))
            elif attr == "region":
                prefix = self.rng.choice(("a", "b", "t", "tro"))
            else:
                prefix = self.rng.choice(("n", "m", "n1"))
            return f'{var}.{attr} like "{prefix}%"'
        if self.rng.random() < 0.15:  # reversed operand order
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
            return f"{value} {flipped} {var}.{attr}"
        return f"{var}.{attr} {op} {value}"

    def _predicate(
        self, cats: dict[str, str], depth: int = 0
    ) -> str:
        rng = self.rng
        variables = list(cats)
        var = rng.choice(variables)
        roll = rng.random()
        if depth < 2 and roll < 0.18:
            left = self._predicate(cats, depth + 1)
            right = self._predicate(cats, depth + 1)
            return f"({left} or {right})"
        if depth < 2 and roll < 0.26:
            return f"(not {self._predicate(cats, depth + 1)})"
        if roll < 0.32:
            return f"{var}.{_CATEGORIES[cats[var]][1]}"
        if len(variables) > 1 and roll < 0.40:
            # Cross-variable (possibly cross-category) comparison on a
            # type-compatible attribute pair: size/area or rank/region.
            a, b = rng.sample(variables, 2)
            slot = rng.choice((2, 3))  # int attr or str attr
            op = rng.choice(("=", "!="))
            attr_a = _CATEGORIES[cats[a]][slot]
            attr_b = _CATEGORIES[cats[b]][slot]
            return f"{a}.{attr_a} {op} {b}.{attr_b}"
        return self._comparison(var, cats[var])

    # -- whole queries --------------------------------------------------

    def _source(self, prev: tuple[str, str] | None) -> tuple[str, str]:
        """(source text, category) for the next binding."""
        rng = self.rng
        if prev is None or rng.random() < 0.5:
            return rng.choice(
                (("Base", "base"), ("Base", "base"), ("Leaf", "base"),
                 ("Cat", "cat"))
            )
        prev_var, prev_cat = prev
        if prev_cat == "cat":
            # The only relationship touching Cat is Bridges (Base->Cat).
            return f"{prev_var}<-Bridges", "base"
        if rng.random() < 0.3:
            return f"{prev_var}->Bridges", "cat"
        arrow = rng.choice(("->", "<-"))
        closure = rng.choice(("", "", "+", "*", "{1,2}", "{0,2}", "{2,3}"))
        return f"{prev_var}{arrow}Links{closure}", "base"

    def spec(self) -> QuerySpec:
        rng = self.rng
        source, category = self._source(None)
        bindings = [("a", source)]
        cats = {"a": category}
        if rng.random() < 0.45:
            source, category = self._source(("a", cats["a"]))
            bindings.append(("b", source))
            cats["b"] = category
        variables = list(cats)
        # ~1/3 of specs force the full ORDER BY + LIMIT + predicate
        # combination — the shape that exercises top-n pushdown.
        combo = rng.random() < 0.3
        n_conjuncts = rng.choice((0, 1, 1, 1, 2, 2, 3))
        if combo:
            n_conjuncts = max(1, n_conjuncts)
        conjuncts = [self._predicate(cats) for _ in range(n_conjuncts)]
        projection: str | None = None
        roll = rng.random()
        proj_var = rng.choice(variables)
        if roll < 0.35:
            attr = rng.choice(list(_CATEGORIES[cats[proj_var]][0]))
            projection = f"{proj_var}.{attr}"
        elif roll < 0.45 and cats[proj_var] == "base":
            projection = f"(Leaf) {proj_var}"
        elif roll < 0.55 and len(variables) > 1:
            projection = ", ".join(
                f"{v}.{_CATEGORIES[cats[v]][2]}" for v in variables
            )
        order_by = None
        if combo or rng.random() < 0.4:
            order_var = rng.choice(variables)
            attr = rng.choice(_CATEGORIES[cats[order_var]][4])
            direction = rng.choice(("", " desc", " asc"))
            order_by = f"{order_var}.{attr}{direction}"
        limit = rng.choice((None, None, None, 1, 2, 5, 10))
        if combo and limit is None:
            limit = rng.choice((1, 2, 5, 10))
        distinct = rng.random() < 0.25
        return QuerySpec(
            bindings=bindings,
            conjuncts=conjuncts,
            projection=projection,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )


def shrink(spec: QuerySpec, still_fails) -> QuerySpec:
    """Greedy reducing shrinker.

    Repeatedly tries structural reductions, keeping any that still
    reproduce the failure (``still_fails(spec) -> bool``), until no
    reduction applies.  Returns the minimal failing spec.
    """
    changed = True
    while changed:
        changed = False
        for candidate in _reductions(spec):
            if still_fails(candidate):
                spec = candidate
                changed = True
                break
    return spec


def _reductions(spec: QuerySpec):
    for index in range(len(spec.conjuncts)):
        rest = spec.conjuncts[:index] + spec.conjuncts[index + 1:]
        yield replace(spec, conjuncts=rest)
    if spec.order_by:
        yield replace(spec, order_by=None)
    if spec.limit is not None:
        yield replace(spec, limit=None)
    if spec.distinct:
        yield replace(spec, distinct=False)
    if spec.projection is not None:
        yield replace(spec, projection=None)
    if len(spec.bindings) > 1:
        # Dropping binding b requires nothing else to mention it.
        survivor = spec.bindings[0][0]
        dropped = {var for var, _ in spec.bindings[1:]}
        mentions = " ".join(spec.conjuncts) + " " + (spec.projection or "") + \
            " " + (spec.order_by or "")
        if not any(f"{var}." in mentions or f"{var}-" in mentions
                   or f"{var}<" in mentions or f" {var} " in f" {mentions} "
                   for var in dropped):
            yield replace(
                spec, bindings=spec.bindings[:1], projection=spec.projection
                if spec.projection and survivor in spec.projection
                else None,
            )
