"""Differential query fuzzing: planner vs naive reference evaluator.

Every seeded random POOL query (see :mod:`qgen`) is executed twice over
the same live schema:

* **reference** — the module-level :func:`repro.query.execute`, which
  always interprets the AST naively with no index layer attached;
* **planner** — ``PrometheusDB.query``, which compiles through the
  cost-based planner with hash + B-tree indexes (including a B-tree
  over a None-mixed column) and the plan cache live.

Result sets must agree: exactly (including order) when the query has an
ORDER BY, as multisets otherwise.  If either side raises, the other
must raise too.  On divergence the case is shrunk to a minimal failing
query and reported with its seed and both results.

CI runs three fixed seeds plus one derived from ``GITHUB_RUN_ID``
(printed for reproduction); ``QUERY_FUZZ_SEED`` forces any seed
locally:

    QUERY_FUZZ_SEED=12345 pytest tests/query/test_differential.py -k extra
"""

from __future__ import annotations

import os
import random
from collections import Counter

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.core.instances import PObject
from repro.engine import PrometheusDB
from repro.query import execute

from tests import fuzzseeds

from .qgen import RANKS, REGIONS, QueryGen, QuerySpec, shrink

SEED_ENV = "QUERY_FUZZ_SEED"
FIXED_SEEDS = (101, 202, 303)
CASES_PER_SEED = 170  # 3 seeds x 170 = 510 >= 500


def build_db(seed: int) -> PrometheusDB:
    """The fuzz schema, populated from one seed.

    ``Base`` holds every attribute kind (str/int/float/bool and a
    None-mixed int), ``Leaf`` subclasses it, and ``Links`` is a
    Base-to-Base relationship forming a random sparse digraph.  ``Cat``
    is a second category (disjoint attribute set) reached through the
    cross-category ``Bridges`` relationship.  Indexes cover equality
    (hash), ranges and ordering (btree) and — crucially — a None-mixed
    column (btree on ``year``).
    """
    rng = random.Random(seed * 7919 + 13)
    db = PrometheusDB()
    db.schema.define_class(
        "Base",
        [
            Attribute("name", T.STRING),
            Attribute("rank", T.STRING),
            Attribute("size", T.INTEGER),
            Attribute("score", T.FLOAT),
            Attribute("flag", T.BOOLEAN),
            Attribute("year", T.INTEGER, required=False),
        ],
    )
    db.schema.define_class(
        "Leaf", [Attribute("extra", T.INTEGER)], superclasses=["Base"]
    )
    db.schema.define_class(
        "Cat",
        [
            Attribute("label", T.STRING),
            Attribute("region", T.STRING),
            Attribute("area", T.INTEGER),
            Attribute("wet", T.BOOLEAN),
        ],
    )
    db.schema.define_relationship("Links", "Base", "Base")
    db.schema.define_relationship("Bridges", "Base", "Cat")
    objects = []
    for i in range(rng.randrange(30, 45)):
        cls = "Leaf" if rng.random() < 0.4 else "Base"
        attrs = {
            "name": f"{rng.choice(['n', 'm'])}{rng.randrange(0, 40)}",
            "rank": rng.choice(RANKS),
            "size": rng.randrange(-2, 12),
            "score": rng.randrange(0, 100) / 10.0,
            "flag": rng.random() < 0.5,
            "year": None if rng.random() < 0.3 else rng.randrange(1750, 1760),
        }
        if cls == "Leaf":
            attrs["extra"] = rng.randrange(0, 5)
        objects.append(db.schema.create(cls, **attrs))
    cats = []
    for i in range(rng.randrange(8, 16)):
        cats.append(
            db.schema.create(
                "Cat",
                label=f"c{rng.randrange(0, 30)}",
                region=rng.choice(REGIONS),
                area=rng.randrange(-2, 12),
                wet=rng.random() < 0.5,
            )
        )
    for _ in range(rng.randrange(20, 60)):
        a, b = rng.choice(objects), rng.choice(objects)
        if a.oid != b.oid:
            db.schema.relate("Links", a, b)
    for _ in range(rng.randrange(10, 30)):
        db.schema.relate("Bridges", rng.choice(objects), rng.choice(cats))
    db.indexes.create_index("Base", "name", kind="hash")
    db.indexes.create_index("Base", "size", kind="btree")
    db.indexes.create_index("Base", "year", kind="btree")  # None-mixed!
    db.indexes.create_index("Base", "rank", kind="hash")
    db.indexes.create_index("Cat", "region", kind="hash")
    return db


def canon(value):
    """Canonical hashable form for result comparison."""
    if isinstance(value, PObject):
        return ("obj", value.oid)
    if isinstance(value, (list, tuple)):
        return ("seq",) + tuple(canon(v) for v in value)
    if isinstance(value, dict):
        return ("row",) + tuple(
            sorted((k, canon(v)) for k, v in value.items())
        )
    return value


def run_both(db: PrometheusDB, text: str):
    """(reference_outcome, planner_outcome) — ('ok', rows) or ('err', type)."""
    try:
        ref = ("ok", [canon(v) for v in execute(db.schema, text)])
    except Exception as exc:  # noqa: BLE001 — classify, don't mask
        ref = ("err", type(exc).__name__)
    try:
        got = ("ok", [canon(v) for v in db.query(text, check=False)])
    except Exception as exc:  # noqa: BLE001
        got = ("err", type(exc).__name__)
    return ref, got


def agree(spec: QuerySpec, ref, got) -> bool:
    if ref[0] != got[0]:
        return False
    if ref[0] == "err":
        return ref[1] == got[1]
    if spec.order_by:
        return ref[1] == got[1]
    return Counter(ref[1]) == Counter(got[1])


def run_seed(seed: int, cases: int) -> None:
    db = build_db(seed)
    gen = QueryGen(seed)
    failures = []
    for case in range(cases):
        spec = gen.spec()
        text = spec.text()
        try:
            ref, got = run_both(db, text)
        except Exception as exc:  # pragma: no cover — harness bug
            pytest.fail(f"harness crashed on seed={seed} case={case}: "
                        f"{text!r}: {exc}")
        if not agree(spec, ref, got):
            failures.append((case, spec, ref, got))
            break  # shrink the first divergence; later ones usually alias it
    if not failures:
        return
    case, spec, ref, got = failures[0]

    def still_fails(candidate: QuerySpec) -> bool:
        r, g = run_both(db, candidate.text())
        return not agree(candidate, r, g)

    minimal = shrink(spec, still_fails)
    ref, got = run_both(db, minimal.text())
    pytest.fail(
        "planner/reference divergence\n"
        f"  seed       : {seed} (case {case})\n"
        f"  minimal    : {minimal.text()}\n"
        f"  original   : {spec.text()}\n"
        f"  reference  : {ref}\n"
        f"  planner    : {got}\n"
        + fuzzseeds.repro_line(SEED_ENV, seed, "tests/query -k extra")
    )


@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_differential_fixed_seeds(seed):
    run_seed(seed, CASES_PER_SEED)


def test_differential_extra_seed(capsys):
    """One extra seed from the environment (CI derives it from
    GITHUB_RUN_ID and prints it so any failure is reproducible)."""
    seed = fuzzseeds.run_seed(SEED_ENV)
    if seed is None:
        pytest.skip(f"{SEED_ENV} / GITHUB_RUN_ID not set")
    with capsys.disabled():
        print(f"\n[query-fuzz] extra seed: {seed}")
    run_seed(seed, CASES_PER_SEED)


def test_generator_is_deterministic():
    a = [QueryGen(42).spec().text() for _ in range(25)]
    b = [QueryGen(42).spec().text() for _ in range(25)]
    assert a == b


def test_shrinker_minimises():
    """The shrinker strips clauses irrelevant to a (synthetic) failure."""
    spec = QuerySpec(
        bindings=[("a", "Base"), ("b", "a->Links")],
        conjuncts=["a.size > 3", "a.flag", "b.rank = \"genus\""],
        projection="a.name",
        order_by="a.size desc",
        limit=5,
        distinct=True,
    )

    def still_fails(candidate: QuerySpec) -> bool:
        # Synthetic oracle: the "bug" needs only `a.size > 3`.
        return any("a.size > 3" in c for c in candidate.conjuncts)

    minimal = shrink(spec, still_fails)
    assert minimal.conjuncts == ["a.size > 3"]
    assert minimal.order_by is None
    assert minimal.limit is None
    assert minimal.distinct is False
    assert minimal.projection is None
    assert len(minimal.bindings) == 1
