"""EXPLAIN/PROFILE and the plan cache under transactions.

Companion to the PR 3 index-rebuild fix: an abort republishes
``AFTER_ABORT``, which rebuilds every index from the restored extents
*and* must now also evict every cached plan, so post-rollback EXPLAIN
reports both a fresh plan (cache miss) and correct rows.
"""

from __future__ import annotations

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB


@pytest.fixture()
def db():
    db = PrometheusDB()
    db.schema.define_class(
        "Taxon",
        [Attribute("name", T.STRING), Attribute("rank", T.STRING)],
    )
    for i in range(10):
        db.schema.create(
            "Taxon", name=f"t{i}", rank="genus" if i % 2 else "species"
        )
    db.indexes.create_index("Taxon", "rank", kind="hash")
    db.commit()
    return db


QUERY = 'explain select t from t in Taxon where t.rank = "genus"'


class TestImplicitTransactionVisibility:
    def test_plan_reflects_uncommitted_implicit_writes(self, db):
        """Queries read the live object layer: implicit (unstaged)
        mutations are visible to the plan's index probe before commit."""
        before = db.query(QUERY)
        assert before["rows"] == 5
        db.schema.create("Taxon", name="new", rank="genus")
        report = db.query(QUERY)
        assert report["plan"]["access_paths"] == ["index:Taxon.rank"]
        assert report["rows"] == 6
        assert report["plan"]["rows_from_index"] == 6

    def test_abort_restores_rows_and_evicts_plans(self, db):
        db.query(QUERY)  # populate the cache
        assert db.planner.snapshot()["cache_size"] >= 1
        db.schema.create("Taxon", name="doomed", rank="genus")
        assert db.query(QUERY)["rows"] == 6
        db.abort()
        # AFTER_ABORT: indexes rebuilt AND plan cache emptied.
        assert db.planner.snapshot()["cache_size"] == 0
        report = db.query(QUERY)
        assert report["plan"]["cache"] == "miss"
        assert report["plan"]["access_paths"] == ["index:Taxon.rank"]
        assert report["rows"] == 5
        assert report["plan"]["rows_from_index"] == 5

    def test_post_commit_cache_hit_serves_fresh_rows(self, db):
        assert db.query(QUERY)["plan"]["cache"] == "miss"
        db.schema.create("Taxon", name="kept", rank="genus")
        db.commit()
        report = db.query(QUERY)
        # Data changes don't invalidate plans — plans hold access
        # paths, not rows — so this is a hit with up-to-date results.
        assert report["plan"]["cache"] == "hit"
        assert report["rows"] == 6


class TestManagedTransactionIsolation:
    def test_staged_writes_invisible_to_planned_queries(self, db):
        """db.query is read-committed: a managed transaction's staged
        rows must not appear in results or index counters."""
        txn = db.begin()
        txn.create("Taxon", name="staged", rank="genus")
        report = db.query(QUERY)
        assert report["rows"] == 5
        assert report["plan"]["rows_from_index"] == 5
        txn.abort()
        assert db.query(QUERY)["rows"] == 5

    def test_committed_txn_rows_visible_through_cached_plan(self, db):
        db.query(QUERY)
        txn = db.begin()
        txn.create("Taxon", name="added", rank="genus")
        txn.commit()
        report = db.query(QUERY)
        assert report["plan"]["cache"] == "hit"
        assert report["rows"] == 6

    def test_failed_commit_rollback_evicts_plans(self, db):
        """A conflict abort goes through the same AFTER_ABORT path."""
        db.query(QUERY)
        size_before = db.planner.snapshot()["cache_size"]
        assert size_before >= 1
        db.schema.create("Taxon", name="x", rank="genus")
        db.abort()  # the implicit rollback everyone shares
        assert db.planner.snapshot()["cache_size"] == 0


class TestProfileUnderTransactions:
    def test_profile_spans_present_with_planner(self, db):
        report = db.query(
            'profile select t from t in Taxon where t.rank = "genus"'
        )
        assert report["mode"] == "profile"
        assert "elapsed_ms" in report
        names = [s["name"] for s in _walk_spans(report["spans"])]
        assert "pool.select" in names
        assert report["plan"]["engine"] == "cost"
        assert report["plan"]["plan_tree"] is not None

    def test_profile_mid_transaction_counts_committed_rows_only(self, db):
        txn = db.begin()
        txn.create("Taxon", name="staged", rank="genus")
        report = db.query(
            'profile select t from t in Taxon where t.rank = "genus"'
        )
        assert report["rows"] == 5
        txn.abort()


def _walk_spans(spans):
    for span in spans:
        yield span
        yield from _walk_spans(span.get("children", ()))
