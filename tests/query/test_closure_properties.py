"""Property tests: POOL closures agree with networkx on random DAGs."""

import networkx
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.attributes import Attribute
from repro.core.schema import Schema
from repro.core.semantics import RelationshipSemantics, RelKind
from repro.core import types as T
from repro.query import execute


def build_dag(edges: list[tuple[int, int]], node_count: int):
    """Build the same DAG in a Prometheus schema and in networkx.

    Edge (a, b) with a < b guarantees acyclicity.
    """
    schema = Schema()
    schema.define_class("N", [Attribute("idx", T.INTEGER)])
    schema.define_relationship(
        "E", "N", "N",
        semantics=RelationshipSemantics(kind=RelKind.ASSOCIATION),
    )
    nodes = [schema.create("N", idx=i) for i in range(node_count)]
    graph = networkx.DiGraph()
    graph.add_nodes_from(range(node_count))
    seen = set()
    for a, b in edges:
        if (a, b) in seen or a == b:
            continue
        seen.add((a, b))
        schema.relate("E", nodes[a], nodes[b])
        graph.add_edge(a, b)
    return schema, nodes, graph


_edges = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=11),
        st.integers(min_value=0, max_value=11),
    ).map(lambda p: (min(p), max(p))).filter(lambda p: p[0] != p[1]),
    max_size=30,
)


@settings(max_examples=40, deadline=None)
@given(_edges, st.integers(min_value=0, max_value=11))
def test_plus_closure_equals_networkx_descendants(edges, start):
    schema, nodes, graph = build_dag(edges, 12)
    result = execute(
        schema,
        "select x.idx from n in N, x in n->E+ where n.idx = $s",
        params={"s": start},
    )
    assert sorted(result) == sorted(networkx.descendants(graph, start))


@settings(max_examples=40, deadline=None)
@given(_edges, st.integers(min_value=0, max_value=11))
def test_inverse_plus_closure_equals_ancestors(edges, start):
    schema, nodes, graph = build_dag(edges, 12)
    result = execute(
        schema,
        "select x.idx from n in N, x in n<-E+ where n.idx = $s",
        params={"s": start},
    )
    assert sorted(result) == sorted(networkx.ancestors(graph, start))


@settings(max_examples=40, deadline=None)
@given(_edges, st.integers(min_value=0, max_value=11))
def test_star_closure_is_plus_with_start(edges, start):
    schema, nodes, graph = build_dag(edges, 12)
    star = execute(
        schema,
        "select x.idx from n in N, x in n->E* where n.idx = $s",
        params={"s": start},
    )
    plus = execute(
        schema,
        "select x.idx from n in N, x in n->E+ where n.idx = $s",
        params={"s": start},
    )
    assert sorted(star) == sorted(set(plus) | {start})


@settings(max_examples=30, deadline=None)
@given(_edges, st.integers(min_value=0, max_value=11),
       st.integers(min_value=1, max_value=4))
def test_bounded_closure_is_bfs_depth_window(edges, start, depth):
    schema, nodes, graph = build_dag(edges, 12)
    result = execute(
        schema,
        f"select x.idx from n in N, x in n->E{{1,{depth}}} where n.idx = $s",
        params={"s": start},
    )
    lengths = networkx.single_source_shortest_path_length(
        graph, start, cutoff=depth
    )
    expected = [node for node, dist in lengths.items() if 1 <= dist <= depth]
    assert sorted(result) == sorted(expected)


@settings(max_examples=30, deadline=None)
@given(_edges)
def test_extract_graph_matches_networkx_reachability(edges):
    schema, nodes, graph = build_dag(edges, 12)
    view = execute(
        schema,
        "extract graph from first((select n from n in N where n.idx = 0)) "
        "via E",
    )
    reachable = {0} | networkx.descendants(graph, 0)
    assert set(view.to_networkx().nodes) == {nodes[i].oid for i in reachable}
