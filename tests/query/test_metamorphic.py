"""Metamorphic planner invariants.

Three transformations that must never change query *results*, only
(possibly) the EXPLAIN access path:

1. adding a matching index;
2. serving a query from the plan cache instead of cold-planning it;
3. adding ``LIMIT k`` (the limited rows must be a prefix/subset).
"""

from __future__ import annotations

import json
from collections import Counter

import pytest

from .qgen import QueryGen
from .test_differential import build_db, canon


def _multiset(rows):
    return Counter(canon(v) for v in rows)


class TestIndexInvariance:
    """Adding an index changes the access path, never the results."""

    def test_fuzzed_queries_survive_index_addition(self):
        seed = 404
        db = build_db(seed)
        for pair in [("Base", "name"), ("Base", "size"),
                     ("Base", "year"), ("Base", "rank")]:
            db.indexes.drop_index(*pair)
        gen = QueryGen(seed)
        cases = [gen.spec() for _ in range(60)]
        before = {}
        for i, spec in enumerate(cases):
            before[i] = db.query(spec.text(), check=False)
        db.indexes.create_index("Base", "name", kind="hash")
        db.indexes.create_index("Base", "size", kind="btree")
        db.indexes.create_index("Base", "year", kind="btree")
        db.indexes.create_index("Base", "rank", kind="hash")
        for i, spec in enumerate(cases):
            after = db.query(spec.text(), check=False)
            if spec.order_by:
                assert [canon(v) for v in before[i]] == [
                    canon(v) for v in after
                ], spec.text()
            else:
                assert _multiset(before[i]) == _multiset(after), spec.text()

    def test_access_path_flips_but_rows_do_not(self):
        db = build_db(17)
        query = "explain select x from x in Base where x.size = 3"
        db.indexes.drop_index("Base", "size")
        cold = db.query(query, check=False)
        assert cold["plan"]["access_paths"] == ["scan:Base"]
        db.indexes.create_index("Base", "size", kind="btree")
        warm = db.query(query, check=False)
        assert warm["plan"]["access_paths"] == ["index:Base.size"]
        assert warm["rows"] == cold["rows"]

    def test_index_epoch_invalidates_cached_plan(self):
        db = build_db(18)
        query = "explain select x from x in Base where x.rank = \"genus\""
        first = db.query(query, check=False)
        assert first["plan"]["cache"] == "miss"
        again = db.query(query, check=False)
        assert again["plan"]["cache"] == "hit"
        db.indexes.drop_index("Base", "rank")
        after_drop = db.query(query, check=False)
        # The epoch moved: the stale index_eq plan must not be served.
        assert after_drop["plan"]["cache"] == "miss"
        assert after_drop["plan"]["access_paths"] == ["scan:Base"]
        assert after_drop["rows"] == first["rows"]


class TestPlanCacheInvariance:
    """A plan-cache hit returns byte-identical results to a cold plan."""

    def test_hit_equals_cold_for_fuzzed_queries(self):
        db = build_db(505)
        gen = QueryGen(505)
        for _ in range(40):
            spec = gen.spec()
            text = spec.text()
            cold = db.query(text, check=False)
            hit = db.query(text, check=False)
            assert json.dumps([canon(v) for v in cold], sort_keys=True) == \
                json.dumps([canon(v) for v in hit], sort_keys=True), text

    def test_literal_normalisation_shares_one_plan(self):
        """Queries differing only in constants reuse the same plan."""
        db = build_db(506)
        db.query("select x from x in Base where x.size = 1", check=False)
        built_before = db.planner.built
        for size in (2, 3, 4, 5):
            report = db.query(
                f"explain select x from x in Base where x.size = {size}",
                check=False,
            )
            assert report["plan"]["cache"] == "hit"
        assert db.planner.built == built_before
        # ... but the answers still track the literal.
        one = db.query("select x.size from x in Base where x.size = 1",
                       check=False)
        two = db.query("select x.size from x in Base where x.size = 2",
                       check=False)
        assert set(one) <= {1} and set(two) <= {2}


class TestLimitInvariance:
    """LIMIT k results are always contained in the unlimited results."""

    def test_limit_is_subset_of_unlimited(self):
        db = build_db(606)
        gen = QueryGen(606)
        checked = 0
        for _ in range(80):
            spec = gen.spec()
            spec.limit = None
            unlimited = db.query(spec.text(), check=False)
            for k in (1, 3, 7):
                spec.limit = k
                limited = db.query(spec.text(), check=False)
                assert len(limited) <= k
                if spec.order_by:
                    # Deterministic order: LIMIT is an exact prefix.
                    assert [canon(v) for v in limited] == [
                        canon(v) for v in unlimited
                    ][:k], spec.text()
                else:
                    assert not (_multiset(limited) - _multiset(unlimited)), \
                        spec.text()
            checked += 1
        assert checked == 80


class TestPlannerOffParity:
    """planner=False disables planned execution entirely (reference mode)."""

    def test_engine_marker(self):
        from repro.engine import PrometheusDB
        from repro.core.attributes import Attribute
        from repro.core import types as T

        db = PrometheusDB(planner=False)
        db.schema.define_class("C", [Attribute("n", T.INTEGER)])
        db.schema.create("C", n=1)
        report = db.query("explain select c from c in C")
        assert report["plan"]["engine"] == "naive"
        assert report["plan"]["plan_tree"] is None
        assert db.planner is None
