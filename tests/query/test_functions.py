"""Built-in POOL functions and value methods."""

import pytest

from repro.errors import EvaluationError
from repro.query.functions import (
    FUNCTIONS,
    call_value_method,
    fn_avg,
    fn_count,
    fn_distinct,
    fn_element,
    fn_exists,
    fn_first,
    fn_flatten,
    fn_last,
    fn_max,
    fn_min,
    fn_nvl,
    fn_sum,
)


class TestAggregates:
    def test_count(self):
        assert fn_count([1, 2, 3]) == 3
        assert fn_count(None) == 0
        assert fn_count("scalar") == 1

    def test_sum_avg(self):
        assert fn_sum([1, 2, 3]) == 6
        assert fn_avg([1, 2, 3]) == 2
        assert fn_avg([]) is None
        assert fn_sum([1, None, 2]) == 3  # nulls skipped

    def test_sum_rejects_non_numeric(self):
        with pytest.raises(EvaluationError):
            fn_sum(["a"])

    def test_min_max_with_nones(self):
        assert fn_min([3, None, 1]) == 1
        assert fn_max([3, None, 1]) == 3
        assert fn_min([]) is None

    def test_exists(self):
        assert fn_exists([0])
        assert not fn_exists([])
        assert not fn_exists(None)


class TestCollectionHelpers:
    def test_distinct_preserves_order(self):
        assert fn_distinct([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_distinct_unhashable(self):
        assert fn_distinct([[1], [1], [2]]) == [[1], [2]]

    def test_flatten_one_level(self):
        assert fn_flatten([[1, 2], 3, [4]]) == [1, 2, 3, 4]

    def test_first_last(self):
        assert fn_first([1, 2]) == 1
        assert fn_last([1, 2]) == 2
        assert fn_first([]) is None

    def test_element(self):
        assert fn_element([7]) == 7
        with pytest.raises(EvaluationError):
            fn_element([1, 2])
        with pytest.raises(EvaluationError):
            fn_element([])

    def test_nvl(self):
        assert fn_nvl(None, "d") == "d"
        assert fn_nvl(0, "d") == 0


class TestValueMethods:
    def test_string_methods(self):
        assert call_value_method("Apium", "startsWith", ("Ap",))
        assert call_value_method("Apium", "endsWith", ("um",))
        assert call_value_method("Apium", "contains", ("piu",))
        assert call_value_method("Apium", "lower", ()) == "apium"
        assert call_value_method("Apium", "length", ()) == 5

    def test_collection_methods(self):
        assert call_value_method([1, 2], "count", ()) == 2
        assert call_value_method([], "isEmpty", ())
        assert call_value_method([1], "notEmpty", ())
        assert call_value_method([1, 2], "includes", (2,))
        assert call_value_method([2, 1, 2], "distinct", ()) == [2, 1]

    def test_unknown_method(self):
        with pytest.raises(EvaluationError):
            call_value_method(42, "explode", ())

    def test_registry_complete(self):
        for name in ("count", "sum", "avg", "min", "max", "exists",
                     "distinct", "flatten", "first", "last", "element",
                     "abs", "oid", "class_of", "nvl"):
            assert name in FUNCTIONS
