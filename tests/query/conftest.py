"""Fixtures for evaluator tests: a populated taxonomy database."""

from __future__ import annotations

import pytest

from repro.taxonomy import build_shapes_scenario


@pytest.fixture(scope="module")
def shapes():
    """The Figure 4 shapes scenario (module-scoped; tests must not mutate)."""
    return build_shapes_scenario()


@pytest.fixture(scope="module")
def shapes_schema(shapes):
    return shapes.taxdb.schema
