"""POOL parser: structure and unparse round-trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ParseError
from repro.query.nodes import (
    AttributeAccess,
    Binary,
    Downcast,
    ExtractGraphQuery,
    FunctionCall,
    Literal,
    MethodCall,
    SelectQuery,
    Traversal,
    Unary,
    Variable,
)
from repro.query.parser import parse, parse_expression


class TestSelect:
    def test_minimal(self):
        q = parse("select x from x in Taxon")
        assert isinstance(q, SelectQuery)
        assert q.bindings[0].variable == "x"
        assert isinstance(q.bindings[0].source, Variable)
        assert q.where is None

    def test_star_projection(self):
        q = parse("select * from x in Taxon")
        assert q.projection == ()

    def test_multi_projection_with_alias(self):
        q = parse("select x.name as n, x.rank from x in Taxon")
        assert q.projection[0].alias == "n"
        assert q.projection[1].alias is None

    def test_distinct(self):
        assert parse("select distinct x from x in T").distinct

    def test_where(self):
        q = parse("select x from x in T where x.age > 5 and x.name = 'a'")
        assert isinstance(q.where, Binary)
        assert q.where.op == "and"

    def test_multiple_bindings(self):
        q = parse("select x from x in A, y in B, z in x->R")
        assert len(q.bindings) == 3
        assert isinstance(q.bindings[2].source, Traversal)

    def test_subquery_binding(self):
        q = parse("select x from x in (select y from y in B)")
        assert isinstance(q.bindings[0].source, SelectQuery)

    def test_order_by_limit(self):
        q = parse("select x from x in T order by x.name desc, x.age limit 5")
        assert q.order_by[0].descending
        assert not q.order_by[1].descending
        assert q.limit == 5

    def test_exists_subquery(self):
        q = parse(
            "select x from x in T where exists (select y from y in U)"
        )
        assert q.where is not None

    def test_missing_from(self):
        with pytest.raises(ParseError):
            parse("select x")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse("select x from x in T nonsense")


class TestExpressions:
    def test_precedence_or_and(self):
        e = parse_expression("a or b and c")
        assert isinstance(e, Binary) and e.op == "or"
        assert isinstance(e.right, Binary) and e.right.op == "and"

    def test_precedence_arith(self):
        e = parse_expression("1 + 2 * 3")
        assert e.op == "+"
        assert e.right.op == "*"

    def test_parentheses(self):
        e = parse_expression("(1 + 2) * 3")
        assert e.op == "*"

    def test_not(self):
        e = parse_expression("not a = b")
        assert isinstance(e, Unary) and e.op == "not"

    def test_implies_desugars(self):
        e = parse_expression("a implies b")
        assert isinstance(e, Binary) and e.op == "or"
        assert isinstance(e.left, Unary) and e.left.op == "not"

    def test_implies_right_associative(self):
        e = parse_expression("a implies b implies c")
        # a implies (b implies c)
        assert isinstance(e.right, Binary) and e.right.op == "or"

    def test_in_operator(self):
        e = parse_expression("x in y")
        assert e.op == "in"

    def test_not_in(self):
        e = parse_expression("x not in y")
        assert isinstance(e, Unary)
        assert e.operand.op == "in"

    def test_like(self):
        assert parse_expression("x like '%a%'").op == "like"

    def test_attribute_chain(self):
        e = parse_expression("x.a.b")
        assert isinstance(e, AttributeAccess)
        assert isinstance(e.target, AttributeAccess)

    def test_method_call(self):
        e = parse_expression("x.name.startsWith('A')")
        assert isinstance(e, MethodCall)
        assert e.name == "startsWith"

    def test_function_call(self):
        e = parse_expression("count(x)")
        assert isinstance(e, FunctionCall)
        assert len(e.args) == 1

    def test_parameter(self):
        e = parse_expression("x.oid = $target")
        assert e.right.name == "target"

    def test_unary_minus(self):
        e = parse_expression("-x")
        assert isinstance(e, Unary) and e.op == "-"


class TestTraversals:
    def test_simple_hop(self):
        e = parse_expression("x->Rel")
        assert isinstance(e, Traversal)
        assert (e.min_depth, e.max_depth) == (1, 1)
        assert not e.inverse

    def test_inverse_hop(self):
        assert parse_expression("x<-Rel").inverse

    def test_star_closure(self):
        e = parse_expression("x->Rel*")
        assert (e.min_depth, e.max_depth) == (0, None)

    def test_plus_closure(self):
        e = parse_expression("x->Rel+")
        assert (e.min_depth, e.max_depth) == (1, None)

    def test_bounded_closure(self):
        e = parse_expression("x->Rel{2,5}")
        assert (e.min_depth, e.max_depth) == (2, 5)

    def test_exact_depth(self):
        e = parse_expression("x->Rel{3}")
        assert (e.min_depth, e.max_depth) == (3, 3)

    def test_open_upper_bound(self):
        e = parse_expression("x->Rel{2,}")
        assert (e.min_depth, e.max_depth) == (2, None)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("x->Rel{5,2}")

    def test_scoped_traversal(self):
        e = parse_expression('x->Rel["Tutin 1968"]*')
        assert e.scope == "Tutin 1968"
        assert (e.min_depth, e.max_depth) == (0, None)

    def test_chained_traversals(self):
        e = parse_expression("x->A->B")
        assert e.relationship == "B"
        assert e.target.relationship == "A"

    def test_traversal_then_attribute(self):
        e = parse_expression("x->A.name")
        assert isinstance(e, AttributeAccess)
        assert isinstance(e.target, Traversal)


class TestDowncast:
    def test_downcast(self):
        e = parse_expression("(Species) x")
        assert isinstance(e, Downcast)
        assert e.class_name == "Species"

    def test_downcast_of_traversal(self):
        e = parse_expression("(Specimen) t->Includes*")
        assert isinstance(e, Downcast)
        assert isinstance(e.target, Traversal)

    def test_parenthesised_expr_not_downcast(self):
        e = parse_expression("(x) + 1")
        assert isinstance(e, Binary)


class TestExtractGraph:
    def test_minimal(self):
        q = parse("extract graph from x via Includes")
        assert isinstance(q, ExtractGraphQuery)
        assert q.relationship == "Includes"
        assert q.depth is None

    def test_full_form(self):
        q = parse(
            'extract graph from first(r) via Includes depth 3 '
            'in classification "T1"'
        )
        assert q.depth == 3
        assert q.classification == "T1"


class TestUnparseRoundTrip:
    CASES = [
        "select x from x in Taxon",
        "select distinct x.name from x in Taxon where (x.rank = \"Genus\")",
        "select x, y from x in A, y in x->R where (x.age > 5) order by x.name desc limit 3",
        "select x from x in A where (x.name like \"%ius\")",
        "select count(x) from x in A",
        'extract graph from x via R depth 2 in classification "C"',
        "select x from x in (Species) t->Includes*",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_unparse_parse_fixpoint(self, text):
        first = parse(text)
        second = parse(first.unparse())
        assert first.unparse() == second.unparse()


# Property: generate small expression trees, unparse, re-parse, compare.
_identifier = st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True).filter(
    lambda s: s not in {
        "select", "from", "where", "in", "and", "or", "not", "true",
        "false", "null", "nil", "as", "order", "by", "asc", "desc",
        "limit", "like", "extract", "graph", "via", "depth",
        "classification", "exists", "implies",
    }
)
_literal = st.one_of(
    st.integers(min_value=0, max_value=999).map(Literal),
    st.booleans().map(Literal),
    st.text(
        alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
        max_size=6,
    ).map(Literal),
)
_expr = st.recursive(
    st.one_of(_literal, _identifier.map(Variable)),
    lambda children: st.one_of(
        st.builds(
            Binary,
            st.sampled_from(["+", "-", "*", "and", "or", "=", "<"]),
            children,
            children,
        ),
        st.builds(AttributeAccess, children.filter(
            lambda n: isinstance(n, (Variable, AttributeAccess))
        ), _identifier),
        st.builds(
            lambda t, r: Traversal(target=t, relationship=r),
            children.filter(lambda n: isinstance(n, (Variable, Traversal))),
            _identifier,
        ),
    ),
    max_leaves=8,
)


@given(_expr)
def test_property_expression_unparse_roundtrip(node):
    text = node.unparse()
    reparsed = parse_expression(text)
    assert reparsed.unparse() == text
