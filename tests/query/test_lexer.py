"""POOL lexer."""

import pytest

from repro.errors import LexError
from repro.query.lexer import tokenize
from repro.query.tokens import TokenType


def types(text):
    return [t.type for t in tokenize(text)][:-1]  # drop EOF


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert types("SELECT from WHERE") == [
            TokenType.SELECT, TokenType.FROM, TokenType.WHERE,
        ]

    def test_identifiers(self):
        tokens = tokenize("Taxon my_var _x")
        assert [t.value for t in tokens[:-1]] == ["Taxon", "my_var", "_x"]
        assert all(t.type is TokenType.IDENT for t in tokens[:-1])

    def test_numbers(self):
        tokens = tokenize("42 3.14")
        assert tokens[0].type is TokenType.INT
        assert tokens[1].type is TokenType.FLOAT

    def test_int_followed_by_dot_attribute(self):
        # "1.x" should not lex as a float
        assert types("x.y") == [TokenType.IDENT, TokenType.DOT, TokenType.IDENT]

    def test_strings_both_quotes(self):
        assert tokenize('"abc"')[0].value == "abc"
        assert tokenize("'abc'")[0].value == "abc"

    def test_string_escapes(self):
        assert tokenize(r'"a\"b"')[0].value == 'a"b'

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_arrows(self):
        assert types("a->B c<-D") == [
            TokenType.IDENT, TokenType.ARROW, TokenType.IDENT,
            TokenType.IDENT, TokenType.BACKARROW, TokenType.IDENT,
        ]

    def test_comparison_operators(self):
        assert types("= != <> < <= > >=") == [
            TokenType.EQ, TokenType.NE, TokenType.NE, TokenType.LT,
            TokenType.LE, TokenType.GT, TokenType.GE,
        ]

    def test_minus_vs_arrow(self):
        assert types("a - b") == [
            TokenType.IDENT, TokenType.MINUS, TokenType.IDENT
        ]

    def test_parameters(self):
        token = tokenize("$name")[0]
        assert token.type is TokenType.PARAM
        assert token.value == "name"

    def test_bare_dollar_rejected(self):
        with pytest.raises(LexError):
            tokenize("$ x")

    def test_comments_skipped(self):
        assert types("select -- comment here\n x") == [
            TokenType.SELECT, TokenType.IDENT
        ]

    def test_line_tracking(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a ~ b")

    def test_closure_braces(self):
        assert types("{1,3}") == [
            TokenType.LBRACE, TokenType.INT, TokenType.COMMA,
            TokenType.INT, TokenType.RBRACE,
        ]

    def test_implies_keyword(self):
        assert types("a implies b") == [
            TokenType.IDENT, TokenType.IMPLIES, TokenType.IDENT
        ]

    def test_eof_always_present(self):
        assert tokenize("")[-1].type is TokenType.EOF
        assert tokenize("x")[-1].type is TokenType.EOF
