"""Unit tests for the cost-based planner, plan cache and access paths.

Includes the regression for the ISSUE-4 satellite fix: range probes
over an index whose column holds None-mixed values must be None-safe —
nulls live outside the B-tree key order and must never appear in (or
crash) a range result.
"""

from __future__ import annotations

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.query import Planner, normalize_query, parse
from repro.query.nodes import Parameter


@pytest.fixture()
def db():
    db = PrometheusDB()
    db.schema.define_class(
        "Part",
        [
            Attribute("ident", T.INTEGER),
            Attribute("size", T.INTEGER, required=False),
            Attribute("color", T.STRING),
        ],
    )
    for i in range(30):
        db.schema.create(
            "Part",
            ident=i,
            size=None if i % 5 == 0 else i % 9,
            color="red" if i % 2 else "blue",
        )
    return db


class TestNormalisation:
    def test_literals_become_parameter_slots(self):
        skeleton, literals = normalize_query(
            parse('select p from p in Part where p.ident = 7')
        )
        assert literals == {"__plan_lit_0": 7}
        assert "7" not in skeleton.unparse()
        assert "$__plan_lit_0" in skeleton.unparse()

    def test_same_shape_same_skeleton(self):
        s1, _ = normalize_query(
            parse('select p from p in Part where p.color = "red"')
        )
        s2, _ = normalize_query(
            parse('select p from p in Part where p.color = "blue"')
        )
        assert s1 == s2
        assert hash(s1) == hash(s2)

    def test_different_shape_different_skeleton(self):
        s1, _ = normalize_query(parse("select p from p in Part"))
        s2, _ = normalize_query(parse("select p from p in Part limit 3"))
        assert s1 != s2


class TestAccessPaths:
    def test_equality_picks_hash_index(self, db):
        db.indexes.create_index("Part", "ident", kind="hash")
        report = db.query("explain select p from p in Part where p.ident = 7")
        assert report["plan"]["engine"] == "cost"
        assert report["plan"]["access_paths"] == ["index:Part.ident"]
        assert report["rows"] == 1

    def test_range_picks_btree_index(self, db):
        db.indexes.create_index("Part", "ident", kind="btree")
        report = db.query(
            "explain select p from p in Part where p.ident >= 25"
        )
        assert report["plan"]["access_paths"] == ["range:Part.ident"]
        assert report["rows"] == 5
        # Seeding never elides the filter: counters reflect the
        # narrowed candidate set.
        assert report["plan"]["rows_examined"] == 5
        assert report["plan"]["rows_matched"] == 5

    def test_range_on_hash_index_falls_back_to_scan(self, db):
        db.indexes.create_index("Part", "ident", kind="hash")
        report = db.query("explain select p from p in Part where p.ident > 7")
        assert report["plan"]["access_paths"] == ["scan:Part"]
        assert any("no btree index" in n for n in report["plan"]["notes"])

    def test_order_by_elides_sort_via_btree(self, db):
        db.indexes.create_index("Part", "size", kind="btree")
        report = db.query("explain select p from p in Part order by p.size")
        assert report["plan"]["access_paths"] == ["ordered:Part.size"]
        ops = _flatten_ops(report["plan"]["plan_tree"])
        assert "sort" not in ops
        assert "index_ordered_scan" in ops

    def test_no_elision_without_index(self, db):
        report = db.query("explain select p from p in Part order by p.size")
        ops = _flatten_ops(report["plan"]["plan_tree"])
        assert "sort" in ops

    def test_plan_tree_carries_row_counts_and_costs(self, db):
        report = db.query(
            "explain select p from p in Part where p.color = \"red\""
        )
        tree = report["plan"]["plan_tree"]
        assert tree is not None
        filt = _find_op(tree, "filter")
        assert filt["rows_out"] == 15
        assert filt["est_cost"] > 0
        scan = _find_op(tree, "extent_scan")
        assert scan["rows_out"] == 30


class TestNoneSafeRanges:
    """Regression: None-mixed indexed columns (ISSUE 4 satellite)."""

    def test_range_probe_excludes_nulls(self, db):
        db.indexes.create_index("Part", "size", kind="btree")
        report = db.query("explain select p from p in Part where p.size >= 0")
        assert report["plan"]["access_paths"] == ["range:Part.size"]
        rows = db.query("select p from p in Part where p.size >= 0")
        # 6 of the 30 rows have size=None; a range never matches them.
        assert len(rows) == 24
        assert all(p.get("size") is not None for p in rows)

    def test_range_probe_agrees_with_naive_on_nulls(self, db):
        from repro.query import execute

        db.indexes.create_index("Part", "size", kind="btree")
        for text in (
            "select p.ident from p in Part where p.size > 3",
            "select p.ident from p in Part where p.size <= 2",
            "select p.ident from p in Part where p.size >= 0 and p.size < 5",
        ):
            assert sorted(db.query(text)) == sorted(execute(db.schema, text))

    def test_null_bound_matches_nothing(self, db):
        db.indexes.create_index("Part", "size", kind="btree")
        db.schema.define_class("Probe", [Attribute("v", T.INTEGER,
                                                   required=False)])
        db.schema.create("Probe", v=None)
        rows = db.query(
            "select p from p in Part, q in Probe where p.size > q.v",
            check=False,
        )
        assert rows == []

    def test_equality_probe_still_finds_null_rows(self, db):
        db.indexes.create_index("Part", "size", kind="btree")
        rows = db.query("select p from p in Part where p.size = null",
                        check=False)
        assert len(rows) == 6

    def test_ordered_scan_sorts_nulls_first_asc_last_desc(self, db):
        db.indexes.create_index("Part", "size", kind="btree")
        asc = db.query("select p.size from p in Part order by p.size")
        assert asc[:6] == [None] * 6
        assert asc[6:] == sorted(asc[6:])
        desc = db.query("select p.size from p in Part order by p.size desc")
        assert desc[-6:] == [None] * 6
        assert desc[:-6] == sorted(desc[:-6], reverse=True)


class TestOrderedScanSafety:
    def test_mixed_key_categories_disable_elision(self):
        db = PrometheusDB()
        db.schema.define_class("M", [Attribute("v", T.ANY)])
        db.schema.create("M", v=2)
        db.schema.create("M", v=True)  # bool + int interleave in the tree
        db.schema.create("M", v=1)
        db.indexes.create_index("M", "v", kind="btree")
        assert db.indexes.ordered_scan("M", "v") is None
        # The planner's fallback still returns correctly sorted rows
        # (POOL order: bools before numbers).
        rows = db.query("select m.v from m in M order by m.v", check=False)
        assert rows == [True, 1, 2]

    def test_homogeneous_keys_allow_elision(self):
        db = PrometheusDB()
        db.schema.define_class("M", [Attribute("v", T.INTEGER)])
        for v in (3, 1, 2):
            db.schema.create("M", v=v)
        db.indexes.create_index("M", "v", kind="btree")
        scan = db.indexes.ordered_scan("M", "v")
        assert [o.get("v") for o in scan] == [1, 2, 3]
        scan = db.indexes.ordered_scan("M", "v", descending=True)
        assert [o.get("v") for o in scan] == [3, 2, 1]


class TestPlanCache:
    def test_lru_eviction(self, db):
        planner = Planner(db.schema, catalog=db.indexes, cache_size=2)
        q = lambda t: planner.plan_select(parse(t))
        assert q("select p from p in Part")[2] == "miss"
        assert q("select p from p in Part limit 1")[2] == "miss"
        assert q("select p from p in Part")[2] == "hit"
        # Third distinct shape evicts the LRU entry (limit 1).
        assert q("select p from p in Part limit 2")[2] == "miss"
        assert q("select p from p in Part limit 1")[2] == "miss"
        assert planner.evictions >= 1

    def test_schema_version_invalidates(self, db):
        report = db.query("explain select p from p in Part")
        assert report["plan"]["cache"] == "miss"
        assert db.query("explain select p from p in Part")["plan"][
            "cache"] == "hit"
        db.schema.define_class("Widget", [Attribute("w", T.INTEGER)])
        assert db.query("explain select p from p in Part")["plan"][
            "cache"] == "miss"

    def test_abort_evicts_everything(self, db):
        db.query("select p from p in Part")
        assert db.planner.snapshot()["cache_size"] >= 1
        db.schema.create("Part", ident=100, color="x", size=1)
        db.abort()
        assert db.planner.snapshot()["cache_size"] == 0

    def test_parameterised_queries_share_plans(self, db):
        db.query("select p from p in Part where p.ident = $i",
                 params={"i": 1})
        built = db.planner.built
        rows = db.query("select p from p in Part where p.ident = $i",
                        params={"i": 2})
        assert db.planner.built == built
        assert len(rows) == 1 and rows[0].get("ident") == 2

    def test_user_params_not_clobbered_by_literal_overlay(self, db):
        rows = db.query(
            "select p.ident from p in Part "
            "where p.ident = $i and p.color = \"blue\"",
            params={"i": 4},
        )
        assert rows == [4]


class TestFallback:
    def test_planner_failure_falls_back_to_naive(self, db):
        # Set operations are not SELECTs: the evaluator routes each arm
        # through _run_select, which plans fine — but verify unplannable
        # input degrades instead of raising by feeding the planner an
        # extract-graph AST directly.
        planner = db.planner
        assert planner.plan_select(
            parse("extract graph from p in Part via Contains")
            if False else _Unplannable()
        ) is None
        assert planner.failures == 1

    def test_telemetry_counters_exported(self, db):
        db.query("select p from p in Part")
        db.query("select p from p in Part")
        text = db.telemetry.registry.render_prometheus()
        assert "repro_planner_plans_built_total" in text
        assert "repro_planner_cache_hits_total" in text
        assert "repro_planner_access_paths_total" in text


class _Unplannable:
    """Not an AST node at all — normalisation must fail gracefully."""


def _flatten_ops(tree) -> list[str]:
    out = [tree["op"]]
    for child in tree.get("children", ()):
        out.extend(_flatten_ops(child))
    return out


def _find_op(tree, op):
    if tree["op"] == op:
        return tree
    for child in tree.get("children", ()):
        found = _find_op(child, op)
        if found is not None:
            return found
    return None
