"""EXPLAIN / PROFILE plan reports and index selection (§6.1.5.3).

The satellite concern: ``Evaluator._try_index`` must pick an index for
an indexable equality conjunct and fall back to an extent scan (saying
why) for everything else — and EXPLAIN must make that decision visible.
"""

import pytest

from repro.core.attributes import Attribute
from repro.core import types as T
from repro.engine import PrometheusDB


@pytest.fixture()
def db():
    db = PrometheusDB()
    db.schema.define_class(
        "Part",
        [Attribute("ident", T.INTEGER), Attribute("color", T.STRING)],
    )
    for i in range(20):
        db.schema.create("Part", ident=i, color="red" if i % 2 else "blue")
    db.indexes.create_index("Part", "ident", kind="hash")
    return db


class TestIndexSelection:
    def test_indexable_equality_uses_the_index(self, db):
        report = db.query("EXPLAIN select p from p in Part where p.ident = 7")
        plan = report["plan"]
        assert plan["index_used"] == "Part.ident"
        assert plan["access_paths"] == ["index:Part.ident"]
        assert "Part.ident" in plan["indexes_considered"]
        assert plan["rows_from_index"] == 1
        # The index seeded exactly the matching candidate set.
        assert plan["rows_examined"] == 1
        assert plan["rows_matched"] == 1
        assert report["rows"] == 1

    def test_unindexed_attribute_falls_back_to_scan(self, db):
        report = db.query(
            'EXPLAIN select p from p in Part where p.color = "red"'
        )
        plan = report["plan"]
        assert plan["index_used"] is None
        assert plan["access_paths"] == ["scan:Part"]
        assert "no index on Part.color" in plan["notes"]
        assert plan["rows_examined"] == 20  # full extent fed to WHERE
        assert plan["rows_matched"] == 10

    def test_non_equality_conjunct_cannot_use_index(self, db):
        report = db.query("EXPLAIN select p from p in Part where p.ident > 7")
        plan = report["plan"]
        assert plan["index_used"] is None
        assert plan["access_paths"] == ["scan:Part"]

    def test_explain_and_plain_query_agree(self, db):
        text = "select p.ident from p in Part where p.ident = 3"
        report = db.query("EXPLAIN " + text)
        assert db.query(text) == [3]
        assert report["rows"] == 1

    def test_explain_prefix_is_case_insensitive(self, db):
        report = db.query("explain select p from p in Part")
        assert report["mode"] == "explain"
        assert report["plan"]["extent_scans"] == 1

    def test_explain_method_returns_plan_object(self, db):
        plan = db.explain("select p from p in Part where p.ident = 5")
        assert plan.index_used == "Part.ident"


class TestProfile:
    def test_profile_adds_spans_and_timing(self, db):
        report = db.query(
            "PROFILE select p from p in Part where p.ident = 2"
        )
        assert report["mode"] == "profile"
        assert report["elapsed_ms"] >= 0
        names = [span["name"] for span in report["spans"]]
        assert "pool.select" in names

    def test_profile_works_with_telemetry_disabled(self):
        from repro.telemetry import Telemetry

        db = PrometheusDB(telemetry=Telemetry(enabled=False))
        db.schema.define_class("Thing", [Attribute("v", T.INTEGER)])
        db.schema.create("Thing", v=1)
        report = db.query("PROFILE select t from t in Thing")
        assert report["spans"], "PROFILE must trace even when telemetry is off"

    def test_profile_method(self, db):
        report = db.profile("select p from p in Part where p.ident = 2")
        assert report["mode"] == "profile"
        assert report["plan"]["index_used"] == "Part.ident"


class TestQueryMetrics:
    def test_index_hits_and_scans_counted(self, db):
        db.query("select p from p in Part where p.ident = 1")
        db.query('select p from p in Part where p.color = "red"')
        snap = db.telemetry.registry.snapshot()
        assert snap["repro_query_total"] == 2
        assert snap["repro_query_index_hits_total"] == 1
        assert snap["repro_query_extent_scans_total"] == 1
        assert snap["repro_query_ms"]["count"] == 2

    def test_query_errors_counted(self, db):
        from repro.errors import PrometheusError

        with pytest.raises(PrometheusError):
            db.query("select p from p in Nonexistent")
        assert db.telemetry.registry.snapshot()["repro_query_errors_total"] == 1

    def test_traversal_depth_reported(self, db):
        db.schema.define_relationship("Contains", "Part", "Part")
        parts = list(db.schema.extent("Part"))
        db.schema.relate("Contains", parts[0], parts[1])
        db.schema.relate("Contains", parts[1], parts[2])
        report = db.query(
            "EXPLAIN select x.ident from p in Part, x in p->Contains+ "
            "where p.ident = 0"
        )
        assert report["plan"]["traversal_max_depth"] == 2
        assert report["plan"]["traversal_nodes_visited"] >= 2
