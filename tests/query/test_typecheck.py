"""Static type checking of POOL queries (§5.1.2.4)."""

import pytest

from repro.query import parse, typecheck


def check(shapes, text):
    return typecheck(
        shapes.taxdb.schema, parse(text), shapes.taxdb.classifications
    )


class TestValidQueries:
    @pytest.mark.parametrize(
        "text",
        [
            "select s from s in Specimen",
            "select s.field_name from s in Specimen where s.collector = 'x'",
            "select t from t in CircumscriptionTaxon, c in t->Includes",
            "select r.origin from r in Includes",
            'select x from t in CircumscriptionTaxon, x in (Specimen) t->Includes["T1 shapes"]*',
            "select count(s) from s in Specimen",
            "select s.field_name.upper() from s in Specimen",
            'extract graph from CircumscriptionTaxon via Includes '
            'in classification "T1 shapes"',
        ],
    )
    def test_passes(self, shapes, text):
        report = check(shapes, text)
        assert report.ok, report.errors


class TestErrors:
    def test_unknown_extent(self, shapes):
        report = check(shapes, "select x from x in Martians")
        assert not report.ok
        assert "Martians" in report.errors[0]

    def test_unknown_attribute(self, shapes):
        report = check(shapes, "select s.wingspan from s in Specimen")
        assert any("wingspan" in e for e in report.errors)

    def test_unknown_relationship(self, shapes):
        report = check(shapes, "select x from s in Specimen, x in s->Flies")
        assert any("Flies" in e for e in report.errors)

    def test_plain_class_as_relationship(self, shapes):
        report = check(shapes, "select x from s in Specimen, x in s->Specimen")
        assert any("not a relationship" in e for e in report.errors)

    def test_traversal_source_class_mismatch(self, shapes):
        # Includes starts at CircumscriptionTaxon; a WorkingName cannot.
        report = check(
            shapes, "select x from w in WorkingName, x in w->Includes"
        )
        assert any("cannot be" in e for e in report.errors)

    def test_unknown_classification_scope(self, shapes):
        report = check(
            shapes,
            'select x from t in CircumscriptionTaxon, x in t->Includes["Atlantis"]',
        )
        assert any("Atlantis" in e for e in report.errors)

    def test_unknown_function(self, shapes):
        report = check(shapes, "select frobnicate(s) from s in Specimen")
        assert any("frobnicate" in e for e in report.errors)

    def test_unknown_downcast_class(self, shapes):
        report = check(
            shapes,
            "select x from t in CircumscriptionTaxon, x in (Unicorn) t->Includes",
        )
        assert any("Unicorn" in e for e in report.errors)

    def test_unbound_variable(self, shapes):
        report = check(shapes, "select ghost.name from s in Specimen")
        assert not report.ok


class TestWarnings:
    def test_role_attribute_warns_not_errors(self, shapes):
        """type_kind is acquired via HasType inheritance — legal but
        flagged (§4.4.5)."""
        report = check(shapes, "select s.type_kind from s in Specimen")
        assert report.ok
        assert any("role acquisition" in w for w in report.warnings)

    def test_unknown_method_warns(self, shapes):
        report = check(shapes, "select s.levitate() from s in Specimen")
        assert report.ok
        assert any("levitate" in w for w in report.warnings)

    def test_relationship_endpoint_attributes_ok(self, shapes):
        report = check(shapes, "select r.destination.oid from r in Includes")
        assert report.ok

    def test_single_hop_is_typed(self, shapes):
        """One hop yields the declared destination class, so attribute
        errors after a hop are caught."""
        report = check(
            shapes,
            "select c.no_such_attr from t in CircumscriptionTaxon, "
            "c in t->Includes",
        )
        assert any("no_such_attr" in e for e in report.errors)
