"""HAController transitions: fencing, leases, promotion, repointing.

In-process topologies (shipper-as-transport, as in the replication
suite) drive every role transition and check the fencing invariants at
each layer: store read-only flips, session poisoning, epoch stamps in
the log, and stale-epoch rejections on both pull directions.
"""

import pytest

from repro.errors import (
    NodeDemotedError,
    StalePrimaryError,
    TransactionError,
)
from repro.ha import HAController
from repro.replication import BASE_LSN, LogShipper

from .conftest import make_primary, make_replica, write_entry


def primary_controller(db, shipper=None, **kwargs):
    return HAController(db, "n1", shipper=shipper, **kwargs)


class TestRolesAndLeases:
    def test_standalone_primary_writes_forever(self, primary):
        ctrl = primary_controller(primary)
        assert ctrl.role == "primary"
        assert ctrl.epoch == 0
        assert ctrl.writes_allowed()  # no lease configured

    def test_leased_primary_starts_unleased(self, primary, clock):
        ctrl = primary_controller(primary, lease_ttl_s=3.0, clock=clock)
        # Only the supervisor opens the write window — a primary that
        # (re)starts with lease fencing armed cannot self-authorize.
        assert not ctrl.writes_allowed()
        ctrl.grant_lease(epoch=0, ttl_s=3.0)
        assert ctrl.writes_allowed()

    def test_lease_expires_on_the_clock(self, primary, clock):
        ctrl = primary_controller(primary, lease_ttl_s=3.0, clock=clock)
        ctrl.grant_lease(epoch=0, ttl_s=3.0)
        clock.advance(2.9)
        assert ctrl.writes_allowed()
        clock.advance(0.2)
        assert not ctrl.writes_allowed()
        ctrl.grant_lease(epoch=0, ttl_s=3.0)  # renewal reopens
        assert ctrl.writes_allowed()

    def test_stale_epoch_lease_rejected(self, primary, clock):
        ctrl = primary_controller(primary, lease_ttl_s=3.0, clock=clock)
        ctrl._epoch_seen = 5
        with pytest.raises(StalePrimaryError) as err:
            ctrl.grant_lease(epoch=4, ttl_s=3.0)
        assert err.value.epoch == 5
        assert not ctrl.writes_allowed()


class TestFencing:
    def test_fence_flips_store_read_only(self, primary):
        ctrl = primary_controller(primary)
        write_entry(primary, "before", 1)
        ctrl.fence("test")
        assert ctrl.fenced and not ctrl.writes_allowed()
        txn = primary.transactions.begin()
        txn.create("Entry", key="after", value=2)
        with pytest.raises(TransactionError):
            txn.commit()

    def test_fence_poisons_open_sessions(self, primary):
        ctrl = primary_controller(primary)
        session = primary.sessions.create()
        session.txn.create("Entry", key="doomed", value=1)
        ctrl.primary_url = "http://new-primary"
        ctrl.demote(epoch=2, primary_url="http://new-primary")
        with pytest.raises(NodeDemotedError) as err:
            session.commit()
        assert err.value.epoch == 2
        assert err.value.primary_url == "http://new-primary"
        assert session.info()["demoted"] is True

    def test_fence_is_idempotent(self, primary):
        ctrl = primary_controller(primary)
        ctrl.fence("one")
        ctrl.fence("two")
        assert ctrl.fences == 1
        assert ctrl.last_fence_reason == "one"

    def test_higher_observed_epoch_self_fences_primary(self, primary):
        ctrl = primary_controller(primary)
        ctrl.observe_epoch(3)
        assert ctrl.fenced
        assert ctrl.epoch == 3
        assert "superseded" in ctrl.last_fence_reason

    def test_equal_epoch_does_not_fence(self, primary):
        ctrl = primary_controller(primary)
        ctrl.observe_epoch(0)
        assert not ctrl.fenced


class TestPromotion:
    def test_promote_stamps_epoch_and_opens_writes(
        self, tmp_path, primary, shipper, replica
    ):
        rdb, applier, client = replica
        write_entry(primary, "a", 1)
        client.catch_up()
        ctrl = HAController(
            rdb, "r1", replica_client=client, primary_url="p"
        )
        assert ctrl.role == "replica"
        ctrl.promote(1)
        assert ctrl.role == "primary"
        assert not ctrl.fenced
        assert ctrl.replica_client is None
        assert ctrl.shipper is not None
        assert rdb.store.cluster_epoch == 1
        assert ctrl.writes_allowed()
        write_entry(rdb, "post-promotion", 2)
        assert rdb.query(
            'select e.value from e in Entry where e.key = "post-promotion"'
        ) == [2]

    def test_promote_rejects_stale_epoch(self, replica):
        rdb, _, client = replica
        ctrl = HAController(rdb, "r1", replica_client=client)
        ctrl.promote(2)
        with pytest.raises(StalePrimaryError):
            HAController(rdb, "r1").promote(2)

    def test_epoch_stamp_replicates_to_survivors(
        self, tmp_path, primary, shipper, replica
    ):
        # p -> r1 (will be promoted), and a survivor r2 that repoints.
        rdb, applier, client = replica
        write_entry(primary, "a", 1)
        client.catch_up()
        ctrl = HAController(rdb, "r1", replica_client=client)
        ctrl.promote(1)
        sdb, sapplier, sclient = make_replica(tmp_path, ctrl.shipper, "r2")
        try:
            sclient.catch_up()
            # The survivor's first frames from the new reign carry —
            # and its log permanently records — the new epoch.
            assert sdb.store.cluster_epoch == 1
            assert sapplier.known_epoch == 1
            assert sdb.store.fingerprint() == rdb.store.fingerprint()
        finally:
            sclient.stop()
            sdb.close()


class TestEpochFencingOnPulls:
    def test_shipper_refuses_newer_epoch_puller(self, primary, shipper):
        write_entry(primary, "a", 1)
        status, frame = shipper.pull(BASE_LSN, epoch=7)
        assert status == "stale-primary"
        assert frame is None

    def test_shipper_serves_equal_or_older_epoch(self, primary, shipper):
        write_entry(primary, "a", 1)
        assert shipper.pull(BASE_LSN, epoch=0)[0] == "frame"
        assert shipper.pull(BASE_LSN, epoch=None)[0] == "frame"

    def test_applier_rejects_frames_from_deposed_reign(
        self, primary, shipper, replica
    ):
        _, applier, _ = replica
        write_entry(primary, "a", 1)
        _, frame = shipper.pull(BASE_LSN)
        applier.observe_epoch(5)  # learned of a promotion out of band
        with pytest.raises(StalePrimaryError) as err:
            applier.apply_frame(frame)
        assert err.value.epoch == 5

    def test_client_pull_once_sends_its_epoch(self, primary, shipper, replica):
        # After the replica learns epoch 7, its own pulls against the
        # old-reign shipper come back stale-primary, not data.
        _, applier, client = replica
        write_entry(primary, "a", 1)
        applier.observe_epoch(7)
        with pytest.raises(StalePrimaryError):
            client.pull_once()


class TestRepoint:
    def _promote_chain(self, tmp_path, primary, shipper):
        """p with two replicas; r1 gets promoted; returns the pieces."""
        r1db, _, r1client = make_replica(tmp_path, shipper, "r1")
        r2db, _, r2client = make_replica(tmp_path, shipper, "r2")
        write_entry(primary, "seed", 1)
        r1client.catch_up()
        r2client.catch_up()
        controllers = {
            "r1": HAController(
                r1db, "r1", replica_client=r1client, primary_url="p"
            ),
        }
        controllers["r2"] = HAController(
            r2db,
            "r2",
            replica_client=r2client,
            primary_url="p",
            make_transport=lambda url: controllers[url].shipper,
        )
        controllers["r1"].promote(1)
        return controllers, r1db, r2db

    def test_survivor_repoints_to_new_primary(
        self, tmp_path, primary, shipper
    ):
        controllers, r1db, r2db = self._promote_chain(
            tmp_path, primary, shipper
        )
        try:
            controllers["r2"].repoint("r1", epoch=1)
            write_entry(r1db, "new-reign", 2)
            controllers["r2"].replica_client.catch_up()
            assert r2db.store.cluster_epoch == 1
            assert r2db.query(
                'select e.value from e in Entry where e.key = "new-reign"'
            ) == [2]
            assert controllers["r2"].replica_client.failovers_followed == 1
        finally:
            for ctrl in controllers.values():
                if ctrl.replica_client is not None:
                    ctrl.replica_client.stop()
            r1db.close()
            r2db.close()

    def test_repoint_rejects_stale_epoch(self, tmp_path, primary, shipper):
        controllers, r1db, r2db = self._promote_chain(
            tmp_path, primary, shipper
        )
        try:
            controllers["r2"].observe_epoch(5)
            with pytest.raises(StalePrimaryError):
                controllers["r2"].repoint("r1", epoch=1)
        finally:
            for ctrl in controllers.values():
                if ctrl.replica_client is not None:
                    ctrl.replica_client.stop()
            r1db.close()
            r2db.close()

    def test_deposed_primary_rejoins_as_replica(
        self, tmp_path, primary, shipper
    ):
        controllers, r1db, r2db = self._promote_chain(
            tmp_path, primary, shipper
        )
        pctrl = HAController(
            primary,
            "p",
            shipper=shipper,
            make_transport=lambda url: controllers[url].shipper,
        )
        try:
            write_entry(r1db, "after-failover", 9)
            pctrl.repoint("r1", epoch=1)
            assert pctrl.role == "replica"
            assert pctrl.fenced
            assert pctrl.shipper is None
            pctrl.replica_client.catch_up()
            assert primary.store.cluster_epoch == 1
            assert primary.query(
                'select e.value from e in Entry where e.key = "after-failover"'
            ) == [9]
        finally:
            if pctrl.replica_client is not None:
                pctrl.replica_client.stop()
            for ctrl in controllers.values():
                if ctrl.replica_client is not None:
                    ctrl.replica_client.stop()
            r1db.close()
            r2db.close()

    def test_repoint_without_factory_errors(self, primary):
        from repro.errors import ReplicationError

        ctrl = primary_controller(primary)
        with pytest.raises(ReplicationError, match="transport factory"):
            ctrl.repoint("elsewhere", epoch=1)


class TestStatus:
    def test_status_shape(self, primary, clock):
        ctrl = primary_controller(primary, lease_ttl_s=3.0, clock=clock)
        ctrl.grant_lease(epoch=0, ttl_s=3.0)
        status = ctrl.status()
        assert status["name"] == "n1"
        assert status["role"] == "primary"
        assert status["epoch"] == 0
        assert status["fenced"] is False
        assert status["writes_allowed"] is True
        assert status["lease_remaining_s"] == pytest.approx(3.0)
        assert "applied_lsn" in status
