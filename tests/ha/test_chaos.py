"""Seeded chaos schedules plus scripted failover scenarios.

The sweep runs ``HA_CHAOS_SCHEDULES`` (default 50) deterministic
schedules — kills, restarts, pauses, partitions, clock skew — and
asserts the harness invariants: no acknowledged write is ever lost, no
epoch ever has two accepting nodes, deposed primaries stay fenced.  In
CI an extra seed is derived from ``GITHUB_RUN_ID`` so every pipeline
run explores fresh territory while staying reproducible from its log.
"""

import os

import pytest

from tests.replication.checker import derive_seeds

from .chaos import ChaosCluster, run_schedule

SCHEDULES = int(os.environ.get("HA_CHAOS_SCHEDULES", "50"))
SWEEP_SEEDS = [1000 + i for i in range(SCHEDULES)]
CI_SEEDS = derive_seeds((424243,), os.environ.get("GITHUB_RUN_ID"))


@pytest.mark.parametrize("seed", SWEEP_SEEDS + CI_SEEDS)
def test_chaos_schedule(tmp_path, seed):
    cluster = run_schedule(tmp_path, seed, steps=60)
    # The run itself asserted the invariants; sanity-check the workload
    # was real: the client got writes through.
    assert cluster.acked, f"seed {seed}: no write was ever acknowledged"


class TestScriptedScenarios:
    def _failover(self, cluster, max_ticks=60):
        before = len(cluster.coordinator.failovers)
        for _ in range(max_ticks):
            cluster.clock.advance(0.25)
            cluster.tick()
            if len(cluster.coordinator.failovers) > before:
                return cluster.coordinator.failovers[-1]
        raise AssertionError("no failover within the tick budget")

    def test_kill_primary_promotes_highest_lsn_replica(self, tmp_path):
        cluster = ChaosCluster(tmp_path, seed=1)
        try:
            cluster.tick()  # bootstrap: leases the primary
            for _ in range(5):
                cluster.client_write()
            assert len(cluster.acked) == 5
            # n2 fully caught up; n3 lags (pull nothing further).
            cluster.pump_replica("n2")
            lag_n2 = cluster.nodes["n2"].db.store.commit_lsn
            lag_n3 = cluster.nodes["n3"].db.store.commit_lsn
            assert lag_n2 > lag_n3
            cluster.kill("n1", torn=True)
            report = self._failover(cluster)
            assert report.new_primary == "n2"  # highest applied LSN won
            assert report.epoch == 1
            assert cluster.nodes["n2"].ctrl.writes_allowed()
            # The acked writes are all on the winner.
            cluster.settle()
            cluster.verify()
        finally:
            cluster.close()

    def test_unacked_writes_may_be_lost_but_acked_never(self, tmp_path):
        cluster = ChaosCluster(tmp_path, seed=2)
        try:
            cluster.tick()
            cluster.client_write()          # replicated + acked
            cluster.partition("n1", "n2")   # cut both followers off
            cluster.partition("n1", "n3")
            cluster.client_write()          # commits locally, NO ack
            assert len(cluster.acked) == 1
            assert len(cluster.unacked) == 1
            cluster.kill("n1", torn=True)
            cluster.heal()
            self._failover(cluster)
            cluster.settle()
            cluster.verify()  # acked write present on the new primary
            primary = cluster.nodes[cluster.coordinator.primary]
            key = cluster.unacked[0][0]
            lost = primary.db.query(
                "select e.value from e in Entry where e.key = $key",
                params={"key": key},
            )
            assert lost == []  # the unacked write died with the reign
        finally:
            cluster.close()

    def test_paused_primary_comes_back_deposed_and_fenced(self, tmp_path):
        cluster = ChaosCluster(tmp_path, seed=3)
        try:
            cluster.tick()
            cluster.client_write()
            cluster.paused.add("n1")
            report = self._failover(cluster)
            new_primary = report.new_primary
            # The old primary wakes up mid-new-reign.
            cluster.paused.discard("n1")
            old = cluster.nodes["n1"].ctrl
            assert not old.writes_allowed()  # lease long expired
            cluster.clock.advance(0.25)
            cluster.tick()  # the supervisor spots and demotes it
            assert old.fenced
            assert old.epoch == report.epoch
            # Its pulls from the current reign answer stale-primary.
            cluster.check_deposed_fenced("n1")
            assert cluster.nodes[new_primary].ctrl.writes_allowed()
            cluster.assert_single_writer("scripted")
            cluster.settle()
            cluster.verify()
        finally:
            cluster.close()

    def test_double_failover_epochs_stay_monotonic(self, tmp_path):
        cluster = ChaosCluster(tmp_path, seed=4)
        try:
            cluster.tick()
            cluster.client_write()
            cluster.kill("n1", torn=False)
            first = self._failover(cluster)
            cluster.client_write()
            cluster.kill(first.new_primary, torn=True)
            # One survivor is below the majority quorum: the
            # coordinator must refuse to promote until n1 returns.
            for _ in range(20):
                cluster.clock.advance(0.25)
                cluster.tick()
            assert len(cluster.coordinator.failovers) == 1
            cluster.restart("n1")
            second = self._failover(cluster)
            assert second.epoch > first.epoch
            # n1's log is still reign-0: the current reign's survivor
            # wins the election on log epoch, whatever the raw LSNs.
            assert second.new_primary == "n3"
            cluster.settle()
            cluster.verify()
            assert sorted(cluster.accepted_by_epoch) == [
                0, first.epoch, second.epoch,
            ]
        finally:
            cluster.close()
