"""Deterministic chaos harness for the HA subsystem.

Everything runs in-process, single-threaded, on a virtual clock: node
kills (clean and torn), restarts, pauses, network partitions and clock
skew are drawn from a seeded RNG, so every schedule is exactly
reproducible from its seed — a failing seed IS the bug report.

The cluster under test is real: three :class:`PrometheusDB` stores on
disk, real :class:`LogShipper`/:class:`ReplicaApplier` replication,
real :class:`HAController` role machines and a real
:class:`FailoverCoordinator` — only the transport (a direct in-process
call that consults the partition matrix) and time are simulated.  The
coordinator's injectable ``sleep`` advances the virtual clock, so the
lease wait before promotion is modelled faithfully at zero wall cost.

Invariants checked (the point of the exercise):

* **single writer** — at every step, at most one open node answers
  ``writes_allowed()``;
* **single writer per epoch** — across the whole run, writes at any
  given epoch were accepted by exactly one node;
* **no acknowledged write lost** — every write acked to the client
  (committed on a primary AND pulled by at least one replica) is
  queryable on the final primary after the dust settles;
* **deposed primaries stay fenced** — a demoted ex-primary refuses
  pulls from the current reign with ``stale-primary`` and refuses
  writes.

Unacknowledged writes (committed locally, never replicated) MAY be
lost — that is semi-synchronous replication's contract, and the
harness records rather than mourns them.
"""

from __future__ import annotations

import random
from typing import Any

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.errors import (
    DivergedError,
    ReplicationError,
    StalePrimaryError,
)
from repro.ha import FailoverCoordinator, HAController, SupervisedNode
from repro.replication import LogShipper, ReplicaApplier, ReplicationClient

NODE_NAMES = ("n1", "n2", "n3")
LEASE_TTL_S = 1.0
SKEW_ALLOWANCE_S = 0.5
MAX_SKEW_S = 0.2  # |per-node skew| stays well inside the allowance
STEP_DT_S = 0.25
PHI_THRESHOLD = 4.0


class VirtualClock:
    """Global virtual time plus a bounded per-node skew offset."""

    def __init__(self) -> None:
        self.now = 1_000.0
        self.skew: dict[str, float] = {}

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        assert dt >= 0
        self.now += dt

    def node_clock(self, name: str):
        return lambda: self.now + self.skew.get(name, 0.0)


class ChaosTransport:
    """A pull transport that is really a partition-aware function call."""

    def __init__(self, cluster: "ChaosCluster", src: str, dst: str) -> None:
        self.cluster = cluster
        self.src = src
        self.dst = dst

    def pull(
        self,
        from_lsn: int,
        prefix_crc: int | None = None,
        wait_s: float = 0.0,
        max_bytes: int | None = None,
        replica: str = "",
        epoch: int | None = None,
    ) -> tuple[str, bytes | None]:
        self.cluster.check_link(self.src, self.dst)
        node = self.cluster.nodes[self.dst]
        shipper = node.ctrl.shipper if node.ctrl is not None else None
        if shipper is None:
            raise ReplicationError(
                f"{self.dst} is not shipping (role changed?)"
            )
        return shipper.pull(
            from_lsn,
            prefix_crc=prefix_crc,
            wait_s=0.0,  # no blocking on virtual time
            max_bytes=max_bytes,
            replica=replica,
            epoch=epoch,
        )


class ChaosNode:
    """One cluster member: its store path, db handle and controller."""

    def __init__(self, name: str, path) -> None:
        self.name = name
        self.path = path
        self.db: PrometheusDB | None = None
        self.ctrl: HAController | None = None
        self.last_role = "replica"

    @property
    def open(self) -> bool:
        return self.db is not None


def _declare(db: PrometheusDB) -> None:
    db.schema.define_class(
        "Entry",
        [Attribute("key", T.STRING), Attribute("value", T.INTEGER)],
    )


class ChaosCluster:
    """Builds the 3-node cluster and runs one seeded schedule."""

    def __init__(self, tmp_path, seed: int) -> None:
        self.tmp_path = tmp_path
        self.seed = seed
        self.rng = random.Random(seed)
        self.clock = VirtualClock()
        self.nodes = {name: ChaosNode(name, tmp_path) for name in NODE_NAMES}
        self.alive: set[str] = set()
        self.paused: set[str] = set()
        self.partitions: set[frozenset[str]] = set()
        # What the external writing client currently believes.
        self.client_primary = NODE_NAMES[0]
        self.write_seq = 0
        self.acked: list[tuple[str, int, int]] = []  # (key, value, epoch)
        self.unacked: list[tuple[str, int, int]] = []
        self.rejected_writes = 0
        self.accepted_by_epoch: dict[int, set[str]] = {}
        self.fence_checks = 0
        self._reports_seen = 0
        self._boot()

    # -- construction ------------------------------------------------------

    def _make_transport_factory(self, me: str):
        return lambda url: ChaosTransport(self, me, url)

    def _boot(self) -> None:
        primary_name = NODE_NAMES[0]
        for name in NODE_NAMES:
            node = self.nodes[name]
            if name == primary_name:
                db = PrometheusDB(self.tmp_path / f"{name}.plog")
                _declare(db)
                db.load()
                node.db = db
                node.ctrl = HAController(
                    db,
                    name,
                    shipper=LogShipper(db.store),
                    lease_ttl_s=LEASE_TTL_S,
                    clock=self.clock.node_clock(name),
                    make_transport=self._make_transport_factory(name),
                )
                node.last_role = "primary"
            else:
                self._open_as_replica(node, primary_name)
            self.alive.add(name)
        supervised = [
            SupervisedNode(
                name=name,
                url=name,
                liveness=self._liveness_fn(name),
                status=self._status_fn(name),
                promote=self._ctrl_fn(name, "promote"),
                demote=self._ctrl_fn(name, "demote"),
                repoint=self._ctrl_fn(name, "repoint"),
                lease=self._ctrl_fn(name, "grant_lease"),
            )
            for name in NODE_NAMES
        ]
        self.coordinator = FailoverCoordinator(
            supervised,
            primary=primary_name,
            interval_s=STEP_DT_S,
            phi_threshold=PHI_THRESHOLD,
            lease_ttl_s=LEASE_TTL_S,
            skew_allowance_s=SKEW_ALLOWANCE_S,
            clock=self.clock,
            sleep=self.clock.advance,
        )

    def _open_as_replica(self, node: ChaosNode, primary_name: str) -> None:
        db = PrometheusDB(self.tmp_path / f"{node.name}.plog", read_only=True)
        _declare(db)
        db.load()
        applier = ReplicaApplier(db)
        client = ReplicationClient(
            applier,
            ChaosTransport(self, node.name, primary_name),
            name=node.name,
        )
        node.db = db
        node.ctrl = HAController(
            db,
            node.name,
            replica_client=client,
            primary_url=primary_name,
            lease_ttl_s=LEASE_TTL_S,
            clock=self.clock.node_clock(node.name),
            make_transport=self._make_transport_factory(node.name),
        )
        node.last_role = "replica"

    # -- the coordinator's view of a node ----------------------------------

    def reachable(self, name: str) -> bool:
        return name in self.alive and name not in self.paused

    def check_link(self, src: str, dst: str) -> None:
        if not self.reachable(src) or not self.reachable(dst):
            raise ReplicationError(f"link {src}->{dst}: endpoint down")
        if frozenset((src, dst)) in self.partitions:
            raise ReplicationError(f"link {src}->{dst}: partitioned")

    def _liveness_fn(self, name: str):
        def liveness() -> dict[str, Any]:
            if not self.reachable(name):
                raise ReplicationError(f"{name} unreachable")
            ctrl = self.nodes[name].ctrl
            assert ctrl is not None
            return {
                "status": "alive",
                "role": "fenced" if ctrl.fenced else ctrl.role,
                "epoch": ctrl.epoch,
            }

        return liveness

    def _status_fn(self, name: str):
        def status() -> dict[str, Any]:
            if not self.reachable(name):
                raise ReplicationError(f"{name} unreachable")
            node = self.nodes[name]
            assert node.db is not None and node.db.store is not None
            return {
                "applied_lsn": node.db.store.commit_lsn,
                "epoch": node.ctrl.epoch if node.ctrl else 0,
                # The election ranks by the LOG's epoch: what reign the
                # data belongs to, not what the node heard on the wire.
                "log_epoch": node.db.store.cluster_epoch,
            }

        return status

    def _ctrl_fn(self, name: str, method: str):
        def call(*args: Any, **kwargs: Any) -> Any:
            if not self.reachable(name):
                raise ReplicationError(f"{name} unreachable")
            ctrl = self.nodes[name].ctrl
            assert ctrl is not None
            return getattr(ctrl, method)(*args, **kwargs)

        return call

    # -- chaos events ------------------------------------------------------

    def kill(self, name: str, torn: bool) -> None:
        node = self.nodes[name]
        if not node.open:
            return
        assert node.ctrl is not None
        node.last_role = "primary" if node.ctrl.role == "primary" else "replica"
        client = node.ctrl.replica_client
        if client is not None:
            client.stop()
        node.db.close()
        if torn:
            # A crash mid-append: garbage past the last flushed commit.
            # Recovery truncates it; no *committed* byte is touched, so
            # durability claims stay honest.
            junk = bytes(
                self.rng.getrandbits(8)
                for _ in range(self.rng.randint(1, 20))
            )
            with open(self.tmp_path / f"{name}.plog", "ab") as fh:
                fh.write(junk)
        node.db = None
        node.ctrl = None
        self.alive.discard(name)
        self.paused.discard(name)

    def restart(self, name: str) -> None:
        node = self.nodes[name]
        if node.open:
            return
        if node.last_role == "primary":
            # It comes back still wearing the crown — but unleased, so
            # it cannot write until the supervisor says so, and the
            # supervisor will demote it if the reign has moved on.
            db = PrometheusDB(self.tmp_path / f"{name}.plog")
            _declare(db)
            db.load()
            node.db = db
            node.ctrl = HAController(
                db,
                name,
                shipper=LogShipper(db.store),
                lease_ttl_s=LEASE_TTL_S,
                clock=self.clock.node_clock(name),
                make_transport=self._make_transport_factory(name),
            )
        else:
            target = self.coordinator.primary
            self._open_as_replica(node, target)
        self.alive.add(name)

    def partition(self, a: str, b: str) -> None:
        if a != b:
            self.partitions.add(frozenset((a, b)))

    def heal(self) -> None:
        self.partitions.clear()

    def set_skew(self, name: str) -> None:
        self.clock.skew[name] = self.rng.uniform(-MAX_SKEW_S, MAX_SKEW_S)

    # -- client traffic ----------------------------------------------------

    def _writable_target(self) -> str | None:
        """The failover-following client: retry with rediscovery."""
        candidates = [self.client_primary, self.coordinator.primary]
        for target in candidates:
            node = self.nodes.get(target)
            if (
                node is not None
                and self.reachable(target)
                and node.ctrl is not None
                and node.ctrl.writes_allowed()
            ):
                self.client_primary = target
                return target
        self.rejected_writes += 1
        return None

    def client_write(self) -> None:
        target = self._writable_target()
        if target is None:
            return
        node = self.nodes[target]
        assert node.db is not None and node.ctrl is not None
        epoch = node.ctrl.epoch
        key = f"k{self.write_seq}"
        value = self.rng.randint(0, 10_000)
        self.write_seq += 1
        try:
            txn = node.db.transactions.begin()
            txn.create("Entry", key=key, value=value)
            txn.commit()
        except Exception:
            # Raced a fence; the client never got an ack.  Fine.
            return
        lsn = node.db.store.commit_lsn
        self.accepted_by_epoch.setdefault(epoch, set()).add(target)
        # Semi-sync ack: replicated to >= 1 replica, or not acked.
        if self._replicate_to_one(target, lsn):
            self.acked.append((key, value, epoch))
        else:
            self.unacked.append((key, value, epoch))

    def _followers_of(self, primary_name: str) -> list[str]:
        out = []
        for name in NODE_NAMES:
            node = self.nodes[name]
            if (
                name != primary_name
                and node.open
                and node.ctrl is not None
                and node.ctrl.replica_client is not None
                and node.ctrl.primary_url == primary_name
            ):
                out.append(name)
        return out

    def _replicate_to_one(self, primary_name: str, lsn: int) -> bool:
        for name in self._followers_of(primary_name):
            if self.pump_replica(name, lsn):
                return True
        return False

    def pump_replica(self, name: str, target_lsn: int | None = None) -> bool:
        """Drive one replica's pull loop synchronously; True = caught
        up to ``target_lsn`` (or fully, when None)."""
        node = self.nodes[name]
        if not node.open or node.ctrl is None:
            return False
        client = node.ctrl.replica_client
        if client is None:
            return False
        for _ in range(10):
            try:
                batch = client.pull_once()
            except DivergedError:
                continue  # reset done inside; next pull restarts
            except (StalePrimaryError, ReplicationError):
                return False
            applied = node.db.store.commit_lsn
            if target_lsn is not None and applied >= target_lsn:
                return True
            if batch is None:  # caught up
                return target_lsn is None or applied >= target_lsn
        return False

    # -- invariants --------------------------------------------------------

    def assert_single_writer(self, context: str) -> None:
        writers = [
            name
            for name, node in self.nodes.items()
            if node.open
            and node.ctrl is not None
            and node.ctrl.writes_allowed()
        ]
        assert len(writers) <= 1, (
            f"seed {self.seed} [{context}]: dual primary! "
            f"writers={writers} epoch={self.coordinator.epoch}"
        )

    def assert_one_writer_per_epoch(self) -> None:
        for epoch, writers in sorted(self.accepted_by_epoch.items()):
            assert len(writers) == 1, (
                f"seed {self.seed}: epoch {epoch} accepted writes on "
                f"{sorted(writers)} — fencing failed"
            )

    def check_deposed_fenced(self, old_primary: str) -> None:
        """A live deposed primary must refuse this reign's traffic."""
        node = self.nodes[old_primary]
        if not node.open or node.ctrl is None:
            return
        self.fence_checks += 1
        assert not node.ctrl.writes_allowed(), (
            f"seed {self.seed}: deposed {old_primary} still accepts "
            "writes"
        )
        shipper = node.ctrl.shipper
        if shipper is not None:
            status, _ = shipper.pull(
                node.db.store.commit_lsn, epoch=self.coordinator.epoch
            )
            assert status == "stale-primary", (
                f"seed {self.seed}: deposed {old_primary} served a pull "
                f"from epoch {self.coordinator.epoch}: {status}"
            )

    # -- the schedule ------------------------------------------------------

    def step(self) -> None:
        self.clock.advance(STEP_DT_S)
        roll = self.rng.random()
        alive = sorted(self.alive)
        dead = sorted(set(NODE_NAMES) - self.alive)
        if roll < 0.45:
            self.client_write()
        elif roll < 0.62:
            followers = self._followers_of(self.coordinator.primary)
            if followers:
                self.pump_replica(self.rng.choice(followers))
        elif roll < 0.68:
            if len(alive) > 1:
                victim = self.rng.choice(alive)
                torn = (
                    victim == self.coordinator.primary
                    and self.rng.random() < 0.5
                )
                self.kill(victim, torn=torn)
        elif roll < 0.76:
            if dead:
                self.restart(self.rng.choice(dead))
        elif roll < 0.81:
            self.partition(*self.rng.sample(NODE_NAMES, 2))
        elif roll < 0.86:
            self.heal()
        elif roll < 0.90:
            # Pause: alive but unresponsive (GC stall, SIGSTOP...).
            candidates = [n for n in alive if n not in self.paused]
            if len(candidates) > 1:
                self.paused.add(self.rng.choice(candidates))
        elif roll < 0.96:
            if self.paused:
                self.paused.discard(self.rng.choice(sorted(self.paused)))
        else:
            self.set_skew(self.rng.choice(NODE_NAMES))
        self.tick()

    def tick(self) -> None:
        self.coordinator.tick()
        reports = self.coordinator.failovers
        while self._reports_seen < len(reports):
            report = reports[self._reports_seen]
            self._reports_seen += 1
            self.check_deposed_fenced(report.old_primary)

    def run(self, steps: int = 60) -> None:
        for _ in range(steps):
            self.step()
            self.assert_single_writer("mid-run")
        self.settle()
        self.verify()

    # -- convergence and final verification --------------------------------

    def settle(self, max_rounds: int = 200) -> None:
        """Heal everything and drive the cluster to a steady state."""
        self.heal()
        self.paused.clear()
        for name in sorted(set(NODE_NAMES) - self.alive):
            self.restart(name)
        # Let the supervisor stabilise: demote returners, renew/choose
        # the primary, fail over if the seat is empty.
        for _ in range(max_rounds):
            self.clock.advance(STEP_DT_S)
            self.tick()
            self.assert_single_writer("settle")
            primary = self.coordinator.primary
            node = self.nodes[primary]
            if (
                self.reachable(primary)
                and node.ctrl is not None
                and node.ctrl.writes_allowed()
            ):
                break
        else:
            raise AssertionError(
                f"seed {self.seed}: no writable primary after settling"
            )
        primary = self.coordinator.primary
        # Operator step: point every survivor at the final primary.
        for name in NODE_NAMES:
            node = self.nodes[name]
            if name == primary or not node.open:
                continue
            assert node.ctrl is not None
            node.ctrl.repoint(primary, self.coordinator.epoch)
        for name in NODE_NAMES:
            if name != primary:
                assert self.pump_replica(name), (
                    f"seed {self.seed}: {name} could not catch up to "
                    f"{primary}"
                )

    def verify(self) -> None:
        primary = self.coordinator.primary
        pdb = self.nodes[primary].db
        assert pdb is not None
        # 1. Every acknowledged write survived, with its exact value.
        for key, value, epoch in self.acked:
            got = pdb.query(
                "select e.value from e in Entry where e.key = $key",
                params={"key": key},
            )
            assert got == [value], (
                f"seed {self.seed}: ACKED write {key}={value} (epoch "
                f"{epoch}) lost or mangled on {primary}: got {got}"
            )
        # 2. No epoch ever had two accepting nodes.
        self.assert_one_writer_per_epoch()
        # 3. The survivors converged byte-for-byte.
        fp = pdb.store.fingerprint()
        for name in NODE_NAMES:
            node = self.nodes[name]
            if name == primary or not node.open:
                continue
            assert node.db.store.fingerprint() == fp, (
                f"seed {self.seed}: {name} diverged from {primary}"
            )
        # 4. The cluster still takes (and replicates) writes.
        before = len(self.acked)
        self.client_write()
        assert len(self.acked) == before + 1, (
            f"seed {self.seed}: final write on {primary} was not acked"
        )

    def close(self) -> None:
        for node in self.nodes.values():
            if node.ctrl is not None and node.ctrl.replica_client:
                node.ctrl.replica_client.stop()
            if node.db is not None:
                node.db.close()
                node.db = None


def run_schedule(tmp_path, seed: int, steps: int = 60) -> ChaosCluster:
    """Run one seeded schedule to completion; returns the cluster for
    post-hoc inspection.  Raises AssertionError on invariant breach."""
    cluster = ChaosCluster(tmp_path, seed)
    try:
        cluster.run(steps=steps)
    finally:
        cluster.close()
    return cluster
