"""Failovers reconstructed from the event journal.

The chaos harness runs on a virtual clock, so these tests wire each
node's :class:`EventJournal` to that clock, run scripted failovers,
merge the per-node journals by ``(at, seq)`` and assert the promotion
timeline the journal promises operators:

* promote epochs strictly increase across the merged timeline;
* the coordinator provably waited out the old lease — the new reign's
  ``ha.promote`` lands at or after the deposed primary's last
  ``ha.lease_grant`` plus the TTL;
* the deposed primary's ``ha.fence`` (old reign) precedes the first
  write accepted by the new reign;
* with supervisor telemetry attached, one ``ha.failover`` event and
  one trace id tie the whole promotion together, and the
  ``repro_ha_*`` supervision gauges render.
"""

import json

from repro.telemetry import Telemetry

from .chaos import LEASE_TTL_S, ChaosCluster


def wire_journals(cluster, journals):
    """Stamp node names and the virtual clock into every open node's
    journal, keeping a reference per incarnation so entries survive
    ``kill()`` (which drops the db handle, not the journal object)."""
    for name, node in cluster.nodes.items():
        if node.db is None:
            continue
        events = node.db.telemetry.events
        bucket = journals.setdefault(name, [])
        if any(events is seen for seen in bucket):
            continue
        events.node = name
        events.clock = cluster.clock.node_clock(name)
        bucket.append(events)


def merged_timeline(journals):
    """The post-mortem merge: every node's entries by ``(at, seq)``."""
    entries = [
        entry
        for bucket in journals.values()
        for journal in bucket
        for entry in journal.events()
    ]
    entries.sort(key=lambda e: (e["at"], e["node"], e["seq"]))
    return entries


def node_events(journals, name, kind):
    return [
        entry
        for journal in journals.get(name, [])
        for entry in journal.events()
        if entry["kind"] == kind
    ]


def drive_failover(cluster, max_ticks=60):
    before = len(cluster.coordinator.failovers)
    for _ in range(max_ticks):
        cluster.clock.advance(0.25)
        cluster.tick()
        if len(cluster.coordinator.failovers) > before:
            return cluster.coordinator.failovers[-1]
    raise AssertionError("no failover within the tick budget")


class TestPromotionTimeline:
    def test_fence_and_lease_expiry_precede_the_new_reigns_first_write(
        self, tmp_path
    ):
        cluster = ChaosCluster(tmp_path, seed=3)
        journals = {}
        try:
            wire_journals(cluster, journals)
            cluster.tick()  # bootstrap: leases n1
            cluster.client_write()
            grants = node_events(journals, "n1", "ha.lease_grant")
            assert grants, "bootstrap lease was not journaled"
            granted_at = grants[-1]["at"]

            cluster.paused.add("n1")  # GC stall / SIGSTOP
            report = drive_failover(cluster)

            [promote] = [
                e
                for e in merged_timeline(journals)
                if e["kind"] == "ha.promote"
            ]
            assert promote["node"] == report.new_primary
            assert promote["epoch"] == report.epoch
            # The fencing guarantee, visible in the journal: promotion
            # waited until the old lease had provably expired.
            assert promote["at"] >= granted_at + LEASE_TTL_S

            # The old primary wakes mid-new-reign; its own lease check
            # journals the expiry, timestamped before the promotion.
            cluster.paused.discard("n1")
            old = cluster.nodes["n1"].ctrl
            assert not old.writes_allowed()
            [expiry] = node_events(journals, "n1", "ha.lease_expired")
            assert expiry["expired_at"] <= promote["at"]

            # The supervisor spots the stale crown and fences it; only
            # then does the client's first new-reign write land.
            cluster.clock.advance(0.25)
            cluster.tick()
            assert old.fenced
            first_write_at = cluster.clock.now
            cluster.client_write()
            assert report.epoch in cluster.accepted_by_epoch

            fences = node_events(journals, "n1", "ha.fence")
            assert fences
            assert fences[0]["epoch"] == report.epoch
            assert fences[0]["at"] <= first_write_at
        finally:
            cluster.close()

    def test_double_failover_merged_journal_epochs_increase(
        self, tmp_path
    ):
        cluster = ChaosCluster(tmp_path, seed=4)
        journals = {}
        try:
            wire_journals(cluster, journals)
            cluster.tick()
            cluster.client_write()
            cluster.kill("n1", torn=False)
            first = drive_failover(cluster)
            cluster.client_write()
            cluster.kill(first.new_primary, torn=True)
            cluster.restart("n1")  # back at log epoch 0, crown on
            wire_journals(cluster, journals)  # fresh incarnation
            second = drive_failover(cluster)

            timeline = merged_timeline(journals)
            promotes = [
                e for e in timeline if e["kind"] == "ha.promote"
            ]
            assert [e["epoch"] for e in promotes] == [
                first.epoch,
                second.epoch,
            ]
            assert first.epoch < second.epoch
            assert [e["node"] for e in promotes] == [
                first.new_primary,
                second.new_primary,
            ]

            # The returning reign-0 primary was fenced into the current
            # epoch BEFORE the next reign was stamped.
            n1_fences = [
                e
                for e in timeline
                if e["kind"] == "ha.fence" and e["node"] == "n1"
            ]
            assert n1_fences
            fence_pos = timeline.index(n1_fences[0])
            second_pos = timeline.index(promotes[1])
            assert fence_pos < second_pos
            assert n1_fences[0]["epoch"] >= first.epoch

            # Each journal is locally ordered by (at, seq) — the merge
            # key the post-mortem relies on.
            for bucket in journals.values():
                for journal in bucket:
                    stamps = [
                        (e["at"], e["seq"]) for e in journal.events()
                    ]
                    assert stamps == sorted(stamps)

            # The JSONL file beside the store spans both incarnations
            # of n1 (seq restarts, wall order does not).
            lines = [
                json.loads(line)
                for line in open(
                    tmp_path / "n1.plog.events.jsonl",
                    encoding="utf-8",
                )
            ]
            kinds = {e["kind"] for e in lines}
            assert "ha.lease_grant" in kinds
            assert "ha.fence" in kinds
        finally:
            cluster.close()


class TestSupervisorTelemetry:
    def test_failover_event_trace_and_gauges(self, tmp_path):
        cluster = ChaosCluster(tmp_path, seed=1)
        journals = {}
        try:
            wire_journals(cluster, journals)
            tel = Telemetry()
            tel.events.node = "supervisor"
            tel.events.clock = cluster.clock
            cluster.coordinator.attach_telemetry(tel)
            cluster.tick()
            for _ in range(3):
                cluster.client_write()
            cluster.pump_replica("n2")
            cluster.kill("n1", torn=False)
            report = drive_failover(cluster)

            [event] = [
                e
                for e in tel.events.events()
                if e["kind"] == "ha.failover"
            ]
            assert event["epoch"] == report.epoch
            assert event["old_primary"] == "n1"
            assert event["new_primary"] == report.new_primary
            assert event["detect_to_promoted_s"] >= LEASE_TTL_S

            # One trace ties the supervisor's failover span to the
            # journal entries the transitions wrote on the nodes.
            [span] = [
                s
                for s in tel.traces.snapshot()
                if s["name"] == "ha.failover"
            ]
            assert span["attributes"]["epoch"] == report.epoch
            assert event["trace_id"] == span["trace_id"]
            [promote] = node_events(
                journals, report.new_primary, "ha.promote"
            )
            assert promote["trace_id"] == span["trace_id"]

            # The supervision gauges render: per-node phi, the epoch,
            # and one TTR observation.
            text = tel.registry.render_prometheus()
            assert 'repro_ha_phi{node="n2"}' in text
            assert f"repro_ha_cluster_epoch {report.epoch}" in text
            assert "repro_ha_time_to_recover_ms_count 1" in text
        finally:
            cluster.close()
