"""HTTP surface of the HA subsystem: health probes, /ha/*, fenced 409s.

A real primary + replica over loopback, each with an
:class:`HAController` wired into its server.  Pins the liveness and
readiness probes, the promotion/demotion endpoints, the 409 fencing
answers (stale pull, fenced write, demoted session) and the
semi-synchronous ``wait_replicated`` commit option.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.engine import PrometheusDB, PrometheusServer
from repro.ha import HAController
from repro.replication import (
    BASE_LSN,
    HttpPullTransport,
    LogShipper,
    ReplicaApplier,
    ReplicationClient,
)

from .conftest import declare, make_primary, write_entry


def request(url, method="GET", payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def commit_via_sessions(url, key, value, extra=None):
    _, body = request(url + "/session", "POST", {})
    sid = body["session"]
    status, body = request(
        f"{url}/session/{sid}/apply",
        "POST",
        {"ops": [{"op": "create", "class": "Entry",
                  "attrs": {"key": key, "value": value}}]},
    )
    if status != 200:
        return status, body
    return request(f"{url}/session/{sid}/commit", "POST", extra or {})


@pytest.fixture
def topology(tmp_path):
    primary = make_primary(tmp_path)
    shipper = LogShipper(primary.store)
    pha = HAController(primary, "p", shipper=shipper)

    replica = PrometheusDB(tmp_path / "replica.plog", read_only=True)
    declare(replica)
    replica.load()
    applier = ReplicaApplier(replica)

    with PrometheusServer(primary, ha=pha) as pserver:
        client = ReplicationClient(
            applier,
            HttpPullTransport(pserver.url),
            name="r1",
            poll_wait_s=0.5,
        )
        rha = HAController(
            replica,
            "r1",
            replica_client=client,
            primary_url=pserver.url,
            make_transport=HttpPullTransport,
        )
        with PrometheusServer(replica, ha=rha) as rserver:
            try:
                yield pserver, rserver, primary, replica, pha, rha
            finally:
                if rha.replica_client is not None:
                    rha.replica_client.stop()
                client.stop()
    replica.close()
    primary.close()


class TestHealthProbes:
    def test_liveness_is_cheap_and_role_aware(self, topology):
        pserver, rserver, *_ = topology
        status, body = request(pserver.url + "/health/liveness")
        assert status == 200
        assert body["status"] == "alive"
        assert body["role"] == "primary"
        assert body["epoch"] == 0
        assert body["uptime_s"] >= 0
        _, body = request(rserver.url + "/health/liveness")
        assert body["role"] == "replica"

    def test_readiness_splits_from_liveness(self, topology):
        pserver, rserver, _, _, _, rha = topology
        status, body = request(pserver.url + "/health/readiness")
        assert status == 200 and body["ready"] is True
        # The replica's pull loop has not started: alive, NOT ready.
        status, body = request(rserver.url + "/health/liveness")
        assert status == 200
        status, body = request(rserver.url + "/health/readiness")
        assert status == 503
        assert body["reasons"] == ["pull-loop-stopped"]
        rha.replica_client.start()
        status, body = request(rserver.url + "/health/readiness")
        assert status == 200 and body["ready"] is True

    def test_fenced_node_is_alive_but_not_ready(self, topology):
        pserver, *_ = topology
        request(
            pserver.url + "/ha/demote",
            "POST",
            {"epoch": 1, "primary_url": "http://next"},
        )
        status, body = request(pserver.url + "/health/liveness")
        assert status == 200 and body["role"] == "fenced"
        status, body = request(pserver.url + "/health/readiness")
        assert status == 503 and "fenced" in body["reasons"]

    def test_ha_status_endpoint(self, topology):
        pserver, *_ = topology
        status, body = request(pserver.url + "/ha/status")
        assert status == 200
        assert body["name"] == "p"
        assert body["role"] == "primary"
        assert body["writes_allowed"] is True

    def test_ha_routes_404_without_controller(self, tmp_path):
        db = make_primary(tmp_path, "plain")
        try:
            with PrometheusServer(db) as server:
                status, _ = request(server.url + "/ha/status")
                assert status == 404
                status, _ = request(
                    server.url + "/ha/promote", "POST", {"epoch": 1}
                )
                assert status == 404
        finally:
            db.close()


class TestFailoverOverHttp:
    def test_promote_demote_roundtrip(self, topology):
        pserver, rserver, primary, replica, pha, rha = topology
        write_entry(primary, "pre", 1)
        rha.replica_client.catch_up()

        status, body = request(
            rserver.url + "/ha/promote", "POST", {"epoch": 1}
        )
        assert status == 200
        assert body["promoted"] is True and body["epoch"] == 1
        # The ex-replica now accepts writes over its session API.
        status, body = commit_via_sessions(rserver.url, "post", 2)
        assert status == 200 and body["committed"] is True

        status, body = request(
            pserver.url + "/ha/demote",
            "POST",
            {"epoch": 1, "primary_url": rserver.url},
        )
        assert status == 200
        # The deposed primary answers writes with the typed 409.
        status, body = commit_via_sessions(pserver.url, "rejected", 3)
        assert status == 409
        assert body["stale_primary"] is True
        assert body["epoch"] == 1
        assert body["primary_url"] == rserver.url
        assert body["retry"] is True

    def test_promote_rejects_stale_epoch_with_409(self, topology):
        _, rserver, _, _, _, rha = topology
        request(rserver.url + "/ha/promote", "POST", {"epoch": 3})
        status, body = request(
            rserver.url + "/ha/promote", "POST", {"epoch": 2}
        )
        assert status == 409
        assert body["status"] == "stale-primary"
        assert body["epoch"] == 3

    def test_stale_pull_gets_409_and_fences(self, topology):
        pserver, _, primary, *_ = topology
        write_entry(primary, "a", 1)
        status, body = request(
            pserver.url + "/replicate/pull",
            "POST",
            {"from_lsn": BASE_LSN, "epoch": 5},
        )
        assert status == 409
        assert body["status"] == "stale-primary"
        assert body["epoch"] == 5
        # Hearing from a higher reign is proof of deposition: the
        # primary self-fences rather than keep accepting writes.
        _, body = request(pserver.url + "/health/liveness")
        assert body["role"] == "fenced"

    def test_bad_ha_fields_are_400(self, topology):
        pserver, *_ = topology
        status, _ = request(
            pserver.url + "/ha/promote", "POST", {"epoch": "soon"}
        )
        assert status == 400


class TestDemotedSessions:
    def test_demoted_session_gets_typed_409(self, tmp_path):
        # No HA controller here: the writes_allowed() gate is absent, so
        # a poisoned session reaches commit and the typed demotion
        # answer (rather than a generic unknown-session error) is what
        # the client sees.
        db = make_primary(tmp_path, "solo")
        try:
            with PrometheusServer(db) as server:
                _, body = request(server.url + "/session", "POST", {})
                sid = body["session"]
                request(
                    f"{server.url}/session/{sid}/apply",
                    "POST",
                    {"ops": [{"op": "create", "class": "Entry",
                              "attrs": {"key": "k", "value": 1}}]},
                )
                db.sessions.demote_all(4, "http://successor")
                status, body = request(
                    f"{server.url}/session/{sid}/commit", "POST", {}
                )
                assert status == 409
                assert body["demoted"] is True
                assert body["epoch"] == 4
                assert body["primary_url"] == "http://successor"
                assert body["retry"] is True
        finally:
            db.close()


class TestSemiSyncCommit:
    def test_wait_replicated_acks_after_pull(self, topology):
        pserver, _, _, replica, _, rha = topology
        rha.replica_client.start()
        status, body = commit_via_sessions(
            pserver.url,
            "acked",
            1,
            extra={"wait_replicated": 1, "wait_timeout_s": 10.0},
        )
        assert status == 200
        assert body["replicated"] is True
        assert replica.store.commit_lsn >= body["commit_lsn"]

    def test_wait_replicated_times_out_without_replicas(self, topology):
        pserver, *_ = topology
        status, body = commit_via_sessions(
            pserver.url,
            "unacked",
            1,
            extra={"wait_replicated": 1, "wait_timeout_s": 0.3},
        )
        assert status == 200
        assert body["committed"] is True  # durable locally either way
        assert body["replicated"] is False
