"""Shared fixtures for the HA suite.

Same in-process topology idiom as ``tests/replication``: the
``ReplicationClient`` uses the primary's :class:`LogShipper` directly
as its transport, so promotion, fencing and epoch plumbing are
exercised end-to-end without sockets.
"""

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.replication import LogShipper, ReplicaApplier, ReplicationClient


def declare(db: PrometheusDB) -> None:
    db.schema.define_class(
        "Entry",
        [Attribute("key", T.STRING), Attribute("value", T.INTEGER)],
    )


def make_primary(tmp_path, name: str = "primary") -> PrometheusDB:
    db = PrometheusDB(tmp_path / f"{name}.plog")
    declare(db)
    db.load()
    return db


def make_replica(
    tmp_path, shipper: LogShipper, name: str
) -> tuple[PrometheusDB, ReplicaApplier, ReplicationClient]:
    db = PrometheusDB(tmp_path / f"{name}.plog", read_only=True)
    declare(db)
    db.load()
    applier = ReplicaApplier(db)
    client = ReplicationClient(applier, shipper, name=name)
    return db, applier, client


def write_entry(db: PrometheusDB, key: str, value: int) -> int:
    txn = db.transactions.begin()
    txn.create("Entry", key=key, value=value)
    txn.commit()
    return txn.commit_lsn


class FakeClock:
    """A hand-cranked monotonic clock for detector and lease tests."""

    def __init__(self, start: float = 100.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def primary(tmp_path):
    db = make_primary(tmp_path)
    yield db
    db.close()


@pytest.fixture
def shipper(primary):
    return LogShipper(primary.store)


@pytest.fixture
def replica(tmp_path, shipper):
    db, applier, client = make_replica(tmp_path, shipper, "replica-1")
    yield db, applier, client
    client.stop()
    db.close()
