"""Phi-accrual failure detector: suspicion math on a virtual clock."""

import math

import pytest

from repro.ha import PhiAccrualDetector


def beat_regularly(det, clock, node, interval, count):
    for _ in range(count):
        det.heartbeat(node)
        clock.advance(interval)


class TestPhi:
    def test_never_heard_node_is_not_suspect(self, clock):
        det = PhiAccrualDetector(clock=clock)
        assert det.phi("ghost") == 0.0
        assert not det.suspect("ghost")
        assert det.last_heard("ghost") is None

    def test_phi_grows_with_silence(self, clock):
        det = PhiAccrualDetector(clock=clock)
        beat_regularly(det, clock, "n1", 1.0, 10)
        early = det.phi("n1")
        clock.advance(5.0)
        late = det.phi("n1")
        assert late > early

    def test_phi_matches_exponential_model(self, clock):
        det = PhiAccrualDetector(clock=clock)
        beat_regularly(det, clock, "n1", 2.0, 20)
        # Last advance already moved us 2.0 past the final beat; go to
        # exactly 6 seconds of silence: phi = (6 / 2) * log10(e).
        clock.advance(4.0)
        assert det.phi("n1") == pytest.approx(3.0 * math.log10(math.e))

    def test_regular_node_suspected_faster_than_jittery(self, clock):
        det = PhiAccrualDetector(clock=clock)
        beat_regularly(det, clock, "steady", 0.5, 20)
        for i in range(20):
            det.heartbeat("jittery")
            clock.advance(0.5 if i % 2 else 3.0)
        clock.advance(10.0)
        assert det.phi("steady") > det.phi("jittery")

    def test_threshold_crossing(self, clock):
        det = PhiAccrualDetector(threshold=4.0, clock=clock)
        beat_regularly(det, clock, "n1", 1.0, 10)
        assert not det.suspect("n1")
        # phi = t * log10(e) with mean 1.0: crosses 4.0 near t = 9.2s.
        clock.advance(20.0)
        assert det.suspect("n1")

    def test_min_interval_floor_prevents_hair_trigger(self, clock):
        det = PhiAccrualDetector(min_interval_s=0.5, clock=clock)
        # A burst of near-instant heartbeats would drive the mean to ~0
        # and make any silence look fatal; the floor absorbs it.
        beat_regularly(det, clock, "bursty", 0.0001, 50)
        clock.advance(1.0)
        assert det.phi("bursty") <= (1.1 / 0.5) * math.log10(math.e)

    def test_heartbeat_resets_suspicion(self, clock):
        det = PhiAccrualDetector(threshold=4.0, clock=clock)
        beat_regularly(det, clock, "n1", 1.0, 10)
        clock.advance(30.0)
        assert det.suspect("n1")
        det.heartbeat("n1")
        assert not det.suspect("n1")

    def test_forget_drops_history(self, clock):
        det = PhiAccrualDetector(clock=clock)
        beat_regularly(det, clock, "n1", 1.0, 5)
        det.forget("n1")
        assert det.phi("n1") == 0.0
        assert det.last_heard("n1") is None

    def test_window_bounds_history(self, clock):
        det = PhiAccrualDetector(window=4, clock=clock)
        # Old slow intervals age out of the window: after 4 fast beats
        # the mean reflects only the recent cadence.
        beat_regularly(det, clock, "n1", 10.0, 3)
        beat_regularly(det, clock, "n1", 0.5, 6)
        clock.advance(0.5)  # 1.0s total silence
        assert det.phi("n1") == pytest.approx(
            (1.0 / 0.5) * math.log10(math.e)
        )

    def test_snapshot_shape(self, clock):
        det = PhiAccrualDetector(clock=clock)
        beat_regularly(det, clock, "n1", 1.0, 3)
        snap = det.snapshot()
        assert set(snap) == {"n1"}
        entry = snap["n1"]
        assert {"phi", "suspect", "last_heard_s", "samples"} <= set(entry)
        assert entry["samples"] == 2
