"""HTTP wire surface of replication: a primary and a replica server.

A real two-server topology over loopback: the primary serves
``/replicate/pull`` from its :class:`LogShipper`; the replica runs a
:class:`ReplicationClient` over :class:`HttpPullTransport` and serves
read-only queries.  These tests pin the endpoints (frame/204/409
responses, role reporting, 403 on replica writes, LSN-stamped reads)
— transport-free replication semantics live in ``tests/replication``.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB, PrometheusServer
from repro.replication import (
    BASE_LSN,
    HttpPullTransport,
    LogShipper,
    ReplicaApplier,
    ReplicationClient,
    decode_frame,
)


def declare(db):
    db.schema.define_class(
        "Entry", [Attribute("key", T.STRING), Attribute("value", T.INTEGER)]
    )


def request(url, method="GET", payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=10) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def write_entry(db, key, value):
    txn = db.transactions.begin()
    txn.create("Entry", key=key, value=value)
    txn.commit()
    return txn.commit_lsn


@pytest.fixture
def topology(tmp_path):
    primary = PrometheusDB(tmp_path / "primary.plog")
    declare(primary)
    primary.load()
    shipper = LogShipper(primary.store)

    replica = PrometheusDB(tmp_path / "replica.plog", read_only=True)
    declare(replica)
    replica.load()
    applier = ReplicaApplier(replica)

    with PrometheusServer(primary, shipper=shipper) as pserver:
        client = ReplicationClient(
            applier, HttpPullTransport(pserver.url), name="r1",
            poll_wait_s=0.5,
        )
        with PrometheusServer(
            replica,
            replica_client=client,
            primary_url=pserver.url,
        ) as rserver:
            try:
                yield pserver, rserver, primary, replica, client
            finally:
                client.stop()
    replica.close()
    primary.close()


class TestPullEndpoint:
    def test_pull_returns_frame_bytes(self, topology):
        pserver, _, primary, *_ = topology
        write_entry(primary, "a", 1)
        body = json.dumps({"from_lsn": BASE_LSN, "replica": "r1"}).encode()
        req = urllib.request.Request(
            pserver.url + "/replicate/pull",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=10) as response:
            assert response.status == 200
            frame = response.read()
        from_lsn, to_lsn, payload, _ = decode_frame(frame)
        assert from_lsn == BASE_LSN
        assert to_lsn == primary.store.commit_lsn
        assert payload == primary.store.read_log_bytes(from_lsn, to_lsn)

    def test_pull_caught_up_is_204(self, topology):
        pserver, _, primary, *_ = topology
        body = json.dumps({"from_lsn": primary.store.commit_lsn}).encode()
        req = urllib.request.Request(
            pserver.url + "/replicate/pull",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=10) as response:
            assert response.status == 204

    def test_pull_ahead_cursor_is_409(self, topology):
        pserver, _, primary, *_ = topology
        status, body = request(
            pserver.url + "/replicate/pull",
            "POST",
            {"from_lsn": primary.store.commit_lsn + 999},
        )
        assert status == 409
        assert body["status"] == "diverged"

    def test_pull_without_shipper_is_404(self, topology):
        _, rserver, *_ = topology
        status, _ = request(
            rserver.url + "/replicate/pull", "POST", {"from_lsn": BASE_LSN}
        )
        assert status == 404

    def test_pull_rejects_garbage_fields(self, topology):
        pserver, *_ = topology
        status, _ = request(
            pserver.url + "/replicate/pull", "POST", {"from_lsn": "soon"}
        )
        assert status == 400


class TestEndToEnd:
    def test_replica_follows_and_serves_reads(self, topology):
        pserver, rserver, primary, replica, client = topology
        write_entry(primary, "shipped", 42)
        client.catch_up()
        assert replica.store.fingerprint() == primary.store.fingerprint()
        status, body = request(
            rserver.url + "/query",
            "POST",
            {"query": 'select e.value from e in Entry where e.key = "shipped"'},
        )
        assert status == 200
        assert body["result"] == [42]
        # Reads carry the LSN they reflect, on both roles.
        assert body["lsn"] == replica.store.commit_lsn
        status, body = request(
            pserver.url + "/query",
            "POST",
            {"query": "select count(e) from e in Entry"},
        )
        assert body["lsn"] == primary.store.commit_lsn

    def test_replica_refuses_writes_with_redirect(self, topology):
        pserver, rserver, *_ = topology
        status, body = request(rserver.url + "/session", "POST", {})
        sid = body["session"]
        for action in ("apply", "commit"):
            payload = {"ops": []} if action == "apply" else {}
            status, body = request(
                f"{rserver.url}/session/{sid}/{action}", "POST", payload
            )
            assert status == 403, action
            assert "read replica" in body["error"]
            assert body["primary_url"] == pserver.url

    def test_primary_commit_reports_lsn(self, topology):
        pserver, _, primary, *_ = topology
        _, body = request(pserver.url + "/session", "POST", {})
        sid = body["session"]
        request(
            f"{pserver.url}/session/{sid}/apply",
            "POST",
            {"ops": [{"op": "create", "class": "Entry",
                      "attrs": {"key": "s", "value": 7}}]},
        )
        status, body = request(
            f"{pserver.url}/session/{sid}/commit", "POST", {}
        )
        assert status == 200 and body["committed"]
        assert body["commit_lsn"] == primary.store.commit_lsn


class TestStatusSurfaces:
    def test_roles(self, topology):
        pserver, rserver, *_ = topology
        _, body = request(pserver.url + "/replicate/status")
        assert body["role"] == "primary"
        assert "shipping" in body
        _, body = request(rserver.url + "/replicate/status")
        assert body["role"] == "replica"
        assert body["primary_url"] == pserver.url
        assert "applying" in body

    def test_primary_health_reports_lag(self, topology):
        pserver, _, primary, _, client = topology
        write_entry(primary, "lagged", 1)
        client.catch_up()
        _, body = request(pserver.url + "/health")
        replication = body["replication"]
        assert replication["role"] == "primary"
        assert replication["lag_bytes"]["r1"] == 0
        assert replication["replicas"]["r1"]["pulls"] >= 1

    def test_replica_health_degraded_until_loop_runs(self, topology):
        _, rserver, _, _, client = topology
        _, body = request(rserver.url + "/health")
        assert body["status"] == "degraded"  # pull loop not started
        client.start()
        try:
            _, body = request(rserver.url + "/health")
            assert body["status"] == "ok"
            assert body["replication"]["applying"]["running"] is True
        finally:
            client.stop()

    def test_background_loop_end_to_end(self, topology):
        import time

        _, rserver, primary, replica, client = topology
        client.start()
        try:
            write_entry(primary, "live", 9)
            target = primary.store.commit_lsn
            for _ in range(200):
                if replica.store.commit_lsn >= target:
                    break
                time.sleep(0.05)
            status, body = request(
                rserver.url + "/query",
                "POST",
                {"query": 'select e.value from e in Entry '
                          'where e.key = "live"'},
            )
            assert body["result"] == [9]
        finally:
            client.stop()
