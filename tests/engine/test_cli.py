"""The command-line shell."""

import io
import subprocess
import sys

import pytest

from repro.cli import Shell, format_result, format_value, main
from repro.engine import PrometheusDB
from repro.taxonomy import build_apium_scenario, define_taxonomy_schema
from repro.taxonomy.model import TaxonomyDatabase


@pytest.fixture
def shell_and_out():
    db = PrometheusDB()
    taxdb = TaxonomyDatabase.over_engine(db)
    build_apium_scenario(taxdb)
    out = io.StringIO()
    return Shell(db, out=out), out


def run(shell, out, line):
    out.truncate(0)
    out.seek(0)
    shell.execute(line)
    return out.getvalue()


class TestShell:
    def test_pool_query(self, shell_and_out):
        shell, out = shell_and_out
        text = run(shell, out, "select count(s) from s in Specimen")
        assert "3" in text

    def test_query_error_reported(self, shell_and_out):
        shell, out = shell_and_out
        text = run(shell, out, "select x from x in Nowhere")
        assert text.startswith("error:")

    def test_schema_command(self, shell_and_out):
        shell, out = shell_and_out
        text = run(shell, out, ".schema")
        assert "Specimen" in text
        assert "relationship" in text

    def test_class_command(self, shell_and_out):
        shell, out = shell_and_out
        text = run(shell, out, ".class NomenclaturalTaxon")
        assert "epithet" in text
        text = run(shell, out, ".class Nope")
        assert "error" in text
        text = run(shell, out, ".class")
        assert "usage" in text

    def test_classifications_command(self, shell_and_out):
        shell, out = shell_and_out
        text = run(shell, out, ".classifications")
        assert "Raguenaud revision" in text

    def test_commit_abort(self, shell_and_out):
        shell, out = shell_and_out
        assert "committed" in run(shell, out, ".commit")
        assert "aborted" in run(shell, out, ".abort")

    def test_integrity(self, shell_and_out):
        shell, out = shell_and_out
        assert run(shell, out, ".integrity").strip() == "ok"

    def test_unknown_command(self, shell_and_out):
        shell, out = shell_and_out
        assert "unknown command" in run(shell, out, ".frobnicate")

    def test_help_and_quit(self, shell_and_out):
        shell, out = shell_and_out
        assert "commands" in run(shell, out, ".help")
        run(shell, out, ".quit")
        assert not shell.running

    def test_comments_and_blank_lines_ignored(self, shell_and_out):
        shell, out = shell_and_out
        assert run(shell, out, "") == ""
        assert run(shell, out, "-- a comment") == ""


class TestFormatting:
    def test_format_object(self, shell_and_out):
        shell, _ = shell_and_out
        specimen = shell.db.schema.extent("Specimen")[0]
        text = format_value(specimen)
        assert text.startswith("<Specimen #")

    def test_format_relationship(self, shell_and_out):
        shell, _ = shell_and_out
        rel = shell.db.schema.relationships.instances_of("HasType")[0]
        assert "->" in format_value(rel)

    def test_format_rows(self):
        assert format_result([]) == "(empty)"
        assert "2 rows" in format_result([1, 2])
        assert "1 row" in format_result(["only"])


class TestBatchMode:
    def test_execute_flag(self, tmp_path, capsys):
        out = io.StringIO()
        code = main(
            ["--db", str(tmp_path / "cli.plog"), "--taxonomy",
             "-e", "select count(s) from s in Specimen"],
            out=out,
        )
        assert code == 0
        assert "0" in out.getvalue()

    def test_subprocess_entry_point(self, tmp_path):
        result = subprocess.run(
            [
                sys.executable, "-m", "repro",
                "--db", str(tmp_path / "sub.plog"), "--taxonomy",
                "-e", ".schema",
            ],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0
        assert "Specimen" in result.stdout

    def test_persisted_data_readable_by_cli(self, tmp_path):
        path = tmp_path / "data.plog"
        from repro.storage.store import ObjectStore

        store = ObjectStore(path)
        taxdb = TaxonomyDatabase(store)
        taxdb.publish_name("Apium", "Genus", author="L.", year=1753)
        taxdb.commit()
        store.close()

        out = io.StringIO()
        code = main(
            ["--db", str(path), "--taxonomy",
             "-e", "select n.epithet from n in NomenclaturalTaxon"],
            out=out,
        )
        assert code == 0
        assert "Apium" in out.getvalue()


class TestOdlSchemaFlag:
    def test_schema_file_loaded(self, tmp_path):
        odl = tmp_path / "lib.odl"
        odl.write_text(
            'class Book { attribute string title required; };\n'
            'relationship Cites (Book -> Book) { kind association; };\n'
        )
        out = io.StringIO()
        code = main(
            ["--db", str(tmp_path / "odl.plog"), "--schema", str(odl),
             "-e", ".schema"],
            out=out,
        )
        assert code == 0
        assert "Book" in out.getvalue()
        assert "Cites" in out.getvalue()


class TestTransactionCommands:
    """.begin/.commit/.abort run through a real concurrency session."""

    @pytest.fixture
    def shell(self):
        db = PrometheusDB()
        from repro.core import types as T
        from repro.core.attributes import Attribute

        db.schema.define_class(
            "Taxon",
            [Attribute("name", T.STRING), Attribute("rank", T.STRING)],
        )
        self.oid = db.schema.create("Taxon", name="Quercus", rank="genus").oid
        db.commit()
        out = io.StringIO()
        return Shell(db, out=out), out, db

    def test_begin_opens_session_txn(self, shell):
        sh, out, db = shell
        text = run(sh, out, ".begin")
        assert "transaction" in text and "open" in text
        assert db.sessions.active_count == 1
        assert sh._session.in_txn

    def test_double_begin_rejected(self, shell):
        sh, out, _ = shell
        run(sh, out, ".begin")
        text = run(sh, out, ".begin")
        assert "already open" in text

    def test_set_stages_and_commit_applies(self, shell):
        sh, out, db = shell
        run(sh, out, ".begin")
        text = run(sh, out, f".set {self.oid} rank subgenus")
        assert "staged" in text
        assert db.schema.get_object(self.oid).get("rank") == "genus"
        text = run(sh, out, ".commit")
        assert "committed" in text
        assert db.schema.get_object(self.oid).get("rank") == "subgenus"

    def test_abort_discards_staged(self, shell):
        sh, out, db = shell
        run(sh, out, ".begin")
        run(sh, out, f".set {self.oid} rank subgenus")
        text = run(sh, out, ".abort")
        assert "transaction aborted" in text
        assert db.schema.get_object(self.oid).get("rank") == "genus"

    def test_commit_conflict_surfaces_retry_hint(self, shell):
        sh, out, db = shell
        run(sh, out, ".begin")
        run(sh, out, f".set {self.oid} rank loser")
        with db.begin() as winner:
            winner.set(self.oid, "rank", "winner")
        text = run(sh, out, ".commit")
        assert "conflict" in text
        assert ".begin again" in text
        assert db.schema.get_object(self.oid).get("rank") == "winner"
        # retry succeeds
        run(sh, out, ".begin")
        run(sh, out, f".set {self.oid} rank retried")
        text = run(sh, out, ".commit")
        assert "committed" in text
        assert db.schema.get_object(self.oid).get("rank") == "retried"

    def test_txn_command_reports_state(self, shell):
        sh, out, _ = shell
        text = run(sh, out, ".txn")
        assert "no open transaction" in text
        run(sh, out, ".begin")
        run(sh, out, f".set {self.oid} rank x")
        text = run(sh, out, ".txn")
        assert "1 staged op" in text
        run(sh, out, ".abort")

    def test_set_without_txn_is_direct(self, shell):
        sh, out, db = shell
        text = run(sh, out, f".set {self.oid} rank direct")
        assert "set rank" in text
        assert db.schema.get_object(self.oid).get("rank") == "direct"

    def test_set_parses_json_values(self, shell):
        sh, out, db = shell
        run(sh, out, ".begin")
        run(sh, out, f'.set {self.oid} name "Quercus L."')
        run(sh, out, ".commit")
        assert db.schema.get_object(self.oid).get("name") == "Quercus L."

    def test_commit_without_begin_uses_implicit_session(self, shell):
        sh, out, db = shell
        db.schema.get_object(self.oid).set("rank", "implicit")
        text = run(sh, out, ".commit")
        assert text.strip() == "committed"

    def test_help_mentions_txn_commands(self, shell):
        sh, out, _ = shell
        text = run(sh, out, ".help")
        assert ".begin" in text and ".txn" in text and ".set" in text
