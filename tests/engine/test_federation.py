"""Federation over localised databases (thesis ch. 8 further work)."""

import pytest

from repro.engine import PrometheusDB, PrometheusServer
from repro.engine.federation import (
    Federation,
    FederationError,
    RemoteDatabase,
)
from repro.taxonomy import (
    FloraParameters,
    TaxonomyDatabase,
    generate_flora,
)


@pytest.fixture(scope="module")
def federation():
    """Two herbarium nodes with different floras, one shared epithet."""
    servers = []
    fed = Federation()
    for name, seed in (("edinburgh", 100), ("kew", 200)):
        db = PrometheusDB()
        taxdb = TaxonomyDatabase.over_engine(db)
        generate_flora(
            FloraParameters(
                families=1, genera_per_family=2, species_per_genus=2,
                specimens_per_species=1, seed=seed,
            ),
            taxdb=taxdb,
            classification_name=f"{name} flora",
        )
        # A shared name, published at both institutions.
        taxdb.publish_name("Apium", "Genus", author="L.", year=1753)
        server = PrometheusServer(db)
        server.start()
        servers.append(server)
        fed.add_node(name, server.url)
    yield fed
    for server in servers:
        server.stop()


class TestFanOut:
    def test_query_all_returns_per_node(self, federation):
        results = federation.query_all("select count(s) from s in Specimen")
        assert [r.node for r in results] == ["edinburgh", "kew"]
        assert all(r.ok for r in results)
        assert all(r.result == [4] for r in results)

    def test_gather_flattens(self, federation):
        pairs = federation.gather(
            'select n.epithet from n in NomenclaturalTaxon '
            'where n.rank = "Genus" order by n.epithet'
        )
        nodes = {node for node, _ in pairs}
        assert nodes == {"edinburgh", "kew"}
        # 2 generated genera + Apium, per node
        assert len(pairs) == 6

    def test_count_all_totals(self, federation):
        counts = federation.count_all("Specimen")
        assert counts["edinburgh"] == 4
        assert counts["kew"] == 4
        assert counts["__total__"] == 8

    def test_find_name_across_nodes(self, federation):
        hits = federation.find_name("Apium")
        assert {node for node, _ in hits} == {"edinburgh", "kew"}
        assert all(
            item["values"]["epithet"] == "Apium" for _, item in hits
        )

    def test_classification_inventory_not_merged(self, federation):
        inventory = federation.classification_inventory()
        assert inventory["edinburgh"] == ["edinburgh flora"]
        assert inventory["kew"] == ["kew flora"]

    def test_alive(self, federation):
        assert federation.alive() == {"edinburgh": True, "kew": True}


class TestDegradation:
    def test_dead_node_degrades_not_fails(self, federation):
        federation.add_node(
            "ghost", RemoteDatabase("http://127.0.0.1:9", timeout=0.5)
        )
        try:
            results = federation.query_all(
                "select count(s) from s in Specimen"
            )
            by_node = {r.node: r for r in results}
            assert not by_node["ghost"].ok
            assert by_node["edinburgh"].ok and by_node["kew"].ok
            counts = federation.count_all("Specimen")
            assert counts["ghost"] == 0
            assert counts["__total__"] == 8
            assert federation.alive()["ghost"] is False
        finally:
            federation.remove_node("ghost")

    def test_remote_error_surfaces(self, federation):
        client = federation.nodes["edinburgh"]
        with pytest.raises(FederationError):
            client.query("this is not POOL")

    def test_remote_object_fetch(self, federation):
        client = federation.nodes["kew"]
        oids = client.extent("Specimen")
        assert len(oids) == 4
        body = client.object(oids[0])
        assert body["class"] == "Specimen"
