"""The assembled PrometheusDB facade."""

import pytest

from repro.core.attributes import Attribute
from repro.core import types as T
from repro.engine import PrometheusDB
from repro.errors import QueryError


def declare(db: PrometheusDB) -> None:
    db.schema.define_class(
        "Book",
        [
            Attribute("title", T.STRING, required=True),
            Attribute("year", T.INTEGER),
        ],
    )
    db.schema.define_relationship("Cites", "Book", "Book")


@pytest.fixture
def db():
    database = PrometheusDB()
    declare(database)
    return database


class TestQueryLayer:
    def test_query_with_typecheck(self, db):
        db.schema.create("Book", title="Species Plantarum", year=1753)
        result = db.query("select b.title from b in Book")
        assert result == ["Species Plantarum"]

    def test_typecheck_rejects_bad_query(self, db):
        with pytest.raises(QueryError):
            db.query("select b.pages from b in Book")

    def test_check_can_be_disabled(self, db):
        # Evaluation null-semantics tolerates the unknown attribute.
        db.schema.create("Book", title="x")
        assert db.query("select b.pages from b in Book", check=False) == [None]

    def test_index_fast_path_used(self, db):
        db.indexes.create_index("Book", "title")
        for i in range(10):
            db.schema.create("Book", title=f"book {i}")
        plan = db.explain('select b from b in Book where b.title = "book 3"')
        assert plan.index_used == "Book.title"
        assert plan.extent_scans == 0

    def test_without_index_scans(self, db):
        db.schema.create("Book", title="x")
        plan = db.explain('select b from b in Book where b.title = "x"')
        assert plan.index_used is None
        assert plan.extent_scans == 1

    def test_query_params(self, db):
        db.schema.create("Book", title="a", year=1990)
        result = db.query(
            "select b from b in Book where b.year > $y", params={"y": 1980}
        )
        assert len(result) == 1


class TestLayers:
    def test_classifications_layer(self, db):
        c = db.classifications.create("canon")
        a = db.schema.create("Book", title="a")
        b = db.schema.create("Book", title="b")
        c.place("Cites", a, b)
        assert db.classifications.get("canon").children(a) == [b]

    def test_views_layer(self, db):
        db.schema.create("Book", title="a", year=2000)
        db.views.define("modern", "select b from b in Book where b.year > 1990")
        assert len(db.views.evaluate("modern")) == 1

    def test_trace_layer(self, db):
        db.trace.record("place", "canon", actor="x")
        assert len(db.trace) == 1

    def test_describe(self, db):
        db.indexes.create_index("Book", "title")
        db.schema.create("Book", title="x")
        info = db.describe()
        assert "Book" in info["classes"]
        assert info["counts"]["Book"] == 1
        assert info["indexes"] == ["Book.title[hash]"]

    def test_check_integrity_includes_rules(self, db):
        from repro.rules import Rule, RuleKind, on_create

        db.rules.register(
            Rule(
                name="has_year",
                event=on_create("Book"),
                condition=lambda ctx: ctx.target.get("year") is not None,
                kind=RuleKind.INVARIANT,
                target_class="Book",
                on_violation=__import__(
                    "repro.rules", fromlist=["OnViolation"]
                ).OnViolation.WARN,
            )
        )
        db.schema.create("Book", title="undated")
        problems = db.check_integrity()
        assert any("has_year" in p for p in problems)


class TestPersistence:
    def test_full_stack_roundtrip(self, tmp_path):
        path = tmp_path / "db.plog"
        with PrometheusDB(path) as db:
            declare(db)
            db.load()
            a = db.schema.create("Book", title="a", year=1900)
            b = db.schema.create("Book", title="b", year=1950)
            db.schema.relate("Cites", b, a)
            c = db.classifications.create("canon")
            c.add_edge(db.schema.relationships.outgoing(b.oid)[0])
            db.commit()

        with PrometheusDB(path) as db2:
            declare(db2)
            # 2 books + 1 relationship instance
            assert db2.load() == 3
            titles = db2.query("select b.title from b in Book order by b.title")
            assert titles == ["a", "b"]
            canon = db2.classifications.get("canon")
            assert len(canon) == 1

    def test_abort_via_facade(self, db):
        db.schema.create("Book", title="temp")
        db.abort()
        assert db.query("select count(b) from b in Book") == [0]


class TestOptimizer:
    """Access-path optimisation (§6.1.5.3)."""

    @pytest.fixture
    def indexed_db(self):
        db = PrometheusDB()
        declare(db)
        db.indexes.create_index("Book", "title")
        for i in range(20):
            db.schema.create("Book", title=f"book {i}", year=1900 + i)
        return db

    def test_index_used_inside_conjunction(self, indexed_db):
        plan = indexed_db.explain(
            'select b from b in Book where b.title = "book 3" and b.year > 1890'
        )
        assert plan.index_used == "Book.title"
        assert plan.extent_scans == 0

    def test_conjunction_result_still_filtered(self, indexed_db):
        result = indexed_db.query(
            'select b from b in Book where b.title = "book 3" and b.year > 1990'
        )
        assert result == []  # index seeds candidates, WHERE still applies

    def test_reversed_equality_uses_index(self, indexed_db):
        plan = indexed_db.explain(
            'select b from b in Book where "book 3" = b.title'
        )
        assert plan.index_used == "Book.title"

    def test_parameter_equality_uses_index(self, indexed_db):
        plan = indexed_db.explain(
            "select b from b in Book where b.title = $t",
            params={"t": "book 5"},
        )
        assert plan.index_used == "Book.title"

    def test_disjunction_not_indexed(self, indexed_db):
        plan = indexed_db.explain(
            'select b from b in Book where b.title = "book 3" or b.year = 1905'
        )
        assert plan.index_used is None
        assert plan.extent_scans == 1

    def test_unindexed_attribute_falls_back(self, indexed_db):
        plan = indexed_db.explain(
            "select b from b in Book where b.year = 1905"
        )
        assert plan.index_used is None
