"""One trace across the cluster: HTTP propagation end to end.

A real two-server topology over loopback, like
``test_server_replication``, but these tests pin the observability
surface: a routed read against a *lagging* replica produces a single
trace_id whose spans are resolvable via ``GET /trace/<id>`` on BOTH
nodes with cross-node parent/child linkage; replication catch-up joins
the caller's trace on the primary; error payloads and response headers
carry the trace id; ``/events`` serves the journal; ``/cluster/*``
aggregates the fleet.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB, PrometheusServer
from repro.engine.federation import Federation, RemoteDatabase
from repro.replication import (
    UNBOUNDED,
    HttpPullTransport,
    LogShipper,
    ReadNode,
    ReadRouter,
    ReplicaApplier,
    ReplicationClient,
)
from repro.telemetry import Telemetry, format_traceparent, propagation


def declare(db):
    db.schema.define_class(
        "Entry", [Attribute("key", T.STRING), Attribute("value", T.INTEGER)]
    )


def write_entry(db, key, value):
    txn = db.transactions.begin()
    txn.create("Entry", key=key, value=value)
    txn.commit()
    return txn.commit_lsn


@pytest.fixture
def topology(tmp_path):
    primary = PrometheusDB(tmp_path / "primary.plog")
    declare(primary)
    primary.load()
    primary.telemetry.set_node("primary")
    shipper = LogShipper(primary.store)

    replica = PrometheusDB(tmp_path / "replica.plog", read_only=True)
    declare(replica)
    replica.load()
    replica.telemetry.set_node("replica")
    applier = ReplicaApplier(replica)

    with PrometheusServer(primary, shipper=shipper) as pserver:
        client = ReplicationClient(
            applier, HttpPullTransport(pserver.url), name="r1"
        )
        with PrometheusServer(
            replica,
            replica_client=client,
            primary_url=pserver.url,
        ) as rserver:
            yield pserver, rserver, primary, replica, client
    replica.close()
    primary.close()


def server_spans(url, trace_id, path=None, retry_s=2.0):
    """GET /trace/<id>, retrying briefly: the server records a span
    only after the response bytes go out, so an immediate follow-up
    read can race the handler's finally block — both for the whole
    trace (404) and for one expected span (``path=``) while earlier
    spans of the trace are already visible."""
    import time

    def has_path(body):
        return path is None or any(
            s["attributes"].get("path") == path for s in body["spans"]
        )

    deadline = time.monotonic() + retry_s
    while True:
        try:
            with urllib.request.urlopen(
                f"{url}/trace/{trace_id}", timeout=10
            ) as response:
                body = json.load(response)
            if has_path(body) or time.monotonic() >= deadline:
                return body
        except urllib.error.HTTPError as err:
            if err.code != 404 or time.monotonic() >= deadline:
                raise
        time.sleep(0.02)


class TestRoutedReadSingleTrace:
    def test_lagging_replica_read_traces_on_both_nodes(self, topology):
        pserver, rserver, primary, replica, client = topology
        write_entry(primary, "a", 1)
        client.catch_up()
        write_entry(primary, "b", 2)  # replica now lags

        pclient = RemoteDatabase(pserver.url)
        rclient = RemoteDatabase(rserver.url)
        tel = Telemetry()
        router = ReadRouter(
            ReadNode(
                name="primary",
                query_fn=lambda text, params: pclient.query(text, params),
                lsn_fn=lambda: pclient.replication_status()["commit_lsn"],
                is_primary=True,
            ),
            telemetry=tel,
        )
        router.add_replica(
            ReadNode(
                name="replica",
                query_fn=lambda text, params: rclient.query(text, params),
                lsn_fn=lambda: rclient.replication_status()["applied_lsn"],
            )
        )
        routed = router.query(
            "select e.key from e in Entry order by e.key",
            staleness_bytes=UNBOUNDED,
        )
        assert routed.node == "replica"
        assert routed.result == ["a"]  # the watermark state, not b
        assert routed.node_lsn < routed.primary_lsn

        [root] = [
            r for r in tel.traces.snapshot() if r["name"] == "router.query"
        ]
        trace_id = root["trace_id"]

        # The SAME trace id resolves on BOTH servers.
        on_replica = server_spans(rserver.url, trace_id, path="/query")
        on_primary = server_spans(
            pserver.url, trace_id, path="/replicate/status"
        )
        assert on_replica["trace_id"] == trace_id
        assert on_primary["trace_id"] == trace_id
        assert on_replica["node"] == "replica"
        assert on_primary["node"] == "primary"

        # Cross-node linkage: each server-side request span is a direct
        # child of the client-side router.query span.
        replica_query = [
            s
            for s in on_replica["spans"]
            if s["name"] == "http.request"
            and s["attributes"].get("path") == "/query"
        ]
        assert replica_query
        assert all(
            s["parent_span_id"] == root["span_id"] for s in replica_query
        )
        primary_probe = [
            s
            for s in on_primary["spans"]
            if s["name"] == "http.request"
            and s["attributes"].get("path") == "/replicate/status"
        ]
        assert primary_probe
        assert all(
            s["parent_span_id"] == root["span_id"] for s in primary_probe
        )

    def test_unknown_trace_is_a_404(self, topology):
        pserver, *_ = topology
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"{pserver.url}/trace/{'ab' * 16}", timeout=10
            )
        assert err.value.code == 404


class TestReplicationCatchUpTrace:
    def test_catch_up_joins_the_callers_trace_on_the_primary(
        self, topology
    ):
        pserver, rserver, primary, replica, client = topology
        write_entry(primary, "a", 1)
        with replica.telemetry.tracer.span("operator.sync") as span:
            client.catch_up()
            trace_id = span.trace_id

        # Replica side: the sync root and its replication.pull children
        # share one trace.
        local = replica.telemetry.traces.spans(trace_id)
        names = {s["name"] for s in local}
        assert "operator.sync" in names and "replication.pull" in names

        # Primary side: the pull requests carried the traceparent.
        on_primary = server_spans(
            pserver.url, trace_id, path="/replicate/pull"
        )
        paths = {
            s["attributes"].get("path") for s in on_primary["spans"]
        }
        assert "/replicate/pull" in paths


class TestTraceSurface:
    def test_response_header_carries_trace_id(self, topology):
        pserver, *_ = topology
        with urllib.request.urlopen(
            f"{pserver.url}/health", timeout=10
        ) as response:
            trace_id = response.headers.get("X-Repro-Trace-Id")
        assert trace_id and len(trace_id) == 32
        assert server_spans(pserver.url, trace_id)["spans"]

    def test_inbound_traceparent_is_adopted(self, topology):
        pserver, *_ = topology
        ctx = propagation.new_context()
        request = urllib.request.Request(
            f"{pserver.url}/health",
            headers={"traceparent": format_traceparent(ctx)},
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert (
                response.headers.get("X-Repro-Trace-Id") == ctx.trace_id
            )
        [span] = server_spans(pserver.url, ctx.trace_id)["spans"]
        assert span["parent_span_id"] == ctx.span_id

    def test_error_payload_carries_trace_id(self, topology):
        pserver, *_ = topology
        ctx = propagation.new_context()
        request = urllib.request.Request(
            f"{pserver.url}/classes/NoSuchClass",
            headers={"traceparent": format_traceparent(ctx)},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 404
        payload = json.loads(err.value.read())
        assert payload["trace_id"] == ctx.trace_id

    def test_slow_query_log_carries_trace_id(self, topology):
        pserver, rserver, primary, *_ = topology
        primary.telemetry.slow_query_ms = 0.0
        try:
            ctx = propagation.new_context()
            request = urllib.request.Request(
                f"{pserver.url}/query",
                data=json.dumps(
                    {"query": "select e from e in Entry"}
                ).encode(),
                headers={
                    "Content-Type": "application/json",
                    "traceparent": format_traceparent(ctx),
                },
            )
            urllib.request.urlopen(request, timeout=10).read()
        finally:
            primary.telemetry.slow_query_ms = None
        assert any(
            entry["trace_id"] == ctx.trace_id
            for entry in primary.telemetry.slow_queries
        )


class TestEventsEndpoint:
    def test_events_since_cursor(self, topology):
        pserver, rserver, primary, replica, client = topology
        primary.telemetry.events.record("test.one", epoch=1)
        primary.telemetry.events.record("test.two", epoch=2)
        with urllib.request.urlopen(
            f"{pserver.url}/events", timeout=10
        ) as response:
            body = json.load(response)
        assert body["node"] == "primary"
        kinds = [e["kind"] for e in body["events"]]
        assert "test.one" in kinds and "test.two" in kinds
        seq = body["events"][-1]["seq"]
        with urllib.request.urlopen(
            f"{pserver.url}/events?since={seq - 1}", timeout=10
        ) as response:
            tail = json.load(response)["events"]
        assert [e["seq"] for e in tail] == [seq]

    def test_bad_since_is_a_400(self, topology):
        pserver, *_ = topology
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"{pserver.url}/events?since=banana", timeout=10
            )
        assert err.value.code == 400

    def test_journal_persists_beside_the_store(
        self, tmp_path, topology
    ):
        _, _, primary, *_ = topology
        primary.telemetry.events.record("test.durable", epoch=1)
        path = primary.telemetry.events.path
        assert path is not None and path.endswith(".events.jsonl")
        lines = [
            json.loads(line)
            for line in open(path, encoding="utf-8")
        ]
        assert any(e["kind"] == "test.durable" for e in lines)


class TestClusterEndpoints:
    @pytest.fixture
    def federated(self, topology):
        pserver, rserver, primary, replica, client = topology
        federation = Federation(telemetry=primary.telemetry)
        federation.add_node("alpha", pserver.url)
        federation.add_node("beta", rserver.url)
        agg_server = PrometheusServer(
            primary, federation=federation
        )
        agg_server.start()
        try:
            yield agg_server, pserver, rserver, primary, replica
        finally:
            agg_server.stop()

    def test_cluster_metrics_merges_and_sums(self, federated):
        agg_server, pserver, rserver, primary, replica = federated
        write_entry(primary, "a", 1)
        with urllib.request.urlopen(
            f"{agg_server.url}/cluster/metrics", timeout=10
        ) as response:
            body = json.load(response)
        assert set(body["nodes"]) == {"alpha", "beta"}
        assert body["partial"] is False
        commits = "repro_txn_commits_total"
        assert body["totals"][commits] >= 1.0
        assert (
            body["nodes"]["alpha"]["series"][commits]
            + body["nodes"]["beta"]["series"].get(commits, 0.0)
            == body["totals"][commits]
        )

    def test_cluster_overview_rows_and_summary(self, federated):
        agg_server, pserver, rserver, primary, replica = federated
        with urllib.request.urlopen(
            f"{agg_server.url}/cluster/overview", timeout=10
        ) as response:
            body = json.load(response)
        alpha, beta = body["nodes"]["alpha"], body["nodes"]["beta"]
        assert alpha["role"] == "primary"
        assert beta["role"] == "replica"
        assert alpha["breaker"] == "closed"
        summary = body["summary"]
        assert summary["endpoints"] == 2
        assert summary["primaries"] == ["alpha"]
        assert summary["partial"] is False

    def test_cluster_routes_404_without_federation(self, topology):
        pserver, *_ = topology
        for path in ("/cluster/metrics", "/cluster/overview"):
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(pserver.url + path, timeout=10)
            assert err.value.code == 404
