"""Batched ``POST /resolve``, the pre-serialized response cache, and
REPB content negotiation over HTTP.

The thesis's front ends resolve *names* — a taxonomist types
"Ranunculus" and expects every object carrying that name plus its
placement in each classification.  ``/resolve`` does that for a whole
batch in one round-trip; this suite pins its semantics (multi-class
matches, lineage, missing names, error statuses) on both front ends,
then exercises what rides on top: the response cache (hit on repeat,
invalidation on commit, counter reconciliation) and the binary REPB
codec negotiated via ``Accept``/``Content-Type``.
"""

import http.client
import json

import pytest

from repro.engine import (
    AsyncPrometheusServer,
    PrometheusDB,
    PrometheusServer,
    wire,
)
from repro.engine.handlers import MAX_RESOLVE_NAMES
from repro.taxonomy import build_shapes_scenario
from repro.taxonomy.model import TaxonomyDatabase


def _build_db() -> PrometheusDB:
    db = PrometheusDB()
    taxdb = TaxonomyDatabase.over_engine(db)
    build_shapes_scenario(taxdb)
    return db


@pytest.fixture(scope="module", params=["threaded", "async"])
def served(request):
    db = _build_db()
    cls = PrometheusServer if request.param == "threaded" else AsyncPrometheusServer
    with cls(db) as server:
        server.db = db
        yield server


def _post(server, path, payload, headers=None, raw=None):
    conn = http.client.HTTPConnection(*server.address, timeout=15)
    try:
        body = raw if raw is not None else json.dumps(payload).encode()
        conn.request("POST", path, body, headers or {})
        response = conn.getresponse()
        return response.status, dict(response.headers), response.read()
    finally:
        conn.close()


class TestResolveSemantics:
    def test_batch_resolves_known_and_missing_names(self, served):
        status, _, body = _post(
            served,
            "/resolve",
            {"names": ["Ovals", "Circles", "Nessie"], "attr": "epithet"},
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["resolved"] == 2
        assert payload["missing"] == ["Nessie"]
        assert set(payload["results"]) == {"Ovals", "Circles"}
        (oval,) = payload["results"]["Ovals"]
        assert oval["class"] == "NomenclaturalTaxon"
        assert oval["values"]["epithet"] == "Ovals"
        assert "lsn" in payload

    def test_lineage_reports_ancestors_per_classification(self, served):
        # Specimens are classification members; resolving one by its
        # field name with lineage=True reports its placement (the chain
        # of circumscribed taxa above it) in every classification that
        # contains it.
        status, _, body = _post(
            served,
            "/resolve",
            {
                "names": ["light_triangle"],
                "attr": "field_name",
                "lineage": True,
            },
        )
        assert status == 200
        (entry,) = json.loads(body)["results"]["light_triangle"]
        assert entry["class"] == "Specimen"
        placements = {p["classification"] for p in entry["lineage"]}
        assert "T1 shapes" in placements
        for placement in entry["lineage"]:
            if placement["classification"] == "T1 shapes":
                ancestors = placement["ancestors"]
                assert ancestors, "specimen should sit under taxa"
                assert all(
                    a["class"] == "CircumscriptionTaxon" for a in ancestors
                )

    def test_classification_param_narrows_lineage(self, served):
        status, _, body = _post(
            served,
            "/resolve",
            {
                "names": ["light_triangle"],
                "attr": "field_name",
                "classification": "T1 shapes",
            },
        )
        assert status == 200
        (entry,) = json.loads(body)["results"]["light_triangle"]
        assert [p["classification"] for p in entry["lineage"]] == [
            "T1 shapes"
        ]

    def test_explicit_class_narrows_candidates(self, served):
        status, _, body = _post(
            served,
            "/resolve",
            {
                "names": ["Ovals"],
                "attr": "epithet",
                "class": "NomenclaturalTaxon",
            },
        )
        assert status == 200
        assert json.loads(body)["resolved"] == 1

        status, _, _ = _post(
            served,
            "/resolve",
            {"names": ["Ovals"], "attr": "epithet", "class": "NoSuch"},
        )
        assert status == 404

    def test_resolve_error_statuses(self, served):
        cases = [
            ({"names": "Ovals"}, 400),  # not a list
            ({"names": [1, 2]}, 400),  # not strings
            ({}, 400),  # missing entirely
            ({"names": ["x"], "attr": 7}, 400),
            ({"names": ["x"], "classification": "nope"}, 404),
            (
                {"names": ["x"] * (MAX_RESOLVE_NAMES + 1)},
                400,
            ),  # batch cap
        ]
        for payload, expected in cases:
            status, _, _ = _post(served, "/resolve", payload)
            assert status == expected, f"{payload!r} -> {status}"

    def test_resolve_as_of_time_travels(self, served):
        # A name committed *after* the snapshot LSN must not resolve
        # under as_of, but must resolve at head.
        db = served.db
        lsn_before = db.lsn
        with db.begin() as txn:
            oid = txn.create("Specimen", collector="Vasquez-1887")
        assert oid
        head = _post(
            served,
            "/resolve",
            {"names": ["Vasquez-1887"], "attr": "collector"},
        )
        assert json.loads(head[2])["resolved"] == 1
        past = _post(
            served,
            "/resolve",
            {
                "names": ["Vasquez-1887"],
                "attr": "collector",
                "as_of": lsn_before,
            },
        )
        assert past[0] == 200
        payload = json.loads(past[2])
        assert payload["missing"] == ["Vasquez-1887"]
        assert payload["as_of"] == lsn_before


class TestResponseCache:
    def test_repeat_query_hits_cache_and_counters_reconcile(self, served):
        handlers = served.handlers
        body = {"query": 'select t from t in NomenclaturalTaxon '
                         'where t.epithet = "Circles"'}
        first = _post(served, "/query", body)
        hits_before = handlers.cache.hits
        second = _post(served, "/query", body)
        assert first[0] == second[0] == 200
        assert first[2] == second[2]  # byte-identical
        assert handlers.cache.hits == hits_before + 1

        # Scrape-time reconciliation: /metrics reports the same ints.
        conn = http.client.HTTPConnection(*served.address, timeout=15)
        conn.request("GET", "/metrics")
        text = conn.getresponse().read().decode()
        conn.close()
        scraped = {
            line.split()[0]: int(line.split()[-1])
            for line in text.splitlines()
            if line.startswith("repro_server_response_cache_")
        }
        assert scraped["repro_server_response_cache_hits_total"] == (
            handlers.cache.hits
        )
        assert scraped["repro_server_response_cache_misses_total"] == (
            handlers.cache.misses
        )

    def test_commit_invalidates_cached_read(self, served):
        db = served.db
        body = {"query": "select count(s) from s in Specimen"}
        before = _post(served, "/query", body)
        with db.begin() as txn:
            txn.create("Specimen", collector="cache-buster")
        after = _post(served, "/query", body)
        assert before[2] != after[2], (
            "cached count served after a commit changed the extent"
        )

    def test_resolve_responses_are_cached_too(self, served):
        handlers = served.handlers
        body = {"names": ["Triangles"], "attr": "epithet"}
        _post(served, "/resolve", body)
        hits_before = handlers.cache.hits
        _post(served, "/resolve", body)
        assert handlers.cache.hits == hits_before + 1

    def test_json_and_repb_cached_separately(self, served):
        """The cache key includes the negotiated codec: a JSON hit must
        never be served to a REPB client, or vice versa."""
        body = {"names": ["Rectangles"], "attr": "epithet"}
        plain = _post(served, "/resolve", body)
        binary = _post(
            served, "/resolve", body, headers={"Accept": wire.CONTENT_TYPE}
        )
        assert plain[1]["Content-Type"] == "application/json"
        assert binary[1]["Content-Type"] == wire.CONTENT_TYPE
        assert plain[2] != binary[2]
        assert wire.decode_frame(binary[2]) == json.loads(plain[2])


class TestRepbNegotiation:
    def test_query_accept_header_yields_repb_frame(self, served):
        status, headers, body = _post(
            served,
            "/query",
            {"query": "select s from s in Specimen"},
            headers={"Accept": wire.CONTENT_TYPE},
        )
        assert status == 200
        assert headers["Content-Type"] == wire.CONTENT_TYPE
        payload = wire.decode_frame(body)
        assert isinstance(payload["result"], list)
        assert payload["result"], "Specimen extent should not be empty"

    def test_repb_request_body_accepted(self, served):
        frame = wire.encode_frame(
            {"names": ["Ovals"], "attr": "epithet"}
        )
        status, _, body = _post(
            served,
            "/resolve",
            None,
            headers={"Content-Type": wire.CONTENT_TYPE},
            raw=frame,
        )
        assert status == 200
        assert json.loads(body)["resolved"] == 1

    def test_corrupt_repb_request_rejected_400(self, served):
        frame = bytearray(
            wire.encode_frame({"query": "select s from s in Specimen"})
        )
        frame[-1] ^= 0x40
        status, _, body = _post(
            served,
            "/query",
            None,
            headers={"Content-Type": wire.CONTENT_TYPE},
            raw=bytes(frame),
        )
        assert status == 400
        assert b"REPB" in body or b"checksum" in body or b"error" in body

    def test_errors_also_honor_accept(self, served):
        status, headers, body = _post(
            served,
            "/query",
            {"query": "selec broken"},
            headers={"Accept": wire.CONTENT_TYPE},
        )
        assert status == 400
        assert headers["Content-Type"] == wire.CONTENT_TYPE
        assert "error" in wire.decode_frame(body)
