"""HTTP access layer (§6.1.7)."""

import json
import logging
import time
import urllib.error
import urllib.request

import pytest

from repro.engine import PrometheusDB, PrometheusServer
from repro.engine.federation import Federation
from repro.engine.server import jsonable
from repro.taxonomy import build_shapes_scenario
from repro.taxonomy.model import TaxonomyDatabase


@pytest.fixture(scope="module")
def served():
    db = PrometheusDB()
    taxdb = TaxonomyDatabase.over_engine(db)
    scenario = build_shapes_scenario(taxdb)
    with PrometheusServer(db) as server:
        yield server.url, db, scenario


def get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.load(response)


def post(url, payload):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, json.load(response)


class TestRoutes:
    def test_schema(self, served):
        url, db, _ = served
        status, body = get(url + "/schema")
        assert status == 200
        assert "Specimen" in body["classes"]

    def test_class_description(self, served):
        url, *_ = served
        status, body = get(url + "/classes/Specimen")
        assert status == 200
        assert "collector" in body["attributes"]

    def test_class_extent(self, served):
        url, db, _ = served
        status, body = get(url + "/classes/Specimen/extent")
        assert status == 200
        assert len(body) == 11

    def test_unknown_class_404(self, served):
        url, *_ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(url + "/classes/Martian")
        assert err.value.code == 404

    def test_object_fetch(self, served):
        url, _, scenario = served
        white = scenario.specimens["white_square"]
        status, body = get(url + f"/objects/{white.oid}")
        assert status == 200
        assert body["values"]["field_name"] == "white_square"
        assert body["class"] == "Specimen"

    def test_object_404(self, served):
        url, *_ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(url + "/objects/999999")
        assert err.value.code == 404

    def test_classifications_listing(self, served):
        url, *_ = served
        status, body = get(url + "/classifications")
        assert body == [
            "T1 shapes", "T2 sections", "T3 brightness", "T4 revision"
        ]

    def test_classification_detail(self, served):
        url, *_ = served
        status, body = get(url + "/classifications/T1%20shapes")
        assert body["author"] == "Taxonomist1"
        assert len(body["edges"]) == 9
        assert len(body["roots"]) == 1

    def test_query_endpoint(self, served):
        url, *_ = served
        status, body = post(
            url + "/query",
            {"query": "select count(s) from s in Specimen"},
        )
        assert body["result"] == [11]

    def test_query_with_params(self, served):
        url, _, scenario = served
        white = scenario.specimens["white_square"]
        status, body = post(
            url + "/query",
            {
                "query": "select s.field_name from s in Specimen "
                "where s.oid = $o",
                "params": {"o": white.oid},
            },
        )
        assert body["result"] == ["white_square"]

    def test_bad_query_400(self, served):
        url, *_ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            post(url + "/query", {"query": "selectt x"})
        assert err.value.code == 400

    def test_missing_query_400(self, served):
        url, *_ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            post(url + "/query", {})
        assert err.value.code == 400

    def test_unknown_route_404(self, served):
        url, *_ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(url + "/nothing/here")
        assert err.value.code == 404


def get_text(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode("utf-8"),
        )


class TestObservability:
    def test_metrics_prometheus_exposition(self, served):
        url, *_ = served
        status, content_type, text = get_text(url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        # At least one counter from every instrumented layer, even for
        # families that have seen no traffic yet.
        for family in (
            "repro_events_published_total",
            "repro_rules_fired_total",
            "repro_query_total",
            "repro_storage_ops_total",
            "repro_federation_requests_total",
        ):
            assert family in text, f"{family} missing from /metrics"

    def test_metrics_reflect_served_queries(self, served):
        url, db, _ = served
        before = db.telemetry.registry.counter("repro_query_total").value
        # A query body this module has not posted before: the response
        # cache misses and the engine runs it.
        body = {"query": "select count(s) from s in Specimen where true"}
        post(url + "/query", body)
        after = db.telemetry.registry.counter("repro_query_total").value
        assert after == before + 1
        # The identical body again: served pre-serialized from the
        # response cache, without touching the engine.
        post(url + "/query", body)
        assert (
            db.telemetry.registry.counter("repro_query_total").value == after
        )

    def test_http_requests_counted_by_status(self, served):
        url, db, _ = served
        get(url + "/schema")
        snap = db.telemetry.registry.snapshot()
        by_label = snap["repro_http_requests_total"]
        assert any("method=GET" in k and "status=200" in k for k in by_label)
        assert snap["repro_http_request_ms"]["count"] >= 1

    def test_stats_snapshot(self, served):
        url, db, _ = served
        status, body = get(url + "/stats")
        assert status == 200
        assert body["enabled"] is True
        assert body["uptime_s"] >= 0
        assert "repro_query_total" in body["metrics"]
        assert isinstance(body["slow_queries"], list)

    def test_explain_through_query_endpoint(self, served):
        url, *_ = served
        status, body = post(
            url + "/query",
            {"query": "EXPLAIN select s from s in Specimen"},
        )
        assert status == 200
        assert body["result"]["mode"] == "explain"
        assert body["result"]["plan"]["access_paths"] == ["scan:Specimen"]

    def test_access_log_entry(self, served, caplog):
        url, *_ = served
        with caplog.at_level(logging.INFO, logger="repro.server.access"):
            get(url + "/schema")
            # The handler thread logs after the response body is sent;
            # give it a moment.
            for _ in range(50):
                if any(
                    getattr(r, "http_path", "") == "/schema"
                    for r in caplog.records
                ):
                    break
                time.sleep(0.01)
        records = [
            r for r in caplog.records
            if getattr(r, "http_path", "") == "/schema"
        ]
        assert records, "no access-log entry for GET /schema"
        record = records[-1]
        assert record.http_method == "GET"
        assert record.http_status == 200
        assert record.duration_ms >= 0
        assert "status=200" in record.getMessage()

    def test_protocol_chatter_not_on_stderr(self, served, capfd):
        url, *_ = served
        get(url + "/schema")
        assert "GET /schema" not in capfd.readouterr().err


class TestHealth:
    def test_health_in_memory_db(self, served):
        url, *_ = served
        status, body = get(url + "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["store"] is None
        assert body["uptime_s"] >= 0
        tel = body["telemetry"]
        assert tel["enabled"] is True
        assert "repro_query_total" in tel["counters"]
        assert "federation" not in body  # none attached

    def test_health_store_without_recovery_report(self, tmp_path):
        """A store that never produced a recovery report degrades
        gracefully: /health reports the absence and stays "ok"."""
        db = PrometheusDB(tmp_path / "log.db")
        db.store.last_recovery = None
        with PrometheusServer(db) as server:
            status, body = get(server.url + "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["store"]["recovery"] is None
        assert body["store"]["live_records"] == 0

    def test_health_reports_federation_breakers(self):
        db = PrometheusDB()
        federation = Federation()
        federation.add_node("n1", "http://127.0.0.1:1")
        federation.add_node("n2", "http://127.0.0.1:2")
        federation.attach_telemetry(db.telemetry)
        with PrometheusServer(db, federation=federation) as server:
            status, body = get(server.url + "/health")
        assert body["federation"] == {
            "n1": {"breaker": "closed", "consecutive_failures": 0},
            "n2": {"breaker": "closed", "consecutive_failures": 0},
        }
        # The breaker-state collector also feeds /metrics gauges.
        text = db.telemetry.registry.render_prometheus()
        assert 'repro_federation_breaker_state{node="n1"} 0' in text


class TestJsonable:
    def test_objects(self, served):
        _, _, scenario = served
        data = jsonable(scenario.specimens["white_square"])
        assert data["class"] == "Specimen"
        assert "values" in data

    def test_relationship_instances_carry_endpoints(self, served):
        _, db, _ = served
        edge = db.schema.relationships.instances_of("Includes")[0]
        data = jsonable(edge)
        assert data["origin"] == edge.origin_oid
        assert data["destination"] == edge.destination_oid

    def test_graph_view(self, served):
        _, db, scenario = served
        from repro.classification import extract_graph

        view = extract_graph(scenario.classifications["T1"])
        data = jsonable(view)
        assert len(data["edges"]) == 9

    def test_fallback_repr(self):
        assert isinstance(jsonable(object()), str)
