"""HTTP access layer (§6.1.7)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.engine import PrometheusDB, PrometheusServer
from repro.engine.server import jsonable
from repro.taxonomy import build_shapes_scenario
from repro.taxonomy.model import TaxonomyDatabase


@pytest.fixture(scope="module")
def served():
    db = PrometheusDB()
    taxdb = TaxonomyDatabase.over_engine(db)
    scenario = build_shapes_scenario(taxdb)
    with PrometheusServer(db) as server:
        yield server.url, db, scenario


def get(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.load(response)


def post(url, payload):
    data = json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=5) as response:
        return response.status, json.load(response)


class TestRoutes:
    def test_schema(self, served):
        url, db, _ = served
        status, body = get(url + "/schema")
        assert status == 200
        assert "Specimen" in body["classes"]

    def test_class_description(self, served):
        url, *_ = served
        status, body = get(url + "/classes/Specimen")
        assert status == 200
        assert "collector" in body["attributes"]

    def test_class_extent(self, served):
        url, db, _ = served
        status, body = get(url + "/classes/Specimen/extent")
        assert status == 200
        assert len(body) == 11

    def test_unknown_class_404(self, served):
        url, *_ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(url + "/classes/Martian")
        assert err.value.code == 404

    def test_object_fetch(self, served):
        url, _, scenario = served
        white = scenario.specimens["white_square"]
        status, body = get(url + f"/objects/{white.oid}")
        assert status == 200
        assert body["values"]["field_name"] == "white_square"
        assert body["class"] == "Specimen"

    def test_object_404(self, served):
        url, *_ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(url + "/objects/999999")
        assert err.value.code == 404

    def test_classifications_listing(self, served):
        url, *_ = served
        status, body = get(url + "/classifications")
        assert body == [
            "T1 shapes", "T2 sections", "T3 brightness", "T4 revision"
        ]

    def test_classification_detail(self, served):
        url, *_ = served
        status, body = get(url + "/classifications/T1%20shapes")
        assert body["author"] == "Taxonomist1"
        assert len(body["edges"]) == 9
        assert len(body["roots"]) == 1

    def test_query_endpoint(self, served):
        url, *_ = served
        status, body = post(
            url + "/query",
            {"query": "select count(s) from s in Specimen"},
        )
        assert body["result"] == [11]

    def test_query_with_params(self, served):
        url, _, scenario = served
        white = scenario.specimens["white_square"]
        status, body = post(
            url + "/query",
            {
                "query": "select s.field_name from s in Specimen "
                "where s.oid = $o",
                "params": {"o": white.oid},
            },
        )
        assert body["result"] == ["white_square"]

    def test_bad_query_400(self, served):
        url, *_ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            post(url + "/query", {"query": "selectt x"})
        assert err.value.code == 400

    def test_missing_query_400(self, served):
        url, *_ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            post(url + "/query", {})
        assert err.value.code == 400

    def test_unknown_route_404(self, served):
        url, *_ = served
        with pytest.raises(urllib.error.HTTPError) as err:
            get(url + "/nothing/here")
        assert err.value.code == 404


class TestJsonable:
    def test_objects(self, served):
        _, _, scenario = served
        data = jsonable(scenario.specimens["white_square"])
        assert data["class"] == "Specimen"
        assert "values" in data

    def test_relationship_instances_carry_endpoints(self, served):
        _, db, _ = served
        edge = db.schema.relationships.instances_of("Includes")[0]
        data = jsonable(edge)
        assert data["origin"] == edge.origin_oid
        assert data["destination"] == edge.destination_oid

    def test_graph_view(self, served):
        _, db, scenario = served
        from repro.classification import extract_graph

        view = extract_graph(scenario.classifications["T1"])
        data = jsonable(view)
        assert len(data["edges"]) == 9

    def test_fallback_repr(self):
        assert isinstance(jsonable(object()), str)
