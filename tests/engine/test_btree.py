"""B-tree: correctness, invariants, model-based property tests."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine.btree import BTree


class TestBasics:
    def test_insert_get(self):
        tree = BTree(min_degree=2)
        tree.insert("b", 1)
        tree.insert("a", 2)
        assert tree.get("a") == {2}
        assert tree.get("b") == {1}
        assert tree.get("c") == frozenset()

    def test_duplicate_keys_accumulate(self):
        tree = BTree(min_degree=2)
        tree.insert("k", 1)
        tree.insert("k", 2)
        tree.insert("k", 1)  # same pair: no-op
        assert tree.get("k") == {1, 2}
        assert len(tree) == 2

    def test_contains(self):
        tree = BTree(min_degree=2)
        tree.insert(5, 1)
        assert 5 in tree
        assert 6 not in tree

    def test_min_degree_validation(self):
        with pytest.raises(ValueError):
            BTree(min_degree=1)

    def test_many_inserts_force_splits(self):
        tree = BTree(min_degree=2)
        for i in range(500):
            tree.insert(i, i * 10)
        tree.check_invariants()
        assert len(tree) == 500
        for i in range(500):
            assert tree.get(i) == {i * 10}

    def test_sorted_iteration(self):
        tree = BTree(min_degree=2)
        keys = random.Random(1).sample(range(1000), 200)
        for k in keys:
            tree.insert(k, k)
        assert list(tree.keys()) == sorted(keys)

    def test_remove(self):
        tree = BTree(min_degree=2)
        for i in range(100):
            tree.insert(i, i)
        for i in range(0, 100, 2):
            assert tree.remove(i, i)
        tree.check_invariants()
        assert list(tree.keys()) == list(range(1, 100, 2))

    def test_remove_one_of_duplicates(self):
        tree = BTree(min_degree=2)
        tree.insert("k", 1)
        tree.insert("k", 2)
        tree.remove("k", 1)
        assert tree.get("k") == {2}
        assert "k" in tree

    def test_remove_absent_pair(self):
        tree = BTree(min_degree=2)
        tree.insert("k", 1)
        assert not tree.remove("k", 99)
        assert not tree.remove("missing", 1)

    def test_remove_everything(self):
        tree = BTree(min_degree=2)
        keys = random.Random(7).sample(range(200), 100)
        for k in keys:
            tree.insert(k, k)
        random.Random(8).shuffle(keys)
        for k in keys:
            assert tree.remove(k, k)
            tree.check_invariants()
        assert len(tree) == 0
        assert list(tree.keys()) == []


class TestRange:
    @pytest.fixture
    def tree(self):
        tree = BTree(min_degree=3)
        for i in range(0, 100, 5):
            tree.insert(i, i)
        return tree

    def test_closed_range(self, tree):
        keys = [k for k, _ in tree.range(10, 30)]
        assert keys == [10, 15, 20, 25, 30]

    def test_open_bounds(self, tree):
        keys = [k for k, _ in tree.range(10, 30, include_low=False,
                                         include_high=False)]
        assert keys == [15, 20, 25]

    def test_unbounded(self, tree):
        assert len(list(tree.range())) == 20
        assert [k for k, _ in tree.range(low=90)] == [90, 95]
        assert [k for k, _ in tree.range(high=5)] == [0, 5]


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["ins", "del"]),
            st.integers(min_value=0, max_value=50),
            st.integers(min_value=0, max_value=5),
        ),
        max_size=150,
    ),
    st.integers(min_value=2, max_value=5),
)
def test_property_model_based(operations, degree):
    """The tree behaves exactly like a dict[key, set[oid]] model."""
    tree = BTree(min_degree=degree)
    model: dict[int, set[int]] = {}
    for op, key, oid in operations:
        if op == "ins":
            tree.insert(key, oid)
            model.setdefault(key, set()).add(oid)
        else:
            expected = key in model and oid in model[key]
            assert tree.remove(key, oid) == expected
            if expected:
                model[key].discard(oid)
                if not model[key]:
                    del model[key]
    tree.check_invariants()
    assert list(tree.keys()) == sorted(model)
    for key, oids in model.items():
        assert tree.get(key) == oids
    assert len(tree) == sum(len(v) for v in model.values())
