"""Async front-end transport behavior: keep-alive, pipelining,
backpressure, slow-loris defense, and the loop-stall bound.

Route *semantics* are covered by the differential conformance suite
(the async server shares ``HttpHandlers`` with the threaded one); this
module tests what is new in the transport itself:

* one connection carries many requests, responses in request order;
* when the worker queue is full new requests get an immediate 503 with
  ``Retry-After`` — counted and reconciled at ``/metrics``;
* a dribbling (slow-loris) client is cut off by the header timeout
  without starving well-behaved clients;
* nothing blocking ever runs on the event loop: the watchdog's worst
  observed stall stays under 50 ms through a request soak.
"""

import http.client
import json
import socket
import threading
import time

import pytest

from repro.engine import AsyncPrometheusServer, PrometheusDB
from repro.replication import LogShipper
from repro.taxonomy import build_shapes_scenario
from repro.taxonomy.model import TaxonomyDatabase


def _build_db(tmp_path=None) -> PrometheusDB:
    db = PrometheusDB(path=None if tmp_path is None else tmp_path / "db")
    taxdb = TaxonomyDatabase.over_engine(db)
    build_shapes_scenario(taxdb)
    return db


def _read_http_response(sock_file):
    """Parse one HTTP/1.1 response off a socket file; returns
    (status, headers, body) or None on EOF."""
    status_line = sock_file.readline()
    if not status_line:
        return None
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = sock_file.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").strip().partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = sock_file.read(length) if length else b""
    return status, headers, body


@pytest.fixture(scope="module")
def served():
    db = _build_db()
    with AsyncPrometheusServer(db) as server:
        yield server


class TestKeepAliveAndPipelining:
    def test_connection_reused_across_requests(self, served):
        conn = http.client.HTTPConnection(*served.address, timeout=10)
        try:
            for _ in range(3):
                conn.request("GET", "/classes/Specimen")
                response = conn.getresponse()
                body = response.read()
                assert response.status == 200
                assert not response.will_close
                assert json.loads(body)["name"] == "Specimen"
            sock_before = conn.sock
            conn.request("GET", "/schema")
            conn.getresponse().read()
            assert conn.sock is sock_before  # same socket, no reconnect
        finally:
            conn.close()

    def test_pipelined_responses_arrive_in_request_order(self, served):
        """Send N requests before reading any response; the bodies must
        come back in exactly the order the requests were written."""
        oids_body = http.client.HTTPConnection(*served.address, timeout=10)
        oids_body.request("GET", "/classes/Specimen/extent")
        oids = json.loads(oids_body.getresponse().read())
        oids_body.close()
        assert len(oids) >= 8

        with socket.create_connection(served.address, timeout=15) as sock:
            burst = b""
            for oid in oids[:8]:
                burst += (
                    f"GET /objects/{oid} HTTP/1.1\r\n"
                    f"Host: x\r\n\r\n"
                ).encode()
            sock.sendall(burst)
            sock_file = sock.makefile("rb")
            for oid in oids[:8]:
                status, _, body = _read_http_response(sock_file)
                assert status == 200
                assert json.loads(body)["oid"] == oid

    def test_http10_client_gets_connection_close(self, served):
        with socket.create_connection(served.address, timeout=10) as sock:
            sock.sendall(b"GET /schema HTTP/1.0\r\nHost: x\r\n\r\n")
            sock_file = sock.makefile("rb")
            status, headers, _ = _read_http_response(sock_file)
            assert status == 200
            assert headers["connection"] == "close"
            assert sock_file.readline() == b""  # server closed the socket

    def test_malformed_request_line_rejected(self, served):
        with socket.create_connection(served.address, timeout=10) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            status, _, body = _read_http_response(sock.makefile("rb"))
            assert status == 400
            assert b"malformed" in body


class TestBackpressure:
    def test_queue_full_rejects_503_and_counts(self, tmp_path):
        """Park the single worker on a long-poll pull, fill the queue,
        and verify the overflow request is answered 503 immediately —
        then reconcile the rejection counter at /metrics."""
        db = _build_db(tmp_path)
        shipper = LogShipper(db.store, telemetry=db.telemetry)
        server = AsyncPrometheusServer(
            db, shipper=shipper, workers=1, queue_cap=2, retry_after_s=7
        )
        with server:
            # Worker 1: a replication long-poll at the log head parks
            # the only worker thread for ~2s.
            parked = http.client.HTTPConnection(*server.address, timeout=15)
            parked.request(
                "POST",
                "/replicate/pull",
                json.dumps({"from_lsn": db.lsn, "wait_s": 2.0}).encode(),
            )
            time.sleep(0.2)  # let the pull reach the worker

            # Request 2 fills the queue slot behind the parked worker.
            queued = http.client.HTTPConnection(*server.address, timeout=15)
            queued.request("GET", "/classes/Specimen")
            time.sleep(0.2)

            # Request 3 overflows: immediate 503 + Retry-After, long
            # before the parked worker frees up.
            overflow = http.client.HTTPConnection(*server.address, timeout=15)
            begin = time.monotonic()
            overflow.request("GET", "/schema")
            response = overflow.getresponse()
            elapsed = time.monotonic() - begin
            body = response.read()
            assert response.status == 503
            assert response.headers["Retry-After"] == "7"
            assert b"overloaded" in body
            assert elapsed < 1.0, f"503 took {elapsed:.2f}s; not immediate"
            overflow.close()

            # The parked pull drains (204: caught up) and the queued
            # request completes — backpressure shed load, it did not
            # collapse the server.
            assert parked.getresponse().status == 204
            parked.close()
            assert queued.getresponse().status == 200
            queued.close()

            # The loop-thread counter is authoritative and reconciled
            # into the Prometheus registry at scrape time.
            assert server.rejected >= 1
            scrape = http.client.HTTPConnection(*server.address, timeout=15)
            scrape.request("GET", "/metrics")
            text = scrape.getresponse().read().decode()
            scrape.close()
            rejected = [
                line for line in text.splitlines()
                if line.startswith("repro_server_rejected_total")
            ]
            assert rejected, "rejection counter missing from /metrics"
            assert int(rejected[0].split()[-1]) == (
                server.rejected + server.connections_rejected
            )

    def test_connection_cap_rejects_with_503(self, tmp_path):
        db = _build_db(tmp_path)
        server = AsyncPrometheusServer(db, max_connections=2)
        with server:
            keepers = []
            try:
                for _ in range(2):
                    sock = socket.create_connection(server.address, timeout=10)
                    # Touch the server so the connection is registered.
                    sock.sendall(b"GET /schema HTTP/1.1\r\nHost: x\r\n\r\n")
                    _read_http_response(sock.makefile("rb"))
                    keepers.append(sock)
                extra = socket.create_connection(server.address, timeout=10)
                status, headers, _ = _read_http_response(extra.makefile("rb"))
                assert status == 503
                assert "retry-after" in headers
                extra.close()
                assert server.connections_rejected >= 1
            finally:
                for sock in keepers:
                    sock.close()


class TestSlowLoris:
    def test_dribbling_header_times_out_408(self, tmp_path):
        db = _build_db(tmp_path)
        server = AsyncPrometheusServer(db, header_timeout_s=0.4)
        with server:
            with socket.create_connection(server.address, timeout=10) as sock:
                sock.sendall(b"GET /sch")  # never finishes the line
                begin = time.monotonic()
                result = _read_http_response(sock.makefile("rb"))
                elapsed = time.monotonic() - begin
                assert result is not None
                assert result[0] == 408
                assert elapsed < 5.0
            assert server.timeouts >= 1

    def test_dribbler_does_not_starve_other_clients(self, tmp_path):
        db = _build_db(tmp_path)
        server = AsyncPrometheusServer(db, header_timeout_s=3.0, workers=2)
        with server:
            dribblers = []
            try:
                for _ in range(4):
                    sock = socket.create_connection(server.address, timeout=10)
                    sock.sendall(b"POST /que")  # stuck mid-request-line
                    dribblers.append(sock)
                time.sleep(0.1)
                # A normal client sails through while four connections
                # dribble: stuck clients hold sockets, not workers.
                begin = time.monotonic()
                conn = http.client.HTTPConnection(*server.address, timeout=10)
                conn.request("GET", "/classes/Specimen")
                assert conn.getresponse().status == 200
                assert time.monotonic() - begin < 2.0
                conn.close()
            finally:
                for sock in dribblers:
                    sock.close()

    def test_body_timeout_cuts_off_torn_post(self, tmp_path):
        db = _build_db(tmp_path)
        server = AsyncPrometheusServer(db, body_timeout_s=0.4)
        with server:
            with socket.create_connection(server.address, timeout=10) as sock:
                sock.sendall(
                    b"POST /query HTTP/1.1\r\nHost: x\r\n"
                    b"Content-Length: 500\r\n\r\n"
                    b'{"query": '  # 489 bytes never arrive
                )
                result = _read_http_response(sock.makefile("rb"))
                assert result is not None and result[0] == 408


class TestLoopStallBound:
    def test_no_event_loop_stall_over_50ms_under_soak(self, served):
        """Regression for blocking-work-on-the-accept-path: hammer the
        server (queries, cached repeats, resolves, metrics scrapes,
        INFO-level access logging active) from several keep-alive
        connections and assert the event-loop watchdog never observed
        a scheduling stall above the 50 ms bound."""
        import logging

        served.max_stall_ms = 0.0  # scope the measurement to the soak
        logging.getLogger("repro.server.access").setLevel(logging.INFO)
        try:
            errors: list = []

            def soak(worker_id: int) -> None:
                try:
                    conn = http.client.HTTPConnection(
                        *served.address, timeout=15
                    )
                    for i in range(40):
                        if i % 3 == 0:
                            conn.request(
                                "POST",
                                "/query",
                                json.dumps({
                                    "query":
                                        "select s from s in Specimen",
                                }).encode(),
                            )
                        elif i % 3 == 1:
                            conn.request(
                                "POST",
                                "/resolve",
                                json.dumps({
                                    "names": ["Ovals", "Circles"],
                                    "attr": "epithet",
                                }).encode(),
                            )
                        else:
                            conn.request("GET", "/metrics")
                        response = conn.getresponse()
                        response.read()
                        assert response.status == 200
                    conn.close()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=soak, args=(n,)) for n in range(4)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors, f"soak clients failed: {errors!r}"
        finally:
            logging.getLogger("repro.server.access").setLevel(
                logging.NOTSET
            )
        assert served.max_stall_ms < 50.0, (
            f"event loop stalled {served.max_stall_ms:.1f}ms during soak; "
            "blocking work has crept onto the accept path"
        )
