"""REPB v1 wire-codec conformance: fuzz round-trips + frame rejection.

Mirrors the PLSB frame tests' stance: a frame either decodes to the
exact value that was encoded, or raises :class:`WireError` — a torn,
bit-flipped, oversized or fabricated frame must never crash the
decoder or, worse, produce a plausible wrong value.
"""

import json
import random
import struct

import pytest

from repro.engine import wire
from repro.errors import WireError

FIXED_SEEDS = (11, 23, 47)
CASES_PER_SEED = 120


# ---------------------------------------------------------------------------
# seeded fuzz generator: arbitrary JSON-able payload trees
# ---------------------------------------------------------------------------

def _fuzz_scalar(rng: random.Random):
    kind = rng.randrange(8)
    if kind == 0:
        return None
    if kind == 1:
        return rng.random() < 0.5
    if kind == 2:
        # Wide spread, including > 64-bit ints (JSON is arbitrary
        # precision; the varint must keep up).
        magnitude = rng.choice((8, 16, 32, 63, 64, 80, 128))
        value = rng.getrandbits(magnitude)
        return -value if rng.random() < 0.5 else value
    if kind == 3:
        return rng.uniform(-1e15, 1e15)
    if kind == 4:
        return rng.choice((0.0, -0.0, 1e-300, 1e300, 3.141592653589793))
    if kind == 5:
        length = rng.randrange(0, 40)
        return "".join(
            rng.choice("abcλπ雪 \t\"\\/∅😀") for _ in range(length)
        )
    if kind == 6:
        return bytes(rng.randrange(256) for _ in range(rng.randrange(24)))
    return rng.randrange(-5, 5)


def _fuzz_value(rng: random.Random, depth: int = 0):
    if depth < 4 and rng.random() < 0.4:
        if rng.random() < 0.5:
            return [
                _fuzz_value(rng, depth + 1)
                for _ in range(rng.randrange(0, 6))
            ]
        return {
            f"k{idx}_{rng.randrange(1000)}": _fuzz_value(rng, depth + 1)
            for idx in range(rng.randrange(0, 6))
        }
    return _fuzz_scalar(rng)


class TestRoundTrip:
    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_seeded_fuzz_round_trip(self, seed):
        rng = random.Random(seed)
        for case in range(CASES_PER_SEED):
            value = _fuzz_value(rng)
            frame = wire.encode_frame(value)
            decoded = wire.decode_frame(frame)
            assert decoded == value, (
                f"seed {seed} case {case}: {value!r} -> {decoded!r}"
            )

    def test_round_trips_every_json_type(self):
        value = {
            "none": None,
            "bools": [True, False],
            "ints": [0, -1, 2**80, -(2**80), 127, -128],
            "floats": [0.5, -2.25e100],
            "str": "naïve λ 雪",
            "bytes": b"\x00\xff raw",
            "nested": {"list": [{"deep": [1, [2, [3]]]}]},
            "empty": {"list": [], "dict": {}},
        }
        assert wire.decode_frame(wire.encode_frame(value)) == value

    def test_deterministic_encoding(self):
        value = {"b": 1, "a": [2, {"z": None}]}
        assert wire.encode_frame(value) == wire.encode_frame(value)

    def test_dict_key_coercion_matches_json(self):
        # json.dumps coerces non-string keys; REPB must agree so the
        # same payload decodes identically from either codec.
        value = {1: "one", True: "yes", None: "nothing", 2.5: "x"}
        decoded = wire.decode_frame(wire.encode_frame(value))
        assert decoded == json.loads(json.dumps(value))

    def test_insertion_order_preserved(self):
        value = {"z": 1, "a": 2, "m": 3}
        assert list(wire.decode_frame(wire.encode_frame(value))) == [
            "z", "a", "m",
        ]

    def test_compact_vs_json(self):
        value = {"result": list(range(100))}
        frame = wire.encode_frame(value)
        text = json.dumps(value, indent=2).encode()
        assert len(frame) < len(text)

    def test_unencodable_value_rejected(self):
        with pytest.raises(WireError, match="not REPB-encodable"):
            wire.encode_frame({"bad": object()})
        with pytest.raises(WireError, match="not JSON-encodable"):
            wire.encode_frame({object(): 1})


class TestFrameRejection:
    def test_short_frame(self):
        with pytest.raises(WireError, match="short frame"):
            wire.decode_frame(b"REPB")

    def test_bad_magic(self):
        frame = bytearray(wire.encode_frame({"a": 1}))
        frame[0] ^= 0xFF
        with pytest.raises(WireError, match="magic"):
            wire.decode_frame(bytes(frame))

    def test_unsupported_version(self):
        frame = bytearray(wire.encode_frame({"a": 1}))
        frame[4] = 99
        with pytest.raises(WireError, match="version"):
            wire.decode_frame(bytes(frame))

    def test_unknown_flags(self):
        frame = bytearray(wire.encode_frame({"a": 1}))
        frame[5] = 0x01
        with pytest.raises(WireError, match="flags"):
            wire.decode_frame(bytes(frame))

    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_truncation_at_every_boundary(self, seed):
        rng = random.Random(seed)
        frame = wire.encode_frame(_fuzz_value(rng))
        for cut in range(len(frame)):
            with pytest.raises(WireError):
                wire.decode_frame(frame[:cut])

    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_single_bit_flips_detected(self, seed):
        rng = random.Random(seed)
        frame = wire.encode_frame(
            {"payload": [rng.randrange(1000) for _ in range(20)]}
        )
        original = wire.decode_frame(frame)
        for _ in range(200):
            position = rng.randrange(len(frame))
            bit = 1 << rng.randrange(8)
            corrupt = bytearray(frame)
            corrupt[position] ^= bit
            # Either rejected outright, or (flips that cancel inside the
            # header's own redundancy cannot exist: any payload flip
            # breaks the CRC, any header flip breaks a declared field)
            # never a silently different value.
            with pytest.raises(WireError):
                wire.decode_frame(bytes(corrupt))
            assert wire.decode_frame(frame) == original

    @pytest.mark.parametrize("seed", FIXED_SEEDS)
    def test_garbage_never_crashes(self, seed):
        rng = random.Random(seed)
        for _ in range(300):
            blob = bytes(
                rng.randrange(256) for _ in range(rng.randrange(0, 64))
            )
            with pytest.raises(WireError):
                wire.decode_frame(blob)

    def test_garbage_with_valid_header_shape(self):
        # Plausible header, random payload: CRC or structure rejects it.
        rng = random.Random(7)
        for _ in range(100):
            payload = bytes(
                rng.randrange(256) for _ in range(rng.randrange(1, 40))
            )
            frame = struct.pack(
                ">4sBBII", b"REPB", 1, 0, len(payload), rng.getrandbits(32)
            ) + payload
            with pytest.raises(WireError):
                wire.decode_frame(frame)

    def test_oversized_declared_length(self):
        # A corrupt length field must be rejected before any allocation.
        frame = struct.pack(
            ">4sBBII", b"REPB", 1, 0, wire.MAX_PAYLOAD_BYTES + 1, 0
        )
        with pytest.raises(WireError, match="ceiling"):
            wire.decode_frame(frame)

    def test_length_mismatch(self):
        good = wire.encode_frame([1, 2, 3])
        with pytest.raises(WireError, match="length mismatch"):
            wire.decode_frame(good + b"extra")

    def test_trailing_garbage_inside_declared_payload(self):
        # Valid value, then junk bytes, with length and CRC "fixed up":
        # the decoder must still notice the unconsumed tail.
        import zlib

        inner = wire.encode_frame(42)[wire.HEADER_SIZE:]
        payload = inner + b"\x00\x00"
        frame = struct.pack(
            ">4sBBII", b"REPB", 1, 0, len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(WireError, match="trailing"):
            wire.decode_frame(frame)

    def test_impossible_collection_count(self):
        import zlib

        # list tag + varint count far beyond the remaining bytes
        payload = b"\x07\xff\xff\xff\x7f"
        frame = struct.pack(
            ">4sBBII", b"REPB", 1, 0, len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(WireError, match="count"):
            wire.decode_frame(frame)

    def test_unknown_tag(self):
        import zlib

        payload = b"\x7f"
        frame = struct.pack(
            ">4sBBII", b"REPB", 1, 0, len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(WireError, match="tag"):
            wire.decode_frame(frame)

    def test_nesting_depth_bounded(self):
        value = 1
        for _ in range(80):
            value = [value]
        frame = wire.encode_frame(value)
        with pytest.raises(WireError, match="nests deeper"):
            wire.decode_frame(frame)

    def test_runaway_varint_bounded(self):
        import zlib

        payload = b"\x03" + b"\x80" * 100 + b"\x01"
        frame = struct.pack(
            ">4sBBII", b"REPB", 1, 0, len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(WireError, match="varint"):
            wire.decode_frame(frame)

    def test_invalid_utf8_in_string(self):
        import zlib

        payload = b"\x05\x02\xff\xfe"
        frame = struct.pack(
            ">4sBBII", b"REPB", 1, 0, len(payload), zlib.crc32(payload)
        ) + payload
        with pytest.raises(WireError, match="UTF-8"):
            wire.decode_frame(frame)


class TestNegotiation:
    def test_accept_header(self):
        assert wire.accepts_repb("application/x-repb")
        assert wire.accepts_repb("application/json, application/x-repb")
        assert not wire.accepts_repb("application/json")
        assert not wire.accepts_repb(None)
        assert not wire.accepts_repb("")

    def test_content_type_header(self):
        assert wire.is_repb("application/x-repb")
        assert wire.is_repb("application/x-repb; charset=binary")
        assert not wire.is_repb("application/json")
        assert not wire.is_repb(None)
