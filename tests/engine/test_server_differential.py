"""Differential conformance: threaded vs asyncio front end.

Both front ends serve the same :class:`~repro.engine.handlers.
HttpHandlers` core, so every route must answer **byte-identical**
bodies and identical status codes.  This suite proves it the way
``tests/query/test_differential.py`` proves evaluator/compiler
agreement: replay a seeded corpus of requests — queries, time-travel
reads, batched resolution, sessions with staged ops, commits, 409
write-write conflicts, malformed bodies, unknown routes, binary REPB
negotiation — against a threaded server and an async server built over
identical databases, and compare every response.  On divergence a
greedy shrinker minimizes the corpus before failing.

Both databases run with telemetry DISABLED so responses carry no trace
ids; the only volatile fields are session tokens (random), ``idle_s``
and ``commit_ts`` (clock), which the normalizer maps to stable
placeholders before the byte comparison.
"""

import http.client
import json
import random
import re

import pytest

from repro.engine import AsyncPrometheusServer, PrometheusDB, PrometheusServer
from repro.engine import wire
from repro.taxonomy import build_shapes_scenario
from repro.taxonomy.model import TaxonomyDatabase
from repro.telemetry import DISABLED

from tests import fuzzseeds

SEED_ENV = "SERVER_FUZZ_SEED"
FIXED_SEEDS = (101, 202, 303)
CASES_PER_SEED = 170  # 3 seeds x 170 = 510 >= the 500-case gate

_QUERIES = (
    "select s from s in Specimen",
    "select count(s) from s in Specimen",
    "select t.epithet from t in NomenclaturalTaxon",
    "select t from t in NomenclaturalTaxon where t.epithet = \"Ovals\"",
    "select w.label from w in WorkingName",
    "EXPLAIN select s from s in Specimen",
    "selec broken !!",  # parse error -> 400
    "select x from x in NoSuchClass",  # unknown class -> 400
)

_GET_PATHS = (
    "/schema",
    "/classes/Specimen",
    "/classes/NomenclaturalTaxon",
    "/classes/Specimen/extent",
    "/classes/NoSuchClass",  # 404
    "/objects/3",
    "/objects/9999",  # 404
    "/objects/xyz",  # 400
    "/classifications",
    "/health/liveness",
    "/no/such/route",  # 404
)

_EPITHETS = (
    "Shapes", "Ovals", "Circles", "Squares", "Rectangles", "Triangles",
    "NoSuchName",
)

_TOKEN_RE = re.compile(r"[0-9a-f]{32}")
_VOLATILE_RE = re.compile(
    r'"(commit_ts|idle_s|uptime_s)": [0-9.eE+-]+'
)


def _build_db() -> PrometheusDB:
    db = PrometheusDB(telemetry=DISABLED)
    taxdb = TaxonomyDatabase.over_engine(db)
    build_shapes_scenario(taxdb)
    return db


def _gen_corpus(seed: int, count: int) -> list:
    """A deterministic request corpus.  Session-bearing requests refer
    to sessions by *slot index*; each replay maps slots to that
    server's own tokens."""
    rng = random.Random(seed)
    corpus: list = []
    slots = 0
    for _ in range(count):
        kind = rng.randrange(10)
        if kind <= 1:
            corpus.append(("GET", rng.choice(_GET_PATHS), None, {}))
        elif kind <= 3:
            body: dict = {"query": rng.choice(_QUERIES)}
            roll = rng.random()
            if roll < 0.15:
                body["as_of"] = rng.choice((1, 2, 10**9))
            elif roll < 0.2:
                body["as_of"] = "not-a-number"
            headers = {}
            if rng.random() < 0.25:
                headers["Accept"] = wire.CONTENT_TYPE
            if rng.random() < 0.15:
                headers["Content-Type"] = wire.CONTENT_TYPE
            corpus.append(("POST", "/query", body, headers))
        elif kind == 4:
            names = [rng.choice(_EPITHETS) for _ in range(rng.randrange(1, 5))]
            body = {"names": names, "attr": rng.choice(("epithet", "label"))}
            if rng.random() < 0.4:
                body["lineage"] = True
            if rng.random() < 0.2:
                body["class"] = rng.choice(
                    ("NomenclaturalTaxon", "NoSuchClass")
                )
            if rng.random() < 0.1:
                body["names"] = "not-a-list"  # -> 400
            headers = {}
            if rng.random() < 0.25:
                headers["Accept"] = wire.CONTENT_TYPE
            corpus.append(("POST", "/resolve", body, headers))
        elif kind == 5:
            corpus.append(("SESSION_CREATE", None, None, {}))
            slots += 1
        elif slots == 0:
            corpus.append(("GET", "/classifications", None, {}))
        elif kind == 6:
            slot = rng.randrange(slots + 1)  # may overrun -> 404 path
            ops = []
            for _ in range(rng.randrange(1, 4)):
                roll = rng.random()
                if roll < 0.5:
                    ops.append({
                        "op": "create",
                        "class": "Specimen",
                        "attrs": {"collector": f"c{rng.randrange(40)}"},
                    })
                elif roll < 0.8:
                    # Scenario oids; some miss or are the wrong kind ->
                    # deterministic 400s.
                    ops.append({
                        "op": "set",
                        "oid": rng.randrange(1, 80),
                        "attr": "collector",
                        "value": f"v{rng.randrange(40)}",
                    })
                elif roll < 0.9:
                    ops.append({"op": "frobnicate"})  # unknown -> 400
                else:
                    ops.append({"op": "create"})  # missing field -> 400
            corpus.append(("SESSION", slot, ("apply", {"ops": ops}), {}))
        elif kind == 7:
            slot = rng.randrange(slots)
            corpus.append(("SESSION", slot, ("commit", {}), {}))
        elif kind == 8:
            slot = rng.randrange(slots)
            action = rng.choice(("query", "abort", "release", "info"))
            if action == "query":
                payload = ("query", {"query": rng.choice(_QUERIES)})
            elif action == "info":
                payload = ("info", None)
            else:
                payload = (action, {})
            corpus.append(("SESSION", slot, payload, {}))
        else:
            corpus.append(
                ("RAW_POST", "/query", b"{not json", {})
            )
    return corpus


class _Replay:
    """Replays a corpus against one server, tracking its session tokens."""

    def __init__(self, url: str):
        host, port = url.removeprefix("http://").split(":")
        self.conn = http.client.HTTPConnection(host, int(port), timeout=15)
        self.tokens: list = []

    def close(self):
        self.conn.close()

    def _roundtrip(self, method, path, body, headers):
        for attempt in (0, 1):
            try:
                self.conn.request(method, path, body=body, headers=headers)
                response = self.conn.getresponse()
                payload = response.read()
                if response.will_close:
                    self.conn.close()
                return response.status, payload
            except (http.client.HTTPException, ConnectionError, OSError):
                self.conn.close()
                if attempt:
                    raise
        raise AssertionError("unreachable")

    def run(self, item):
        kind, a, b, headers = item
        if kind == "GET":
            return self._roundtrip("GET", a, None, dict(headers))
        if kind == "RAW_POST":
            return self._roundtrip("POST", a, b, dict(headers))
        if kind == "POST":
            hdrs = dict(headers)
            if wire.is_repb(hdrs.get("Content-Type")):
                raw = wire.encode_frame(b)
            else:
                raw = json.dumps(b).encode()
            return self._roundtrip("POST", a, raw, hdrs)
        if kind == "SESSION_CREATE":
            status, payload = self._roundtrip("POST", "/session", b"{}", {})
            token = None
            if status == 201:
                token = json.loads(payload)["session"]
            self.tokens.append(token)
            return status, payload
        if kind == "SESSION":
            slot, (action, body) = a, b
            token = (
                self.tokens[slot]
                if slot < len(self.tokens) and self.tokens[slot]
                else "df" * 16  # well-formed but unknown -> 404
            )
            if action == "info":
                return self._roundtrip("GET", f"/session/{token}", None, {})
            return self._roundtrip(
                "POST",
                f"/session/{token}/{action}",
                json.dumps(body).encode(),
                {},
            )
        raise AssertionError(f"unknown corpus item {kind!r}")

    def normalize(self, payload: bytes) -> bytes:
        text = payload.decode("utf-8", errors="surrogateescape")
        for index, token in enumerate(self.tokens):
            if token:
                text = text.replace(token, f"<session-{index}>")
        text = _TOKEN_RE.sub("<token>", text)
        text = _VOLATILE_RE.sub(lambda m: f'"{m.group(1)}": 0', text)
        return text.encode("utf-8", errors="surrogateescape")


def _normalize_repb(payload: bytes, replay: _Replay) -> bytes:
    """REPB frames carry the same volatile fields; normalize via decode
    so the comparison stays exact for everything else."""
    try:
        value = wire.decode_frame(payload)
    except Exception:
        return replay.normalize(payload)
    text = json.dumps(value, indent=2).encode()
    return replay.normalize(text)


def _run_pair(corpus):
    """Replay ``corpus`` on fresh threaded + async servers.

    Returns the index and the two (status, body) observations of the
    first divergence, or None when every response agrees.
    """
    threaded = PrometheusServer(_build_db())
    asynchronous = AsyncPrometheusServer(_build_db())
    threaded.start()
    asynchronous.start()
    replay_t = _Replay(threaded.url)
    replay_a = _Replay(asynchronous.url)
    try:
        for index, item in enumerate(corpus):
            status_t, body_t = replay_t.run(item)
            status_a, body_a = replay_a.run(item)
            if body_t[:4] == wire.MAGIC and body_a[:4] == wire.MAGIC:
                norm_t = _normalize_repb(body_t, replay_t)
                norm_a = _normalize_repb(body_a, replay_a)
            else:
                norm_t = replay_t.normalize(body_t)
                norm_a = replay_a.normalize(body_a)
            if status_t != status_a or norm_t != norm_a:
                return index, (status_t, norm_t), (status_a, norm_a)
        return None
    finally:
        replay_t.close()
        replay_a.close()
        threaded.stop()
        asynchronous.stop()


def _shrink(corpus):
    """Greedily drop chunks while the divergence persists."""
    current = list(corpus)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + chunk:]
            if candidate and _run_pair(candidate) is not None:
                current = candidate
            else:
                index += chunk
        chunk //= 2
    return current


@pytest.mark.parametrize("seed", FIXED_SEEDS)
def test_threaded_and_async_front_ends_agree(seed):
    corpus = _gen_corpus(seed, CASES_PER_SEED)
    divergence = _run_pair(corpus)
    if divergence is None:
        return
    index, threaded_obs, async_obs = divergence
    minimal = _shrink(corpus[: index + 1])
    pytest.fail(
        f"front ends diverged (seed {seed}, request #{index}):\n"
        f"  threaded: {threaded_obs[0]} {threaded_obs[1][:400]!r}\n"
        f"  async:    {async_obs[0]} {async_obs[1][:400]!r}\n"
        f"  minimal corpus ({len(minimal)} requests):\n"
        + "\n".join(f"    {item!r}" for item in minimal)
        + "\n"
        + fuzzseeds.repro_line(
            SEED_ENV, seed, "tests/engine -k extra_seed_from_env"
        )
    )


def test_extra_seed_from_env():
    """Replay the run seed (env override or GITHUB_RUN_ID-derived)."""
    seed = fuzzseeds.run_seed(SEED_ENV)
    if seed is None:
        pytest.skip(f"{SEED_ENV} / GITHUB_RUN_ID not set")
    assert _run_pair(_gen_corpus(seed, CASES_PER_SEED)) is None
