"""Replica-aware federation reads: off-load, staleness floors, breakers.

Stub clients (duck-typed :class:`RemoteDatabase`) make every routing
decision deterministic: who answered (``served_by``), why a replica was
skipped (stale, lagging the caller's ``min_lsn``, no LSN at all,
failing), and that a failing replica trips only its *own*
``node/replica`` breaker while the primary keeps serving.
"""

import pytest

from repro.engine.federation import (
    Federation,
    FederationError,
)


class StubPrimary:
    def __init__(self, name: str, commit_lsn: int = 1000) -> None:
        self.name = name
        self.commit_lsn = commit_lsn
        self.queries = 0
        self.status_calls = 0

    def query(self, text, params=None):
        self.queries += 1
        return f"{self.name}:primary"

    def replication_status(self):
        self.status_calls += 1
        return {"role": "primary", "commit_lsn": self.commit_lsn}


class StubReplica:
    def __init__(self, name: str, lsn: int | None, fail: bool = False) -> None:
        self.name = name
        self.lsn = lsn
        self.fail = fail
        self.queries = 0

    def query_with_lsn(self, text, params=None):
        self.queries += 1
        if self.fail:
            raise FederationError(f"{self.name}: connection refused")
        return f"{self.name}:replica", self.lsn


@pytest.fixture
def fed():
    federation = Federation(retry=None)
    federation.primary = StubPrimary("alpha", commit_lsn=1000)
    federation.add_node("alpha", federation.primary)  # type: ignore[arg-type]
    return federation


def one(results):
    assert len(results) == 1
    assert results[0].ok, results[0].error
    return results[0]


class TestRegistration:
    def test_replica_for_unknown_node_rejected(self, fed):
        with pytest.raises(FederationError, match="unknown federation node"):
            fed.add_read_replica("omega", "r1", StubReplica("r1", 10))

    def test_remove_node_clears_replica_breakers(self, fed):
        replica = StubReplica("r1", lsn=None, fail=True)
        fed.add_read_replica("alpha", "r1", replica)
        fed.query_all_reads("q")  # trips a failure on alpha/r1
        assert fed.breaker("alpha/r1").consecutive_failures == 1
        fed.remove_node("alpha")
        assert "alpha" not in fed.nodes
        assert "alpha/r1" not in fed._breakers
        # Re-adding the node starts its replicas from a clean slate.
        fed.add_node("alpha", fed.primary)
        assert fed.breaker("alpha/r1").consecutive_failures == 0


class TestRouting:
    def test_fresh_replica_serves_the_read(self, fed):
        replica = StubReplica("r1", lsn=1000)
        fed.add_read_replica("alpha", "r1", replica)
        result = one(fed.query_all_reads("q"))
        assert result.result == "r1:replica"
        assert result.served_by == "alpha/r1"
        assert fed.primary.queries == 0

    def test_no_replicas_means_primary(self, fed):
        result = one(fed.query_all_reads("q"))
        assert result.result == "alpha:primary"
        assert result.served_by == "alpha"

    def test_stale_replica_falls_back_under_bound(self, fed):
        replica = StubReplica("r1", lsn=100)
        fed.add_read_replica("alpha", "r1", replica)
        # Unbounded: any LSN is fine, the replica serves.
        assert one(fed.query_all_reads("q")).served_by == "alpha/r1"
        # Bounded: floor = 1000 - 50 = 950 > 100 — the primary serves,
        # and the healthy-but-stale replica's breaker is untouched.
        result = one(fed.query_all_reads("q", staleness_bytes=50))
        assert result.served_by == "alpha"
        assert result.result == "alpha:primary"
        assert fed.breaker("alpha/r1").consecutive_failures == 0
        assert fed.primary.status_calls >= 1

    def test_min_lsn_floor_enforces_read_your_writes(self, fed):
        replica = StubReplica("r1", lsn=100)
        fed.add_read_replica("alpha", "r1", replica)
        assert one(fed.query_all_reads("q", min_lsn=500)).served_by == "alpha"
        assert one(fed.query_all_reads("q", min_lsn=80)).served_by == "alpha/r1"

    def test_lsn_less_replica_never_serves_bounded_reads(self, fed):
        # A node predating replication reports no LSN; it cannot prove
        # freshness, so the primary answers.
        fed.add_read_replica("alpha", "r1", StubReplica("r1", lsn=None))
        assert one(fed.query_all_reads("q")).served_by == "alpha"

    def test_replica_order_and_fallback_across_replicas(self, fed):
        fed.add_read_replica("alpha", "r1", StubReplica("r1", lsn=100))
        fed.add_read_replica("alpha", "r2", StubReplica("r2", lsn=1000))
        # r1 is tried first (name order) but is too stale; r2 serves.
        result = one(fed.query_all_reads("q", staleness_bytes=50))
        assert result.served_by == "alpha/r2"
        assert result.result == "r2:replica"


class TestBreakerIsolation:
    def test_failing_replica_trips_own_breaker_only(self, fed):
        replica = StubReplica("r1", lsn=1000, fail=True)
        fed.add_read_replica("alpha", "r1", replica)
        for _ in range(fed.breaker_threshold):
            result = one(fed.query_all_reads("q"))
            assert result.served_by == "alpha"  # fell back every time
        assert fed.breaker("alpha/r1").state == "open"
        assert fed.breaker("alpha").state == "closed"
        # With the breaker open the replica is not even called.
        calls = replica.queries
        assert one(fed.query_all_reads("q")).served_by == "alpha"
        assert replica.queries == calls

    def test_recovered_replica_resumes_serving(self, fed):
        replica = StubReplica("r1", lsn=1000, fail=True)
        fed.add_read_replica("alpha", "r1", replica)
        fed.query_all_reads("q")
        assert fed.breaker("alpha/r1").consecutive_failures == 1
        replica.fail = False
        result = one(fed.query_all_reads("q"))
        assert result.served_by == "alpha/r1"
        assert fed.breaker("alpha/r1").consecutive_failures == 0
