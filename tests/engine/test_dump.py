"""Database export/import (dump/load with OID remapping)."""

import pytest

from repro.engine.dump import dump_json, dump_schema, load_dump
from repro.errors import SchemaError
from repro.taxonomy import (
    NameDeriver,
    TaxonomyDatabase,
    build_apium_scenario,
    compare_taxonomic,
)


@pytest.fixture
def scenario():
    return build_apium_scenario()


class TestDump:
    def test_document_shape(self, scenario):
        taxdb = scenario.taxdb
        document = dump_schema(taxdb.schema, taxdb.classifications)
        assert document["format"] == "prometheus-dump-v1"
        assert len(document["objects"]) > 0
        assert len(document["relationships"]) > 0
        assert document["classifications"][0]["name"] == "Raguenaud revision"

    def test_json_serialisable(self, scenario):
        import json

        taxdb = scenario.taxdb
        text = dump_json(taxdb.schema, taxdb.classifications, indent=1)
        parsed = json.loads(text)
        assert parsed["format"] == "prometheus-dump-v1"


class TestLoad:
    def test_round_trip_into_fresh_database(self, scenario):
        source = scenario.taxdb
        document = dump_schema(source.schema, source.classifications)
        target = TaxonomyDatabase()
        oid_map = load_dump(target.schema, document, target.classifications)
        assert len(oid_map) == len(list(source.schema.all_objects()))
        # Same extents...
        for class_name in ("Specimen", "NomenclaturalTaxon",
                           "CircumscriptionTaxon"):
            assert target.schema.count(class_name) == source.schema.count(
                class_name
            )
        # ...same nomenclature, with working relationships.
        apium = target.find_names(epithet="Apium")[0]
        assert target.full_name(apium) == "Apium L."
        graveolens = target.find_names(epithet="graveolens")[0]
        assert target.placement_of(graveolens).oid == apium.oid
        assert target.primary_type(graveolens) is not None

    def test_derivation_works_after_load(self, scenario):
        """The acid test: the Figure 3 derivation must reproduce on the
        imported copy."""
        source = scenario.taxdb
        document = dump_schema(source.schema, source.classifications)
        target = TaxonomyDatabase()
        load_dump(target.schema, document, target.classifications)
        classification = target.classifications.get("Raguenaud revision")
        results = NameDeriver(target, author="Raguenaud", year=2000).derive(
            classification
        )
        names = sorted(r.full_name for r in results)
        assert names == [
            "Heliosciadium W.D.J.Koch",
            "Heliosciadium repens (Jacq.)Raguenaud",
        ]

    def test_merge_into_nonempty_database(self, scenario):
        """OID remapping lets a dump merge with pre-existing data."""
        source = scenario.taxdb
        document = dump_schema(source.schema, source.classifications)
        target = TaxonomyDatabase()
        resident = target.publish_name("Residentia", "Genus", year=1800)
        load_dump(target.schema, document, target.classifications)
        assert target.schema.has_object(resident.oid)
        assert len(target.find_names(epithet="Apium")) == 1
        assert len(target.names()) == 8  # 7 imported + 1 resident

    def test_synonyms_remapped(self):
        taxdb = TaxonomyDatabase()
        a = taxdb.new_specimen(field_name="a")
        b = taxdb.new_specimen(field_name="b")
        taxdb.schema.synonyms.declare(a.oid, b.oid)
        document = dump_schema(taxdb.schema, taxdb.classifications)
        target = TaxonomyDatabase()
        oid_map = load_dump(target.schema, document, target.classifications)
        assert target.schema.synonyms.are_synonyms(
            oid_map[a.oid], oid_map[b.oid]
        )

    def test_participants_remapped(self):
        from repro.core.attributes import Attribute
        from repro.core.schema import Schema
        from repro.core import types as T

        def declare(schema):
            schema.define_class("Thing", [Attribute("label", T.STRING)])
            schema.define_relationship(
                "Deal", "Thing", "Thing",
                participants={"witness": "Thing"},
                attributes=[Attribute("year", T.INTEGER)],
            )

        source = Schema()
        declare(source)
        a, b, w = (source.create("Thing", label=x) for x in "abw")
        source.relate("Deal", a, b, participants={"witness": w}, year=2020)
        document = dump_schema(source)
        target = Schema()
        declare(target)
        load_dump(target.schema if hasattr(target, "schema") else target,
                  document)
        rel = target.relationships.instances_of("Deal")[0]
        assert rel.participant("witness").get("label") == "w"
        assert rel.get("year") == 2020

    def test_wrong_format_rejected(self):
        target = TaxonomyDatabase()
        with pytest.raises(SchemaError):
            load_dump(target.schema, {"format": "something-else"})

    def test_loaded_copy_comparable_with_itself(self, scenario):
        """A dump-loaded classification compares as a full synonym set of
        the original structure (same working names, same shapes)."""
        source = scenario.taxdb
        document = dump_schema(source.schema, source.classifications)
        target = TaxonomyDatabase()
        load_dump(target.schema, document, target.classifications)
        # Load a second copy into the same database and compare.
        load_again = dict(document)
        load_again["classifications"] = [
            {**c, "name": c["name"] + " (copy)"}
            for c in document["classifications"]
        ]
        load_dump(target.schema, load_again, target.classifications)
        a = target.classifications.get("Raguenaud revision")
        b = target.classifications.get("Raguenaud revision (copy)")
        report = compare_taxonomic(target, a, b)
        # Disjoint specimen copies: structures match but no specimens are
        # shared, so no synonym pairs arise — the copies are independent.
        assert report.shared_leaf_oids == frozenset()
        assert len(a) == len(b)
