"""Regression tests for federation partial-result accounting.

Two bugs hid degraded fan-outs behind healthy-looking answers:

1. An exception with an empty message (bare ``ConnectionError()``, a
   breaker's ``CircuitOpenError`` in some paths) produced
   ``NodeResult(error="")`` — and ``NodeResult.ok`` reads truthiness of
   ``error``, so the failure scored as a success carrying ``None``.
2. ``count_all`` trusted any ok result: a node that died mid-scatter
   and returned a malformed body (``[]``, a dict, a non-numeric list)
   was silently counted as 0 with ``__partial__`` False — a degraded
   total masquerading as a complete one.

These tests drive ``Federation`` with duck-typed fake clients and pin
the fixed behavior: empty-message failures surface as the exception's
type name, and ok-but-malformed counts flip ``__partial__``.
"""

from __future__ import annotations

from repro.engine.federation import Federation


class _HealthyNode:
    def __init__(self, count):
        self._count = count

    def query(self, text, params=None):
        return [self._count]


class _DyingNode:
    """Raises with an *empty* message — the shape that used to score ok."""

    def __init__(self, exc_type=ConnectionError):
        self._exc_type = exc_type

    def query(self, text, params=None):
        raise self._exc_type()


class _MalformedNode:
    """Answers 200-ok but with a body no count query can produce."""

    def __init__(self, body):
        self._body = body

    def query(self, text, params=None):
        return self._body


def _federation(**nodes) -> Federation:
    federation = Federation(retry=None, deadline=5.0)
    for name, client in nodes.items():
        federation.nodes[name] = client
    return federation


class TestEmptyMessageFailures:
    def test_empty_message_exception_is_not_ok(self):
        federation = _federation(a=_HealthyNode(3), b=_DyingNode())
        results = {r.node: r for r in federation.query_all("select c")}
        assert results["a"].ok
        assert not results["b"].ok
        assert results["b"].error == "ConnectionError"

    def test_count_all_records_the_dead_node(self):
        federation = _federation(a=_HealthyNode(3), b=_DyingNode())
        counts = federation.count_all("Taxon")
        assert counts["a"] == 3
        assert counts["b"] == 0
        assert counts["__total__"] == 3
        assert counts["__partial__"] is True
        assert counts["__errors__"]["b"] == "ConnectionError"

    def test_breaker_open_reports_partial_not_silent_zero(self):
        federation = _federation(a=_HealthyNode(2), b=_DyingNode())
        federation.breaker_threshold = 2
        for _ in range(2):
            federation.count_all("Taxon")
        assert federation.breaker("b").state == "open"
        counts = federation.count_all("Taxon")
        assert counts["__partial__"] is True
        assert "circuit open" in counts["__errors__"]["b"]
        assert counts["__total__"] == 2


class TestMalformedOkResults:
    def test_empty_list_flips_partial(self):
        federation = _federation(a=_HealthyNode(5), b=_MalformedNode([]))
        counts = federation.count_all("Taxon")
        assert counts["b"] == 0
        assert counts["__total__"] == 5
        assert counts["__partial__"] is True
        assert "malformed" in counts["__errors__"]["b"]

    def test_non_numeric_and_wrong_shape_bodies_flip_partial(self):
        for body in ([None], ["7"], [1, 2], {"count": 7}, None):
            federation = _federation(
                a=_HealthyNode(1), b=_MalformedNode(body)
            )
            counts = federation.count_all("Taxon")
            assert counts["__partial__"] is True, body
            assert counts["__total__"] == 1, body

    def test_all_healthy_is_not_partial(self):
        federation = _federation(a=_HealthyNode(2), b=_HealthyNode(4))
        counts = federation.count_all("Taxon")
        assert counts == {
            "a": 2,
            "b": 4,
            "__total__": 6,
            "__errors__": {},
            "__partial__": False,
        }

    def test_bool_count_is_not_a_count(self):
        # bool subclasses int; a [True] body must still read as
        # malformed rather than count 1.
        federation = _federation(a=_MalformedNode([True]))
        counts = federation.count_all("Taxon")
        assert counts["__partial__"] is True
