"""Federation/HTTP resilience: retry, circuit breaking, deadlines, health.

The herbarium-network failure modes of chapter 8: a node that answers
after a hiccup (retry), a node that is down for the afternoon (circuit
breaker), a node that hangs mid-query (fan-out deadline), and the
operator's view of all of it (/health, health_report, count_all
degradation markers).
"""

import json
import os
import threading
import time
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.engine import PrometheusDB, PrometheusServer
from repro.engine.federation import (
    CircuitBreaker,
    CircuitOpenError,
    Federation,
    FederationError,
    RemoteDatabase,
    RetryPolicy,
)
from repro.engine.handlers import Response
from repro.engine.server import _Handler
from repro.storage import ObjectStore


# ---------------------------------------------------------------------------
# Test doubles
# ---------------------------------------------------------------------------

class FakeClient:
    """Duck-typed RemoteDatabase standing in for one node."""

    def __init__(self, fail_first: int = 0, result=None):
        self.url = "fake://node"
        self.fail_first = fail_first
        self.calls = 0
        self.result = [1] if result is None else result

    def query(self, text, params=None):
        self.calls += 1
        if self.calls <= self.fail_first:
            raise FederationError("fake: connection refused")
        return self.result

    def classifications(self):
        return ["fake flora"]

    def ping(self):
        return self.calls > self.fail_first


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_federation(**overrides) -> Federation:
    defaults = dict(
        retry=RetryPolicy(attempts=2, base_delay=0.001, max_delay=0.002),
        deadline=5.0,
        breaker_threshold=3,
        breaker_reset=0.05,
    )
    defaults.update(overrides)
    return Federation(**defaults)


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_backoff_schedule_is_deterministic(self):
        policy = RetryPolicy(attempts=4, base_delay=0.1, jitter=0.5, seed=7)
        assert list(policy.delays()) == list(policy.delays())

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.1, max_delay=0.4, jitter=0.0
        )
        assert list(policy.delays()) == [0.1, 0.2, 0.4, 0.4, 0.4]

    def test_jitter_stays_within_fraction(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=1.0,
                             jitter=0.5, seed=3)
        for base, jittered in zip([0.1, 0.2, 0.4, 0.8], policy.delays()):
            assert base <= jittered <= base * 1.5

    def test_call_retries_until_success(self):
        client = FakeClient(fail_first=2)
        policy = RetryPolicy(attempts=3, base_delay=0.001)
        slept = []
        result = policy.call(
            lambda: client.query("q"), sleep=slept.append
        )
        assert result == [1]
        assert client.calls == 3
        assert len(slept) == 2

    def test_call_exhausts_and_reraises_last(self):
        client = FakeClient(fail_first=99)
        policy = RetryPolicy(attempts=3, base_delay=0.001)
        with pytest.raises(FederationError):
            policy.call(lambda: client.query("q"), sleep=lambda _s: None)
        assert client.calls == 3


# ---------------------------------------------------------------------------
# CircuitBreaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=30,
                                 clock=clock)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=30,
                                 clock=clock)
        breaker.record_failure()
        assert not breaker.allow()
        clock.advance(31)
        assert breaker.state == "half_open"
        assert breaker.allow()        # the single probe slot
        assert not breaker.allow()    # no second concurrent probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens_with_fresh_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=30,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(31)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(15)
        assert not breaker.allow()   # cooldown restarted at probe failure
        clock.advance(16)
        assert breaker.allow()


# ---------------------------------------------------------------------------
# Federation over fakes
# ---------------------------------------------------------------------------

class TestFederationResilience:
    def test_retry_hides_a_transient_failure(self):
        fed = make_federation()
        fed.nodes["flaky"] = FakeClient(fail_first=1)
        fed.nodes["steady"] = FakeClient()
        results = fed.query_all("select count(x) from x in Taxon")
        assert all(r.ok for r in results)
        assert fed.nodes["flaky"].calls == 2

    def test_breaker_opens_after_repeated_query_failures(self):
        fed = make_federation(retry=None)
        dead = FakeClient(fail_first=10 ** 9)
        fed.nodes["dead"] = dead
        for _ in range(3):
            (result,) = fed.query_all("q")
            assert not result.ok
        assert fed.breaker("dead").state == "open"
        calls_when_open = dead.calls
        (result,) = fed.query_all("q")
        assert not result.ok
        assert "circuit open" in result.error
        assert dead.calls == calls_when_open  # the network was not touched

    def test_breaker_half_open_probe_recovers_the_node(self):
        fed = make_federation(retry=None, breaker_threshold=2,
                              breaker_reset=0.02)
        node = FakeClient(fail_first=2)
        fed.nodes["lazarus"] = node
        for _ in range(2):
            (result,) = fed.query_all("q")
            assert not result.ok
        assert fed.breaker("lazarus").state == "open"
        time.sleep(0.03)
        (result,) = fed.query_all("q")  # the half-open probe — succeeds
        assert result.ok
        assert fed.breaker("lazarus").state == "closed"

    def test_count_all_marks_partial_results(self):
        fed = make_federation(retry=None)
        fed.nodes["up"] = FakeClient(result=[4])
        fed.nodes["down"] = FakeClient(fail_first=10 ** 9)
        counts = fed.count_all("Specimen")
        assert counts["up"] == 4
        assert counts["down"] == 0
        assert counts["__total__"] == 4
        assert counts["__partial__"] is True
        assert "down" in counts["__errors__"]

    def test_count_all_clean_when_all_answer(self):
        fed = make_federation()
        fed.nodes["a"] = FakeClient(result=[2])
        fed.nodes["b"] = FakeClient(result=[3])
        counts = fed.count_all("Specimen")
        assert counts["__total__"] == 5
        assert counts["__partial__"] is False
        assert counts["__errors__"] == {}

    def test_health_report_shows_breaker_state(self):
        fed = make_federation(retry=None, breaker_threshold=1)
        fed.nodes["dead"] = FakeClient(fail_first=10 ** 9)
        fed.query_all("q")
        report = fed.health_report()
        assert report["dead"]["breaker"] == "open"
        assert report["dead"]["alive"] is False
        assert report["dead"]["consecutive_failures"] >= 1

    def test_empty_federation_fans_out_to_nothing(self):
        assert make_federation().query_all("q") == []


# ---------------------------------------------------------------------------
# Deadline against a genuinely hung node (real sockets)
# ---------------------------------------------------------------------------

class _SlowQueryHandler(BaseHTTPRequestHandler):
    delay = 3.0

    def log_message(self, fmt, *args):  # noqa: A002
        pass

    def do_POST(self):
        time.sleep(self.delay)
        body = json.dumps({"result": [1]}).encode()
        self.send_response(200)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


@pytest.fixture
def slow_server():
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _SlowQueryHandler)
    httpd.daemon_threads = True
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address
    yield f"http://{host}:{port}"
    httpd.shutdown()
    httpd.server_close()


class TestDeadline:
    def test_hung_node_fails_within_deadline_and_trips_breaker(
        self, slow_server
    ):
        fed = make_federation(retry=None, deadline=0.4, breaker_threshold=2)
        fed.add_node("hung", RemoteDatabase(slow_server, timeout=10.0))
        started = time.monotonic()
        (result,) = fed.query_all("select count(x) from x in Taxon")
        elapsed = time.monotonic() - started
        assert elapsed < 2.0  # nowhere near the node's 3 s hang
        assert not result.ok
        assert "deadline" in result.error

        (result,) = fed.query_all("q")
        assert not result.ok
        assert fed.breaker("hung").state == "open"
        (result,) = fed.query_all("q")
        assert "circuit open" in result.error

    def test_live_nodes_still_answer_alongside_a_hung_one(self, slow_server):
        db = PrometheusDB()
        with PrometheusServer(db) as live:
            fed = make_federation(retry=None, deadline=1.0)
            fed.add_node("hung", RemoteDatabase(slow_server, timeout=10.0))
            fed.add_node("live", RemoteDatabase(live.url, timeout=5.0))
            results = {r.node: r for r in fed.query_all(
                "select count(c) from c in Object"
            )}
            assert not results["hung"].ok
            assert results["live"].ok


# ---------------------------------------------------------------------------
# /health endpoint and handler hardening
# ---------------------------------------------------------------------------

def _get_json(url):
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, json.load(response)


class TestHealthEndpoint:
    def test_in_memory_db_reports_ok(self):
        with PrometheusServer(PrometheusDB()) as server:
            status, body = _get_json(server.url + "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["store"] is None
        assert body["classes"] >= 1

    def test_persistent_db_reports_recovery_details(self, tmp_path):
        path = tmp_path / "node.plog"
        with PrometheusDB(path=path) as db:
            with PrometheusServer(db) as server:
                status, body = _get_json(server.url + "/health")
        assert body["status"] == "ok"
        assert body["store"]["recovery"]["clean"] is True
        assert body["store"]["path"] == str(path)

    def test_salvaged_store_reports_degraded(self, tmp_path):
        path = tmp_path / "hurt.plog"
        boundaries = []
        with ObjectStore(path) as store:
            for i in range(8):
                boundaries.append(store.file_size)
                store.insert({"i": i, "pad": "x" * 40})
        with open(path, "r+b") as f:
            f.seek(boundaries[3] + 12)
            byte = f.read(1)
            f.seek(boundaries[3] + 12)
            f.write(bytes([byte[0] ^ 0xFF]))
        with PrometheusDB(path=path) as db:
            with PrometheusServer(db) as server:
                _, body = _get_json(server.url + "/health")
                _, remote = (
                    200,
                    RemoteDatabase(server.url).health(),
                )
        assert body["status"] == "degraded"
        assert body["store"]["recovery"]["salvaged_entries"] > 0
        assert remote["status"] == "degraded"

    def test_send_swallows_broken_pipe(self):
        handler = object.__new__(_Handler)

        class DeadPipe:
            def write(self, data):
                raise BrokenPipeError

            def flush(self):
                pass

        handler.request_version = "HTTP/1.1"
        handler.close_connection = False
        handler.requestline = "GET /health HTTP/1.1"
        handler.client_address = ("127.0.0.1", 0)
        handler.command = "GET"
        handler.wfile = DeadPipe()
        response = Response(status=200, body=b'{"ok": true}')
        handler._write_response(response)  # must not raise
        assert handler.close_connection is True
