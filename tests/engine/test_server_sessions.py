"""HTTP session endpoints: the wire surface of repro.concurrency."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB, PrometheusServer


@pytest.fixture
def served():
    db = PrometheusDB()
    db.schema.define_class(
        "Taxon", [Attribute("name", T.STRING), Attribute("rank", T.STRING)]
    )
    db.schema.define_relationship("ChildOf", "Taxon", "Taxon")
    genus = db.schema.create("Taxon", name="Quercus", rank="genus").oid
    db.commit()
    with PrometheusServer(db) as server:
        yield server.url, db, genus


def request(url, method="GET", payload=None):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        url,
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=5) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def open_session(url):
    status, body = request(url + "/session", "POST", {})
    assert status == 201
    return body["session"]


class TestSessionLifecycle:
    def test_create_returns_token(self, served):
        url, *_ = served
        sid = open_session(url)
        assert len(sid) == 32

    def test_status_endpoint(self, served):
        url, *_ = served
        sid = open_session(url)
        status, body = request(f"{url}/session/{sid}")
        assert status == 200
        assert body["session"] == sid
        assert body["in_txn"] is False

    def test_unknown_session_404(self, served):
        url, *_ = served
        for action in ("", "/apply", "/commit", "/abort"):
            path = f"{url}/session/bogus{action}"
            status, body = (
                request(path)
                if not action
                else request(path, "POST", {"ops": []})
            )
            assert status == 404, action
            assert "unknown or expired" in body["error"]

    def test_release(self, served):
        url, *_ = served
        sid = open_session(url)
        status, body = request(f"{url}/session/{sid}/release", "POST", {})
        assert status == 200 and body["released"]
        status, _ = request(f"{url}/session/{sid}")
        assert status == 404


class TestApplyCommit:
    def test_staged_ops_commit_atomically(self, served):
        url, db, genus = served
        sid = open_session(url)
        status, body = request(
            f"{url}/session/{sid}/apply",
            "POST",
            {
                "ops": [
                    {
                        "op": "create",
                        "class": "Taxon",
                        "attrs": {"name": "Fagus", "rank": "genus"},
                    },
                    {"op": "set", "oid": genus, "attr": "rank", "value": "g"},
                    {"op": "get", "oid": genus},
                ]
            },
        )
        assert status == 200
        new_oid = body["results"][0]["oid"]
        assert body["results"][2]["values"]["rank"] == "g"  # read-your-writes
        # Nothing visible yet...
        assert not db.schema.has_object(new_oid)
        assert db.schema.get_object(genus).get("rank") == "genus"
        status, body = request(f"{url}/session/{sid}/commit", "POST", {})
        assert status == 200
        assert body["committed"] is True and body["commit_ts"] > 0
        assert db.schema.get_object(new_oid).get("name") == "Fagus"
        assert db.schema.get_object(genus).get("rank") == "g"

    def test_relate_and_delete_ops(self, served):
        url, db, genus = served
        sid = open_session(url)
        status, body = request(
            f"{url}/session/{sid}/apply",
            "POST",
            {
                "ops": [
                    {
                        "op": "create",
                        "class": "Taxon",
                        "attrs": {"name": "Q. robur", "rank": "species"},
                    },
                ]
            },
        )
        species = body["results"][0]["oid"]
        status, body = request(
            f"{url}/session/{sid}/apply",
            "POST",
            {
                "ops": [
                    {
                        "op": "relate",
                        "class": "ChildOf",
                        "origin": species,
                        "destination": genus,
                    }
                ]
            },
        )
        assert status == 200
        rel = body["results"][0]["oid"]
        request(f"{url}/session/{sid}/commit", "POST", {})
        assert db.schema.get_object(rel).origin_oid == species

    def test_abort_discards(self, served):
        url, db, genus = served
        sid = open_session(url)
        request(
            f"{url}/session/{sid}/apply",
            "POST",
            {"ops": [{"op": "set", "oid": genus, "attr": "rank", "value": "x"}]},
        )
        status, body = request(f"{url}/session/{sid}/abort", "POST", {})
        assert status == 200 and body["aborted"]
        assert db.schema.get_object(genus).get("rank") == "genus"

    def test_conflict_is_409_with_retry_hint(self, served):
        url, db, genus = served
        sid = open_session(url)
        request(
            f"{url}/session/{sid}/apply",
            "POST",
            {"ops": [{"op": "set", "oid": genus, "attr": "rank", "value": "a"}]},
        )
        with db.begin() as winner:
            winner.set(genus, "rank", "b")
        status, body = request(f"{url}/session/{sid}/commit", "POST", {})
        assert status == 409
        assert body["conflict"] is True and body["retry"] is True
        assert "begin a new transaction" in body["error"]
        # Session survives the conflict; a retry commits.
        request(
            f"{url}/session/{sid}/apply",
            "POST",
            {"ops": [{"op": "set", "oid": genus, "attr": "rank", "value": "c"}]},
        )
        status, body = request(f"{url}/session/{sid}/commit", "POST", {})
        assert status == 200
        assert db.schema.get_object(genus).get("rank") == "c"

    def test_bad_ops_rejected(self, served):
        url, _, genus = served
        sid = open_session(url)
        status, body = request(
            f"{url}/session/{sid}/apply", "POST", {"ops": [{"op": "nope"}]}
        )
        assert status == 400 and "unknown op" in body["error"]
        status, body = request(
            f"{url}/session/{sid}/apply", "POST", {"ops": [{"op": "create"}]}
        )
        assert status == 400 and "missing field" in body["error"]
        status, body = request(
            f"{url}/session/{sid}/apply", "POST", {"not_ops": 1}
        )
        assert status == 400

    def test_session_query_sees_committed_state(self, served):
        url, db, genus = served
        sid = open_session(url)
        request(
            f"{url}/session/{sid}/apply",
            "POST",
            {"ops": [{"op": "set", "oid": genus, "attr": "rank", "value": "z"}]},
        )
        status, body = request(
            f"{url}/session/{sid}/query",
            "POST",
            {"query": "select t.rank from t in Taxon"},
        )
        assert status == 200
        # Read-committed: the staged write is not query-visible.
        assert body["result"] == ["genus"]

    def test_autocommit_endpoints_unaffected(self, served):
        url, _, genus = served
        status, body = request(f"{url}/objects/{genus}")
        assert status == 200
        assert body["values"]["name"] == "Quercus"
        status, body = request(
            url + "/query",
            "POST",
            {"query": "select count(t) from t in Taxon"},
        )
        assert status == 200
