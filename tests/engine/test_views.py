"""Views layer: stored queries, materialization, classification views."""

import pytest

from repro.classification import ClassificationManager, GraphView
from repro.engine.views import ViewManager
from repro.errors import QueryError, SchemaError


@pytest.fixture
def views(schema):
    return ViewManager(schema, ClassificationManager(schema))


class TestDefinition:
    def test_define_and_evaluate(self, schema, views):
        schema.create("Person", name="Alice", age=30)
        schema.create("Person", name="Bob", age=10)
        views.define("adults", "select p from p in Person where p.age >= 18")
        result = views.evaluate("adults")
        assert [p.get("name") for p in result] == ["Alice"]

    def test_bad_query_rejected_eagerly(self, views):
        with pytest.raises(QueryError):
            views.define("broken", "select p.bogus from p in Person")

    def test_duplicate_name(self, schema, views):
        views.define("v", "select p from p in Person")
        with pytest.raises(SchemaError):
            views.define("v", "select p from p in Person")

    def test_drop_and_unknown(self, views):
        views.define("v", "select p from p in Person")
        views.drop("v")
        with pytest.raises(SchemaError):
            views.get("v")

    def test_names(self, views):
        views.define("b", "select p from p in Person")
        views.define("a", "select p from p in Person")
        assert views.names() == ["a", "b"]

    def test_parameterised_view(self, schema, views):
        schema.create("Person", name="Alice", age=30)
        views.define(
            "by_name", "select p from p in Person where p.name = $n"
        )
        assert len(views.evaluate("by_name", {"n": "Alice"})) == 1
        assert views.evaluate("by_name", {"n": "Zed"}) == []


class TestMaterialization:
    def test_cache_hit_and_invalidation(self, schema, views):
        schema.create("Person", name="Alice")
        view = views.define(
            "all", "select p from p in Person", materialized=True
        )
        first = views.evaluate("all")
        assert view.is_fresh
        assert view.refreshes == 1
        views.evaluate("all")
        assert view.refreshes == 1  # served from cache
        schema.create("Person", name="Bob")  # mutation invalidates
        assert not view.is_fresh
        second = views.evaluate("all")
        assert len(second) == len(first) + 1
        assert view.refreshes == 2

    def test_update_invalidates(self, schema, views):
        alice = schema.create("Person", name="Alice")
        view = views.define(
            "all", "select p.name from p in Person", materialized=True
        )
        views.evaluate("all")
        alice.set("name", "Alicia")
        assert not view.is_fresh
        assert views.evaluate("all") == ["Alicia"]

    def test_params_bypass_cache(self, schema, views):
        schema.create("Person", name="Alice")
        view = views.define(
            "by_name",
            "select p from p in Person where p.name = $n",
            materialized=True,
        )
        views.evaluate("by_name", {"n": "Alice"})
        assert not view.is_fresh  # parameterised calls are not cached


class TestClassificationViews:
    def test_whole_classification_as_graph(self, schema):
        manager = ClassificationManager(schema)
        views = ViewManager(schema, manager)
        alice = schema.create("Person", name="boss")
        bob = schema.create("Person", name="minion")
        acme = schema.create("Company", title="ACME")
        c = manager.create("org")
        c.add_edge(schema.relate("Owns", acme, alice))
        c.add_edge(schema.relate("Owns", acme, bob))
        view = views.classification_view("org")
        assert isinstance(view, GraphView)
        assert view.node_count == 3
        assert view.edge_count == 2

    def test_without_manager_rejected(self, schema):
        views = ViewManager(schema, None)
        with pytest.raises(SchemaError):
            views.classification_view("x")


class TestScopedInvalidation:
    """Class-scoped invalidation: unrelated mutations keep caches warm."""

    def test_dependencies_extracted(self, schema, views):
        view = views.define(
            "people",
            "select p from p in Person, c in p->WorksFor",
            materialized=True,
        )
        assert "Person" in view.depends_on
        assert "WorksFor" in view.depends_on
        assert "Company" in view.depends_on  # traversal endpoint

    def test_unrelated_class_does_not_invalidate(self, schema, views):
        view = views.define(
            "companies", "select c from c in Company", materialized=True
        )
        views.evaluate("companies")
        schema.create("Person", name="nobody")
        assert view.is_fresh  # Person mutations cannot change this view

    def test_dependent_class_invalidates(self, schema, views):
        view = views.define(
            "companies", "select c from c in Company", materialized=True
        )
        views.evaluate("companies")
        schema.create("Company", title="fresh")
        assert not view.is_fresh

    def test_subclass_mutation_invalidates_superclass_view(self, schema, views):
        view = views.define(
            "everyone", "select p from p in Person", materialized=True
        )
        views.evaluate("everyone")
        schema.create("Employee", name="e", salary=1.0)
        assert not view.is_fresh

    def test_relationship_mutation_invalidates_traversal_view(
        self, schema, views
    ):
        alice = schema.create("Person", name="a")
        acme = schema.create("Company", title="c")
        view = views.define(
            "employers",
            "select e from p in Person, e in p->WorksFor",
            materialized=True,
        )
        views.evaluate("employers")
        schema.relate("WorksFor", alice, acme)
        assert not view.is_fresh
        assert len(views.evaluate("employers")) == 1
