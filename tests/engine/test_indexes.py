"""Index layer: declaration, event-driven maintenance, probing."""

import pytest

from repro.engine.indexes import IndexManager
from repro.errors import SchemaError


@pytest.fixture
def indexes(schema):
    return IndexManager(schema)


class TestDeclaration:
    def test_create_hash_index(self, schema, indexes):
        schema.create("Person", name="Alice")
        index = indexes.create_index("Person", "name")
        assert len(index) == 1  # existing objects indexed at creation

    def test_unknown_attribute(self, schema, indexes):
        with pytest.raises(SchemaError):
            indexes.create_index("Person", "height")

    def test_duplicate_rejected(self, schema, indexes):
        indexes.create_index("Person", "name")
        with pytest.raises(SchemaError):
            indexes.create_index("Person", "name")

    def test_drop(self, schema, indexes):
        indexes.create_index("Person", "name")
        indexes.drop_index("Person", "name")
        assert indexes.probe("Person", "name", "x") is None


class TestMaintenance:
    def test_create_indexes_new_objects(self, schema, indexes):
        indexes.create_index("Person", "name")
        alice = schema.create("Person", name="Alice")
        assert indexes.probe("Person", "name", "Alice") == [alice]

    def test_update_moves_entry(self, schema, indexes):
        indexes.create_index("Person", "name")
        alice = schema.create("Person", name="Alice")
        alice.set("name", "Alicia")
        assert indexes.probe("Person", "name", "Alice") == []
        assert indexes.probe("Person", "name", "Alicia") == [alice]

    def test_delete_removes_entry(self, schema, indexes):
        indexes.create_index("Person", "name")
        alice = schema.create("Person", name="Alice")
        schema.delete(alice)
        assert indexes.probe("Person", "name", "Alice") == []

    def test_subclass_instances_indexed(self, schema, indexes):
        indexes.create_index("Person", "name")
        employee = schema.create("Employee", name="Bob", salary=1.0)
        assert indexes.probe("Person", "name", "Bob") == [employee]

    def test_relationship_attribute_index(self, schema, indexes):
        indexes.create_index("WorksFor", "since")
        alice = schema.create("Person", name="A")
        acme = schema.create("Company", title="C")
        rel = schema.relate("WorksFor", alice, acme, since=1999)
        assert indexes.probe("WorksFor", "since", 1999) == [rel]
        schema.unrelate(rel)
        assert indexes.probe("WorksFor", "since", 1999) == []

    def test_unindexed_probe_returns_none(self, schema, indexes):
        assert indexes.probe("Person", "name", "x") is None


class TestBTreeIndexes:
    def test_range_query(self, schema, indexes):
        indexes.create_index("Person", "age", kind="btree")
        people = [
            schema.create("Person", name=f"p{i}", age=i * 10)
            for i in range(6)
        ]
        result = indexes.range("Person", "age", 15, 40)
        assert result == [people[2], people[3], people[4]]

    def test_range_requires_btree(self, schema, indexes):
        indexes.create_index("Person", "name", kind="hash")
        with pytest.raises(SchemaError):
            indexes.range("Person", "name", "a", "z")

    def test_null_values_probed(self, schema, indexes):
        indexes.create_index("Person", "age", kind="btree")
        ageless = schema.create("Person", name="x")
        assert indexes.probe("Person", "age", None) == [ageless]

    def test_btree_update(self, schema, indexes):
        indexes.create_index("Person", "age", kind="btree")
        p = schema.create("Person", name="x", age=10)
        p.set("age", 20)
        assert indexes.probe("Person", "age", 10) == []
        assert indexes.probe("Person", "age", 20) == [p]


class TestStatistics:
    def test_probe_counter(self, schema, indexes):
        index = indexes.create_index("Person", "name")
        indexes.probe("Person", "name", "a")
        indexes.probe("Person", "name", "b")
        assert index.probes == 2

    def test_index_listing(self, schema, indexes):
        indexes.create_index("Person", "name")
        indexes.create_index("Person", "age", kind="btree")
        names = [i.name for i in indexes.indexes()]
        assert names == ["Person.age[btree]", "Person.name[hash]"]
