"""Seeded consistency stress: 4 writers + 8 readers across replicas.

Each seed stands up a primary with two live pull-replicating replicas
and a :class:`~repro.replication.router.ReadRouter` over all three.
Rounds of 4 writer threads (disjoint key sets, so per-key order is
total) and 8 reader threads (random staleness bounds; some write first
and then demand read-your-writes via ``min_lsn``) record every
client-visible operation into a :class:`~tests.replication.checker.History`,
which :func:`~tests.replication.checker.verify` judges after the round
joins.  Any violation is shrunk to its minimal core before failing.

3 fixed seeds x 70 rounds = 210 verified histories per run (+70 more
from the ``GITHUB_RUN_ID``-derived seed in CI).
"""

import os
import threading

import pytest

from . import checker
from .checker import History, ReadRec, Violation, WriteRec, UNBOUNDED
from .conftest import make_primary, make_replica
from repro.replication import LogShipper, ReadNode, ReadRouter

FIXED_SEEDS = (20260806, 1337, 424242)
ROUNDS = 70
SEEDS = checker.derive_seeds(FIXED_SEEDS, os.environ.get("GITHUB_RUN_ID"))
BOUNDS = (0.0, 64.0, 256.0, 4096.0, UNBOUNDED)


class TestCheckerSelfTest:
    """The checker must catch planted violations and shrink to them."""

    def _clean_history(self):
        return History(
            writes=[
                WriteRec("k", 1, lsn=100, writer="w0"),
                WriteRec("k", 2, lsn=200, writer="w0"),
                WriteRec("j", 9, lsn=150, writer="w1"),
            ],
            reads=[
                ReadRec("k", 2, "r1", 210, 210, 220),
                ReadRec("k", 1, "r2", 150, 160, 170, bound=UNBOUNDED),
                ReadRec("j", None, "r1", 120, 130, 140, bound=UNBOUNDED),
            ],
        )

    def test_consistent_history_has_no_violations(self):
        assert checker.verify(self._clean_history()) == []

    def test_stale_node_detected(self):
        h = self._clean_history()
        h.reads.append(ReadRec("k", 2, "r1", 90, 210, 220, bound=50.0))
        kinds = [v.kind for v in checker.verify(h)]
        assert "stale-node" in kinds

    def test_stale_read_detected(self):
        # Bound 10 around primary LSN 250 admits only value 2; seeing 1
        # violates the staleness bound.
        h = self._clean_history()
        h.reads.append(ReadRec("k", 1, "r1", 245, 250, 260, bound=10.0))
        kinds = [v.kind for v in checker.verify(h)]
        assert kinds == ["stale-read"]

    def test_read_your_writes_detected(self):
        # The session committed value 2 at LSN 200 and said min_lsn=200;
        # seeing value 1 afterwards breaks read-your-writes.
        h = self._clean_history()
        h.reads.append(ReadRec("k", 1, "r1", 205, 210, 220, min_lsn=200))
        report = checker.verify(h)
        assert [v.kind for v in report] == ["stale-read"]

    def test_phantom_detected(self):
        h = self._clean_history()
        h.reads.append(ReadRec("k", 777, "r1", 210, 210, 220))
        kinds = [v.kind for v in checker.verify(h)]
        assert kinds == ["phantom"]

    def test_future_read_detected(self):
        # Value 2 only exists from LSN 200, but the read's window closed
        # at 180 — the replica served data from the future of its own
        # reported LSN (e.g. a torn batch became visible early).
        h = self._clean_history()
        h.reads.append(ReadRec("k", 2, "r1", 150, 160, 180, bound=UNBOUNDED))
        kinds = [v.kind for v in checker.verify(h)]
        assert kinds == ["future-read"]

    def test_missing_write_detected_for_none_read(self):
        # Bound 50 around primary LSN 250 puts the floor at 200, past
        # the key's first write — "not found" is no longer an answer.
        h = self._clean_history()
        h.reads.append(ReadRec("k", None, "r1", 250, 250, 260, bound=50.0))
        kinds = [v.kind for v in checker.verify(h)]
        assert kinds == ["stale-read"]

    def test_unbounded_none_read_is_legal(self):
        # With no staleness bound and no read-your-writes floor, an
        # empty replica may legally answer "not found".
        h = self._clean_history()
        h.reads.append(ReadRec("k", None, "r1", 250, 250, 260))
        assert checker.verify(h) == []

    def test_shrinker_reduces_to_minimal_core(self):
        h = self._clean_history()
        h.reads.append(ReadRec("k", 777, "r1", 210, 210, 220))
        minimal = checker.shrink(h, lambda c: bool(checker.verify(c)))
        # One phantom read, zero supporting writes, is the whole story.
        assert len(minimal.reads) == 1
        assert minimal.reads[0].value == 777
        assert minimal.writes == []
        assert "phantom" in checker.minimal_violation(h)

    def test_shrinker_keeps_required_writes(self):
        # A stale read needs the two writes that bracket the window to
        # stay violating; the shrinker must keep the newer write (which
        # ends value 1's validity) and may drop everything else.
        h = History(
            writes=[
                WriteRec("k", 1, lsn=100),
                WriteRec("k", 2, lsn=200),
                WriteRec("unrelated", 5, lsn=120),
            ],
            reads=[
                ReadRec("k", 1, "r1", 245, 250, 260, bound=10.0),
                ReadRec("k", 2, "r1", 255, 250, 260),
            ],
        )
        still_stale = lambda c: any(  # noqa: E731 - tiny predicate
            v.kind == "stale-read" for v in checker.verify(c)
        )
        minimal = checker.shrink(h, still_stale)
        assert len(minimal.reads) == 1
        assert minimal.reads[0].value == 1
        # Both writes are load-bearing: the first creates value 1, the
        # second ends its validity before the window; only the
        # unrelated-key write gets dropped.
        assert [(w.key, w.value) for w in sorted(minimal.writes, key=lambda w: w.lsn)] == [
            ("k", 1),
            ("k", 2),
        ]


class Harness:
    """One seed's topology: primary, two live replicas, a router."""

    WRITERS = 4
    READERS = 8
    KEYS_PER_WRITER = 3

    def __init__(self, tmp_path, seed: int) -> None:
        self.rng = checker.make_rng(seed)
        self.seed = seed
        self.primary = make_primary(tmp_path, f"primary-{seed}")
        self.shipper = LogShipper(self.primary.store)
        self.replicas = []
        for i in range(2):
            rdb, applier, client = make_replica(
                tmp_path, self.shipper, f"replica-{i}"
            )
            client.poll_wait_s = 0.2
            client.start()
            self.replicas.append((rdb, applier, client))
        self.router = ReadRouter(
            ReadNode(
                "primary",
                self._primary_query,
                lambda: self.primary.store.commit_lsn,
                is_primary=True,
            )
        )
        for i, (_, applier, _) in enumerate(self.replicas):
            self.router.add_replica(
                ReadNode(
                    f"replica-{i}",
                    applier.query,
                    lambda a=applier: a.applied_lsn,
                )
            )
        self.oids: dict[str, int] = {}
        self.counters: dict[str, int] = {}
        self.writes: list[WriteRec] = []

    def _primary_query(self, text, params):
        # Serialize with commits so the primary never exposes a
        # half-replayed batch to the router.
        with self.primary.transactions.read_lock():
            return self.primary.query(text, params=params)

    def close(self) -> None:
        for rdb, _, client in self.replicas:
            client.stop()
            rdb.close()
        self.primary.close()

    # -- one recorded write -------------------------------------------------

    def write(self, key: str, who: str) -> WriteRec:
        value = self.counters.get(key, 0) + 1
        self.counters[key] = value
        txn = self.primary.transactions.begin()
        oid = self.oids.get(key)
        if oid is None:
            oid = txn.create("Entry", key=key, value=value)
        else:
            txn.set(oid, "value", value)
        txn.commit()
        self.oids[key] = oid
        record = WriteRec(key, value, lsn=txn.commit_lsn, writer=who)
        self.writes.append(record)
        return record

    # -- one recorded, routed read -----------------------------------------

    def read(self, rng, key: str, who: str, min_lsn: int = 0) -> ReadRec:
        bound = rng.choice(BOUNDS)
        routed = self.router.query(
            f'select e.value from e in Entry where e.key = "{key}"',
            staleness_bytes=bound,
            min_lsn=min_lsn,
        )
        post = self.primary.store.commit_lsn
        value = routed.result[0] if routed.result else None
        return ReadRec(
            key=key,
            value=value,
            node=routed.node,
            node_lsn=routed.node_lsn,
            primary_lsn=routed.primary_lsn,
            post_lsn=post,
            bound=bound,
            min_lsn=min_lsn,
            reader=who,
        )

    # -- one round: 4 writers + 8 readers, then verify ----------------------

    def round(self, round_no: int) -> History:
        reads: list[ReadRec] = []
        failures: list[BaseException] = []
        writer_keys = [
            [f"w{w}-k{j}" for j in range(self.KEYS_PER_WRITER)]
            for w in range(self.WRITERS)
        ]
        all_keys = [k for keys in writer_keys for k in keys]

        def writer(w: int, rng) -> None:
            try:
                for _ in range(rng.randint(1, 3)):
                    self.write(rng.choice(writer_keys[w]), who=f"w{w}")
            except BaseException as exc:  # noqa: BLE001 - reported below
                failures.append(exc)

        def reader(r: int, rng) -> None:
            try:
                name = f"r{r}"
                for _ in range(rng.randint(1, 3)):
                    min_lsn = 0
                    key = rng.choice(all_keys)
                    if rng.random() < 0.25:
                        # Write through our own key, then insist on
                        # reading our own write back (min_lsn floor).
                        key = f"{name}-own"
                        min_lsn = self.write(key, who=name).lsn
                    reads.append(self.read(rng, key, name, min_lsn=min_lsn))
            except BaseException as exc:  # noqa: BLE001 - reported below
                failures.append(exc)

        threads = [
            threading.Thread(
                target=writer,
                args=(w, checker.make_rng(self.rng.getrandbits(64))),
            )
            for w in range(self.WRITERS)
        ] + [
            threading.Thread(
                target=reader,
                args=(r, checker.make_rng(self.rng.getrandbits(64))),
            )
            for r in range(self.READERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive(), f"round {round_no} wedged"
        if failures:
            raise failures[0]
        return History(writes=list(self.writes), reads=reads)


@pytest.mark.parametrize("seed", SEEDS)
def test_seeded_consistency(tmp_path, seed):
    harness = Harness(tmp_path, seed)
    try:
        for round_no in range(ROUNDS):
            history = harness.round(round_no)
            violations = checker.verify(history)
            if violations:
                pytest.fail(
                    f"seed {seed} round {round_no}: "
                    f"{len(violations)} violation(s)\n"
                    + checker.minimal_violation(history)
                )
        # Quiesce: after a final catch-up every replica is a
        # byte-identical copy of the primary.
        want = harness.primary.store.fingerprint()
        for rdb, _, client in harness.replicas:
            client.stop()
            client.catch_up()
            assert rdb.store.fingerprint() == want
        served = {
            name: node["reads"]
            for name, node in harness.router.status()["replicas"].items()
        }
        total = sum(served.values())
        assert total > 0, "no read was ever served by a replica"
    finally:
        harness.close()


def test_history_volume_meets_floor():
    """The suite verifies >= 200 seeded histories per full run."""
    assert len(FIXED_SEEDS) * ROUNDS >= 200
