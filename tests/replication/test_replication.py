"""Unit tests for the log-shipping building blocks.

Frame codec round-trips and rejections, shipper pull statuses,
duplicate/gap handling in the applier, divergence reset, and the
background pull loop — each piece in isolation before the stress
harness composes them.
"""

import threading

import pytest

from repro.errors import DivergedError, ReplicationError
from repro.replication import (
    BASE_LSN,
    LogShipper,
    ReadNode,
    ReadRouter,
    decode_frame,
    encode_frame,
)

from .conftest import make_replica


def write_entry(db, key: str, value: int) -> int:
    txn = db.transactions.begin()
    oid = txn.create("Entry", key=key, value=value)
    txn.commit()
    return oid


class TestFrameCodec:
    def test_round_trip(self):
        frame = encode_frame(18, 25, b"payload")
        assert decode_frame(frame) == (18, 25, b"payload", 0)

    def test_round_trip_with_epoch(self):
        frame = encode_frame(18, 25, b"payload", epoch=7)
        assert decode_frame(frame) == (18, 25, b"payload", 7)

    def test_v1_frame_decodes_with_epoch_zero(self):
        import struct
        import zlib

        head = struct.Struct(">4sBQQI").pack(
            b"PLSB", 1, 18, 25, zlib.crc32(b"payload")
        )
        assert decode_frame(head + b"payload") == (18, 25, b"payload", 0)

    def test_short_frame_rejected(self):
        with pytest.raises(ReplicationError, match="short frame"):
            decode_frame(b"PL")

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(18, 25, b"payload"))
        frame[0:4] = b"XXXX"
        with pytest.raises(ReplicationError, match="magic"):
            decode_frame(bytes(frame))

    def test_length_mismatch_rejected(self):
        frame = encode_frame(18, 25, b"payload") + b"extra"
        with pytest.raises(ReplicationError, match="length mismatch"):
            decode_frame(frame)

    def test_torn_payload_rejected(self):
        frame = bytearray(encode_frame(18, 25, b"payload"))
        frame[-1] ^= 0xFF
        with pytest.raises(ReplicationError, match="checksum"):
            decode_frame(bytes(frame))


class TestShipper:
    def test_empty_when_caught_up(self, primary, shipper):
        status, frame = shipper.pull(primary.store.commit_lsn)
        assert status == "empty" and frame is None

    def test_frame_covers_new_commits(self, primary, shipper):
        write_entry(primary, "a", 1)
        status, frame = shipper.pull(BASE_LSN, replica="r")
        assert status == "frame"
        from_lsn, to_lsn, payload, _ = decode_frame(frame)
        assert from_lsn == BASE_LSN
        assert to_lsn == primary.store.commit_lsn
        assert payload == primary.store.read_log_bytes(from_lsn, to_lsn)
        assert shipper.replicas()["r"].bytes_shipped == len(payload)

    def test_ahead_replica_is_diverged(self, primary, shipper):
        status, _ = shipper.pull(primary.store.commit_lsn + 1000)
        assert status == "diverged"

    def test_bad_prefix_crc_is_diverged(self, primary, shipper):
        write_entry(primary, "a", 1)
        lsn = primary.store.commit_lsn
        good = shipper.prefix_crc(lsn)
        assert shipper.pull(lsn, prefix_crc=good)[0] == "empty"
        assert shipper.pull(lsn, prefix_crc=good ^ 1)[0] == "diverged"

    def test_max_bytes_chunks_but_stays_aligned(self, primary, shipper):
        for i in range(20):
            write_entry(primary, f"k{i}", i)
        cursor, chunks = BASE_LSN, 0
        while True:
            status, frame = shipper.pull(cursor, max_bytes=128)
            if status == "empty":
                break
            _, to_lsn, payload, _ = decode_frame(frame)
            assert len(payload) <= 128 or chunks == 0
            cursor = to_lsn
            chunks += 1
        assert cursor == primary.store.commit_lsn
        assert chunks > 1

    def test_lag_tracks_acked_cursor(self, primary, shipper):
        write_entry(primary, "a", 1)
        shipper.pull(BASE_LSN, replica="r")
        assert shipper.lag_bytes()["r"] == primary.store.commit_lsn - BASE_LSN
        shipper.pull(primary.store.commit_lsn, replica="r")
        assert shipper.lag_bytes()["r"] == 0


class TestApplier:
    def test_catch_up_is_byte_identical(self, primary, shipper, replica):
        rdb, applier, client = replica
        for i in range(5):
            write_entry(primary, f"k{i}", i)
        client.catch_up()
        assert applier.applied_lsn == primary.store.commit_lsn
        assert rdb.store.fingerprint() == primary.store.fingerprint()
        assert rdb.query("select count(e) from e in Entry") == [5]

    def test_duplicate_frame_is_noop(self, primary, shipper, replica):
        _, applier, client = replica
        write_entry(primary, "a", 1)
        _, frame = shipper.pull(BASE_LSN)
        assert applier.apply_frame(frame) is not None
        assert applier.apply_frame(frame) is None  # exact duplicate
        assert applier.batches_applied == 1

    def test_overlapping_frame_is_trimmed(self, primary, shipper, replica):
        rdb, applier, client = replica
        write_entry(primary, "a", 1)
        mid = primary.store.commit_lsn
        client.catch_up()
        write_entry(primary, "b", 2)
        # A frame that re-ships from the very beginning overlaps
        # everything already applied; only the tail must be spliced.
        _, frame = shipper.pull(BASE_LSN)
        applier.apply_frame(frame)
        assert rdb.store.fingerprint() == primary.store.fingerprint()
        assert rdb.query("select count(e) from e in Entry") == [2]

    def test_gap_frame_is_rejected(self, primary, shipper, replica):
        _, applier, _ = replica
        write_entry(primary, "a", 1)
        first_end = primary.store.commit_lsn
        write_entry(primary, "b", 2)
        _, frame = shipper.pull(first_end)  # replica never applied [18, mid)
        with pytest.raises(ReplicationError, match="gap"):
            applier.apply_frame(frame)

    def test_update_and_delete_replicate(self, primary, shipper, replica):
        rdb, _, client = replica
        oid = write_entry(primary, "a", 1)
        client.catch_up()
        txn = primary.transactions.begin()
        txn.set(oid, "value", 42)
        txn.commit()
        client.catch_up()
        assert rdb.query('select e.value from e in Entry where e.key = "a"') == [42]
        txn = primary.transactions.begin()
        txn.delete(oid)
        txn.commit()
        client.catch_up()
        assert rdb.query("select count(e) from e in Entry") == [0]
        assert rdb.store.fingerprint() == primary.store.fingerprint()

    def test_replica_refuses_local_writes(self, primary, replica):
        rdb, _, _ = replica
        from repro.errors import TransactionError

        txn = rdb.transactions.begin()
        txn.create("Entry", key="x", value=1)
        with pytest.raises(TransactionError):
            txn.commit()

    def test_compaction_divergence_forces_resync(
        self, primary, shipper, replica
    ):
        rdb, applier, client = replica
        oid = write_entry(primary, "a", 1)
        write_entry(primary, "b", 2)
        client.catch_up()
        txn = primary.transactions.begin()
        txn.delete(oid)
        txn.commit()
        primary.store.compact()
        with pytest.raises(DivergedError):
            client.pull_once()
        assert applier.resyncs == 1
        assert rdb.store.commit_lsn == BASE_LSN
        assert rdb.query("select count(e) from e in Entry") == [0]
        client.catch_up()
        assert rdb.store.fingerprint() == primary.store.fingerprint()
        assert rdb.query('select e.value from e in Entry where e.key = "b"') == [2]

    def test_background_loop_follows_commits(self, primary, shipper, replica):
        rdb, applier, client = replica
        client.poll_wait_s = 0.5
        client.start()
        try:
            write_entry(primary, "live", 7)
            target = primary.store.commit_lsn
            deadline = threading.Event()
            for _ in range(200):
                if applier.applied_lsn >= target:
                    break
                deadline.wait(0.05)
            assert applier.applied_lsn == target
            assert rdb.query(
                'select e.value from e in Entry where e.key = "live"'
            ) == [7]
        finally:
            client.stop()


class TestRouter:
    def _node(self, name, lsn_holder, results, primary=False):
        return ReadNode(
            name=name,
            query_fn=lambda text, params: results[name],
            lsn_fn=lambda: lsn_holder[name],
            is_primary=primary,
        )

    def test_prefers_fresh_replica_and_round_robins(self):
        lsns = {"p": 100, "r1": 100, "r2": 100}
        results = {"p": "p", "r1": "r1", "r2": "r2"}
        router = ReadRouter(self._node("p", lsns, results, primary=True))
        router.add_replica(self._node("r1", lsns, results))
        router.add_replica(self._node("r2", lsns, results))
        served = {router.query("q").node for _ in range(4)}
        assert served == {"r1", "r2"}

    def test_stale_replica_falls_back_to_primary(self):
        lsns = {"p": 100, "r1": 10}
        results = {"p": "p", "r1": "r1"}
        router = ReadRouter(self._node("p", lsns, results, primary=True))
        router.add_replica(self._node("r1", lsns, results))
        routed = router.query("q", staleness_bytes=50)
        assert routed.node == "p"
        assert routed.reason == "no-replica-fresh-enough"
        lsns["r1"] = 60  # within the 50-byte bound now
        assert router.query("q", staleness_bytes=50).node == "r1"

    def test_read_your_writes_floor(self):
        lsns = {"p": 100, "r1": 80}
        results = {"p": "p", "r1": "r1"}
        router = ReadRouter(self._node("p", lsns, results, primary=True))
        router.add_replica(self._node("r1", lsns, results))
        routed = router.query("q", staleness_bytes=1e9, min_lsn=90)
        assert routed.node == "p"
        assert routed.reason == "read-your-writes"
        lsns["r1"] = 95
        assert router.query("q", staleness_bytes=1e9, min_lsn=90).node == "r1"

    def test_replica_error_falls_back(self):
        lsns = {"p": 100, "r1": 100}

        def boom(text, params):
            raise RuntimeError("replica down")

        router = ReadRouter(
            ReadNode("p", lambda t, p: "p", lambda: lsns["p"], is_primary=True)
        )
        bad = ReadNode("r1", boom, lambda: lsns["r1"])
        router.add_replica(bad)
        routed = router.query("q")
        assert routed.node == "p"
        assert routed.reason == "replica-error-fallback"
        assert bad.errors == 1
