"""Recursive POOL traversal on a lagging replica is snapshot-consistent.

A replica that is *behind* the primary is fine; a replica that shows a
*mix* of two commits is not.  The recursive closure operator makes the
difference observable: it touches many relationship instances in one
query, so a half-applied batch would surface as a tree with dangling or
extra edges.  These tests pin both properties — a lagging replica
answers with exactly its watermark's tree, and a traversal racing the
applier only ever sees whole commits.
"""

import threading

import pytest

from repro.engine import PrometheusDB
from repro.replication import LogShipper, ReplicaApplier, ReplicationClient


def declare_tree(db: PrometheusDB) -> None:
    from repro.core import types as T
    from repro.core.attributes import Attribute

    db.schema.define_class("Node", [Attribute("name", T.STRING)])
    db.schema.define_relationship("Child", "Node", "Node")


CLOSURE = (
    "select x.name from n in Node, x in n->Child* "
    'where n.name = "root" order by x.name'
)


@pytest.fixture
def tree_primary(tmp_path):
    db = PrometheusDB(tmp_path / "primary.plog")
    declare_tree(db)
    db.load()
    txn = db.transactions.begin()
    root = txn.create("Node", name="root")
    for limb in ("left", "right"):
        node = txn.create("Node", name=limb)
        txn.relate("Child", root, node)
        for leaf in ("a", "b"):
            child = txn.create("Node", name=f"{limb}-{leaf}")
            txn.relate("Child", node, child)
    txn.commit()
    yield db
    db.close()


def make_tree_replica(tmp_path, shipper, name="replica"):
    db = PrometheusDB(tmp_path / f"{name}.plog", read_only=True)
    declare_tree(db)
    db.load()
    applier = ReplicaApplier(db)
    client = ReplicationClient(applier, shipper, name=name)
    return db, applier, client


STATE_A = ["left", "left-a", "left-b", "right", "right-a", "right-b", "root"]
STATE_B = sorted(STATE_A + ["right-c", "right-c-deep"])


def grow_tree(db: PrometheusDB) -> None:
    """One atomic commit: a new subtree under "right"."""
    [right] = db.query('select n from n in Node where n.name = "right"')
    txn = db.transactions.begin()
    new = txn.create("Node", name="right-c")
    txn.relate("Child", right.oid, new)
    deep = txn.create("Node", name="right-c-deep")
    txn.relate("Child", new, deep)
    txn.commit()


def test_lagging_replica_serves_its_watermark_tree(tmp_path, tree_primary):
    shipper = LogShipper(tree_primary.store)
    rdb, applier, client = make_tree_replica(tmp_path, shipper)
    client.catch_up()
    watermark = applier.applied_lsn
    assert applier.query(CLOSURE) == STATE_A

    # The primary moves on; the replica does not pull.
    grow_tree(tree_primary)
    assert tree_primary.query(CLOSURE) == STATE_B
    assert applier.applied_lsn == watermark < tree_primary.store.commit_lsn

    # Lagging is visible in the LSN, never in the tree's shape: the
    # closure is exactly the watermark state, no partial subtree.
    assert applier.query(CLOSURE) == STATE_A

    client.catch_up()
    assert applier.query(CLOSURE) == STATE_B
    assert rdb.store.fingerprint() == tree_primary.store.fingerprint()
    rdb.close()


def test_traversal_racing_the_applier_sees_whole_commits(
    tmp_path, tree_primary
):
    # Ship in tiny frames so transactions straddle several applies —
    # the worst case for a reader racing the applier.
    shipper = LogShipper(tree_primary.store, max_bytes=128)
    rdb, applier, client = make_tree_replica(tmp_path, shipper)
    client.catch_up()
    grow_tree(tree_primary)

    seen: list[list[str]] = []
    stop = threading.Event()

    def traverse() -> None:
        while not stop.is_set():
            with applier.read_lock():
                seen.append(applier.db.query(CLOSURE))

    reader = threading.Thread(target=traverse)
    reader.start()
    try:
        client.catch_up()
    finally:
        stop.set()
        reader.join(timeout=30)
    assert not reader.is_alive()

    assert seen, "the racing reader never ran"
    for closure in seen:
        assert closure in (STATE_A, STATE_B), (
            f"torn traversal: {closure!r} is neither commit's tree"
        )
    assert seen[-1] == STATE_B or applier.query(CLOSURE) == STATE_B
    rdb.close()


def test_traversal_blocks_while_a_batch_is_mid_apply(tmp_path, tree_primary):
    """The RWLock keeps the closure out of a half-refreshed model."""
    shipper = LogShipper(tree_primary.store)
    rdb, applier, client = make_tree_replica(tmp_path, shipper)
    client.catch_up()
    grow_tree(tree_primary)

    status, frame = shipper.pull(rdb.store.replication_position)
    assert status == "frame"
    in_write = threading.Event()
    release = threading.Event()
    original = applier._refresh_model

    def stalled_refresh(batch):
        in_write.set()
        release.wait(timeout=30)
        return original(batch)

    applier._refresh_model = stalled_refresh
    applying = threading.Thread(target=applier.apply_frame, args=(frame,))
    applying.start()
    try:
        assert in_write.wait(timeout=10)
        # The applier holds the write lock mid-batch: a traversal now
        # must wait rather than observe the half-refreshed tree.
        result: list[list[str]] = []
        reading = threading.Thread(
            target=lambda: result.append(applier.query(CLOSURE))
        )
        reading.start()
        reading.join(timeout=0.3)
        assert reading.is_alive(), "query slipped past the write lock"
        release.set()
        reading.join(timeout=30)
        assert result == [STATE_B]
    finally:
        release.set()
        applying.join(timeout=30)
        applier._refresh_model = original
    assert not applying.is_alive()
    rdb.close()
