"""Replication crash-equivalence sweep: kill the stream anywhere, converge.

The scripted workload is replicated once under an empty
:class:`FaultPlan` to count every write/flush/fsync the *replica's* log
performs while applying shipped frames.  The sweep then re-replicates
once per counted operation with a crash injected exactly there —
mid-frame, mid-batch, between flushes — reopens the replica from its
(possibly torn) log, resumes pulling from wherever recovery landed, and
requires the end state to be **byte-identical** to a replica that
caught up from empty without any faults.  Torn transport frames (the
network-cut analogue) are covered separately: they must never reach the
log at all.
"""

import pytest

from repro.engine import PrometheusDB
from repro.errors import ReplicationError
from repro.replication import LogShipper, ReplicaApplier, ReplicationClient
from repro.storage import FaultPlan, InjectedCrash, InjectedFault, sweep_points

from .conftest import declare

#: Small frame ceiling so the workload ships as many separate frames —
#: and therefore distinct crash windows — as possible.  It must stay
#: above the largest single log entry (~73 bytes here) or no frame can
#: ever make progress; the client raises on that misconfiguration.
FRAME_BYTES = 96

QUERY = "select e.key, e.value from e in Entry order by e.key"


def build_primary(tmp_path):
    db = PrometheusDB(tmp_path / "primary.plog")
    declare(db)
    db.load()
    oids = {}
    for i in range(6):
        txn = db.transactions.begin()
        for j in range(3):
            key = f"k{i}-{j}"
            oids[key] = txn.create("Entry", key=key, value=i * 10 + j)
        txn.commit()
    txn = db.transactions.begin()
    txn.set(oids["k0-0"], "value", 999)
    txn.delete(oids["k1-1"])
    txn.commit()
    return db


def open_replica(path, shipper, name, faults=None):
    db = PrometheusDB(path, read_only=True, faults=faults)
    declare(db)
    db.load()
    applier = ReplicaApplier(db)
    client = ReplicationClient(applier, shipper, name=name)
    return db, client


def test_crash_sweep_converges_byte_identically(tmp_path):
    primary = build_primary(tmp_path)
    shipper = LogShipper(primary.store, max_bytes=FRAME_BYTES)
    want_fingerprint = primary.store.fingerprint()

    # The fault-free reference: catch up from empty, no injection.
    reference, ref_client = open_replica(
        tmp_path / "reference.plog", shipper, "reference"
    )
    ref_client.catch_up()
    assert reference.store.fingerprint() == want_fingerprint
    want_rows = reference.query(QUERY)
    assert len(want_rows) == 17  # 18 created, 1 deleted
    reference.close()

    # Probe run: count every log operation the apply path performs.
    probe = FaultPlan()
    probe_db, probe_client = open_replica(
        tmp_path / "probe.plog", shipper, "probe", faults=probe
    )
    probe_client.catch_up()
    assert probe_db.store.fingerprint() == want_fingerprint
    probe_db.close()

    points = list(sweep_points(probe.snapshot_counts()))
    assert len(points) >= 10, "workload too small to sweep meaningfully"

    crashed = 0
    for op, index in points:
        path = tmp_path / f"sweep-{op}-{index}.plog"
        plan = FaultPlan(seed=index).crash(op, at=index)
        db = None
        try:
            # The crash can fire as early as the header write at open.
            db, client = open_replica(path, shipper, f"sweep-{op}-{index}",
                                      faults=plan)
            client.catch_up()
        except InjectedCrash:
            crashed += 1
        if db is not None:
            try:
                db.close()
            except InjectedFault:
                pass  # the plan is dead; the file dies with the process

        # "Restart": reopen the torn log fresh, recover, resume pulling
        # from wherever the recovered position landed.
        db, client = open_replica(path, shipper, f"recover-{op}-{index}")
        client.catch_up()
        assert db.store.fingerprint() == want_fingerprint, (
            f"crash at {op}#{index}: recovered replica diverged"
        )
        assert db.query(QUERY) == want_rows
        db.close()

    assert crashed >= len(points) - 3, (
        "almost every sweep point should actually crash the apply stream"
    )
    primary.close()


def test_torn_transport_frame_never_reaches_the_log(tmp_path):
    """A frame cut mid-flight fails checksum and is fully discarded."""
    primary = build_primary(tmp_path)
    shipper = LogShipper(primary.store)

    class TearingTransport:
        """Truncates the first N pulls, then delivers intact."""

        def __init__(self, shipper, tears: int) -> None:
            self.shipper = shipper
            self.tears = tears

        def pull(self, from_lsn, prefix_crc=None, wait_s=0.0,
                 max_bytes=None, replica=""):
            status, frame = self.shipper.pull(
                from_lsn, prefix_crc=prefix_crc, wait_s=wait_s,
                max_bytes=max_bytes, replica=replica,
            )
            if status == "frame" and self.tears > 0:
                self.tears -= 1
                return status, frame[: len(frame) // 2]
            return status, frame

    db = PrometheusDB(tmp_path / "replica.plog", read_only=True)
    declare(db)
    db.load()
    applier = ReplicaApplier(db)
    client = ReplicationClient(
        applier, TearingTransport(shipper, tears=3), name="torn"
    )
    before = db.store.fingerprint()
    for _ in range(3):
        with pytest.raises(ReplicationError):
            client.pull_once()
        # Nothing of the torn frame may have landed.
        assert db.store.fingerprint() == before
        assert db.store.replication_position == client._position()
    # The "reconnect": the next pull delivers intact and converges.
    client.catch_up()
    assert db.store.fingerprint() == primary.store.fingerprint()
    assert db.query(QUERY) == primary.query(QUERY)
    db.close()
    primary.close()
