"""ReadRouter edge cases: degraded replica sets and routing floors.

The happy paths live in ``test_replication.py``; these pin the
behaviour at the edges the failover machinery creates — every replica
too stale, the replica set shrinking to nothing mid-read, a
read-your-writes floor beyond even the primary's LSN, and primary
re-election via :meth:`set_primary`.
"""

from repro.replication import ReadNode, ReadRouter


def node(name, lsns, results=None, primary=False, errors=None):
    def query(text, params):
        if errors and name in errors:
            raise RuntimeError(f"{name} down")
        return (results or {}).get(name, name)

    return ReadNode(
        name=name,
        query_fn=query,
        lsn_fn=lambda: lsns[name],
        is_primary=primary,
    )


class TestStalenessEdges:
    def test_every_replica_over_the_floor_falls_to_primary(self):
        lsns = {"p": 1000, "r1": 10, "r2": 20}
        router = ReadRouter(node("p", lsns, primary=True))
        router.add_replica(node("r1", lsns))
        router.add_replica(node("r2", lsns))
        routed = router.query("q", staleness_bytes=100)
        assert routed.node == "p"
        assert routed.reason == "no-replica-fresh-enough"

    def test_min_lsn_beyond_primary_still_serves_primary(self):
        # A client may carry a commit LSN from a *newer* primary than
        # the node set we route over (mid-failover).  The primary is
        # still the best answer — the router must not error or loop.
        lsns = {"p": 100, "r1": 100}
        router = ReadRouter(node("p", lsns, primary=True))
        router.add_replica(node("r1", lsns))
        routed = router.query("q", min_lsn=10_000)
        assert routed.node == "p"
        assert routed.reason == "read-your-writes"

    def test_zero_staleness_budget_requires_exact_catchup(self):
        lsns = {"p": 100, "r1": 99, "r2": 100}
        router = ReadRouter(node("p", lsns, primary=True))
        router.add_replica(node("r1", lsns))
        router.add_replica(node("r2", lsns))
        for _ in range(3):
            assert router.query("q", staleness_bytes=0).node == "r2"


class TestShrinkingReplicaSet:
    def test_remove_all_replicas_mid_stream(self):
        lsns = {"p": 100, "r1": 100, "r2": 100}
        router = ReadRouter(node("p", lsns, primary=True))
        router.add_replica(node("r1", lsns))
        router.add_replica(node("r2", lsns))
        assert router.query("q").node in {"r1", "r2"}
        router.remove_replica("r1")
        router.remove_replica("r2")
        routed = router.query("q")
        assert routed.node == "p"
        assert routed.reason == "no-replicas"

    def test_remove_unknown_replica_is_harmless(self):
        lsns = {"p": 100}
        router = ReadRouter(node("p", lsns, primary=True))
        router.remove_replica("ghost")
        assert router.query("q").node == "p"

    def test_all_replicas_erroring_still_serves(self):
        lsns = {"p": 100, "r1": 100, "r2": 100}
        errors = {"r1", "r2"}
        router = ReadRouter(node("p", lsns, primary=True))
        router.add_replica(node("r1", lsns, errors=errors))
        router.add_replica(node("r2", lsns, errors=errors))
        routed = router.query("q")
        assert routed.node == "p"
        assert routed.reason == "replica-error-fallback"


class TestFailoverRouting:
    def test_set_primary_promotes_replica_in_place(self):
        lsns = {"p": 100, "r1": 100, "r2": 100}
        router = ReadRouter(node("p", lsns, primary=True))
        router.add_replica(node("r1", lsns))
        router.add_replica(node("r2", lsns))
        router.set_primary(node("r1", lsns, primary=True))
        assert router.failovers == 1
        # r1 no longer serves as a replica; reads spread over r2 only,
        # writes' read-your-writes floor now measures against r1.
        assert {router.query("q").node for _ in range(3)} == {"r2"}
        lsns["r2"] = 10
        routed = router.query("q", staleness_bytes=20)
        assert routed.node == "r1"
        assert routed.reason == "no-replica-fresh-enough"

    def test_set_primary_with_fresh_node_keeps_replicas(self):
        lsns = {"p": 100, "r1": 100, "new": 100}
        router = ReadRouter(node("p", lsns, primary=True))
        router.add_replica(node("r1", lsns))
        router.set_primary(node("new", lsns, primary=True))
        assert router.query("q").node == "r1"
        assert router.status()["failovers"] == 1
