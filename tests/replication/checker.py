"""Seeded consistency checker for replicated read histories.

The replication stress tests record every client-visible operation as a
structured history — writes with the commit LSN they landed at, reads
with the routing evidence the system produced (which node answered, its
applied LSN, the primary's commit LSN when the node was chosen and
after the read returned, the client's staleness bound and
read-your-writes floor).  :func:`verify` then replays nothing: it
checks the recorded history against the replication contract purely by
LSN arithmetic.

Invariants (LSNs are log byte offsets; per key, commit order == LSN
order because the primary's commits are serialized):

1. **Bounded staleness** — a read with bound ``B`` and floor
   ``min_lsn`` must have been served by a node whose applied LSN was at
   least ``max(min_lsn, L0 - B)``, where ``L0`` is the primary's commit
   LSN when the node was picked.
2. **Value currency** — the value a read observed must have been the
   key's current value at *some* LSN in the read's admissible window
   ``[max(min_lsn, L0 - B), L1]`` (``L1`` = primary commit LSN after
   the read returned).  A value whose validity interval ends before the
   window is a stale read (staleness bound or read-your-writes
   violated); one whose interval starts after the window is a read from
   the future; a value never written at all is a phantom (e.g. a torn
   batch became query-visible).

A failing history is *shrunk* before reporting — the same greedy
reducing loop as ``tests/query/qgen.py`` — so the assertion message
shows the minimal set of writes and reads that still violates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

#: Stand-in for an unbounded staleness allowance.
UNBOUNDED = float("inf")


@dataclass(frozen=True)
class WriteRec:
    """One committed write, recorded by the writer after commit."""

    key: str
    value: int
    lsn: int  # storage commit LSN the write landed at
    writer: str = ""


@dataclass(frozen=True)
class ReadRec:
    """One routed read plus the evidence needed to judge it."""

    key: str
    value: int | None  # None = key not found
    node: str  # which endpoint answered
    node_lsn: int  # that node's applied LSN when chosen
    primary_lsn: int  # primary commit LSN when the node was chosen (L0)
    post_lsn: int  # primary commit LSN after the read returned (L1)
    bound: float = UNBOUNDED  # client staleness bound B, in bytes
    min_lsn: int = 0  # read-your-writes floor
    reader: str = ""

    def window(self) -> tuple[float, int]:
        low = self.min_lsn
        if self.bound != UNBOUNDED:
            low = max(low, self.primary_lsn - self.bound)
        return low, self.post_lsn


@dataclass(frozen=True)
class Violation:
    kind: str  # stale-node | stale-read | future-read | phantom
    read: ReadRec
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}\n  read: {self.read}"


@dataclass
class History:
    """Everything one stress round recorded, shrinkable as a unit."""

    writes: list[WriteRec] = field(default_factory=list)
    reads: list[ReadRec] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"{len(self.writes)} write(s), {len(self.reads)} read(s)"]
        for w in sorted(self.writes, key=lambda w: w.lsn):
            lines.append(
                f"  write {w.key}={w.value} @lsn {w.lsn} by {w.writer}"
            )
        for r in self.reads:
            low, high = r.window()
            lines.append(
                f"  read  {r.key} -> {r.value} on {r.node} "
                f"(node_lsn={r.node_lsn}, window=[{low}, {high}], "
                f"bound={r.bound}, min_lsn={r.min_lsn}) by {r.reader}"
            )
        return "\n".join(lines)


def _intervals(history: History) -> dict[str, list[tuple[int, float, int]]]:
    """Per key: (start_lsn, end_lsn, value) validity intervals."""
    per_key: dict[str, list[WriteRec]] = {}
    for w in history.writes:
        per_key.setdefault(w.key, []).append(w)
    out: dict[str, list[tuple[int, float, int]]] = {}
    for key, writes in per_key.items():
        writes.sort(key=lambda w: w.lsn)
        spans: list[tuple[int, float, int]] = []
        for i, w in enumerate(writes):
            end = writes[i + 1].lsn if i + 1 < len(writes) else UNBOUNDED
            spans.append((w.lsn, end, w.value))
        out[key] = spans
    return out


def verify(history: History) -> list[Violation]:
    """All contract violations in ``history`` (empty list = consistent)."""
    violations: list[Violation] = []
    intervals = _intervals(history)
    for read in history.reads:
        low, high = read.window()
        if read.node_lsn < low:
            violations.append(
                Violation(
                    "stale-node",
                    read,
                    f"served by {read.node} at applied LSN {read.node_lsn}, "
                    f"below the admissible floor {low}",
                )
            )
        if read.value is None:
            # The key was invisible on the serving node.  The harness
            # never deletes, so that is legal only if some admissible
            # LSN precedes the key's first write — i.e. a violation
            # whenever the first write is at or below the window floor.
            spans = intervals.get(read.key, [])
            if spans and spans[0][0] <= low:
                violations.append(
                    Violation(
                        "stale-read",
                        read,
                        f"key {read.key!r} invisible although written at "
                        f"LSN {spans[0][0]} <= window floor {low}",
                    )
                )
            continue
        spans = intervals.get(read.key, [])
        match = [s for s in spans if s[2] == read.value]
        if not match:
            violations.append(
                Violation(
                    "phantom",
                    read,
                    f"value {read.value} was never committed for "
                    f"{read.key!r}",
                )
            )
            continue
        if not any(start <= high and end > low for start, end, _ in match):
            start, end, _ = match[0]
            kind = "stale-read" if end <= low else "future-read"
            violations.append(
                Violation(
                    kind,
                    read,
                    f"value {read.value} valid in [{start}, {end}) which "
                    f"misses the admissible window [{low}, {high}]",
                )
            )
    return violations


# -- shrinking ---------------------------------------------------------------


def shrink(history: History, still_fails) -> History:
    """Greedy reducing shrinker (mirrors ``tests/query/qgen.shrink``).

    Repeatedly tries structural reductions, keeping any that still
    reproduce the failure (``still_fails(history) -> bool``), until no
    reduction applies.  Returns the minimal failing history.
    """
    changed = True
    while changed:
        changed = False
        for candidate in _reductions(history):
            if still_fails(candidate):
                history = candidate
                changed = True
                break
    return history


def _reductions(history: History):
    for index in range(len(history.reads)):
        rest = history.reads[:index] + history.reads[index + 1:]
        yield replace(history, reads=rest)
    for index in range(len(history.writes)):
        rest = history.writes[:index] + history.writes[index + 1:]
        yield replace(history, writes=rest)


def minimal_violation(history: History) -> str:
    """Shrink ``history`` and render the minimal violating core."""
    minimal = shrink(history, lambda h: bool(verify(h)))
    report = verify(minimal)
    lines = ["minimal violating history:", minimal.describe(), ""]
    lines.extend(str(v) for v in report)
    return "\n".join(lines)


def derive_seeds(
    fixed: tuple[int, ...], run_id: str | None = None
) -> list[int]:
    """The fixed seeds plus one derived from the CI run id (if any).

    Thin wrapper over :func:`tests.fuzzseeds.derive_seeds` (the one
    seed convention shared by every fuzz suite); kept for the call
    sites that pass ``GITHUB_RUN_ID`` explicitly.
    """
    from tests.fuzzseeds import derive_seeds as unified

    return unified(fixed, env_var="REPLICATION_FUZZ_SEED", run_id=run_id)


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)
