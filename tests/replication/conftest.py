"""Shared fixtures for the replication test suite.

Topology helpers build a primary + N in-process replicas wired through
the real :class:`~repro.replication.stream.LogShipper` — the
``ReplicationClient`` takes the shipper itself as its transport, so the
full pull protocol (framing, prefix CRCs, divergence) is exercised
without sockets.  Schema is declared on both sides, as a real
deployment would: replication ships data records, not class definitions.
"""

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.replication import LogShipper, ReplicaApplier, ReplicationClient


def declare(db: PrometheusDB) -> None:
    """The key/value schema the stress harness writes through."""
    db.schema.define_class(
        "Entry",
        [Attribute("key", T.STRING), Attribute("value", T.INTEGER)],
    )


def make_primary(tmp_path, name: str = "primary") -> PrometheusDB:
    db = PrometheusDB(tmp_path / f"{name}.plog")
    declare(db)
    db.load()
    return db


def make_replica(
    tmp_path, shipper: LogShipper, name: str
) -> tuple[PrometheusDB, ReplicaApplier, ReplicationClient]:
    db = PrometheusDB(tmp_path / f"{name}.plog", read_only=True)
    declare(db)
    db.load()
    applier = ReplicaApplier(db)
    client = ReplicationClient(applier, shipper, name=name)
    return db, applier, client


@pytest.fixture
def primary(tmp_path):
    db = make_primary(tmp_path)
    yield db
    db.close()


@pytest.fixture
def shipper(primary):
    return LogShipper(primary.store)


@pytest.fixture
def replica(tmp_path, shipper):
    db, applier, client = make_replica(tmp_path, shipper, "replica-1")
    yield db, applier, client
    client.stop()
    db.close()
