"""Group commit: shared fsyncs, durability, correctness after reload."""

import threading

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.errors import ConflictError


def make_db(path=None, sync=False):
    db = PrometheusDB(path, sync=sync)
    db.schema.define_class(
        "Counter", [Attribute("label", T.STRING), Attribute("n", T.INTEGER)]
    )
    return db


class TestGroupCommit:
    def test_single_writer_syncs_every_commit(self, tmp_path):
        """With no concurrency there is nobody to share a batch with:
        every commit still fsyncs (durability is never weakened)."""
        db = make_db(tmp_path / "gc.plog", sync=True)
        oid = db.schema.create("Counter", label="a", n=0).oid
        db.commit()
        base = db.store.telemetry_snapshot()["log_fsyncs"]
        for i in range(5):
            with db.begin() as txn:
                txn.set(oid, "n", i + 1)
        snap = db.store.telemetry_snapshot()
        assert snap["log_fsyncs"] - base >= 5
        db.close()

    def test_concurrent_writers_share_fsyncs(self, tmp_path):
        db = make_db(tmp_path / "gc.plog", sync=True)
        oids = [
            db.schema.create("Counter", label=str(i), n=0).oid
            for i in range(8)
        ]
        db.commit()
        base = db.store.telemetry_snapshot()["log_fsyncs"]
        commits_per_thread = 5

        def worker(oid):
            for i in range(commits_per_thread):
                with db.begin() as txn:
                    txn.set(oid, "n", i + 1)

        threads = [
            threading.Thread(target=worker, args=(oid,)) for oid in oids
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = db.store.telemetry_snapshot()
        total_commits = len(oids) * commits_per_thread
        fsyncs = snap["log_fsyncs"] - base
        # Every commit is durable, but many share one barrier.
        assert fsyncs <= total_commits
        assert snap["group_commit_batched"] == total_commits
        assert snap["group_commit_batches"] == fsyncs
        db.close()

    def test_reload_after_group_commit(self, tmp_path):
        path = tmp_path / "gc.plog"
        db = make_db(path, sync=True)
        oids = [
            db.schema.create("Counter", label=str(i), n=0).oid
            for i in range(4)
        ]
        db.commit()

        def worker(oid, value):
            with db.begin() as txn:
                txn.set(oid, "n", value)

        threads = [
            threading.Thread(target=worker, args=(oid, i + 10))
            for i, oid in enumerate(oids)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        db.close()

        db2 = make_db(path)
        db2.load()
        values = {
            db2.schema.get_object(oid).get("label"): db2.schema.get_object(
                oid
            ).get("n")
            for oid in oids
        }
        assert values == {"0": 10, "1": 11, "2": 12, "3": 13}
        assert db2.check_integrity() == []
        db2.close()

    def test_async_mode_skips_the_gate(self, tmp_path):
        """sync=False commits don't pay for durability waits at all."""
        db = make_db(tmp_path / "gc.plog", sync=False)
        oid = db.schema.create("Counter", label="a", n=0).oid
        db.commit()
        base = db.store.telemetry_snapshot()["log_fsyncs"]
        with db.begin() as txn:
            txn.set(oid, "n", 1)
        snap = db.store.telemetry_snapshot()
        assert snap["log_fsyncs"] == base
        assert snap["group_commit_batched"] == 0
        db.close()

    def test_in_memory_db_commits_without_store(self):
        db = make_db()
        oid = db.schema.create("Counter", label="a", n=0).oid
        db.commit()
        with db.begin() as txn:
            txn.set(oid, "n", 1)
        assert db.schema.get_object(oid).get("n") == 1

    def test_conflicted_txn_writes_nothing_durable(self, tmp_path):
        db = make_db(tmp_path / "gc.plog", sync=True)
        oid = db.schema.create("Counter", label="a", n=0).oid
        db.commit()
        loser = db.begin()
        loser.set(oid, "n", -1)
        with db.begin() as winner:
            winner.set(oid, "n", 7)
        appends_after_winner = db.store.telemetry_snapshot()["log_appends"]
        with pytest.raises(ConflictError):
            loser.commit()
        assert (
            db.store.telemetry_snapshot()["log_appends"]
            == appends_after_winner
        )
        db.close()

    def test_compaction_preserves_gate_counters(self, tmp_path):
        db = make_db(tmp_path / "gc.plog", sync=True)
        oid = db.schema.create("Counter", label="a", n=0).oid
        db.commit()
        with db.begin() as txn:
            txn.set(oid, "n", 1)
        before = db.store.telemetry_snapshot()
        db.store.compact()
        after = db.store.telemetry_snapshot()
        assert (
            after["group_commit_batched"] == before["group_commit_batched"]
        )
        with db.begin() as txn:  # gate still works on the new log
            txn.set(oid, "n", 2)
        db.close()
