"""Session layer: tokens, idle eviction, bounded count."""

import pytest

from repro.concurrency import SessionManager
from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.errors import ConflictError, SessionError


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def db():
    database = PrometheusDB()
    database.schema.define_class(
        "Taxon", [Attribute("name", T.STRING), Attribute("rank", T.STRING)]
    )
    return database


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def sessions(db, clock):
    return SessionManager(
        db.transactions, max_sessions=3, idle_timeout_s=60.0, clock=clock
    )


class TestLifecycle:
    def test_tokens_are_unique_and_unguessable_length(self, sessions):
        a, b = sessions.create(), sessions.create()
        assert a.session_id != b.session_id
        assert len(a.session_id) == 32  # 16 random bytes, hex

    def test_get_resolves_and_touches(self, sessions, clock):
        session = sessions.create()
        clock.advance(59)
        assert sessions.get(session.session_id) is session
        clock.advance(59)  # touched above, so still inside the window
        assert sessions.get(session.session_id) is session

    def test_unknown_token_raises(self, sessions):
        with pytest.raises(SessionError):
            sessions.get("nope")

    def test_idle_eviction(self, sessions, clock):
        session = sessions.create()
        clock.advance(61)
        with pytest.raises(SessionError):
            sessions.get(session.session_id)
        assert sessions.active_count == 0
        assert sessions.expired_total == 1

    def test_eviction_aborts_open_txn(self, db, sessions, clock):
        session = sessions.create()
        oid = db.schema.create("Taxon", name="Q").oid
        db.commit()
        txn = session.txn
        txn.set(oid, "rank", "staged")
        clock.advance(61)
        sessions.sweep()
        assert not txn.active
        assert db.schema.get_object(oid).get("rank") is None

    def test_bounded_count(self, sessions):
        for _ in range(3):
            sessions.create()
        with pytest.raises(SessionError):
            sessions.create()

    def test_expired_sessions_make_room(self, sessions, clock):
        for _ in range(3):
            sessions.create()
        clock.advance(61)
        sessions.create()  # eviction freed all three slots
        assert sessions.active_count == 1

    def test_release(self, sessions):
        session = sessions.create()
        sessions.release(session.session_id)
        with pytest.raises(SessionError):
            sessions.get(session.session_id)

    def test_close_all(self, sessions):
        for _ in range(3):
            sessions.create()
        sessions.close_all()
        assert sessions.active_count == 0


class TestTransactionBinding:
    def test_txn_property_begins_lazily_and_reuses(self, sessions):
        session = sessions.create()
        assert not session.in_txn
        txn = session.txn
        assert session.txn is txn

    def test_explicit_begin_rejects_double_open(self, sessions):
        session = sessions.create()
        session.begin()
        with pytest.raises(SessionError):
            session.begin()

    def test_commit_without_txn_raises(self, sessions):
        session = sessions.create()
        with pytest.raises(SessionError):
            session.commit()

    def test_commit_resets_binding(self, db, sessions):
        oid = db.schema.create("Taxon", name="Q").oid
        db.commit()
        session = sessions.create()
        session.txn.set(oid, "rank", "genus")
        session.commit()
        assert not session.in_txn
        assert session.commits == 1

    def test_conflict_drops_txn_for_retry(self, db, sessions):
        oid = db.schema.create("Taxon", name="Q").oid
        db.commit()
        session = sessions.create()
        session.txn.set(oid, "rank", "loser")
        with db.begin() as winner:
            winner.set(oid, "rank", "winner")
        with pytest.raises(ConflictError):
            session.commit()
        assert not session.in_txn  # a fresh .txn starts clean
        session.txn.set(oid, "rank", "retry")
        session.commit()
        assert db.schema.get_object(oid).get("rank") == "retry"

    def test_abort_discards(self, db, sessions):
        oid = db.schema.create("Taxon", name="Q").oid
        db.commit()
        session = sessions.create()
        session.txn.set(oid, "rank", "staged")
        session.abort()
        assert db.schema.get_object(oid).get("rank") is None
        assert session.aborts == 1


class TestDbIntegration:
    def test_db_sessions_property(self, db):
        assert db.sessions is db.sessions
        session = db.sessions.create()
        assert db.sessions.get(session.session_id) is session

    def test_describe_includes_sessions(self, db):
        db.sessions.create()
        info = db.describe()
        assert info["sessions"]["active"] == 1
        assert info["transactions"]["begun"] == 0
