"""Threaded stress: lost updates rejected, history serial-equivalent.

The acceptance scenario for the concurrency subsystem: ≥8 concurrent
writer sessions hammer shared counters; every lost-update attempt must
be rejected with ConflictError, the committed state must equal what a
serial execution of the successful commits would produce, and /metrics
must report the conflicts.
"""

import json
import threading
import time
import urllib.request

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB, PrometheusServer
from repro.errors import ConflictError

WRITERS = 8
INCREMENTS = 20


def make_db(path=None, sync=False):
    db = PrometheusDB(path, sync=sync)
    db.schema.define_class(
        "Counter", [Attribute("label", T.STRING), Attribute("n", T.INTEGER)]
    )
    return db


def increment_with_retry(db, oid, stats, lock, delay=0.0):
    """The canonical optimistic-concurrency client loop.

    ``delay`` widens the read-to-commit window: real clients do work
    between reading and writing, and without it the GIL serializes the
    tiny windows so well that contention barely occurs.
    """
    while True:
        txn = db.begin()
        value = txn.get(oid)["n"]
        if delay:
            time.sleep(delay)
        txn.set(oid, "n", value + 1)
        try:
            txn.commit()
        except ConflictError:
            with lock:
                stats["conflicts"] += 1
            continue
        with lock:
            stats["commits"] += 1
        return


class TestLostUpdates:
    def test_shared_counter_serial_equivalence(self):
        """8 writers × 20 increments on ONE counter: the classic
        lost-update anvil.  Unserialized, the final value would fall
        short; with first-committer-wins + retry it lands exactly."""
        db = make_db()
        oid = db.schema.create("Counter", label="shared", n=0).oid
        db.commit()
        stats = {"commits": 0, "conflicts": 0}
        lock = threading.Lock()
        barrier = threading.Barrier(WRITERS)

        def worker():
            barrier.wait()
            for _ in range(INCREMENTS):
                increment_with_retry(db, oid, stats, lock, delay=0.0003)

        threads = [threading.Thread(target=worker) for _ in range(WRITERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = WRITERS * INCREMENTS
        assert db.schema.get_object(oid).get("n") == expected
        assert stats["commits"] == expected
        # With 8 writers interleaving on one object, contention is
        # certain — and every lost update must have been rejected.
        assert stats["conflicts"] > 0
        assert db.transactions.stats.conflicts == stats["conflicts"]
        assert db.transactions.stats.committed >= expected
        assert db.transactions.active_count == 0
        assert not db.schema.in_txn_scope
        assert db.rules.deferred_depth == 0
        assert db.check_integrity() == []

    def test_multi_object_stress(self):
        """Writers spread over a handful of objects: partial contention,
        same invariant — no increment may ever be silently lost."""
        db = make_db()
        oids = [
            db.schema.create("Counter", label=str(i), n=0).oid
            for i in range(3)
        ]
        db.commit()
        stats = {"commits": 0, "conflicts": 0}
        lock = threading.Lock()
        barrier = threading.Barrier(WRITERS)

        def worker(worker_id):
            barrier.wait()
            for i in range(INCREMENTS):
                increment_with_retry(
                    db, oids[(worker_id + i) % len(oids)], stats, lock
                )

        threads = [
            threading.Thread(target=worker, args=(w,))
            for w in range(WRITERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = sum(db.schema.get_object(o).get("n") for o in oids)
        assert total == WRITERS * INCREMENTS
        assert db.check_integrity() == []

    def test_durable_stress_survives_reload(self, tmp_path):
        """Same anvil with sync=True: group commit must not trade away
        correctness — a reload sees every committed increment."""
        path = tmp_path / "stress.plog"
        db = make_db(path, sync=True)
        oid = db.schema.create("Counter", label="shared", n=0).oid
        db.commit()
        stats = {"commits": 0, "conflicts": 0}
        lock = threading.Lock()
        barrier = threading.Barrier(WRITERS)

        def worker():
            barrier.wait()
            for _ in range(5):
                increment_with_retry(db, oid, stats, lock)

        threads = [threading.Thread(target=worker) for _ in range(WRITERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = WRITERS * 5
        assert db.schema.get_object(oid).get("n") == expected
        db.close()

        db2 = make_db(path)
        db2.load()
        assert db2.schema.get_object(oid).get("n") == expected
        assert db2.check_integrity() == []
        db2.close()


class TestSessionsOverHttp:
    def test_conflicts_visible_in_metrics(self):
        """Concurrent HTTP sessions racing on one object: the losers
        get 409s and /metrics reports the conflict count."""
        db = make_db()
        oid = db.schema.create("Counter", label="shared", n=0).oid
        db.commit()
        conflicts = {"n": 0}
        lock = threading.Lock()

        with PrometheusServer(db) as server:
            url = server.url

            def post(path, payload=None):
                request = urllib.request.Request(
                    url + path,
                    data=json.dumps(payload or {}).encode(),
                    headers={"Content-Type": "application/json"},
                )
                try:
                    with urllib.request.urlopen(request, timeout=10) as r:
                        return r.status, json.load(r)
                except urllib.error.HTTPError as err:
                    return err.code, json.loads(err.read())

            barrier = threading.Barrier(WRITERS)

            def worker():
                status, body = post("/session")
                assert status == 201
                sid = body["session"]
                barrier.wait()
                for i in range(3):
                    while True:
                        status, body = post(
                            f"/session/{sid}/apply",
                            {"ops": [{"op": "get", "oid": oid}]},
                        )
                        assert status == 200
                        n = body["results"][0]["values"]["n"]
                        status, body = post(
                            f"/session/{sid}/apply",
                            {
                                "ops": [
                                    {
                                        "op": "set",
                                        "oid": oid,
                                        "attr": "n",
                                        "value": n + 1,
                                    }
                                ]
                            },
                        )
                        assert status == 200
                        status, body = post(f"/session/{sid}/commit")
                        if status == 200:
                            break
                        assert status == 409
                        assert body["conflict"] is True
                        with lock:
                            conflicts["n"] += 1

            threads = [
                threading.Thread(target=worker) for _ in range(WRITERS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            expected = WRITERS * 3
            assert db.schema.get_object(oid).get("n") == expected
            assert conflicts["n"] > 0

            with urllib.request.urlopen(url + "/metrics", timeout=5) as r:
                text = r.read().decode()
            lines = {
                line.split(" ")[0]: line.split(" ")[-1]
                for line in text.splitlines()
                if line and not line.startswith("#")
            }
            assert int(lines["repro_txn_conflicts_total"]) == conflicts["n"]
            assert int(lines["repro_txn_commits_total"]) >= expected
            assert int(lines["repro_sessions_active"]) == WRITERS
