"""Managed transactions: staging, isolation, conflict detection."""

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.errors import (
    AttributeUnknownError,
    ConflictError,
    InstanceDeletedError,
    SchemaError,
    TransactionError,
)


@pytest.fixture
def db():
    database = PrometheusDB()
    database.schema.define_class(
        "Taxon",
        [
            Attribute("name", T.STRING),
            Attribute("rank", T.STRING),
            Attribute("count", T.INTEGER),
        ],
    )
    database.schema.define_relationship("ChildOf", "Taxon", "Taxon")
    return database


@pytest.fixture
def taxon(db):
    obj = db.schema.create("Taxon", name="Quercus", rank="genus", count=0)
    db.commit()
    return obj.oid


class TestStaging:
    def test_writes_invisible_until_commit(self, db, taxon):
        txn = db.begin()
        txn.set(taxon, "rank", "subgenus")
        assert db.schema.get_object(taxon).get("rank") == "genus"
        txn.commit()
        assert db.schema.get_object(taxon).get("rank") == "subgenus"

    def test_read_your_writes(self, db, taxon):
        txn = db.begin()
        txn.set(taxon, "rank", "subgenus")
        assert txn.get(taxon)["rank"] == "subgenus"
        assert txn.get_value(taxon, "name") == "Quercus"
        txn.abort()

    def test_create_allocates_final_oid(self, db, taxon):
        txn = db.begin()
        oid = txn.create("Taxon", name="Fagus", rank="genus")
        assert oid > taxon
        assert not db.schema.has_object(oid)
        txn.commit()
        assert db.schema.get_object(oid).get("name") == "Fagus"

    def test_set_on_staged_create_folds_in(self, db):
        txn = db.begin()
        oid = txn.create("Taxon", name="Fagus")
        txn.set(oid, "rank", "genus")
        assert txn.get(oid)["rank"] == "genus"
        txn.commit()
        assert db.schema.get_object(oid).get("rank") == "genus"

    def test_create_then_delete_is_noop(self, db):
        txn = db.begin()
        oid = txn.create("Taxon", name="Ghost")
        txn.delete(oid)
        txn.commit()
        assert not db.schema.has_object(oid)

    def test_delete_visible_only_inside(self, db, taxon):
        txn = db.begin()
        txn.delete(taxon)
        with pytest.raises(InstanceDeletedError):
            txn.get(taxon)
        assert db.schema.has_object(taxon)
        txn.commit()
        assert not db.schema.has_object(taxon)

    def test_unknown_attribute_fails_at_staging(self, db, taxon):
        txn = db.begin()
        with pytest.raises(AttributeUnknownError):
            txn.set(taxon, "nonsense", 1)
        txn.abort()

    def test_abstract_and_relationship_classes_rejected(self, db):
        db.schema.define_class("Abstract", [], abstract=True)
        txn = db.begin()
        with pytest.raises(SchemaError):
            txn.create("Abstract")
        with pytest.raises(SchemaError):
            txn.create("ChildOf")
        txn.abort()

    def test_relate_and_unrelate(self, db, taxon):
        child = db.schema.create("Taxon", name="Fagus").oid
        db.commit()
        txn = db.begin()
        rel = txn.relate("ChildOf", child, taxon)
        txn.commit()
        assert db.schema.get_object(rel).origin_oid == child
        txn2 = db.begin()
        txn2.unrelate(rel)
        txn2.commit()
        assert not db.schema.has_object(rel)

    def test_relate_then_unrelate_in_same_txn(self, db, taxon):
        child = db.schema.create("Taxon", name="Fagus").oid
        db.commit()
        txn = db.begin()
        rel = txn.relate("ChildOf", child, taxon)
        txn.unrelate(rel)
        txn.commit()
        assert not db.schema.has_object(rel)

    def test_finished_txn_rejects_everything(self, db, taxon):
        txn = db.begin()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.set(taxon, "rank", "x")
        with pytest.raises(TransactionError):
            txn.commit()


class TestConflicts:
    def test_first_committer_wins(self, db, taxon):
        t1, t2 = db.begin(), db.begin()
        t1.set(taxon, "rank", "one")
        t2.set(taxon, "rank", "two")
        t1.commit()
        with pytest.raises(ConflictError) as err:
            t2.commit()
        assert taxon in err.value.oids
        assert db.schema.get_object(taxon).get("rank") == "one"

    def test_get_then_set_validates_read_version(self, db, taxon):
        """A commit landing between a txn's read and its write is a
        lost update and must be rejected."""
        t2 = db.begin()
        value = t2.get(taxon)["count"]
        with db.begin() as t1:
            t1.set(taxon, "count", 100)
        t2.set(taxon, "count", value + 1)
        with pytest.raises(ConflictError):
            t2.commit()
        assert db.schema.get_object(taxon).get("count") == 100

    def test_disjoint_writes_do_not_conflict(self, db, taxon):
        other = db.schema.create("Taxon", name="Fagus").oid
        db.commit()
        t1, t2 = db.begin(), db.begin()
        t1.set(taxon, "rank", "one")
        t2.set(other, "rank", "two")
        t1.commit()
        t2.commit()  # no conflict

    def test_conflict_with_implicit_session(self, db, taxon):
        txn = db.begin()
        txn.set(taxon, "rank", "managed")
        db.schema.get_object(taxon).set("rank", "implicit")
        db.commit()
        with pytest.raises(ConflictError):
            txn.commit()
        assert db.schema.get_object(taxon).get("rank") == "implicit"

    def test_shared_relationship_endpoint_conflicts(self, db, taxon):
        a = db.schema.create("Taxon", name="A").oid
        b = db.schema.create("Taxon", name="B").oid
        db.commit()
        t1, t2 = db.begin(), db.begin()
        t1.relate("ChildOf", a, taxon)
        t2.relate("ChildOf", b, taxon)  # same destination endpoint
        t1.commit()
        with pytest.raises(ConflictError):
            t2.commit()

    def test_validate_reads_rejects_stale_read(self, db, taxon):
        t2 = db.begin(validate_reads=True)
        t2.get(taxon)
        with db.begin() as t1:
            t1.set(taxon, "rank", "moved")
        other = t2.create("Taxon", name="New")
        with pytest.raises(ConflictError):
            t2.commit()
        assert not db.schema.has_object(other)

    def test_empty_commit_never_conflicts(self, db, taxon):
        t2 = db.begin()
        t2.get(taxon)
        with db.begin() as t1:
            t1.set(taxon, "rank", "moved")
        t2.commit()  # read-only, default validation: fine

    def test_retry_after_conflict_succeeds(self, db, taxon):
        t1, t2 = db.begin(), db.begin()
        t1.set(taxon, "count", 1)
        t2.set(taxon, "count", 2)
        t1.commit()
        with pytest.raises(ConflictError):
            t2.commit()
        retry = db.begin()
        retry.set(taxon, "count", retry.get(taxon)["count"] + 1)
        retry.commit()
        assert db.schema.get_object(taxon).get("count") == 2


class TestContextManager:
    def test_clean_exit_commits(self, db, taxon):
        with db.begin() as txn:
            txn.set(taxon, "rank", "cm")
        assert db.schema.get_object(taxon).get("rank") == "cm"

    def test_exception_aborts(self, db, taxon):
        with pytest.raises(RuntimeError):
            with db.begin() as txn:
                txn.set(taxon, "rank", "cm")
                raise RuntimeError("boom")
        assert db.schema.get_object(taxon).get("rank") == "genus"


class TestManagerBookkeeping:
    def test_commit_timestamps_are_monotonic(self, db, taxon):
        stamps = []
        for i in range(3):
            txn = db.begin()
            txn.set(taxon, "count", i)
            stamps.append(txn.commit())
        assert stamps == sorted(stamps)
        assert len(set(stamps)) == 3

    def test_stats_snapshot(self, db, taxon):
        with db.begin() as txn:
            txn.set(taxon, "count", 1)
        bad = db.begin()
        bad.set(taxon, "count", 0)
        db.begin().abort()
        with db.begin() as winner:
            winner.set(taxon, "count", 2)
        with pytest.raises(ConflictError):
            bad.commit()
        snap = db.transactions.snapshot()
        assert snap["committed"] == 2
        assert snap["conflicts"] == 1
        assert snap["aborted"] == 2  # voluntary abort + conflict
        assert snap["active"] == 0

    def test_implicit_commit_bumps_versions(self, db, taxon):
        before = db.transactions.version_of(taxon)
        db.schema.get_object(taxon).set("rank", "bumped")
        db.commit()
        assert db.transactions.version_of(taxon) > before
