"""Abort must be total: every layer byte-identical after rollback.

A failed managed commit (deferred ABORT rule firing at BEFORE_COMMIT)
and an implicit-session ``schema.abort()`` must both leave extents,
object records, relationship endpoints, and index entries exactly as
they were — compared via a full-state fingerprint, not spot checks.
"""

import json

import pytest

from repro.core import types as T
from repro.core.attributes import Attribute
from repro.engine import PrometheusDB
from repro.errors import ConstraintViolation
from repro.rules import Mode, Rule
from repro.rules.events import on_update


def fingerprint(db):
    """Canonical digest of every user-visible layer of the database."""
    schema = db.schema
    state = {}
    for pclass in schema.classes():
        oids = sorted(obj.oid for obj in schema.extent(pclass.name))
        state[f"extent:{pclass.name}"] = oids
    records = {}
    for pclass in schema.classes():
        for obj in schema.extent(pclass.name, polymorphic=False):
            records[obj.oid] = schema._to_record(obj)
    state["records"] = {
        str(oid): records[oid] for oid in sorted(records)
    }
    rels = []
    for pclass in schema.classes():
        if not pclass.is_relationship_class:
            continue
        for rel in schema.extent(pclass.name, polymorphic=False):
            rels.append(
                (pclass.name, rel.oid, rel.origin_oid, rel.destination_oid)
            )
    state["relationships"] = sorted(rels)
    for index in db.indexes.indexes():
        entries = []
        for obj in schema.extent(index.class_name):
            value = obj.get(index.attribute)
            entries.append(
                (obj.oid, str(value), sorted(index.impl.get(value)))
            )
        state[f"index:{index.name}"] = {
            "size": len(index),
            "entries": sorted(entries),
        }
    return json.dumps(state, sort_keys=True, default=str)


@pytest.fixture
def db():
    database = PrometheusDB()
    database.schema.define_class(
        "Taxon",
        [
            Attribute("name", T.STRING),
            Attribute("rank", T.STRING),
            Attribute("status", T.STRING),
        ],
    )
    database.schema.define_relationship("ChildOf", "Taxon", "Taxon")
    database.indexes.create_index("Taxon", "name", "hash")
    genus = database.schema.create(
        "Taxon", name="Quercus", rank="genus", status="accepted"
    )
    species = database.schema.create(
        "Taxon", name="Quercus robur", rank="species", status="accepted"
    )
    database.schema.relate("ChildOf", species, genus)
    database.commit()
    return database


def forbidden_rule():
    """Deferred ABORT rule: no taxon may ever reach status='forbidden'."""
    return Rule(
        name="no_forbidden_status",
        event=on_update("Taxon", attribute="status"),
        condition=lambda ctx: ctx.event.new_value != "forbidden",
        mode=Mode.DEFERRED,
        message="status 'forbidden' is not allowed",
    )


class TestManagedTxnAbort:
    def test_deferred_rule_failure_rolls_back_everything(self, db):
        db.rules.register(forbidden_rule())
        genus = next(iter(db.schema.extent("Taxon"))).oid
        before = fingerprint(db)

        txn = db.begin()
        new_taxon = txn.create("Taxon", name="Fagus", rank="genus")
        txn.set(genus, "status", "forbidden")  # deferred rule will veto
        txn.relate("ChildOf", new_taxon, genus)
        with pytest.raises(ConstraintViolation):
            txn.commit()

        assert fingerprint(db) == before
        assert not db.schema.has_object(new_taxon)
        assert db.check_integrity() == []
        # The engine is reusable: a clean transaction commits fine.
        with db.begin() as ok:
            ok.set(genus, "status", "reviewed")
        assert db.schema.get_object(genus).get("status") == "reviewed"

    def test_rollback_covers_index_entries(self, db):
        db.rules.register(forbidden_rule())
        objs = {o.get("name"): o.oid for o in db.schema.extent("Taxon")}
        before = fingerprint(db)
        txn = db.begin()
        txn.set(objs["Quercus"], "name", "Renamed")  # index-maintained attr
        txn.set(objs["Quercus robur"], "status", "forbidden")
        with pytest.raises(ConstraintViolation):
            txn.commit()
        assert fingerprint(db) == before
        assert [
            o.oid for o in db.indexes.probe("Taxon", "name", "Quercus")
        ] == [objs["Quercus"]]
        assert db.indexes.probe("Taxon", "name", "Renamed") == []

    def test_rollback_covers_relationship_endpoints(self, db):
        rel = next(iter(db.schema.extent("ChildOf")))
        before = fingerprint(db)
        txn = db.begin()
        txn.unrelate(rel.oid)
        txn.set(rel.origin_oid, "status", "orphaned")
        txn.abort()  # voluntary abort: overlay never touched the schema
        assert fingerprint(db) == before

        db.rules.register(forbidden_rule())
        txn2 = db.begin()
        txn2.unrelate(rel.oid)
        txn2.set(rel.origin_oid, "status", "forbidden")
        with pytest.raises(ConstraintViolation):
            txn2.commit()
        assert fingerprint(db) == before
        assert db.schema.has_object(rel.oid)

    def test_failed_commit_does_not_disturb_implicit_session(self, db):
        """The scoped journal must roll back ONLY the replayed ops, not
        the implicit session's unrelated pending changes."""
        db.rules.register(forbidden_rule())
        objs = {o.get("name"): o.oid for o in db.schema.extent("Taxon")}
        # Implicit-session dirt on one object, uncommitted...
        db.schema.get_object(objs["Quercus"]).set("rank", "subgenus")
        # ...while a managed txn on a DIFFERENT object fails its commit.
        txn = db.begin()
        txn.set(objs["Quercus robur"], "status", "forbidden")
        with pytest.raises(ConstraintViolation):
            txn.commit()
        assert (
            db.schema.get_object(objs["Quercus"]).get("rank") == "subgenus"
        )
        db.commit()
        assert (
            db.schema.get_object(objs["Quercus"]).get("rank") == "subgenus"
        )


class TestImplicitAbort:
    def test_schema_abort_still_total(self, db):
        before = fingerprint(db)
        genus = next(
            o for o in db.schema.extent("Taxon") if o.get("rank") == "genus"
        )
        created = db.schema.create("Taxon", name="Temp", rank="genus")
        db.schema.relate("ChildOf", created, genus)
        created.set("status", "draft")
        db.abort()
        assert fingerprint(db) == before
        assert db.check_integrity() == []

    def test_abort_then_managed_txn(self, db):
        genus = next(
            o for o in db.schema.extent("Taxon") if o.get("rank") == "genus"
        )
        db.schema.create("Taxon", name="Temp")
        db.abort()
        with db.begin() as txn:
            txn.set(genus.oid, "status", "checked")
        assert db.schema.get_object(genus.oid).get("status") == "checked"
        assert db.check_integrity() == []
