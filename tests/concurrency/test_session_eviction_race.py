"""Regression: idle eviction racing a concurrent commit on the same token.

``Transaction.commit()`` is public API, so a client that grabbed
``session.txn`` can be mid-replay while the idle evictor closes the
session.  Before the fix, ``Session.close()`` called ``txn.abort()``
bare — clearing the op log under the replay's feet — which could
surface as a half-applied commit, a ``RuntimeError`` from mutating the
op list during iteration, or an empty "successful" commit of a
transaction whose writes were silently discarded.

The fix is two-sided and both sides are exercised here:

* the evictor aborts only under the manager's commit lock, after
  re-checking ``txn.active``;
* the committer re-checks ``txn.active`` once it holds the commit lock
  and raises instead of fast-pathing an emptied transaction.
"""

import threading

import pytest

from repro.concurrency import SessionManager
from repro.core import types as T
from repro.core.attributes import Attribute
from repro.core.events import EventKind
from repro.engine import PrometheusDB
from repro.errors import TransactionError


class FakeClock:
    def __init__(self) -> None:
        self.now = 1000.0
        self._lock = threading.Lock()

    def __call__(self) -> float:
        with self._lock:
            return self.now

    def advance(self, seconds: float) -> None:
        with self._lock:
            self.now += seconds


@pytest.fixture
def db():
    database = PrometheusDB()
    database.schema.define_class(
        "Taxon", [Attribute("name", T.STRING), Attribute("rank", T.STRING)]
    )
    return database


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def sessions(db, clock):
    return SessionManager(
        db.transactions, max_sessions=32, idle_timeout_s=60.0, clock=clock
    )


class TestEvictionVsCommit:
    def test_commit_never_half_applies_under_eviction(self, db, sessions, clock):
        """Hammer commit-vs-evict; every commit is all-or-nothing.

        Each round: a session stages a batch of creates, the clock jumps
        past the idle timeout, then one thread commits while another
        sweeps (evicting and aborting).  Even rounds release both
        threads from a barrier (the evictor usually wins that race);
        odd rounds fire the sweep from an AFTER_CREATE subscriber, i.e.
        from *inside* the commit replay — exactly the window where the
        old code's bare ``txn.abort()`` cleared the op log mid-replay.
        Whatever interleaving happens, the committed state must contain
        either the whole batch or none of it.
        """
        BATCH = 8
        committed_batches = []
        for round_no in range(50):
            session = sessions.create()
            txn = session.txn  # held directly, as a library client would
            for i in range(BATCH):
                txn.create("Taxon", name=f"r{round_no}-{i}", rank="species")
            clock.advance(sessions.idle_timeout_s + 1)

            mid_replay = round_no % 2 == 1
            barrier = threading.Barrier(1 if mid_replay else 2)
            go = threading.Event()
            outcome: dict[str, object] = {}

            def committer():
                barrier.wait()
                try:
                    txn.commit()
                    outcome["committed"] = True
                except TransactionError:
                    outcome["committed"] = False

            def evictor():
                if mid_replay:
                    # Wait until the replay has started publishing
                    # events, then race the sweep against its tail.
                    go.wait(timeout=30)
                else:
                    barrier.wait()
                sessions.sweep()

            unsubscribe = None
            if mid_replay:
                unsubscribe = db.schema.events.subscribe(
                    lambda event: go.set(),
                    kinds={EventKind.AFTER_CREATE},
                )

            threads = [
                threading.Thread(target=committer),
                threading.Thread(target=evictor),
            ]
            try:
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30)
                    assert not t.is_alive(), (
                        "deadlock between commit and evict"
                    )
            finally:
                if unsubscribe is not None:
                    unsubscribe()

            count = db.query(
                'select count(t) from t in Taxon where t.name like "r{}-%"'.format(
                    round_no
                )
            )[0]
            if outcome["committed"]:
                assert count == BATCH, (
                    f"round {round_no}: commit reported success but only "
                    f"{count}/{BATCH} objects are visible"
                )
                committed_batches.append(round_no)
            else:
                assert count == 0, (
                    f"round {round_no}: commit reported failure but "
                    f"{count} objects leaked into committed state"
                )
        # The schedule is nondeterministic, but across 50 rounds both
        # outcomes occur in practice; require at least one commit so the
        # test cannot silently degrade into evict-always-wins.
        assert committed_batches, "eviction always won; race never exercised"

    def test_evicted_commit_raises_not_empty_success(self, db, sessions, clock):
        """If the abort wins the lock race, commit must raise.

        Deterministic version of the window: abort the transaction the
        way the evictor does (op log cleared), then commit.  The old
        code took the ``op_count == 0`` fast path and reported a commit
        timestamp for writes that were thrown away.
        """
        session = sessions.create()
        txn = session.txn
        txn.create("Taxon", name="ghost", rank="genus")
        clock.advance(sessions.idle_timeout_s + 1)
        assert sessions.sweep() == 1
        with pytest.raises(TransactionError):
            txn.commit()
        assert db.query("select count(t) from t in Taxon") == [0]

    def test_close_after_commit_does_not_double_finish(self, db, sessions):
        """Eviction right after a successful commit is a no-op."""
        session = sessions.create()
        txn = session.txn
        txn.create("Taxon", name="ok", rank="genus")
        txn.commit()
        before = db.transactions.stats.aborted
        session.close()
        assert db.transactions.stats.aborted == before
        assert db.query("select count(t) from t in Taxon") == [1]

    def test_session_commit_records_lsn(self, tmp_path):
        """Sessions carry the storage commit LSN for replica routing."""
        db = PrometheusDB(tmp_path / "s.plog")
        db.schema.define_class("Taxon", [Attribute("name", T.STRING)])
        db.load()
        manager = SessionManager(db.transactions)
        session = manager.create()
        assert session.last_commit_lsn is None
        session.txn.create("Taxon", name="x")
        session.commit()
        assert session.last_commit_lsn == db.store.commit_lsn
        assert session.info()["last_commit_lsn"] == db.store.commit_lsn
        first = session.last_commit_lsn
        session.txn.create("Taxon", name="y")
        session.commit()
        assert session.last_commit_lsn > first
        db.close()
