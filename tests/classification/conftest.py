"""Fixtures for classification-layer tests: a generic node/link schema."""

from __future__ import annotations

import pytest

from repro.classification import ClassificationManager
from repro.core.attributes import Attribute
from repro.core.schema import Schema
from repro.core.semantics import RelationshipSemantics, RelKind
from repro.core import types as T


def make_graph_schema(store=None) -> Schema:
    schema = Schema(store, name="graph")
    schema.define_class(
        "Node",
        [Attribute("label", T.STRING), Attribute("value", T.INTEGER)],
    )
    schema.define_relationship(
        "Contains",
        "Node",
        "Node",
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION, shareable=True
        ),
        attributes=[Attribute("motivation", T.STRING)],
    )
    return schema


@pytest.fixture
def graph_schema() -> Schema:
    return make_graph_schema()


@pytest.fixture
def manager(graph_schema) -> ClassificationManager:
    return ClassificationManager(graph_schema)


@pytest.fixture
def nodes(graph_schema):
    """Ten labelled nodes n0..n9."""
    return [
        graph_schema.create("Node", label=f"n{i}", value=i) for i in range(10)
    ]
