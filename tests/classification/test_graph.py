"""Graph operations: extraction, copying, subtree moves."""

import pytest

from repro.classification import (
    common_subgraph,
    copy_classification,
    extract_graph,
    move_subtree,
)
from repro.errors import ClassificationError


@pytest.fixture
def tree(manager, nodes):
    c = manager.create("tree")
    for parent, child in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]:
        c.place("Contains", nodes[parent], nodes[child], motivation="m")
    return c


class TestExtraction:
    def test_whole_classification(self, tree, nodes):
        view = extract_graph(tree)
        assert view.node_count == 6
        assert view.edge_count == 5
        assert view.roots() == [nodes[0].oid]
        assert set(view.leaves()) == {nodes[3].oid, nodes[4].oid, nodes[5].oid}
        assert view.is_acyclic()

    def test_subtree(self, tree, nodes):
        view = extract_graph(tree, start=nodes[1])
        assert set(view.nodes) == {nodes[1].oid, nodes[3].oid, nodes[4].oid}
        assert view.edge_count == 2

    def test_depth_limit(self, tree, nodes):
        view = extract_graph(tree, start=nodes[0], max_depth=1)
        assert set(view.nodes) == {nodes[0].oid, nodes[1].oid, nodes[2].oid}

    def test_node_snapshots_contain_attributes(self, tree, nodes):
        view = extract_graph(tree)
        assert view.nodes[nodes[0].oid]["label"] == "n0"
        assert view.nodes[nodes[0].oid]["class"] == "Node"

    def test_edge_snapshots_contain_attributes(self, tree):
        view = extract_graph(tree)
        assert all(attrs["motivation"] == "m" for _, _, _, attrs in view.edges)

    def test_to_networkx(self, tree, nodes):
        g = extract_graph(tree).to_networkx()
        assert g.number_of_nodes() == 6
        assert g.number_of_edges() == 5
        import networkx

        assert networkx.is_directed_acyclic_graph(g)
        assert g.nodes[nodes[0].oid]["label"] == "n0"

    def test_leaf_only_start(self, tree, nodes):
        view = extract_graph(tree, start=nodes[5])
        assert set(view.nodes) == {nodes[5].oid}
        assert view.edge_count == 0


class TestCopy:
    def test_copy_shares_nodes(self, manager, tree, nodes):
        copy = copy_classification(manager, tree, "copy")
        assert len(copy) == len(tree)
        assert copy.node_oids() == tree.node_oids()
        # but edges are new instances
        assert not (copy._edge_oids & tree._edge_oids)

    def test_copy_preserves_edge_attributes(self, manager, tree):
        copy = copy_classification(manager, tree, "copy")
        assert all(e.get("motivation") == "m" for e in copy.edges())

    def test_copy_then_restructure_leaves_original(self, manager, tree, nodes):
        copy = copy_classification(manager, tree, "copy")
        move_subtree(copy, nodes[3], nodes[2], "Contains")
        assert tree.parents(nodes[3]) == [nodes[1]]
        assert copy.parents(nodes[3]) == [nodes[2]]

    def test_copy_with_node_duplication(self, manager, tree, nodes):
        copy = copy_classification(manager, tree, "deep", copy_nodes=True)
        # Leaves are shared (objective fixed points), interiors are new.
        leaf_oids = {n.oid for n in tree.leaves()}
        assert leaf_oids <= copy.node_oids()
        interior = tree.node_oids() - leaf_oids
        assert not (interior & copy.node_oids())
        assert len(copy) == len(tree)

    def test_copy_by_name(self, manager, tree):
        copy = copy_classification(manager, "tree", "copy2")
        assert copy.name == "copy2"


class TestMoveSubtree:
    def test_move(self, tree, nodes):
        move_subtree(tree, nodes[1], nodes[2], "Contains", motivation="revision")
        assert tree.parents(nodes[1]) == [nodes[2]]
        # subtree members follow
        assert nodes[3] in set(tree.descendants(nodes[2]))
        assert tree.is_tree()

    def test_move_under_own_descendant_rejected(self, tree, nodes):
        with pytest.raises(ClassificationError):
            move_subtree(tree, nodes[1], nodes[3], "Contains")

    def test_move_under_self_rejected(self, tree, nodes):
        with pytest.raises(ClassificationError):
            move_subtree(tree, nodes[1], nodes[1], "Contains")

    def test_old_edge_deleted_when_unshared(self, tree, nodes, graph_schema):
        old_edges = [
            e for e in tree.edges() if e.destination_oid == nodes[1].oid
        ]
        move_subtree(tree, nodes[1], nodes[2], "Contains")
        assert all(e.deleted for e in old_edges)

    def test_shared_edge_survives_move(self, manager, tree, nodes):
        other = manager.create("other")
        shared = [e for e in tree.edges() if e.destination_oid == nodes[1].oid][0]
        other.add_edge(shared)
        move_subtree(tree, nodes[1], nodes[2], "Contains")
        assert not shared.deleted
        assert shared in other


class TestCommonSubgraph:
    def test_structural_intersection(self, manager, tree, nodes):
        copy = copy_classification(manager, tree, "copy")
        move_subtree(copy, nodes[5], nodes[1], "Contains")
        common = common_subgraph(tree, copy)
        # All edges except n2->n5 coincide structurally.
        assert common.edge_count == 4
        assert (nodes[2].oid, nodes[5].oid) not in {
            (p, c) for p, c, _, _ in common.edges
        }

    def test_disjoint_classifications(self, manager, nodes):
        c1, c2 = manager.create("a"), manager.create("b")
        c1.place("Contains", nodes[0], nodes[1])
        c2.place("Contains", nodes[2], nodes[3])
        assert common_subgraph(c1, c2).edge_count == 0
