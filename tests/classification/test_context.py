"""Querying by context (§4.6.2)."""

import pytest

from repro.classification import Context
from repro.errors import ClassificationError


@pytest.fixture
def contexts(manager, nodes):
    """Two classifications disagreeing about where n3 belongs."""
    c1, c2 = manager.create("c1"), manager.create("c2")
    c1.place("Contains", nodes[0], nodes[1])
    c1.place("Contains", nodes[1], nodes[3])
    c2.place("Contains", nodes[0], nodes[2])
    c2.place("Contains", nodes[2], nodes[3])
    return manager, c1, c2


class TestContext:
    def test_empty_context_rejected(self):
        with pytest.raises(ClassificationError):
            Context([])

    def test_of_by_names(self, contexts):
        manager, c1, c2 = contexts
        ctx = Context.of(manager, "c1", "c2")
        assert ctx.names == ["c1", "c2"]
        assert len(ctx) == 2

    def test_children_per_classification(self, contexts, nodes):
        manager, c1, c2 = contexts
        ctx = Context.of(manager, "c1", "c2")
        children = ctx.children(nodes[0])
        assert children["c1"] == [nodes[1]]
        assert children["c2"] == [nodes[2]]

    def test_appears_in(self, contexts, nodes):
        manager, *_ = contexts
        ctx = Context.of(manager, "c1", "c2")
        assert ctx.appears_in(nodes[3]) == ["c1", "c2"]
        assert ctx.appears_in(nodes[1]) == ["c1"]
        assert ctx.appears_in(nodes[9]) == []

    def test_placements_of(self, contexts, nodes):
        manager, *_ = contexts
        ctx = Context.of(manager, "c1", "c2")
        placements = ctx.placements_of(nodes[3])
        assert placements == {"c1": [nodes[1]], "c2": [nodes[2]]}

    def test_is_placed_under_transitive(self, contexts, nodes):
        manager, *_ = contexts
        ctx = Context.of(manager, "c1", "c2")
        assert ctx.is_placed_under(nodes[3], nodes[0]) == ["c1", "c2"]
        assert ctx.is_placed_under(nodes[3], nodes[1]) == ["c1"]

    def test_agreement(self, contexts, nodes):
        manager, *_ = contexts
        ctx = Context.of(manager, "c1", "c2")
        assert not ctx.agreement(nodes[3])  # different parents
        assert ctx.agreement(nodes[1])      # only classified in c1

    def test_disagreements(self, contexts, nodes):
        manager, *_ = contexts
        ctx = Context.of(manager, "c1", "c2")
        assert ctx.disagreements() == [nodes[3].oid]

    def test_single_context(self, contexts, nodes):
        manager, *_ = contexts
        ctx = Context.of(manager, "c1")
        assert ctx.agreement(nodes[3])
        assert ctx.disagreements() == []
