"""Traceability: the trace log (requirement 4)."""

from repro.classification import ClassificationManager, TraceLog
from repro.storage.store import ObjectStore
from tests.classification.conftest import make_graph_schema


class TestTraceLog:
    def test_record_and_query(self, graph_schema, nodes):
        log = TraceLog(graph_schema)
        log.record(
            TraceLog.PLACE,
            "c1",
            actor="Linnaeus",
            reason="leaf shape",
            subject_oid=nodes[1].oid,
            object_oid=nodes[0].oid,
        )
        log.record(TraceLog.MOVE, "c2", actor="Koch", subject_oid=nodes[1].oid)
        assert len(log) == 2
        assert [e.operation for e in log] == ["place", "move"]
        assert len(log.for_classification("c1")) == 1
        assert len(log.for_object(nodes[1].oid)) == 2
        assert len(log.by_actor("Koch")) == 1

    def test_sequence_numbers(self, graph_schema):
        log = TraceLog(graph_schema)
        entries = [log.record("place", "c") for _ in range(3)]
        assert [e.sequence for e in entries] == [1, 2, 3]

    def test_explain(self, graph_schema, nodes):
        log = TraceLog(graph_schema)
        log.record(
            "place", "c1", actor="L.", reason="shape", subject_oid=nodes[0].oid
        )
        lines = log.explain(nodes[0].oid)
        assert len(lines) == 1
        assert "by L." in lines[0]
        assert "shape" in lines[0]

    def test_details_payload(self, graph_schema):
        log = TraceLog(graph_schema)
        entry = log.record("derive-names", "c", epithet="Apium", year=1753)
        assert entry.details == {"epithet": "Apium", "year": 1753}

    def test_persistence(self, tmp_path):
        path = tmp_path / "t.plog"
        store = ObjectStore(path)
        schema = make_graph_schema(store)
        log = TraceLog(schema)
        log.record("place", "c1", actor="A", subject_oid=5)
        schema.commit()
        store.close()

        store2 = ObjectStore(path)
        schema2 = make_graph_schema(store2)
        schema2.load_all()
        log2 = TraceLog(schema2)
        assert len(log2) == 1
        entry = next(iter(log2))
        assert entry.actor == "A"
        assert entry.subject_oid == 5
        assert entry.timestamp  # preserved
        store2.close()
