"""Classifications: membership, DAG invariants, overlap, persistence."""

import pytest

from repro.classification import ClassificationManager
from repro.errors import ClassificationError
from repro.storage.store import ObjectStore
from tests.classification.conftest import make_graph_schema


class TestMembership:
    def test_place_creates_and_attaches(self, manager, nodes):
        c = manager.create("c1")
        edge = c.place("Contains", nodes[0], nodes[1], motivation="test")
        assert edge in c
        assert len(c) == 1
        assert edge.get("motivation") == "test"

    def test_add_existing_edge(self, manager, nodes, graph_schema):
        c = manager.create("c1")
        edge = graph_schema.relate("Contains", nodes[0], nodes[1])
        c.add_edge(edge)
        assert edge in c
        c.add_edge(edge)  # idempotent
        assert len(c) == 1

    def test_remove_edge_keeps_edge_alive(self, manager, nodes):
        c = manager.create("c1")
        edge = c.place("Contains", nodes[0], nodes[1])
        c.remove_edge(edge)
        assert edge not in c
        assert not edge.deleted

    def test_deleted_edges_pruned_lazily(self, manager, nodes, graph_schema):
        c = manager.create("c1")
        edge = c.place("Contains", nodes[0], nodes[1])
        graph_schema.unrelate(edge)
        assert c.edges() == []
        assert len(c) == 0

    def test_duplicate_name_rejected(self, manager):
        manager.create("c1")
        with pytest.raises(ClassificationError):
            manager.create("c1")

    def test_unknown_classification(self, manager):
        with pytest.raises(ClassificationError):
            manager.get("nope")


class TestDagInvariant:
    def test_self_loop_rejected(self, manager, nodes):
        c = manager.create("c1")
        with pytest.raises(ClassificationError):
            c.place("Contains", nodes[0], nodes[0])

    def test_cycle_rejected(self, manager, nodes):
        c = manager.create("c1")
        c.place("Contains", nodes[0], nodes[1])
        c.place("Contains", nodes[1], nodes[2])
        with pytest.raises(ClassificationError):
            c.place("Contains", nodes[2], nodes[0])

    def test_cycle_allowed_across_classifications(self, manager, nodes):
        """Overlap means edges may form cycles in the union — each
        classification alone stays acyclic."""
        c1, c2 = manager.create("c1"), manager.create("c2")
        c1.place("Contains", nodes[0], nodes[1])
        c2.place("Contains", nodes[1], nodes[0])
        assert len(c1) == len(c2) == 1

    def test_diamond_is_fine(self, manager, nodes):
        c = manager.create("c1")
        c.place("Contains", nodes[0], nodes[1])
        c.place("Contains", nodes[0], nodes[2])
        c.place("Contains", nodes[1], nodes[3])
        c.place("Contains", nodes[2], nodes[3])
        assert not c.is_tree()
        assert len(c) == 4


class TestNavigation:
    @pytest.fixture
    def tree(self, manager, nodes):
        #      n0
        #     /  \
        #    n1   n2
        #   /  \    \
        #  n3  n4    n5
        c = manager.create("tree")
        for parent, child in [(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)]:
            c.place("Contains", nodes[parent], nodes[child])
        return c

    def test_children_parents(self, tree, nodes):
        assert tree.children(nodes[0]) == [nodes[1], nodes[2]]
        assert tree.parents(nodes[3]) == [nodes[1]]
        assert tree.children(nodes[5]) == []

    def test_roots_leaves(self, tree, nodes):
        assert tree.roots() == [nodes[0]]
        assert set(tree.leaves()) == {nodes[3], nodes[4], nodes[5]}

    def test_descendants(self, tree, nodes):
        descendants = set(tree.descendants(nodes[1]))
        assert descendants == {nodes[3], nodes[4]}
        assert set(tree.descendants(nodes[0])) == set(nodes[1:6])

    def test_ancestors(self, tree, nodes):
        assert set(tree.ancestors(nodes[3])) == {nodes[1], nodes[0]}
        assert list(tree.ancestors(nodes[0])) == []

    def test_depth(self, tree, nodes):
        assert tree.depth(nodes[0]) == 0
        assert tree.depth(nodes[1]) == 1
        assert tree.depth(nodes[3]) == 2

    def test_is_tree(self, tree):
        assert tree.is_tree()

    def test_node_listing(self, tree, nodes):
        assert tree.nodes() == nodes[:6]


class TestOverlapQueries:
    def test_shared_nodes_and_edges(self, manager, nodes, graph_schema):
        c1, c2 = manager.create("c1"), manager.create("c2")
        shared_edge = graph_schema.relate("Contains", nodes[0], nodes[1])
        c1.add_edge(shared_edge)
        c2.add_edge(shared_edge)
        c1.place("Contains", nodes[1], nodes[2])
        c2.place("Contains", nodes[1], nodes[3])
        assert manager.shared_edges("c1", "c2") == {shared_edge.oid}
        assert manager.shared_nodes("c1", "c2") == {nodes[0].oid, nodes[1].oid}
        assert manager.classifications_of_edge(shared_edge) == [c1, c2]
        assert manager.classifications_of_node(nodes[3]) == [c2]

    def test_drop_preserves_shared_edges(self, manager, nodes, graph_schema):
        c1, c2 = manager.create("c1"), manager.create("c2")
        shared = graph_schema.relate("Contains", nodes[0], nodes[1])
        c1.add_edge(shared)
        c2.add_edge(shared)
        only_c1 = c1.place("Contains", nodes[1], nodes[2])
        manager.drop("c1", delete_edges=True)
        assert "c1" not in manager
        assert not shared.deleted  # still used by c2
        assert only_c1.deleted


class TestPersistence:
    def test_classifications_survive_reopen(self, tmp_path):
        path = tmp_path / "c.plog"
        store = ObjectStore(path)
        schema = make_graph_schema(store)
        manager = ClassificationManager(schema)
        nodes = [schema.create("Node", label=f"n{i}") for i in range(3)]
        c = manager.create("Tutin 1968", author="Tutin", year=1968)
        c.place("Contains", nodes[0], nodes[1])
        c.place("Contains", nodes[0], nodes[2])
        schema.commit()
        store.close()

        store2 = ObjectStore(path)
        schema2 = make_graph_schema(store2)
        schema2.load_all()
        manager2 = ClassificationManager(schema2)
        c2 = manager2.get("Tutin 1968")
        assert c2.author == "Tutin"
        assert c2.year == 1968
        assert len(c2) == 2
        roots = c2.roots()
        assert [r.get("label") for r in roots] == ["n0"]
        assert len(c2.children(roots[0])) == 2
        store2.close()
