"""Circumscription overlap and synonym discovery."""

import pytest

from repro.classification import (
    OverlapKind,
    circumscription,
    classify_overlap,
    compare_classifications,
)


class TestClassifyOverlap:
    def test_kinds(self):
        a = frozenset({1, 2, 3})
        assert classify_overlap(a, a) is OverlapKind.FULL
        assert classify_overlap(a, frozenset({3, 4})) is OverlapKind.PARTIAL
        assert classify_overlap(a, frozenset({1, 2})) is OverlapKind.CONTAINS
        assert classify_overlap(frozenset({1}), a) is OverlapKind.CONTAINED
        assert classify_overlap(a, frozenset({9})) is OverlapKind.NONE
        assert classify_overlap(a, frozenset()) is OverlapKind.NONE


class TestCircumscription:
    def test_leaves_below_node(self, manager, nodes):
        c = manager.create("c")
        c.place("Contains", nodes[0], nodes[1])
        c.place("Contains", nodes[1], nodes[2])
        c.place("Contains", nodes[1], nodes[3])
        assert circumscription(c, nodes[0]) == {nodes[2].oid, nodes[3].oid}
        assert circumscription(c, nodes[2]) == {nodes[2].oid}

    def test_custom_leaf_predicate(self, manager, nodes):
        c = manager.create("c")
        c.place("Contains", nodes[0], nodes[1])
        c.place("Contains", nodes[1], nodes[2])
        only_n1 = circumscription(
            c, nodes[0], is_leaf=lambda o: o.get("label") == "n1"
        )
        assert only_n1 == {nodes[1].oid}

    def test_canonicalisation_through_synonyms(self, manager, nodes, graph_schema):
        c = manager.create("c")
        c.place("Contains", nodes[0], nodes[1])
        c.place("Contains", nodes[0], nodes[2])
        graph_schema.synonyms.declare(nodes[1].oid, nodes[2].oid)
        circ = circumscription(
            c, nodes[0], canonical=graph_schema.synonyms.canonical
        )
        assert len(circ) == 1


class TestCompareClassifications:
    @pytest.fixture
    def pair(self, manager, nodes):
        """c1: g0={n4,n5}, g1={n6,n7}; c2: h0={n4,n5}, h1={n6,n8}."""
        c1, c2 = manager.create("c1"), manager.create("c2")
        g0, g1 = nodes[0], nodes[1]
        h0, h1 = nodes[2], nodes[3]
        for parent, child in [(g0, nodes[4]), (g0, nodes[5]), (g1, nodes[6]), (g1, nodes[7])]:
            c1.place("Contains", parent, child)
        for parent, child in [(h0, nodes[4]), (h0, nodes[5]), (h1, nodes[6]), (h1, nodes[8])]:
            c2.place("Contains", parent, child)
        return c1, c2

    def test_full_and_partial_synonyms(self, pair, nodes):
        report = compare_classifications(*pair)
        fulls = report.full_synonyms()
        assert len(fulls) == 1
        assert (fulls[0].taxon_a, fulls[0].taxon_b) == (nodes[0].oid, nodes[2].oid)
        partials = report.pro_parte_synonyms()
        assert len(partials) == 1
        assert partials[0].shared == {nodes[6].oid}

    def test_shared_leaves(self, pair, nodes):
        report = compare_classifications(*pair)
        assert report.shared_leaf_oids == {
            nodes[4].oid, nodes[5].oid, nodes[6].oid
        }

    def test_jaccard(self, pair):
        report = compare_classifications(*pair)
        full = report.full_synonyms()[0]
        assert full.jaccard == 1.0
        partial = report.pro_parte_synonyms()[0]
        assert partial.jaccard == pytest.approx(1 / 3)

    def test_homotypic_flag(self, pair, nodes):
        types = {
            nodes[0].oid: nodes[4].oid,
            nodes[2].oid: nodes[4].oid,  # same type => homotypic
            nodes[1].oid: nodes[6].oid,
            nodes[3].oid: nodes[8].oid,  # different types
        }
        report = compare_classifications(
            *pair, type_of=lambda obj: types.get(obj.oid)
        )
        full = report.full_synonyms()[0]
        assert full.homotypic is True
        partial = report.pro_parte_synonyms()[0]
        assert partial.homotypic is False

    def test_misplacement_suspects(self, pair):
        report = compare_classifications(*pair)
        suspects = report.misplacement_suspects(threshold=1)
        assert len(suspects) == 1

    def test_empty_classifications(self, manager):
        c1, c2 = manager.create("e1"), manager.create("e2")
        report = compare_classifications(c1, c2)
        assert report.synonym_pairs == []
        assert report.shared_leaf_oids == frozenset()
