"""Event specifications: primitive and composite (§5.2.1.1)."""

from repro.core.events import Event, EventKind
from repro.rules.events import (
    AllOf,
    AnyOf,
    On,
    Sequence,
    on_commit,
    on_create,
    on_delete,
    on_relate,
    on_unrelate,
    on_update,
)


def ev(kind, class_name="", attribute=""):
    return Event(kind=kind, class_name=class_name, attribute=attribute)


class TestPrimitive:
    def test_kind_match(self):
        spec = On(EventKind.AFTER_CREATE)
        assert spec.matches(ev(EventKind.AFTER_CREATE))
        assert not spec.matches(ev(EventKind.AFTER_DELETE))

    def test_class_narrowing(self):
        spec = On(EventKind.AFTER_CREATE, class_name="Taxon")
        assert spec.matches(ev(EventKind.AFTER_CREATE, "Taxon"))
        assert not spec.matches(ev(EventKind.AFTER_CREATE, "Specimen"))

    def test_attribute_narrowing(self):
        spec = On(EventKind.AFTER_UPDATE, class_name="T", attribute="rank")
        assert spec.matches(ev(EventKind.AFTER_UPDATE, "T", "rank"))
        assert not spec.matches(ev(EventKind.AFTER_UPDATE, "T", "name"))

    def test_kinds(self):
        assert On(EventKind.AFTER_CREATE).kinds() == {EventKind.AFTER_CREATE}

    def test_constructors(self):
        assert on_update("T", before=True).kind is EventKind.BEFORE_UPDATE
        assert on_create("T").kind is EventKind.AFTER_CREATE
        assert on_delete(before=True).kind is EventKind.BEFORE_DELETE
        assert on_relate("R").kind is EventKind.AFTER_RELATE
        assert on_unrelate("R", before=True).kind is EventKind.BEFORE_UNRELATE
        assert on_commit().kind is EventKind.BEFORE_COMMIT


class TestComposite:
    def test_any_of(self):
        spec = AnyOf(
            On(EventKind.AFTER_CREATE), On(EventKind.AFTER_DELETE)
        )
        assert spec.feed(ev(EventKind.AFTER_CREATE))
        assert spec.feed(ev(EventKind.AFTER_DELETE))
        assert not spec.feed(ev(EventKind.AFTER_UPDATE))
        assert spec.kinds() == {
            EventKind.AFTER_CREATE, EventKind.AFTER_DELETE
        }

    def test_all_of_accumulates(self):
        spec = AllOf(
            On(EventKind.AFTER_CREATE), On(EventKind.AFTER_UPDATE)
        )
        assert not spec.feed(ev(EventKind.AFTER_CREATE))
        assert not spec.feed(ev(EventKind.AFTER_CREATE))  # same again
        assert spec.feed(ev(EventKind.AFTER_UPDATE))

    def test_all_of_resets(self):
        spec = AllOf(On(EventKind.AFTER_CREATE), On(EventKind.AFTER_UPDATE))
        spec.feed(ev(EventKind.AFTER_CREATE))
        spec.reset()
        assert not spec.feed(ev(EventKind.AFTER_UPDATE))

    def test_sequence_ordered(self):
        spec = Sequence(On(EventKind.AFTER_CREATE), On(EventKind.AFTER_DELETE))
        # Wrong order first: delete before create doesn't advance.
        assert not spec.feed(ev(EventKind.AFTER_DELETE))
        assert not spec.feed(ev(EventKind.AFTER_CREATE))
        assert spec.feed(ev(EventKind.AFTER_DELETE))

    def test_sequence_resets(self):
        spec = Sequence(On(EventKind.AFTER_CREATE), On(EventKind.AFTER_DELETE))
        spec.feed(ev(EventKind.AFTER_CREATE))
        spec.reset()
        assert not spec.feed(ev(EventKind.AFTER_DELETE))

    def test_nested_composites(self):
        spec = AnyOf(
            AllOf(On(EventKind.AFTER_CREATE), On(EventKind.AFTER_UPDATE)),
            On(EventKind.AFTER_DELETE),
        )
        assert spec.feed(ev(EventKind.AFTER_DELETE))
        assert not spec.feed(ev(EventKind.AFTER_CREATE))
        assert spec.feed(ev(EventKind.AFTER_UPDATE))
