"""Rule engine: scheduling, violation handling, cascades (§5.2.2)."""

import pytest

from repro.core.attributes import Attribute
from repro.core.events import EventKind
from repro.core.schema import Schema
from repro.core import types as T
from repro.errors import ConstraintViolation, RuleCascadeError, RuleError
from repro.rules import (
    Mode,
    On,
    OnViolation,
    Rule,
    RuleEngine,
    RuleKind,
    on_create,
    on_relate,
    on_update,
)


@pytest.fixture
def schema():
    s = Schema()
    s.define_class(
        "Account",
        [
            Attribute("owner", T.STRING),
            Attribute("balance", T.INTEGER, default=0),
        ],
    )
    s.define_class("Premium", superclasses=("Account",))
    s.define_relationship("Linked", "Account", "Account")
    return s


@pytest.fixture
def engine(schema):
    return RuleEngine(schema)


def non_negative_rule(**overrides):
    defaults = dict(
        name="non_negative",
        event=on_update("Account", attribute="balance"),
        condition=lambda ctx: (ctx.event.new_value or 0) >= 0,
        message="balance must stay non-negative",
    )
    defaults.update(overrides)
    return Rule(**defaults)


class TestImmediate:
    def test_violation_blocks_update(self, schema, engine):
        engine.register(non_negative_rule())
        account = schema.create("Account", owner="a")
        with pytest.raises(ConstraintViolation):
            account.set("balance", -5)
        assert account.get("balance") == 0  # rolled back

    def test_valid_update_passes(self, schema, engine):
        engine.register(non_negative_rule())
        account = schema.create("Account", owner="a")
        account.set("balance", 100)
        assert account.get("balance") == 100

    def test_subclass_covered(self, schema, engine):
        engine.register(non_negative_rule())
        premium = schema.create("Premium", owner="p")
        with pytest.raises(ConstraintViolation):
            premium.set("balance", -1)

    def test_applicability_gate(self, schema, engine):
        engine.register(
            non_negative_rule(
                applicability=lambda ctx: ctx.target.get("owner") == "strict",
            )
        )
        lax = schema.create("Account", owner="lax")
        lax.set("balance", -10)  # rule does not apply
        strict = schema.create("Account", owner="strict")
        with pytest.raises(ConstraintViolation):
            strict.set("balance", -10)

    def test_pool_expressed_condition(self, schema, engine):
        engine.register(
            Rule(
                name="owner_not_empty",
                event=on_update("Account", attribute="owner"),
                condition='new <> ""',
            )
        )
        account = schema.create("Account", owner="x")
        with pytest.raises(ConstraintViolation):
            account.set("owner", "")

    def test_disabled_rule_ignored(self, schema, engine):
        rule = engine.register(non_negative_rule())
        rule.enabled = False
        schema.create("Account", owner="a").set("balance", -1)

    def test_priority_order(self, schema, engine):
        fired = []
        for name, priority in (("second", 20), ("first", 10)):
            engine.register(
                Rule(
                    name=name,
                    event=on_create("Account"),
                    kind=RuleKind.ACTION,
                    action=lambda ctx, n=name: fired.append(n),
                    priority=priority,
                )
            )
        schema.create("Account", owner="a")
        assert fired == ["first", "second"]

    def test_statistics(self, schema, engine):
        rule = engine.register(non_negative_rule(on_violation=OnViolation.WARN))
        account = schema.create("Account", owner="a")
        account.set("balance", 5)
        account.set("balance", -5)
        assert rule.fired == 2
        assert rule.violations == 1


class TestDeferred:
    def test_checked_at_commit(self, schema, engine):
        engine.register(
            non_negative_rule(mode=Mode.DEFERRED)
        )
        account = schema.create("Account", owner="a")
        account.set("balance", -5)  # allowed now
        assert account.get("balance") == -5
        with pytest.raises(ConstraintViolation):
            schema.commit()
        # automatic abort rolled everything back
        assert schema.count("Account") == 0

    def test_transient_violation_fixed_before_commit(self, schema, engine):
        """Deferred rules assert the final state: a mid-transaction dip
        below zero is fine if the balance is valid at commit."""
        engine.register(non_negative_rule(mode=Mode.DEFERRED))
        account = schema.create("Account", owner="a")
        account.set("balance", -5)
        account.set("balance", 5)
        schema.commit()
        assert account.get("balance") == 5

    def test_deferred_on_deleted_object_skipped(self, schema, engine):
        engine.register(non_negative_rule(mode=Mode.DEFERRED))
        account = schema.create("Account", owner="a")
        account.set("balance", -5)
        schema.delete(account)
        schema.commit()  # no violation: object gone

    def test_queue_cleared_after_abort(self, schema, engine):
        engine.register(non_negative_rule(mode=Mode.DEFERRED))
        account = schema.create("Account", owner="a")
        account.set("balance", -5)
        schema.abort()
        schema.commit()  # queue must be empty now


class TestViolationModes:
    def test_warn_records(self, schema, engine):
        engine.register(non_negative_rule(on_violation=OnViolation.WARN))
        account = schema.create("Account", owner="a")
        account.set("balance", -1)
        assert account.get("balance") == -1  # change allowed
        assert len(engine.warnings) == 1
        assert engine.warnings[0].rule_name == "non_negative"
        engine.clear_warnings()
        assert engine.warnings == []

    def test_repair_fixes(self, schema, engine):
        def clamp(ctx):
            ctx.target._values["balance"] = 0

        engine.register(
            non_negative_rule(
                on_violation=OnViolation.REPAIR,
                action=clamp,
                condition=lambda ctx: ctx.target.get("balance") >= 0,
            )
        )
        account = schema.create("Account", owner="a")
        account.set("balance", -5)
        assert account.get("balance") == 0

    def test_repair_requires_action(self):
        with pytest.raises(RuleError):
            Rule(
                name="r",
                event=on_create(),
                condition=lambda ctx: True,
                on_violation=OnViolation.REPAIR,
            )

    def test_interactive_reject(self, schema, engine):
        engine.register(
            non_negative_rule(on_violation=OnViolation.INTERACTIVE)
        )
        engine.set_interactive_handler(lambda rule, ctx: False)
        account = schema.create("Account", owner="a")
        with pytest.raises(ConstraintViolation, match="rejected"):
            account.set("balance", -1)

    def test_interactive_without_handler_rejects(self, schema, engine):
        engine.register(
            non_negative_rule(on_violation=OnViolation.INTERACTIVE)
        )
        account = schema.create("Account", owner="a")
        with pytest.raises(ConstraintViolation):
            account.set("balance", -1)


class TestRelationshipRules:
    def test_before_relate_veto(self, schema, engine):
        engine.register(
            Rule(
                name="no_self_link",
                event=on_relate("Linked", before=True),
                condition=lambda ctx: ctx.origin.oid != ctx.destination.oid,
                kind=RuleKind.RELATIONSHIP,
            )
        )
        a, b = schema.create("Account"), schema.create("Account")
        schema.relate("Linked", a, b)
        with pytest.raises(ConstraintViolation):
            schema.relate("Linked", a, a)
        assert len(a.outgoing("Linked")) == 1


class TestActionRules:
    def test_derivation_action(self, schema, engine):
        """ACTION rules run their action, no constraint involved."""
        log = []
        engine.register(
            Rule(
                name="audit",
                event=on_create("Account"),
                kind=RuleKind.ACTION,
                action=lambda ctx: log.append(ctx.target.oid),
            )
        )
        a = schema.create("Account", owner="x")
        assert log == [a.oid]

    def test_cascade_limit(self, schema, engine):
        """An action that re-triggers itself is stopped (§5.2.2.2)."""

        def pump(ctx):
            ctx.target.set("balance", (ctx.target.get("balance") or 0) + 1)

        engine.register(
            Rule(
                name="runaway",
                event=on_update("Account", attribute="balance"),
                kind=RuleKind.ACTION,
                action=pump,
            )
        )
        account = schema.create("Account", owner="a")
        with pytest.raises(RuleCascadeError):
            account.set("balance", 1)


class TestRegistry:
    def test_duplicate_name_rejected(self, engine):
        engine.register(non_negative_rule())
        with pytest.raises(RuleError):
            engine.register(non_negative_rule())

    def test_unregister(self, schema, engine):
        engine.register(non_negative_rule(target_class="Account"))
        assert schema.get_class("Account").constraints
        engine.unregister("non_negative")
        assert not schema.get_class("Account").constraints
        schema.create("Account", owner="a").set("balance", -1)  # gone

    def test_get_unknown(self, engine):
        with pytest.raises(RuleError):
            engine.get("nope")

    def test_class_constraint_attachment(self, schema, engine):
        engine.register(non_negative_rule(target_class="Account"))
        constraints = schema.get_class("Premium").all_constraints()
        assert any(c.name == "non_negative" for c in constraints)

    def test_detach_stops_listening(self, schema, engine):
        engine.register(non_negative_rule())
        engine.detach()
        schema.create("Account", owner="a").set("balance", -1)  # unchecked


class TestSubclassCoverage:
    """Rules on abstract classes cover the whole hierarchy, including
    through composite event specs."""

    def test_composite_spec_covers_subclass(self, schema, engine):
        from repro.rules import AnyOf

        fired = []
        engine.register(
            Rule(
                name="account_watch",
                event=AnyOf(
                    on_create("Account"),
                    on_update("Account", attribute="balance"),
                ),
                kind=RuleKind.ACTION,
                action=lambda ctx: fired.append(ctx.event.kind.value),
            )
        )
        premium = schema.create("Premium", owner="p")
        premium.set("balance", 5)
        assert "after_create" in fired
        assert "after_update" in fired

    def test_unrelated_class_not_covered(self, schema, engine):
        fired = []
        engine.register(
            Rule(
                name="only_premium",
                event=on_create("Premium"),
                kind=RuleKind.ACTION,
                action=lambda ctx: fired.append(1),
            )
        )
        schema.create("Account", owner="plain")  # superclass: no match
        assert fired == []
        schema.create("Premium", owner="p")
        assert fired == [1]
