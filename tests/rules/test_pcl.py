"""PCL: parsing and translation into Prometheus rules (§5.2.3)."""

import pytest

from repro.core.attributes import Attribute
from repro.core.schema import Schema
from repro.core import types as T
from repro.errors import ConstraintViolation, PCLError
from repro.rules import (
    Mode,
    PclParser,
    RuleEngine,
    RuleKind,
    format_translation,
    translate_pcl,
)


@pytest.fixture
def schema():
    s = Schema()
    s.define_class(
        "Taxon",
        [
            Attribute("name", T.STRING),
            Attribute("rank", T.STRING),
            Attribute("size", T.INTEGER, default=0),
        ],
    )
    s.define_relationship("PlacedIn", "Taxon", "Taxon")
    return s


@pytest.fixture
def engine(schema):
    return RuleEngine(schema)


class TestParsing:
    def test_single_inv(self, schema):
        clauses = PclParser(
            'context Taxon inv named : self.name <> null'
        ).parse()
        assert len(clauses) == 1
        assert clauses[0].kind == "inv"
        assert clauses[0].name == "named"
        assert clauses[0].context_class == "Taxon"

    def test_anonymous_clause_gets_generated_name(self, schema):
        clauses = PclParser("context Taxon inv : self.size >= 0").parse()
        assert clauses[0].name == "Taxon_inv_1"

    def test_when_clause(self, schema):
        clauses = PclParser(
            'context Taxon inv when self.rank = "Genus" : '
            'self.name <> ""'
        ).parse()
        assert "Genus" in clauses[0].when_text

    def test_mode_keyword(self, schema):
        clauses = PclParser(
            "context Taxon inv fast immediate : self.size >= 0"
        ).parse()
        assert clauses[0].mode is Mode.IMMEDIATE

    def test_multiple_clauses_one_context(self, schema):
        clauses = PclParser(
            """
            context Taxon
                inv a : self.size >= 0
                inv b : self.name <> null
                pre c : new <> null
            """
        ).parse()
        assert [c.kind for c in clauses] == ["inv", "inv", "pre"]

    def test_multiple_contexts(self, schema):
        clauses = PclParser(
            """
            context Taxon inv : self.size >= 0
            context PlacedIn relinv : origin.oid <> destination.oid
            """
        ).parse()
        assert [c.context_class for c in clauses] == ["Taxon", "PlacedIn"]

    def test_implies(self, schema):
        clauses = PclParser(
            'context Taxon inv : self.rank = "Genus" implies self.size > 0'
        ).parse()
        assert "or" in clauses[0].condition_text

    def test_empty_context_rejected(self):
        with pytest.raises(PCLError):
            PclParser("context Taxon").parse()

    def test_missing_context_keyword(self):
        with pytest.raises(PCLError):
            PclParser("invariant Taxon inv : true").parse()


class TestTranslation:
    def test_inv_defaults_deferred(self, schema, engine):
        rules = translate_pcl(
            "context Taxon inv sized : self.size >= 0", schema, engine
        )
        assert rules[0].kind is RuleKind.INVARIANT
        assert rules[0].mode is Mode.DEFERRED
        assert rules[0].target_class == "Taxon"

    def test_pre_is_immediate_before_update(self, schema, engine):
        rules = translate_pcl(
            "context Taxon pre : new <> null", schema, engine
        )
        assert rules[0].kind is RuleKind.PRECONDITION
        assert rules[0].mode is Mode.IMMEDIATE

    def test_relinv_requires_relationship_class(self, schema):
        with pytest.raises(PCLError):
            translate_pcl(
                "context Taxon relinv : origin.oid <> destination.oid",
                schema,
            )

    def test_unknown_context_class(self, schema):
        with pytest.raises(PCLError):
            translate_pcl("context Ghost inv : true or false", schema)

    def test_format_translation(self, schema):
        rules = translate_pcl(
            'context Taxon inv sized when self.rank = "Genus" : '
            "self.size >= 0",
            schema,
        )
        text = format_translation(rules[0])
        assert "rule sized" in text
        assert "when" in text
        assert "deferred" in text


class TestEnforcement:
    def test_inv_enforced_at_commit(self, schema, engine):
        translate_pcl("context Taxon inv : self.size >= 0", schema, engine)
        taxon = schema.create("Taxon", name="x")
        taxon.set("size", -1)
        with pytest.raises(ConstraintViolation):
            schema.commit()
        assert schema.count("Taxon") == 0  # aborted

    def test_immediate_inv(self, schema, engine):
        translate_pcl(
            "context Taxon inv immediate : self.size >= 0", schema, engine
        )
        taxon = schema.create("Taxon", name="x")
        with pytest.raises(ConstraintViolation):
            taxon.set("size", -1)
        assert taxon.get("size") == 0

    def test_pre_condition_sees_old_and_new(self, schema, engine):
        translate_pcl(
            "context Taxon pre grow on size : new >= old",
            schema,
            engine,
        )
        taxon = schema.create("Taxon", name="x", size=5)
        taxon.set("size", 6)
        with pytest.raises(ConstraintViolation):
            taxon.set("size", 2)

    def test_relinv_enforced(self, schema, engine):
        translate_pcl(
            "context PlacedIn relinv : origin.oid <> destination.oid",
            schema,
            engine,
        )
        a, b = schema.create("Taxon"), schema.create("Taxon")
        schema.relate("PlacedIn", a, b)
        with pytest.raises(ConstraintViolation):
            schema.relate("PlacedIn", a, a)

    def test_when_gates_enforcement(self, schema, engine):
        translate_pcl(
            'context Taxon inv immediate when self.rank = "Genus" : '
            "self.size > 0",
            schema,
            engine,
        )
        schema.create("Taxon", name="ok", rank="Species", size=0)
        with pytest.raises(ConstraintViolation):
            schema.create("Taxon", name="bad", rank="Genus", size=0)

    def test_figure_23_style_implication(self, schema, engine):
        """PCL example: rank Genus implies capitalised name."""
        translate_pcl(
            "context Taxon inv immediate : "
            'self.rank = "Genus" implies self.name.length() > 0',
            schema,
            engine,
        )
        schema.create("Taxon", name="", rank="Species")  # fine
        with pytest.raises(ConstraintViolation):
            schema.create("Taxon", name="", rank="Genus")
