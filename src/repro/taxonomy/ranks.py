"""The ICBN rank hierarchy (thesis Figure 1, §2.1.1).

Ranks are ordered, and the order constrains placements: a taxon at rank
*r* must be placed below a taxon at a strictly higher rank.  Primary
ranks (Regnum … Species) are compulsory in the sense that a
classification's rank selection must respect their order; secondary and
sub-ranks are optional refinements.  Taxonomists select a *rank range*
to work in (e.g. Genus to Species).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import RankOrderError


class RankCategory(enum.Enum):
    PRIMARY = "primary"
    SECONDARY = "secondary"
    SUB = "sub"


@dataclass(frozen=True, slots=True)
class Rank:
    """One rank: a name, a position, and an ICBN category.

    ``order`` grows downward: Regnum has the smallest order, Subforma the
    largest.  Comparisons follow ICBN position, so ``Genus < Species``
    reads "Genus is higher in the hierarchy than Species".
    """

    name: str
    order: int
    category: RankCategory

    def __lt__(self, other: "Rank") -> bool:
        return self.order < other.order

    def __le__(self, other: "Rank") -> bool:
        return self.order <= other.order

    def __gt__(self, other: "Rank") -> bool:
        return self.order > other.order

    def __ge__(self, other: "Rank") -> bool:
        return self.order >= other.order

    def is_above(self, other: "Rank") -> bool:
        """True when self is a higher (more general) rank than other."""
        return self.order < other.order

    def is_below(self, other: "Rank") -> bool:
        return self.order > other.order

    def __str__(self) -> str:
        return self.name


def _build_sequence() -> tuple[Rank, ...]:
    """The full ordered rank sequence of Figure 1.

    Each primary/secondary rank is immediately followed by its sub-rank
    ("sub" prefixed), representing a subdivision of that rank.
    """
    primary = ["Regnum", "Divisio", "Classis", "Ordo", "Familia"]
    # After Familia come the secondary ranks Tribus (between Familia and
    # Genus), then Genus, then Sectio and Series (between Genus and
    # Species), then Species, then Varietas and Forma below Species.
    spec: list[tuple[str, RankCategory]] = []
    for name in primary:
        spec.append((name, RankCategory.PRIMARY))
        spec.append(("Sub" + name.lower(), RankCategory.SUB))
    spec.append(("Tribus", RankCategory.SECONDARY))
    spec.append(("Subtribus", RankCategory.SUB))
    spec.append(("Genus", RankCategory.PRIMARY))
    spec.append(("Subgenus", RankCategory.SUB))
    spec.append(("Sectio", RankCategory.SECONDARY))
    spec.append(("Subsectio", RankCategory.SUB))
    spec.append(("Series", RankCategory.SECONDARY))
    spec.append(("Subseries", RankCategory.SUB))
    spec.append(("Species", RankCategory.PRIMARY))
    spec.append(("Subspecies", RankCategory.SUB))
    spec.append(("Varietas", RankCategory.SECONDARY))
    spec.append(("Subvarietas", RankCategory.SUB))
    spec.append(("Forma", RankCategory.SECONDARY))
    spec.append(("Subforma", RankCategory.SUB))
    return tuple(
        Rank(name=name, order=(index + 1) * 10, category=category)
        for index, (name, category) in enumerate(spec)
    )


#: The canonical rank sequence, highest first.
RANK_SEQUENCE: tuple[Rank, ...] = _build_sequence()

_BY_NAME: dict[str, Rank] = {rank.name.lower(): rank for rank in RANK_SEQUENCE}

# Common aliases taxonomists use.
_ALIASES = {
    "kingdom": "regnum",
    "phylum": "divisio",
    "phyllum": "divisio",
    "division": "divisio",
    "class": "classis",
    "order": "ordo",
    "family": "familia",
    "subfamily": "subfamilia",
    "tribe": "tribus",
    "subtribe": "subtribus",
    "section": "sectio",
    "subsection": "subsectio",
    "variety": "varietas",
    "form": "forma",
}


def get_rank(name: str) -> Rank:
    """Look a rank up by name (case-insensitive, common aliases accepted)."""
    key = name.strip().lower()
    key = _ALIASES.get(key, key)
    try:
        return _BY_NAME[key]
    except KeyError:
        raise RankOrderError(f"unknown rank {name!r}") from None


def is_rank(name: str) -> bool:
    key = name.strip().lower()
    return _ALIASES.get(key, key) in _BY_NAME


def primary_ranks() -> list[Rank]:
    return [r for r in RANK_SEQUENCE if r.category is RankCategory.PRIMARY]


def ranks_between(
    upper: Rank | str,
    lower: Rank | str,
    include_upper: bool = True,
    include_lower: bool = True,
) -> list[Rank]:
    """Ranks from ``upper`` down to ``lower``, inclusive by default."""
    hi = get_rank(upper) if isinstance(upper, str) else upper
    lo = get_rank(lower) if isinstance(lower, str) else lower
    if hi.order > lo.order:
        raise RankOrderError(
            f"{hi.name} is below {lo.name}; upper bound must be higher"
        )
    out = []
    for rank in RANK_SEQUENCE:
        if rank.order < hi.order or rank.order > lo.order:
            continue
        if rank == hi and not include_upper:
            continue
        if rank == lo and not include_lower:
            continue
        out.append(rank)
    return out


def validate_placement(parent_rank: Rank | str, child_rank: Rank | str) -> None:
    """Check the ICBN ordering: a child must sit strictly below its parent.

    Raises:
        RankOrderError: when ``child_rank`` is not strictly below
            ``parent_rank``.
    """
    parent = get_rank(parent_rank) if isinstance(parent_rank, str) else parent_rank
    child = get_rank(child_rank) if isinstance(child_rank, str) else child_rank
    if not child.is_below(parent):
        raise RankOrderError(
            f"rank {child.name} cannot be placed under rank {parent.name}"
        )


def validate_rank_selection(names: Iterable[str]) -> list[Rank]:
    """Validate a classification's chosen rank subset.

    The selection must be given highest-first and strictly descending;
    any subset of the sequence is legal (secondary/sub-ranks optional,
    §2.1.1).  Returns the resolved ranks.
    """
    ranks = [get_rank(name) for name in names]
    for above, below in zip(ranks, ranks[1:]):
        if not below.is_below(above):
            raise RankOrderError(
                f"rank selection not strictly descending: {above.name} "
                f"then {below.name}"
            )
    return ranks


def species_placement_valid(parent_rank: Rank | str) -> bool:
    """ICBN: a Species taxon must be placed below a taxon ranked between
    Genus (inclusive) and Species (exclusive)."""
    parent = get_rank(parent_rank) if isinstance(parent_rank, str) else parent_rank
    genus = get_rank("Genus")
    species = get_rank("Species")
    return genus.order <= parent.order < species.order


def walk_down(start: Rank | str) -> Iterator[Rank]:
    """Iterate ranks strictly below ``start`` in order."""
    rank = get_rank(start) if isinstance(start, str) else start
    for candidate in RANK_SEQUENCE:
        if candidate.order > rank.order:
            yield candidate
