"""Worked scenarios from the thesis, as reusable builders.

* :func:`build_apium_scenario` — Figure 3: the Apium/Heliosciadium
  derivation-of-names example, including the publication of the new
  combination *Heliosciadium repens (Jacq.)Raguenaud*.
* :func:`build_shapes_scenario` — Figure 4: four taxonomists produce four
  overlapping classifications of one growing set of geometric "specimens",
  exhibiting type precedence, reuse of names over different
  circumscriptions, and pro-parte synonymy.

Examples, tests and benchmarks all build on these so the thesis's worked
examples are verified in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..classification import Classification
from ..core.instances import PObject
from .model import HOLOTYPE, LECTOTYPE, TaxonomyDatabase


@dataclass
class ApiumScenario:
    """Handles into the Figure 3 data."""

    taxdb: TaxonomyDatabase
    classification: Classification
    specimen_graveolens: PObject
    specimen_repens: PObject
    specimen_nodiflorum: PObject
    nt_apium: PObject
    nt_graveolens: PObject
    nt_repens_basionym: PObject
    nt_apium_repens: PObject
    nt_heliosciadium: PObject
    nt_nodiflorum_basionym: PObject
    nt_heliosciadium_nodiflorum: PObject
    taxon1: PObject
    taxon2: PObject


def build_apium_scenario(
    taxdb: TaxonomyDatabase | None = None,
) -> ApiumScenario:
    """Construct the nomenclatural history and classification of Figure 3."""
    taxdb = taxdb or TaxonomyDatabase()

    # --- specimens -----------------------------------------------------
    s_graveolens = taxdb.new_specimen(
        collector="C. von Linnaeus",
        collection_number="#Herb.Cliff.107 Apium 1",
        herbarium="BM",
        field_name="Apium graveolens",
    )
    s_repens = taxdb.new_specimen(
        collector="Jacquin",
        collection_number="J-001",
        herbarium="W",
        field_name="repens",
    )
    s_nodiflorum = taxdb.new_specimen(
        collector="W.D.J.Koch",
        collection_number="Nova Acta Phys.-Med. 12(1)",
        herbarium="B",
        field_name="nodiflorum",
    )

    # --- nomenclatural history (left side of Figure 3) -------------------
    nt_apium = taxdb.publish_name(
        "Apium", "Genus", author="L.", year=1753, publication="Sp. Pl."
    )
    nt_graveolens = taxdb.publish_name(
        "graveolens",
        "Species",
        author="L.",
        year=1753,
        publication="Sp. Pl.",
        placement=nt_apium,
    )
    taxdb.typify(nt_graveolens, s_graveolens, LECTOTYPE)
    taxdb.typify(nt_apium, nt_graveolens, HOLOTYPE)

    nt_repens_basionym = taxdb.publish_name(
        "repens", "Species", author="Jacq.", year=1798
    )
    nt_apium_repens = taxdb.publish_name(
        "repens",
        "Species",
        author="Lag.",
        year=1821,
        placement=nt_apium,
        basionym=nt_repens_basionym,
    )
    taxdb.typify(nt_apium_repens, s_repens, HOLOTYPE)

    nt_heliosciadium = taxdb.publish_name(
        "Heliosciadium",
        "Genus",
        author="W.D.J.Koch",
        year=1824,
        publication="Nova Acta Phys.-Med. 12(1)",
    )
    nt_nodiflorum_basionym = taxdb.publish_name(
        "nodiflorum", "Species", author="L.", year=1753
    )
    nt_heliosciadium_nodiflorum = taxdb.publish_name(
        "nodiflorum",
        "Species",
        author="W.D.J.Koch",
        year=1824,
        placement=nt_heliosciadium,
        basionym=nt_nodiflorum_basionym,
    )
    taxdb.typify(nt_heliosciadium_nodiflorum, s_nodiflorum, HOLOTYPE)
    taxdb.typify(nt_heliosciadium, nt_heliosciadium_nodiflorum, HOLOTYPE)

    # --- the revision classification (right side of Figure 3) ------------
    classification = taxdb.new_classification(
        "Raguenaud revision", author="Raguenaud", year=2000
    )
    taxon1 = taxdb.new_taxon("Genus", working_name="Taxon 1")
    taxon2 = taxdb.new_taxon("Species", working_name="Taxon 2")
    taxdb.place(classification, taxon1, taxon2, motivation="leaf shape")
    taxdb.place(classification, taxon2, s_repens)
    taxdb.place(classification, taxon2, s_nodiflorum)

    return ApiumScenario(
        taxdb=taxdb,
        classification=classification,
        specimen_graveolens=s_graveolens,
        specimen_repens=s_repens,
        specimen_nodiflorum=s_nodiflorum,
        nt_apium=nt_apium,
        nt_graveolens=nt_graveolens,
        nt_repens_basionym=nt_repens_basionym,
        nt_apium_repens=nt_apium_repens,
        nt_heliosciadium=nt_heliosciadium,
        nt_nodiflorum_basionym=nt_nodiflorum_basionym,
        nt_heliosciadium_nodiflorum=nt_heliosciadium_nodiflorum,
        taxon1=taxon1,
        taxon2=taxon2,
    )


@dataclass
class ShapesScenario:
    """Handles into the Figure 4 data.

    ``specimens`` maps mnemonic keys (e.g. ``"white_square"``) to
    specimen objects; ``classifications`` maps the four taxonomists'
    names to their classifications; ``types`` maps group epithets to
    their type specimens.
    """

    taxdb: TaxonomyDatabase
    specimens: dict[str, PObject] = field(default_factory=dict)
    classifications: dict[str, Classification] = field(default_factory=dict)
    names: dict[str, PObject] = field(default_factory=dict)
    taxa: dict[str, PObject] = field(default_factory=dict)


#: (key, shape, brightness) of the initial specimen set; year is the
#: publication year of the name each (future) type specimen anchors.
_INITIAL_SPECIMENS = [
    ("white_square", "square", "white"),
    ("grey_square", "square", "mid-grey"),
    ("light_triangle", "triangle", "light-grey"),
    ("dark_triangle", "triangle", "dark-grey"),
    ("black_oval", "oval", "black"),
    ("white_oval", "oval", "white"),
]

_SECOND_WAVE = [
    ("white_rectangle", "rectangle", "pale"),
    ("dark_circle", "circle", "dark-grey"),
    ("white_circle", "circle", "white"),
]

_THIRD_WAVE = [
    ("black_diamond", "diamond", "black"),
    ("pale_diamond", "diamond", "pale"),
]


def build_shapes_scenario(
    taxdb: TaxonomyDatabase | None = None,
) -> ShapesScenario:
    """Construct the four overlapping classifications of Figure 4."""
    taxdb = taxdb or TaxonomyDatabase()
    scenario = ShapesScenario(taxdb=taxdb)
    spec = scenario.specimens

    def add_specimens(batch: list[tuple[str, str, str]]) -> None:
        for key, shape, brightness in batch:
            spec[key] = taxdb.new_specimen(
                field_name=key,
                description=f"shape={shape} brightness={brightness}",
                collector="fieldwork",
            )

    add_specimens(_INITIAL_SPECIMENS)

    # ------------------------------------------------------------------
    # Taxonomist 1 (1900): classify the initial set by shape, two levels.
    # ------------------------------------------------------------------
    c1 = taxdb.new_classification(
        "T1 shapes", author="Taxonomist1", year=1900,
        description="first classification, by shape",
    )
    scenario.classifications["T1"] = c1
    groups1 = {
        "Squares": ["white_square", "grey_square"],
        "Triangles": ["light_triangle", "dark_triangle"],
        "Ovals": ["black_oval", "white_oval"],
    }
    type_choice = {
        "Squares": "white_square",
        "Triangles": "light_triangle",
        "Ovals": "black_oval",
    }
    shapes_nt = taxdb.publish_name(
        "Shapes", "Genus", author="T1", year=1900, validate=False
    )
    scenario.names["Shapes"] = shapes_nt
    top1 = taxdb.new_taxon("Genus", working_name="Shapes")
    scenario.taxa["T1/Shapes"] = top1
    for epithet, members in groups1.items():
        nt = taxdb.publish_name(
            epithet,
            "Species",
            author="T1",
            year=1900,
            placement=shapes_nt,
            validate=False,
        )
        scenario.names[epithet] = nt
        taxdb.typify(nt, spec[type_choice[epithet]], HOLOTYPE)
        ct = taxdb.new_taxon("Species", working_name=epithet)
        scenario.taxa[f"T1/{epithet}"] = ct
        taxdb.place(c1, top1, ct, motivation="shape")
        for key in members:
            taxdb.place(c1, ct, spec[key])
    # The genus is typified by its oldest species type (white square →
    # Squares), so Squares is the type of Shapes.
    taxdb.typify(shapes_nt, scenario.names["Squares"], HOLOTYPE)

    # ------------------------------------------------------------------
    # Taxonomist 2 (1920): insert a Sectio level; new specimens & names.
    # ------------------------------------------------------------------
    add_specimens(_SECOND_WAVE)
    c2 = taxdb.new_classification(
        "T2 sections", author="Taxonomist2", year=1920,
        description="adds an intermediate Sectio level",
    )
    scenario.classifications["T2"] = c2
    rectangles_nt = taxdb.publish_name(
        "Rectangles", "Species", author="T2", year=1920,
        placement=shapes_nt, validate=False,
    )
    taxdb.typify(rectangles_nt, spec["white_rectangle"], HOLOTYPE)
    circles_nt = taxdb.publish_name(
        "Circles", "Species", author="T2", year=1920,
        placement=shapes_nt, validate=False,
    )
    taxdb.typify(circles_nt, spec["dark_circle"], HOLOTYPE)
    scenario.names["Rectangles"] = rectangles_nt
    scenario.names["Circles"] = circles_nt

    top2 = taxdb.new_taxon("Genus", working_name="Shapes")
    scenario.taxa["T2/Shapes"] = top2
    sections2 = {
        "FourAngled": ["Squares", "Rectangles"],
        "ThreeAngled": ["Triangles"],
        "Round": ["Ovals", "Circles"],
    }
    species_members2 = {
        "Squares": ["white_square", "grey_square"],
        "Rectangles": ["white_rectangle"],
        "Triangles": ["light_triangle", "dark_triangle"],
        "Ovals": ["black_oval", "white_oval"],
        "Circles": ["dark_circle", "white_circle"],
    }
    for section, species_list in sections2.items():
        sct = taxdb.new_taxon("Sectio", working_name=section)
        scenario.taxa[f"T2/{section}"] = sct
        taxdb.place(c2, top2, sct, motivation="angle count")
        for epithet in species_list:
            ct = taxdb.new_taxon("Species", working_name=epithet)
            scenario.taxa[f"T2/{epithet}"] = ct
            taxdb.place(c2, sct, ct, motivation="shape")
            for key in species_members2[epithet]:
                taxdb.place(c2, ct, spec[key])

    # ------------------------------------------------------------------
    # Taxonomist 3 (1950): reclassify by brightness; new diamond
    # specimens; the mid-grey square is deliberately ignored (§2.1.3).
    # Each brightness group happens to contain exactly one existing type
    # specimen, so derivation reuses the old names over very different
    # circumscriptions — the counter-intuitive but ICBN-correct result.
    # ------------------------------------------------------------------
    add_specimens(_THIRD_WAVE)
    c3 = taxdb.new_classification(
        "T3 brightness", author="Taxonomist3", year=1950,
        description="reclassifies by brightness; ignores the mid-grey square",
    )
    scenario.classifications["T3"] = c3
    top3 = taxdb.new_taxon("Genus", working_name="Shapes")
    scenario.taxa["T3/Shapes"] = top3
    brightness_groups = {
        # group key -> (members, contained type specimen)
        "white": ["white_square", "white_oval", "white_circle"],
        "pale": ["white_rectangle", "pale_diamond"],
        "light-grey": ["light_triangle"],
        "dark-grey": ["dark_triangle", "dark_circle"],
        "black": ["black_oval", "black_diamond"],
    }
    for brightness, members in brightness_groups.items():
        ct = taxdb.new_taxon("Species", working_name=f"brightness {brightness}")
        scenario.taxa[f"T3/{brightness}"] = ct
        taxdb.place(c3, top3, ct, motivation=f"brightness = {brightness}")
        for key in members:
            taxdb.place(c3, ct, spec[key])

    # ------------------------------------------------------------------
    # Taxonomist 4 (1980): revision — by shape again, three levels,
    # including the diamonds discovered by taxonomist 3.
    # ------------------------------------------------------------------
    c4 = taxdb.new_classification(
        "T4 revision", author="Taxonomist4", year=1980,
        description="three levels as T2, new specimens as T3",
    )
    scenario.classifications["T4"] = c4
    top4 = taxdb.new_taxon("Genus", working_name="Shapes")
    scenario.taxa["T4/Shapes"] = top4
    sections4 = {
        "FourAngled": {
            "Squares": ["white_square", "grey_square"],
            "Rectangles": ["white_rectangle"],
            "Diamonds": ["black_diamond", "pale_diamond"],
        },
        "ThreeAngled": {
            "Triangles": ["light_triangle", "dark_triangle"],
        },
        "Round": {
            "Ovals": ["black_oval", "white_oval"],
            "Circles": ["dark_circle", "white_circle"],
        },
    }
    for section, species in sections4.items():
        sct = taxdb.new_taxon("Sectio", working_name=section)
        scenario.taxa[f"T4/{section}"] = sct
        taxdb.place(c4, top4, sct, motivation="angle count")
        for epithet, members in species.items():
            ct = taxdb.new_taxon("Species", working_name=epithet)
            scenario.taxa[f"T4/{epithet}"] = ct
            taxdb.place(c4, sct, ct, motivation="shape, incl. new finds")
            for key in members:
                taxdb.place(c4, ct, spec[key])

    return scenario
