"""ICBN rules as Prometheus constraints (thesis §7.1.3.2, Figures 35–40).

The taxonomic evaluation demonstrates the rule system by encoding parts
of the International Code of Botanical Nomenclature:

* **Figure 35 — family name rule**: names at rank Familia end in
  ``-aceae`` (eight conserved exceptions).
* **Figure 36 — genus name rule**: Genus epithets are capitalised single
  words (hyphen allowed).
* **Figure 37 — type existence rule**: a validly published name must
  carry a type designation (checked deferred, at commit — typification
  may legitimately follow publication within the transaction).
* **Figure 38 — species rank rule**: a Species taxon is placed below a
  taxon ranked between Genus (inclusive) and Species (exclusive).
* **Figure 39 — series rank rule**: likewise for Series.
* **Figure 40 — placement rule**: every CT→CT placement descends the
  rank hierarchy (relationship-centred rule, §5.2.1.4.4).

Rules 35–36 are *object rules*; 38–40 are *relationship rules* attached
to the ``Includes`` relationship class.
"""

from __future__ import annotations

from ..rules import (
    AnyOf,
    Mode,
    OnViolation,
    Rule,
    RuleContext,
    RuleEngine,
    RuleKind,
    on_create,
    on_relate,
    on_update,
)
from . import nomenclature
from .model import (
    CIRCUMSCRIPTION_TAXON,
    HAS_TYPE,
    INCLUDES,
    NAME_PLACEMENT,
    NOMENCLATURAL_TAXON,
    STATUS_PUBLISHED,
    TaxonomyDatabase,
)
from .ranks import get_rank


def _is_ct(ctx: RuleContext, obj: object) -> bool:
    from ..core.instances import PObject

    return isinstance(obj, PObject) and obj.pclass.is_subclass_of(
        ctx.schema.get_class(CIRCUMSCRIPTION_TAXON)
    )


# ---------------------------------------------------------------------------
# object rules (Figures 35-37)
# ---------------------------------------------------------------------------

def family_name_rule() -> Rule:
    """Figure 35: family names end with -aceae (with the 8 exceptions)."""

    def applies(ctx: RuleContext) -> bool:
        return ctx.target is not None and ctx.target.get("rank") == "Familia"

    def check(ctx: RuleContext) -> bool:
        epithet = ctx.target.get("epithet") or ""
        return (
            epithet.endswith("aceae")
            or epithet in nomenclature.FAMILY_ENDING_EXCEPTIONS
        )

    return Rule(
        name="icbn_family_name",
        event=AnyOf(
            on_create(NOMENCLATURAL_TAXON),
            on_update(NOMENCLATURAL_TAXON, attribute="epithet"),
            on_update(NOMENCLATURAL_TAXON, attribute="rank"),
        ),
        applicability=applies,
        condition=check,
        kind=RuleKind.INVARIANT,
        target_class=NOMENCLATURAL_TAXON,
        message="family names must end with -aceae (ICBN, Figure 35)",
    )


def genus_name_rule() -> Rule:
    """Figure 36: Genus epithets are capitalised single words."""

    def applies(ctx: RuleContext) -> bool:
        return ctx.target is not None and ctx.target.get("rank") == "Genus"

    def check(ctx: RuleContext) -> bool:
        epithet = ctx.target.get("epithet") or ""
        return (
            bool(epithet)
            and epithet[0].isupper()
            and " " not in epithet
            and epithet.replace("-", "").isalpha()
        )

    return Rule(
        name="icbn_genus_name",
        event=AnyOf(
            on_create(NOMENCLATURAL_TAXON),
            on_update(NOMENCLATURAL_TAXON, attribute="epithet"),
            on_update(NOMENCLATURAL_TAXON, attribute="rank"),
        ),
        applicability=applies,
        condition=check,
        kind=RuleKind.INVARIANT,
        target_class=NOMENCLATURAL_TAXON,
        message="genus names are capitalised single words (ICBN, Figure 36)",
    )


def type_existence_rule(strict: bool = False) -> Rule:
    """Figure 37: a published name must have a taxonomic type.

    Deferred: typification may follow publication inside the same
    transaction, so the check runs at commit.  Non-strict installs as a
    WARN rule (historical datasets predate compulsory typification;
    Prometheus then asks for lectotypification instead, §2.3).
    """

    def applies(ctx: RuleContext) -> bool:
        return (
            ctx.target is not None
            and ctx.target.get("status") == STATUS_PUBLISHED
        )

    def check(ctx: RuleContext) -> bool:
        return bool(ctx.target.outgoing(HAS_TYPE))

    return Rule(
        name="icbn_type_existence",
        event=on_create(NOMENCLATURAL_TAXON),
        applicability=applies,
        condition=check,
        kind=RuleKind.INVARIANT,
        mode=Mode.DEFERRED,
        on_violation=OnViolation.ABORT if strict else OnViolation.WARN,
        target_class=NOMENCLATURAL_TAXON,
        message="published names must be typified (ICBN, Figure 37)",
    )


# ---------------------------------------------------------------------------
# relationship rules (Figures 38-40)
# ---------------------------------------------------------------------------

def _rank_window_rule(
    name: str, child_rank: str, upper: str, lower: str, figure: str
) -> Rule:
    """A CT at ``child_rank`` must be placed under a CT ranked in
    [upper, lower) — the pattern shared by Figures 38 and 39."""

    child = get_rank(child_rank)
    hi = get_rank(upper)
    lo = get_rank(lower)

    def applies(ctx: RuleContext) -> bool:
        return (
            _is_ct(ctx, ctx.destination)
            and ctx.destination.get("rank") == child.name
            and _is_ct(ctx, ctx.origin)
        )

    def check(ctx: RuleContext) -> bool:
        parent = get_rank(ctx.origin.get("rank"))
        return hi.order <= parent.order < lo.order

    return Rule(
        name=name,
        event=on_relate(INCLUDES, before=True),
        applicability=applies,
        condition=check,
        kind=RuleKind.RELATIONSHIP,
        target_class=INCLUDES,
        message=(
            f"a {child.name} taxon must be placed below a taxon ranked "
            f"between {hi.name} (incl.) and {lo.name} (excl.) "
            f"(ICBN, {figure})"
        ),
    )


def species_rank_rule() -> Rule:
    """Figure 38."""
    return _rank_window_rule(
        "icbn_species_rank", "Species", "Genus", "Species", "Figure 38"
    )


def series_rank_rule() -> Rule:
    """Figure 39."""
    return _rank_window_rule(
        "icbn_series_rank", "Series", "Genus", "Series", "Figure 39"
    )


def placement_rule() -> Rule:
    """Figure 40: CT→CT placements strictly descend the rank hierarchy."""

    def applies(ctx: RuleContext) -> bool:
        return _is_ct(ctx, ctx.origin) and _is_ct(ctx, ctx.destination)

    def check(ctx: RuleContext) -> bool:
        parent = get_rank(ctx.origin.get("rank"))
        child = get_rank(ctx.destination.get("rank"))
        return child.is_below(parent)

    return Rule(
        name="icbn_placement",
        event=on_relate(INCLUDES, before=True),
        applicability=applies,
        condition=check,
        kind=RuleKind.RELATIONSHIP,
        target_class=INCLUDES,
        message="placements must descend the rank hierarchy (Figure 40)",
    )


def epithet_form_rule(strict: bool = False) -> Rule:
    """General nomenclature invariant: epithet form per rank (§2.1.2)."""

    def check(ctx: RuleContext) -> bool:
        target = ctx.target
        rank = target.get("rank")
        epithet = target.get("epithet")
        if not rank or not epithet:
            return True
        return nomenclature.epithet_problems(epithet, rank) is None

    return Rule(
        name="icbn_epithet_form",
        event=AnyOf(
            on_create(NOMENCLATURAL_TAXON),
            on_update(NOMENCLATURAL_TAXON, attribute="epithet"),
        ),
        condition=check,
        kind=RuleKind.INVARIANT,
        on_violation=OnViolation.ABORT if strict else OnViolation.WARN,
        target_class=NOMENCLATURAL_TAXON,
        message="epithet violates ICBN formation rules (§2.1.2)",
    )


def autonym_rule(taxdb: TaxonomyDatabase) -> Rule:
    """ICBN autonyms as a deductive ACTION rule (§5.2's automatic actions).

    When an infraspecific name is placed in a Species name whose epithet
    differs, the code *automatically establishes* the autonym — the
    infraspecific name repeating the species epithet (e.g. publishing
    *Apium graveolens* var. *dulce* establishes *Apium graveolens* var.
    *graveolens*).  The rule watches NamePlacement edges and publishes
    the missing autonym; it is self-terminating because the autonym's own
    placement has matching epithets.
    """
    species = get_rank("Species")

    def applies(ctx: RuleContext) -> bool:
        child, parent = ctx.origin, ctx.destination
        if child is None or parent is None:
            return False
        if parent.get("rank") != species.name:
            return False
        child_rank = get_rank(child.get("rank"))
        if not child_rank.is_below(species):
            return False
        return child.get("epithet") != parent.get("epithet")

    def establish(ctx: RuleContext) -> None:
        child, parent = ctx.origin, ctx.destination
        rank = child.get("rank")
        epithet = parent.get("epithet")
        existing = [
            nt
            for nt in taxdb.find_names(epithet=epithet, rank=rank)
            if (placement := taxdb.placement_of(nt)) is not None
            and placement.oid == parent.oid
        ]
        if existing:
            return
        taxdb.publish_name(
            epithet,
            rank,
            author="",  # autonyms carry no author citation (ICBN)
            year=child.get("year"),
            publication=child.get("publication"),
            placement=parent,
            validate=False,
        )

    return Rule(
        name="icbn_autonym",
        event=on_relate(NAME_PLACEMENT),
        applicability=applies,
        action=establish,
        kind=RuleKind.ACTION,
        target_class=NAME_PLACEMENT,
        message="publishing an infraspecific name establishes the autonym",
    )


def all_icbn_rules(strict_types: bool = False) -> list[Rule]:
    """All six ICBN rules of the evaluation chapter, plus the general
    epithet-form rule."""
    return [
        family_name_rule(),
        genus_name_rule(),
        type_existence_rule(strict=strict_types),
        species_rank_rule(),
        series_rank_rule(),
        placement_rule(),
        epithet_form_rule(),
    ]


def install_icbn_rules(
    taxdb: TaxonomyDatabase,
    engine: RuleEngine | None = None,
    strict_types: bool = False,
    autonyms: bool = False,
) -> RuleEngine:
    """Attach the ICBN rule set to a taxonomy database's schema.

    ``autonyms=True`` additionally installs the autonym-establishing
    ACTION rule (off by default: bulk imports of historical data usually
    carry their autonyms already).
    """
    engine = engine or RuleEngine(taxdb.schema)
    engine.register_all(all_icbn_rules(strict_types=strict_types))
    if autonyms:
        engine.register(autonym_rule(taxdb))
    return engine
