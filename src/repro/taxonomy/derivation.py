"""Automatic derivation of names from classifications (thesis §2.1.2).

Given a finished classification of circumscription taxa over specimens,
derive the correct name for every CT by applying the ICBN:

1. walk the classification **top-down** (names of higher taxa are needed
   to form the combinations of lower ones);
2. for each CT, collect **all specimens** at any depth below it
   (recursing through whatever ranks the classification uses);
3. extract the **type specimens** among them and walk the typification
   hierarchy **bottom-up** (specimen → species name → genus name ...)
   to find published names at the CT's rank;
4. choose the **oldest validly published** candidate;
5. for multinomial ranks, verify the **combination** with the parent
   name has been published; if not, **publish a new combination** citing
   the basionym author in brackets and carrying the basionym's type;
6. if no candidate exists at all, **elect a type** from the
   circumscription and **publish a new name**.

The worked Figure 3 example (Apium/Heliosciadium) is reproduced verbatim
in the test suite and ``examples/apium_revision.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..classification import Classification, TraceLog
from ..core.instances import PObject
from ..errors import DerivationError
from . import nomenclature
from .model import (
    HOLOTYPE,
    LECTOTYPE,
    STATUS_PUBLISHED,
    STATUS_CONSERVED,
    TaxonomyDatabase,
)
from .ranks import Rank, get_rank

#: Statuses that make a name available for derivation.
_DERIVABLE_STATUSES = (STATUS_PUBLISHED, STATUS_CONSERVED)


@dataclass
class DerivationResult:
    """Outcome of deriving the name of one CT."""

    ct_oid: int
    name_oid: int | None
    action: str  # "existing" | "new-combination" | "new-name" | "failed"
    full_name: str = ""
    message: str = ""
    candidates: list[int] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        return self.action != "failed"


def placement_anchor_rank(rank: Rank | str) -> Rank | None:
    """The rank whose name anchors combinations at ``rank``.

    Species and infrageneric ranks combine with the Genus name;
    infraspecific ranks combine with the Species name; Genus and above
    are uninomial.
    """
    resolved = get_rank(rank) if isinstance(rank, str) else rank
    genus = get_rank("Genus")
    species = get_rank("Species")
    if resolved.order > species.order:
        return species
    if resolved.order > genus.order:
        return genus
    return None


class NameDeriver:
    """Derives calculated names for every CT of a classification.

    Args:
        taxdb: the taxonomy database.
        author: the reviser's author abbreviation — used as the authorship
            of any newly published combination or name.
        year: publication year for new names.
        publication: publication reference recorded on new names.
    """

    def __init__(
        self,
        taxdb: TaxonomyDatabase,
        author: str,
        year: int,
        publication: str = "",
    ) -> None:
        self.taxdb = taxdb
        self.author = author
        self.year = year
        self.publication = publication

    # ------------------------------------------------------------------
    # candidate discovery (steps 2-3)
    # ------------------------------------------------------------------

    def candidate_names(
        self, classification: Classification, ct: PObject
    ) -> list[PObject]:
        """Published NTs at the CT's rank reachable from its type specimens.

        Walks the typification hierarchy upward from every type specimen
        found in the circumscription until names at the target rank are
        reached (requirement 9's bottom-up traversal).
        """
        taxdb = self.taxdb
        target_rank = get_rank(ct.get("rank"))
        specimens = taxdb.specimens_under(classification, ct)
        frontier: list[PObject] = []
        seen: set[int] = set()
        for specimen in specimens:
            for nt in taxdb.names_typified_by(specimen):
                if nt.oid not in seen:
                    seen.add(nt.oid)
                    frontier.append(nt)
        candidates: list[PObject] = []
        while frontier:
            nt = frontier.pop()
            nt_rank = get_rank(nt.get("rank"))
            if nt_rank == target_rank:
                if nt.get("status") in _DERIVABLE_STATUSES:
                    candidates.append(nt)
                continue
            if nt_rank.is_below(target_rank):
                # Walk up: names having this NT as their type.
                for upper in taxdb.names_typified_by(nt):
                    if upper.oid not in seen:
                        seen.add(upper.oid)
                        frontier.append(upper)
            # Names above the target rank are dead ends for this CT.
        candidates.sort(key=_publication_order)
        return candidates

    # ------------------------------------------------------------------
    # per-taxon derivation (steps 4-6)
    # ------------------------------------------------------------------

    def derive_taxon(
        self,
        classification: Classification,
        ct: PObject,
        parent_name: PObject | None,
    ) -> DerivationResult:
        """Derive and attach the calculated name of one CT."""
        taxdb = self.taxdb
        rank = get_rank(ct.get("rank"))
        candidates = self.candidate_names(classification, ct)
        anchor = placement_anchor_rank(rank)
        if not candidates:
            return self._publish_new_name(
                classification, ct, rank, parent_name, anchor
            )
        chosen = candidates[0]
        if anchor is None or parent_name is None:
            taxdb.set_calculated_name(ct, chosen)
            return DerivationResult(
                ct_oid=ct.oid,
                name_oid=chosen.oid,
                action="existing",
                full_name=taxdb.full_name(chosen),
                candidates=[c.oid for c in candidates],
            )
        # Multinomial: the combination with the parent name must exist.
        placement = taxdb.placement_of(chosen)
        if placement is not None and placement.oid == parent_name.oid:
            taxdb.set_calculated_name(ct, chosen)
            return DerivationResult(
                ct_oid=ct.oid,
                name_oid=chosen.oid,
                action="existing",
                full_name=taxdb.full_name(chosen),
                candidates=[c.oid for c in candidates],
            )
        # Was the combination published independently?
        existing = self._find_combination(
            chosen.get("epithet"), rank, parent_name
        )
        if existing is not None:
            taxdb.set_calculated_name(ct, existing)
            return DerivationResult(
                ct_oid=ct.oid,
                name_oid=existing.oid,
                action="existing",
                full_name=taxdb.full_name(existing),
                candidates=[c.oid for c in candidates],
            )
        return self._publish_combination(
            ct, rank, chosen, parent_name, [c.oid for c in candidates]
        )

    def _find_combination(
        self, epithet: str, rank: Rank, parent_name: PObject
    ) -> PObject | None:
        matches = [
            nt
            for nt in self.taxdb.find_names(epithet=epithet, rank=rank)
            if (placement := self.taxdb.placement_of(nt)) is not None
            and placement.oid == parent_name.oid
            and nt.get("status") in _DERIVABLE_STATUSES
        ]
        if not matches:
            return None
        return min(matches, key=_publication_order)

    def _publish_combination(
        self,
        ct: PObject,
        rank: Rank,
        basionym_holder: PObject,
        parent_name: PObject,
        candidates: list[int],
    ) -> DerivationResult:
        """Step 5: publish epithet under the new parent name."""
        taxdb = self.taxdb
        # The true basionym is the original publication, not an
        # intermediate combination.
        basionym = taxdb.basionym_of(basionym_holder) or basionym_holder
        new_nt = taxdb.publish_name(
            basionym_holder.get("epithet"),
            rank,
            author=self.author,
            year=self.year,
            publication=self.publication,
            placement=parent_name,
            basionym=basionym,
            validate=False,  # the epithet was already validly published
        )
        # The recombination keeps the basionym's type (§2.1.2 / Figure 3).
        governing = taxdb.primary_type(basionym_holder)
        if governing is not None:
            taxdb.typify(
                new_nt,
                governing,
                LECTOTYPE,
                designated_by=self.author,
                year=self.year,
            )
        taxdb.set_calculated_name(ct, new_nt)
        return DerivationResult(
            ct_oid=ct.oid,
            name_oid=new_nt.oid,
            action="new-combination",
            full_name=taxdb.full_name(new_nt),
            message=(
                f"combination {parent_name.get('epithet')} "
                f"{new_nt.get('epithet')} was not yet published"
            ),
            candidates=candidates,
        )

    def _publish_new_name(
        self,
        classification: Classification,
        ct: PObject,
        rank: Rank,
        parent_name: PObject | None,
        anchor: Rank | None,
    ) -> DerivationResult:
        """Step 6: no candidate — elect a type and publish a new name."""
        taxdb = self.taxdb
        specimens = taxdb.specimens_under(classification, ct)
        if not specimens:
            return DerivationResult(
                ct_oid=ct.oid,
                name_oid=None,
                action="failed",
                message="empty circumscription: cannot elect a type",
            )
        elected = min(specimens, key=lambda s: s.oid)
        epithet = self._epithet_for(ct, rank)
        placement = parent_name if anchor is not None else None
        new_nt = taxdb.publish_name(
            epithet,
            rank,
            author=self.author,
            year=self.year,
            publication=self.publication,
            placement=placement,
            validate=False,
        )
        taxdb.typify(
            new_nt,
            elected,
            HOLOTYPE,
            designated_by=self.author,
            year=self.year,
        )
        taxdb.set_calculated_name(ct, new_nt)
        return DerivationResult(
            ct_oid=ct.oid,
            name_oid=new_nt.oid,
            action="new-name",
            full_name=taxdb.full_name(new_nt),
            message=f"elected specimen {elected.oid} as holotype",
        )

    def _epithet_for(self, ct: PObject, rank: Rank) -> str:
        working = self.taxdb.working_name_of(ct)
        if working:
            candidate = working.split()[-1]
            if nomenclature.epithet_problems(candidate, rank) is None:
                return candidate
            corrected = nomenclature.correct_ending(candidate, rank)
            if nomenclature.requires_capital(rank):
                corrected = corrected[0].upper() + corrected[1:]
            else:
                corrected = corrected[0].lower() + corrected[1:]
            if nomenclature.epithet_problems(corrected, rank) is None:
                return corrected
        base = f"novum{ct.oid}"
        if nomenclature.requires_capital(rank):
            base = base.capitalize()
        return nomenclature.correct_ending(base, rank)

    # ------------------------------------------------------------------
    # whole-classification derivation (step 1)
    # ------------------------------------------------------------------

    def derive(self, classification: Classification) -> list[DerivationResult]:
        """Derive names for every CT, root-first.

        Returns one :class:`DerivationResult` per CT in derivation order.
        """
        taxdb = self.taxdb
        results: list[DerivationResult] = []
        for ct in taxdb.iter_taxa_top_down(classification):
            try:
                parent_name = self._anchor_name(classification, ct)
                result = self.derive_taxon(classification, ct, parent_name)
            except DerivationError as exc:
                # An ancestor failed to receive a name; this CT cannot be
                # named either, but derivation of siblings continues.
                result = DerivationResult(
                    ct_oid=ct.oid,
                    name_oid=None,
                    action="failed",
                    message=str(exc),
                )
            results.append(result)
            taxdb.trace.record(
                TraceLog.DERIVE,
                classification.name,
                actor=self.author,
                reason=result.message or result.action,
                subject_oid=ct.oid,
                object_oid=result.name_oid or 0,
            )
        return results

    def _anchor_name(
        self, classification: Classification, ct: PObject
    ) -> PObject | None:
        """Calculated name of the ancestor anchoring this CT's combination."""
        anchor = placement_anchor_rank(ct.get("rank"))
        if anchor is None:
            return None
        cursor = ct
        while True:
            parents = [
                p for p in classification.parents(cursor) if self.taxdb.is_ct(p)
            ]
            if not parents:
                return None
            cursor = parents[0]
            cursor_rank = get_rank(cursor.get("rank"))
            if cursor_rank.order <= anchor.order:
                name = self.taxdb.calculated_name(cursor)
                if name is None:
                    raise DerivationError(
                        f"ancestor CT {cursor.oid} has no calculated name "
                        "yet (derivation must proceed top-down)"
                    )
                return name


def _publication_order(nt: PObject) -> tuple[int, int]:
    """Oldest validly published first; OID breaks ties deterministically."""
    year = nt.get("year")
    return (year if isinstance(year, int) else 10**6, nt.oid)


def check_ascriptions(
    taxdb: TaxonomyDatabase, classification: Classification
) -> list[tuple[int, str, str]]:
    """Compare ascribed (historical) names with calculated ones (§7.1.2).

    Returns (ct_oid, ascribed_full_name, calculated_full_name) triples
    for every CT whose published name differs from what the ICBN derives
    today — misapplications, misspellings, superseded combinations.
    """
    mismatches = []
    for ct in taxdb.iter_taxa_top_down(classification):
        ascribed = taxdb.ascribed_name(ct)
        calculated = taxdb.calculated_name(ct)
        if ascribed is None or calculated is None:
            continue
        if ascribed.oid != calculated.oid:
            mismatches.append(
                (
                    ct.oid,
                    taxdb.full_name(ascribed),
                    taxdb.full_name(calculated),
                )
            )
    return mismatches
