"""Synthetic flora generator for tests and benchmarks.

The thesis evaluates against revision-scale data ("families that contain
thousands of genera, and genera that contain hundreds of species",
§1.1).  This generator produces a seeded, parameterised flora: a
classification of Familia → Genus → Species circumscription taxa over
specimens, with the full nomenclatural apparatus (published names,
placements, typifications) so that name derivation, queries and the
benchmark harness all have realistic input.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..classification import Classification
from ..core.instances import PObject
from .model import HOLOTYPE, TaxonomyDatabase

_LATIN_STEMS = (
    "api", "helio", "ranuncul", "camp", "card", "dro", "eri", "fum",
    "gali", "hyper", "iri", "junc", "lami", "malv", "nymph", "orchi",
    "papaver", "quer", "ros", "salic", "thali", "urtic", "viol", "zanni",
)

_SPECIES_SUFFIXES = (
    "ensis", "atum", "iflora", "oides", "ella", "osum", "icum",
    "aris", "anum", "ifolia",
)


@dataclass
class FloraParameters:
    """Shape of the generated flora."""

    families: int = 2
    genera_per_family: int = 3
    species_per_genus: int = 4
    specimens_per_species: int = 3
    seed: int = 20020104  # thesis submission date

    @property
    def total_species(self) -> int:
        return self.families * self.genera_per_family * self.species_per_genus

    @property
    def total_specimens(self) -> int:
        return self.total_species * self.specimens_per_species


@dataclass
class Flora:
    """A generated flora: database plus handles for workloads."""

    taxdb: TaxonomyDatabase
    classification: Classification
    params: FloraParameters
    family_taxa: list[PObject] = field(default_factory=list)
    genus_taxa: list[PObject] = field(default_factory=list)
    species_taxa: list[PObject] = field(default_factory=list)
    specimens: list[PObject] = field(default_factory=list)


def _epithet(rng: random.Random, rank: str, used: set[str]) -> str:
    """Generate a fresh pseudo-Latin epithet of the right shape."""
    while True:
        stem = rng.choice(_LATIN_STEMS)
        if rank == "Familia":
            name = stem.capitalize() + "aceae"
        elif rank == "Genus":
            name = stem.capitalize() + rng.choice(("um", "a", "us", "ia"))
        else:
            name = stem + rng.choice(_SPECIES_SUFFIXES)
        if name not in used:
            used.add(name)
            return name
        # Disambiguate deterministically when stems run out.
        candidate = name + rng.choice("abcdefgh")
        if candidate not in used:
            used.add(candidate)
            return candidate


def generate_flora(
    params: FloraParameters | None = None,
    taxdb: TaxonomyDatabase | None = None,
    classification_name: str = "generated flora",
) -> Flora:
    """Generate a complete flora per ``params`` (deterministic by seed)."""
    params = params or FloraParameters()
    taxdb = taxdb or TaxonomyDatabase()
    rng = random.Random(params.seed)
    used_names: set[str] = set()
    classification = taxdb.new_classification(
        classification_name,
        author="generator",
        year=2000,
        description=f"synthetic flora {params}",
    )
    flora = Flora(taxdb=taxdb, classification=classification, params=params)

    for _ in range(params.families):
        family_epithet = _epithet(rng, "Familia", used_names)
        family_nt = taxdb.publish_name(
            family_epithet, "Familia", author="Gen.", year=rng.randint(1753, 1850)
        )
        family_ct = taxdb.new_taxon("Familia", working_name=family_epithet)
        taxdb.ascribe_name(family_ct, family_nt)
        flora.family_taxa.append(family_ct)
        first_genus_nt: PObject | None = None

        for _ in range(params.genera_per_family):
            genus_epithet = _epithet(rng, "Genus", used_names)
            genus_nt = taxdb.publish_name(
                genus_epithet, "Genus", author="Gen.",
                year=rng.randint(1753, 1900),
            )
            genus_ct = taxdb.new_taxon("Genus", working_name=genus_epithet)
            taxdb.ascribe_name(genus_ct, genus_nt)
            taxdb.place(
                classification, family_ct, genus_ct, motivation="generated"
            )
            flora.genus_taxa.append(genus_ct)
            first_species_nt: PObject | None = None

            for _ in range(params.species_per_genus):
                species_epithet = _epithet(rng, "Species", used_names)
                species_nt = taxdb.publish_name(
                    species_epithet,
                    "Species",
                    author="Gen.",
                    year=rng.randint(1753, 1990),
                    placement=genus_nt,
                )
                species_ct = taxdb.new_taxon(
                    "Species", working_name=species_epithet
                )
                taxdb.ascribe_name(species_ct, species_nt)
                taxdb.place(
                    classification, genus_ct, species_ct,
                    motivation="generated",
                )
                flora.species_taxa.append(species_ct)

                for index in range(params.specimens_per_species):
                    specimen = taxdb.new_specimen(
                        collector=f"Collector {rng.randint(1, 40)}",
                        collection_number=f"{species_epithet}-{index}",
                        herbarium=rng.choice(("E", "K", "BM", "P", "B")),
                        field_name=f"{genus_epithet} {species_epithet}",
                    )
                    taxdb.place(classification, species_ct, specimen)
                    flora.specimens.append(specimen)
                    if index == 0:
                        taxdb.typify(species_nt, specimen, HOLOTYPE)
                if first_species_nt is None:
                    first_species_nt = species_nt
            if first_species_nt is not None:
                taxdb.typify(genus_nt, first_species_nt, HOLOTYPE)
            if first_genus_nt is None:
                first_genus_nt = genus_nt
        if first_genus_nt is not None:
            taxdb.typify(family_nt, first_genus_nt, HOLOTYPE)
    return flora
