"""Taxon-level synonym discovery (thesis §2.1.3, §2.3).

Instantiates the generic classification comparison for the taxonomic
model: circumscriptions are sets of specimens (respecting instance
synonyms), taxa are CTs, and types come from the typification hierarchy —
so pairs can be classified full vs pro-parte and homotypic vs
heterotypic.  Also provides name-based synonym detection (the approach of
older models, kept for comparison) and specimen-based detection (the
Prometheus approach).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..classification import (
    Classification,
    ComparisonReport,
    compare_classifications,
)
from ..core.instances import PObject
from .model import TaxonomyDatabase


def compare_taxonomic(
    taxdb: TaxonomyDatabase,
    a: Classification,
    b: Classification,
) -> ComparisonReport:
    """Specimen-based comparison of two taxonomic classifications."""

    def type_of(ct: PObject) -> int | None:
        nt = taxdb.calculated_name(ct) or taxdb.ascribed_name(ct)
        if nt is None:
            return None
        governing = taxdb.primary_type(nt)
        if governing is None:
            return None
        # Resolve NT types down to their underlying specimen.
        seen = set()
        while taxdb.is_nt(governing):
            if governing.oid in seen:
                return governing.oid
            seen.add(governing.oid)
            nxt = taxdb.primary_type(governing)
            if nxt is None:
                return governing.oid
            governing = nxt
        return governing.oid

    return compare_classifications(
        a,
        b,
        is_leaf=taxdb.is_specimen,
        is_group=taxdb.is_ct,
        type_of=type_of,
        canonical=taxdb.schema.synonyms.canonical,
    )


@dataclass(frozen=True)
class NameSynonymPair:
    """Two CTs in different classifications carrying the same name."""

    taxon_a: int
    taxon_b: int
    epithet: str
    same_name_object: bool


def name_based_synonyms(
    taxdb: TaxonomyDatabase,
    a: Classification,
    b: Classification,
) -> list[NameSynonymPair]:
    """Synonyms detected by comparing names only — the older, weaker
    approach the thesis criticises (§2.3): the same name may denote very
    different circumscriptions (Figure 4)."""

    def label(ct: PObject) -> tuple[str, int] | None:
        nt = taxdb.calculated_name(ct) or taxdb.ascribed_name(ct)
        if nt is None:
            return None
        return (nt.get("epithet"), nt.oid)

    taxa_a = [n for n in a.nodes() if taxdb.is_ct(n)]
    taxa_b = [n for n in b.nodes() if taxdb.is_ct(n)]
    pairs: list[NameSynonymPair] = []
    for ta in taxa_a:
        la = label(ta)
        if la is None:
            continue
        for tb in taxa_b:
            lb = label(tb)
            if lb is None or ta.oid == tb.oid:
                continue
            if la[0] == lb[0]:
                pairs.append(
                    NameSynonymPair(
                        taxon_a=ta.oid,
                        taxon_b=tb.oid,
                        epithet=la[0],
                        same_name_object=la[1] == lb[1],
                    )
                )
    return pairs


def deceptive_names(
    taxdb: TaxonomyDatabase,
    a: Classification,
    b: Classification,
) -> list[NameSynonymPair]:
    """Name-synonym pairs whose circumscriptions do NOT fully overlap —
    the cases where a name-based system silently misleads (§2.1.3's
    pharmaceutical example)."""
    report = compare_taxonomic(taxdb, a, b)
    full = {
        (p.taxon_a, p.taxon_b)
        for p in report.synonym_pairs
        if p.kind.value == "full"
    }
    return [
        pair
        for pair in name_based_synonyms(taxdb, a, b)
        if (pair.taxon_a, pair.taxon_b) not in full
    ]
