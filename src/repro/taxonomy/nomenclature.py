"""ICBN name-formation rules (thesis §2.1.2).

Pure functions validating and formatting botanical names:

* epithets are single-worded (Genus epithets may contain a hyphen);
* epithets at ranks from Series down to Species (exclusive) start with a
  capital; Species-rank and lower epithets start lowercase; ranks above
  Series also capitalise (uninomial names);
* rank-specific endings — Familia ``-aceae`` (with the eight conserved
  exceptions), Subfamilia ``-oideae``, Tribus ``-eae``, Subtribus
  ``-inea`` (the thesis's spelling);
* authorship strings, including the bracketed basionym author of a new
  combination: ``Heliosciadium repens (Jacq.)Raguenaud``.
"""

from __future__ import annotations

from ..errors import NomenclatureError
from .ranks import Rank, get_rank

#: The eight conserved family names exempt from the -aceae ending.
FAMILY_ENDING_EXCEPTIONS = frozenset(
    {
        "Palmae",
        "Gramineae",
        "Cruciferae",
        "Leguminosae",
        "Guttiferae",
        "Umbelliferae",
        "Labiatae",
        "Compositae",
    }
)

#: Compulsory endings by rank name.
RANK_ENDINGS = {
    "Familia": "aceae",
    "Subfamilia": "oideae",
    "Tribus": "eae",
    "Subtribus": "inea",
}


def _rank(rank: Rank | str) -> Rank:
    return get_rank(rank) if isinstance(rank, str) else rank


def requires_capital(rank: Rank | str) -> bool:
    """True when an epithet at this rank must start with a capital letter.

    Per §2.1.2: ranks from Series to Species (Species excluded) must
    capitalise; Species and below are lowercase.  Ranks above Series are
    uninomial proper names and also capitalise.
    """
    resolved = _rank(rank)
    species = get_rank("Species")
    return resolved.order < species.order


def is_multinomial(rank: Rank | str) -> bool:
    """Species-rank names and below are combinations (binomial or lower)."""
    return _rank(rank).order >= get_rank("Species").order


def needs_placement(rank: Rank | str) -> bool:
    """Names below Genus need a placement parent for full-name derivation.

    §2.1.2: "If no nomenclatural information is needed (e.g. for names at
    ranks above Genus which are not composed names), no placement
    relationship is used."
    """
    return _rank(rank).order > get_rank("Genus").order


def validate_epithet(epithet: str, rank: Rank | str) -> None:
    """Validate one epithet against the ICBN formation rules.

    Raises:
        NomenclatureError: word count, capitalisation or ending violation.
    """
    resolved = _rank(rank)
    if not epithet or not epithet.strip():
        raise NomenclatureError("empty epithet")
    if epithet != epithet.strip():
        raise NomenclatureError(f"epithet {epithet!r} has stray whitespace")
    if " " in epithet:
        raise NomenclatureError(
            f"epithet {epithet!r} must be single-worded at rank "
            f"{resolved.name}"
        )
    if "-" in epithet and resolved.name != "Genus":
        raise NomenclatureError(
            f"hyphenated epithets are only allowed at Genus rank, got "
            f"{epithet!r} at {resolved.name}"
        )
    core = epithet.replace("-", "")
    if not core.isalpha():
        raise NomenclatureError(
            f"epithet {epithet!r} must contain letters only"
        )
    first = epithet[0]
    if requires_capital(resolved):
        if not first.isupper():
            raise NomenclatureError(
                f"epithet {epithet!r} at rank {resolved.name} must start "
                "with a capital letter"
            )
    else:
        if not first.islower():
            raise NomenclatureError(
                f"epithet {epithet!r} at rank {resolved.name} must start "
                "with a lowercase letter"
            )
    ending = RANK_ENDINGS.get(resolved.name)
    if ending is not None and not epithet.endswith(ending):
        if resolved.name == "Familia" and epithet in FAMILY_ENDING_EXCEPTIONS:
            return
        raise NomenclatureError(
            f"names at rank {resolved.name} must end with -{ending}, got "
            f"{epithet!r}"
        )


def epithet_problems(epithet: str, rank: Rank | str) -> str | None:
    """Like :func:`validate_epithet` but returning a message or None."""
    try:
        validate_epithet(epithet, rank)
    except NomenclatureError as exc:
        return str(exc)
    return None


def authorship(author: str, basionym_author: str = "") -> str:
    """Build the authorship string of a (possibly recombined) name.

    ``authorship("Lag.", "Jacq.")`` → ``"(Jacq.)Lag."`` — the author of
    the original combination goes in brackets (§2.1.2).
    """
    author = author.strip()
    basionym_author = basionym_author.strip()
    if basionym_author and not author.startswith("("):
        return f"({basionym_author}){author}"
    return author


def format_full_name(
    epithet: str,
    rank: Rank | str,
    author: str = "",
    parent_epithets: tuple[str, ...] = (),
    basionym_author: str = "",
) -> str:
    """Render a complete name string.

    For multinomial ranks the parent epithets are prefixed (genus for a
    species; genus and species for a subspecies...): ``Apium graveolens
    L.``.
    """
    resolved = _rank(rank)
    parts: list[str] = []
    if is_multinomial(resolved):
        parts.extend(parent_epithets)
    parts.append(epithet)
    name = " ".join(parts)
    cite = authorship(author, basionym_author)
    return f"{name} {cite}".strip()


def expected_ending(rank: Rank | str) -> str | None:
    """The compulsory ending at this rank, if any."""
    return RANK_ENDINGS.get(_rank(rank).name)


def correct_ending(epithet: str, rank: Rank | str) -> str:
    """Coerce an epithet to the compulsory ending of ``rank``.

    Used by what-if tooling to propose corrections; conserved family
    names are left untouched.
    """
    resolved = _rank(rank)
    ending = RANK_ENDINGS.get(resolved.name)
    if ending is None or epithet.endswith(ending):
        return epithet
    if resolved.name == "Familia" and epithet in FAMILY_ENDING_EXCEPTIONS:
        return epithet
    stem = epithet
    for other in sorted(RANK_ENDINGS.values(), key=len, reverse=True):
        if stem.endswith(other):
            stem = stem[: -len(other)]
            break
    return stem + ending
