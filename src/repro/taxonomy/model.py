"""The Prometheus taxonomic model (thesis §2.3, Figure 6) as a database.

This module *is the application of the database to taxonomy*: it declares
the taxonomic schema — specimens, Nomenclatural Taxa (NTs),
Circumscription Taxa (CTs), working names — as Prometheus classes and
relationship classes, and wraps the generic machinery (classifications,
tracing, synonyms) in taxonomy-aware operations.

The nomenclatural side and the classification side are kept strictly
separate, connected only through specimens and ranks, exactly as Figure 6
prescribes:

* **NTs** record that a name was published at a rank, by an author, in a
  publication, with type designations (``HasType``) and, for multinomial
  names, a placement parent (``NamePlacement``) that records *only* a
  combination of names, never a classification statement.
* **CTs** record circumscriptions: sets of specimens and other CTs
  (``Includes`` edges, which are what classifications collect).  CTs may
  carry an *ascribed* name (historical data), a *calculated* name (the
  output of derivation) and a *working name* (pre-naming handle).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator

from ..classification import Classification, ClassificationManager, TraceLog
from ..core.attributes import Attribute
from ..core.instances import PObject
from ..core.relationships import RelationshipInstance
from ..core.schema import Schema
from ..core.semantics import Cardinality, RelationshipSemantics, RelKind
from ..errors import TaxonomyError, TypificationError
from ..storage.store import ObjectStore
from . import nomenclature
from .ranks import Rank, get_rank, validate_placement

if TYPE_CHECKING:  # pragma: no cover
    pass

# -- type designation kinds (thesis §2.1.2) ---------------------------------

HOLOTYPE = "holotype"
LECTOTYPE = "lectotype"
NEOTYPE = "neotype"
ISOTYPE = "isotype"
SYNTYPE = "syntype"

TYPE_KINDS = (HOLOTYPE, LECTOTYPE, NEOTYPE, ISOTYPE, SYNTYPE)

#: Kinds of which a name may carry at most one designation, and their
#: priority when deriving names (holotype wins, then lecto, then neo).
PRIMARY_TYPE_KINDS = (HOLOTYPE, LECTOTYPE, NEOTYPE)

# -- nomenclatural statuses ---------------------------------------------------

STATUS_PUBLISHED = "published"
STATUS_INVALID = "invalid"
STATUS_CONSERVED = "conserved"
STATUS_REJECTED = "rejected"

VALID_STATUSES = (
    STATUS_PUBLISHED,
    STATUS_INVALID,
    STATUS_CONSERVED,
    STATUS_REJECTED,
)

# -- class names -----------------------------------------------------------------

TAXONOMIC_OBJECT = "TaxonomicObject"
SPECIMEN = "Specimen"
NOMENCLATURAL_TAXON = "NomenclaturalTaxon"
CIRCUMSCRIPTION_TAXON = "CircumscriptionTaxon"
WORKING_NAME = "WorkingName"

INCLUDES = "Includes"
HAS_TYPE = "HasType"
NAME_PLACEMENT = "NamePlacement"
BASIONYM = "Basionym"
ASCRIBED_NAME = "AscribedName"
CALCULATED_NAME = "CalculatedName"
HAS_WORKING_NAME = "HasWorkingName"


def define_taxonomy_schema(schema: Schema) -> None:
    """Register the Prometheus taxonomic model classes on ``schema``."""
    from ..core import types as T

    schema.define_class(
        TAXONOMIC_OBJECT,
        abstract=True,
        doc="Root of all taxonomic entities",
    )
    schema.define_class(
        SPECIMEN,
        [
            Attribute("collector", T.STRING, doc="Collector name"),
            Attribute("collection_number", T.STRING),
            Attribute("herbarium", T.STRING, doc="Holding institution code"),
            Attribute("description", T.STRING),
            Attribute("collected", T.DATE),
            Attribute("field_name", T.STRING, doc="Name written on the sheet"),
        ],
        superclasses=(TAXONOMIC_OBJECT,),
        doc="A physical plant specimen — the objective fixed point (§2.1.3)",
    )
    schema.define_class(
        NOMENCLATURAL_TAXON,
        [
            Attribute("epithet", T.STRING, required=True),
            Attribute("rank", T.STRING, required=True),
            Attribute("author", T.STRING),
            Attribute("year", T.INTEGER),
            Attribute("publication", T.STRING),
            Attribute("status", T.STRING, default=STATUS_PUBLISHED),
        ],
        superclasses=(TAXONOMIC_OBJECT,),
        doc="A published name: epithet + rank + authorship + publication",
    )
    schema.define_class(
        WORKING_NAME,
        [Attribute("label", T.STRING, required=True)],
        superclasses=(TAXONOMIC_OBJECT,),
        doc="Pre-publication handle for a CT during a revision (§2.3)",
    )
    schema.define_class(
        CIRCUMSCRIPTION_TAXON,
        [
            Attribute("rank", T.STRING, required=True),
            Attribute("notes", T.STRING),
            Attribute("author", T.STRING),
            Attribute("publication", T.STRING),
        ],
        superclasses=(TAXONOMIC_OBJECT,),
        doc="A classification group defined by its circumscription",
    )
    schema.define_relationship(
        INCLUDES,
        CIRCUMSCRIPTION_TAXON,
        TAXONOMIC_OBJECT,
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION,
            shareable=True,  # overlap across classifications is the point
        ),
        attributes=[
            Attribute("motivation", T.STRING, doc="Why this placement (req. 4)")
        ],
        doc="Circumscription edge: a CT includes a specimen or another CT",
    )
    schema.define_relationship(
        HAS_TYPE,
        NOMENCLATURAL_TAXON,
        TAXONOMIC_OBJECT,
        semantics=RelationshipSemantics(
            kind=RelKind.ASSOCIATION,
            inherited_attributes=("type_kind",),
        ),
        attributes=[
            Attribute("type_kind", T.STRING, required=True),
            Attribute("designated_by", T.STRING),
            Attribute("designation_year", T.INTEGER),
        ],
        doc="Typification: the name's type is a specimen or a lower NT; "
        "the destination acquires the 'type_kind' role attribute (§4.4.5)",
    )
    schema.define_relationship(
        NAME_PLACEMENT,
        NOMENCLATURAL_TAXON,
        NOMENCLATURAL_TAXON,
        semantics=RelationshipSemantics(
            kind=RelKind.ASSOCIATION,
            cardinality=Cardinality(max_out=1),
        ),
        doc="Combination record: epithet used within a higher name; "
        "NOT a classification statement (§2.1.2)",
    )
    schema.define_relationship(
        BASIONYM,
        NOMENCLATURAL_TAXON,
        NOMENCLATURAL_TAXON,
        semantics=RelationshipSemantics(
            kind=RelKind.ASSOCIATION,
            cardinality=Cardinality(max_out=1),
            constant=True,  # a recombination's origin never changes
        ),
        doc="New combination → the name it was based on",
    )
    schema.define_relationship(
        ASCRIBED_NAME,
        CIRCUMSCRIPTION_TAXON,
        NOMENCLATURAL_TAXON,
        semantics=RelationshipSemantics(
            kind=RelKind.ASSOCIATION, cardinality=Cardinality(max_out=1)
        ),
        doc="Name given in the historical publication of the CT",
    )
    schema.define_relationship(
        CALCULATED_NAME,
        CIRCUMSCRIPTION_TAXON,
        NOMENCLATURAL_TAXON,
        semantics=RelationshipSemantics(
            kind=RelKind.ASSOCIATION, cardinality=Cardinality(max_out=1)
        ),
        doc="Name derived automatically from types + ICBN (§2.3)",
    )
    schema.define_relationship(
        HAS_WORKING_NAME,
        CIRCUMSCRIPTION_TAXON,
        WORKING_NAME,
        semantics=RelationshipSemantics(
            kind=RelKind.AGGREGATION,
            exclusive=True,
            lifetime_dependent=True,
            cardinality=Cardinality(max_out=1),
        ),
        doc="Temporary revision handle; dies with its CT",
    )


class TaxonomyDatabase:
    """Facade bundling schema, classifications and tracing for taxonomy.

    Usage::

        taxdb = TaxonomyDatabase()                     # in-memory
        taxdb = TaxonomyDatabase(ObjectStore(path))    # persistent
    """

    def __init__(
        self, store: ObjectStore | None = None, name: str = "taxonomy"
    ) -> None:
        self.schema = Schema(store, name=name)
        define_taxonomy_schema(self.schema)
        if store is not None:
            self.schema.load_all()
        self.classifications = ClassificationManager(self.schema)
        self.trace = TraceLog(self.schema)

    @classmethod
    def over_engine(cls, db: Any) -> "TaxonomyDatabase":
        """Build the taxonomy facade over a :class:`PrometheusDB`.

        The taxonomic classes are registered on the engine's schema (if
        not already present) and the engine's classification manager and
        trace log are shared, so POOL queries, indexes, views and rules
        all see the taxonomic data.
        """
        taxdb = cls.__new__(cls)
        taxdb.schema = db.schema
        if not taxdb.schema.has_class(TAXONOMIC_OBJECT):
            define_taxonomy_schema(taxdb.schema)
        taxdb.classifications = db.classifications
        taxdb.trace = db.trace
        return taxdb

    # -- generic plumbing -------------------------------------------------

    def commit(self) -> None:
        self.schema.commit()

    def abort(self) -> None:
        self.schema.abort()

    def is_specimen(self, obj: PObject) -> bool:
        return obj.pclass.is_subclass_of(self.schema.get_class(SPECIMEN))

    def is_ct(self, obj: PObject) -> bool:
        return obj.pclass.is_subclass_of(
            self.schema.get_class(CIRCUMSCRIPTION_TAXON)
        )

    def is_nt(self, obj: PObject) -> bool:
        return obj.pclass.is_subclass_of(
            self.schema.get_class(NOMENCLATURAL_TAXON)
        )

    # -- specimens -----------------------------------------------------------

    def new_specimen(self, **attrs: Any) -> PObject:
        return self.schema.create(SPECIMEN, **attrs)

    def specimens(self) -> list[PObject]:
        return self.schema.extent(SPECIMEN)

    # -- names (the nomenclatural side) -----------------------------------------

    def publish_name(
        self,
        epithet: str,
        rank: Rank | str,
        author: str = "",
        year: int | None = None,
        publication: str = "",
        placement: PObject | None = None,
        basionym: PObject | None = None,
        status: str = STATUS_PUBLISHED,
        validate: bool = True,
    ) -> PObject:
        """Publish a nomenclatural taxon.

        Args:
            epithet: the single-word epithet (validated per ICBN unless
                ``validate`` is False — historical data may predate the
                rules).
            rank: rank the name is published at.
            placement: parent NT for multinomial combinations.
            basionym: the original name, for new combinations.
        """
        resolved = get_rank(rank) if isinstance(rank, str) else rank
        if validate:
            nomenclature.validate_epithet(epithet, resolved)
        if status not in VALID_STATUSES:
            raise TaxonomyError(f"unknown nomenclatural status {status!r}")
        if placement is not None and not self.is_nt(placement):
            raise TaxonomyError("placement target must be an NT")
        nt = self.schema.create(
            NOMENCLATURAL_TAXON,
            epithet=epithet,
            rank=resolved.name,
            author=author,
            year=year,
            publication=publication,
            status=status,
        )
        if placement is not None:
            self.schema.relate(NAME_PLACEMENT, nt, placement)
        if basionym is not None:
            if not self.is_nt(basionym):
                raise TaxonomyError("basionym must be an NT")
            self.schema.relate(BASIONYM, nt, basionym)
        return nt

    def names(self) -> list[PObject]:
        return self.schema.extent(NOMENCLATURAL_TAXON)

    def find_names(
        self,
        epithet: str | None = None,
        rank: Rank | str | None = None,
        author: str | None = None,
    ) -> list[PObject]:
        rank_name = (
            (get_rank(rank) if isinstance(rank, str) else rank).name
            if rank is not None
            else None
        )
        out = []
        for nt in self.names():
            if epithet is not None and nt.get("epithet") != epithet:
                continue
            if rank_name is not None and nt.get("rank") != rank_name:
                continue
            if author is not None and nt.get("author") != author:
                continue
            out.append(nt)
        return out

    def placement_of(self, nt: PObject) -> PObject | None:
        """The parent NT of a combination, or None."""
        parents = nt.related(NAME_PLACEMENT, "out")
        return parents[0] if parents else None

    def basionym_of(self, nt: PObject) -> PObject | None:
        origins = nt.related(BASIONYM, "out")
        return origins[0] if origins else None

    def full_name(self, nt: PObject) -> str:
        """Render the complete name string, e.g.
        ``Heliosciadium repens (Jacq.)Lag.``."""
        parents: list[str] = []
        cursor = self.placement_of(nt)
        while cursor is not None:
            parents.insert(0, cursor.get("epithet"))
            cursor = self.placement_of(cursor)
        basionym = self.basionym_of(nt)
        basionym_author = basionym.get("author") if basionym is not None else ""
        return nomenclature.format_full_name(
            nt.get("epithet"),
            nt.get("rank"),
            author=nt.get("author") or "",
            parent_epithets=tuple(parents),
            basionym_author=basionym_author or "",
        )

    # -- typification ------------------------------------------------------------

    def typify(
        self,
        nt: PObject,
        target: PObject,
        kind: str,
        designated_by: str = "",
        year: int | None = None,
    ) -> RelationshipInstance:
        """Designate ``target`` (specimen or lower NT) as a type of ``nt``.

        Enforces §2.1.2: a name has at most one holotype OR lectotype OR
        neotype, but any number of isotypes and syntypes.
        """
        if kind not in TYPE_KINDS:
            raise TypificationError(f"unknown type kind {kind!r}")
        if not self.is_nt(nt):
            raise TypificationError("typified entity must be an NT")
        if not (self.is_specimen(target) or self.is_nt(target)):
            raise TypificationError(
                "a taxonomic type must be a specimen or an NT"
            )
        if kind in PRIMARY_TYPE_KINDS:
            for edge in nt.outgoing(HAS_TYPE):
                if edge.get("type_kind") in PRIMARY_TYPE_KINDS:
                    raise TypificationError(
                        f"name {nt.get('epithet')!r} already has a "
                        f"{edge.get('type_kind')}; only one of "
                        f"holotype/lectotype/neotype is allowed"
                    )
        return self.schema.relate(
            HAS_TYPE,
            nt,
            target,
            type_kind=kind,
            designated_by=designated_by,
            designation_year=year,
        )

    def types_of(self, nt: PObject) -> list[tuple[str, PObject]]:
        """All (kind, target) designations of ``nt``."""
        return [
            (edge.get("type_kind"), edge.destination_object())
            for edge in nt.outgoing(HAS_TYPE)
        ]

    def primary_type(self, nt: PObject) -> PObject | None:
        """The governing type: holotype, else lectotype, else neotype."""
        by_kind = {kind: target for kind, target in self.types_of(nt)}
        for kind in PRIMARY_TYPE_KINDS:
            if kind in by_kind:
                return by_kind[kind]
        return None

    def names_typified_by(self, target: PObject) -> list[PObject]:
        """NTs having ``target`` as one of their (primary) types."""
        out = []
        for edge in target.incoming(HAS_TYPE):
            if edge.get("type_kind") in PRIMARY_TYPE_KINDS:
                out.append(edge.origin_object())
        return out

    def type_role(self, obj: PObject) -> str | None:
        """The role an object acquired through typification, if any.

        Demonstrates attribute inheritance (§4.4.5): the ``type_kind``
        attribute lives on the HasType relationship and is acquired by
        the designated object.
        """
        try:
            return obj.get("type_kind")
        except Exception:
            return None

    # -- circumscription taxa (the classification side) ---------------------------

    def new_taxon(
        self,
        rank: Rank | str,
        working_name: str = "",
        notes: str = "",
        author: str = "",
        publication: str = "",
    ) -> PObject:
        """Create a circumscription taxon, optionally with a working name."""
        resolved = get_rank(rank) if isinstance(rank, str) else rank
        ct = self.schema.create(
            CIRCUMSCRIPTION_TAXON,
            rank=resolved.name,
            notes=notes,
            author=author,
            publication=publication,
        )
        if working_name:
            wn = self.schema.create(WORKING_NAME, label=working_name)
            self.schema.relate(HAS_WORKING_NAME, ct, wn)
        return ct

    def taxa(self) -> list[PObject]:
        return self.schema.extent(CIRCUMSCRIPTION_TAXON)

    def working_name_of(self, ct: PObject) -> str:
        names = ct.related(HAS_WORKING_NAME, "out")
        return names[0].get("label") if names else ""

    def ascribe_name(self, ct: PObject, nt: PObject) -> None:
        """Attach the historically-published name of a CT."""
        for edge in ct.outgoing(ASCRIBED_NAME):
            self.schema.unrelate(edge)
        self.schema.relate(ASCRIBED_NAME, ct, nt)

    def set_calculated_name(self, ct: PObject, nt: PObject) -> None:
        for edge in ct.outgoing(CALCULATED_NAME):
            self.schema.unrelate(edge)
        self.schema.relate(CALCULATED_NAME, ct, nt)

    def calculated_name(self, ct: PObject) -> PObject | None:
        names = ct.related(CALCULATED_NAME, "out")
        return names[0] if names else None

    def ascribed_name(self, ct: PObject) -> PObject | None:
        names = ct.related(ASCRIBED_NAME, "out")
        return names[0] if names else None

    def display_name(self, ct: PObject) -> str:
        """Best available label: calculated, else ascribed, else working."""
        nt = self.calculated_name(ct) or self.ascribed_name(ct)
        if nt is not None:
            return self.full_name(nt)
        return self.working_name_of(ct) or f"CT#{ct.oid}"

    # -- classifications -------------------------------------------------------

    def new_classification(
        self,
        name: str,
        author: str = "",
        year: int | None = None,
        publication: str = "",
        description: str = "",
    ) -> Classification:
        return self.classifications.create(
            name,
            author=author,
            year=year,
            publication=publication,
            description=description,
        )

    def place(
        self,
        classification: Classification | str,
        parent: PObject,
        child: PObject,
        motivation: str = "",
        actor: str = "",
    ) -> RelationshipInstance:
        """Place a specimen or CT inside a CT within one classification.

        Enforces the taxonomic placement rules:

        * the parent must be a CT;
        * if the child is a CT, its rank must be strictly below the
          parent's (ICBN rank order);
        * within one classification a node has a single parent
          (hierarchies are trees; overlap happens *across*
          classifications).
        """
        if isinstance(classification, str):
            classification = self.classifications.get(classification)
        if not self.is_ct(parent):
            raise TaxonomyError("placement parent must be a circumscription taxon")
        if not (self.is_ct(child) or self.is_specimen(child)):
            raise TaxonomyError(
                "only taxa and specimens can be placed in a classification"
            )
        if self.is_ct(child):
            validate_placement(parent.get("rank"), child.get("rank"))
        if classification.parents(child):
            raise TaxonomyError(
                f"{self.display_name(child) if self.is_ct(child) else child!r}"
                f" already has a parent in classification "
                f"{classification.name!r}"
            )
        edge = classification.place(
            INCLUDES, parent, child, motivation=motivation
        )
        self.trace.record(
            TraceLog.PLACE,
            classification.name,
            actor=actor,
            reason=motivation,
            subject_oid=child.oid,
            object_oid=parent.oid,
        )
        return edge

    # -- recursive extraction (requirement 9) ---------------------------------------

    def specimens_under(
        self, classification: Classification, ct: PObject
    ) -> list[PObject]:
        """All specimens at any depth below ``ct`` in ``classification``."""
        found = []
        for node in classification.descendants(ct):
            if self.is_specimen(node):
                found.append(node)
        return found

    def type_specimens_under(
        self, classification: Classification, ct: PObject
    ) -> list[tuple[PObject, PObject, str]]:
        """(specimen, NT, kind) triples for type specimens below ``ct``."""
        out = []
        for specimen in self.specimens_under(classification, ct):
            for edge in specimen.incoming(HAS_TYPE):
                out.append(
                    (specimen, edge.origin_object(), edge.get("type_kind"))
                )
        return out

    def taxa_at_rank(
        self, classification: Classification, rank: Rank | str
    ) -> list[PObject]:
        resolved = get_rank(rank) if isinstance(rank, str) else rank
        return [
            node
            for node in classification.nodes()
            if self.is_ct(node) and node.get("rank") == resolved.name
        ]

    def iter_taxa_top_down(
        self, classification: Classification
    ) -> Iterator[PObject]:
        """CTs of a classification ordered root-first (by depth)."""
        cts = [n for n in classification.nodes() if self.is_ct(n)]
        cts.sort(key=lambda ct: (classification.depth(ct), ct.oid))
        return iter(cts)
