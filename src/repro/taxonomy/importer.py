"""Importing legacy taxonomic data (requirement 10, §2.4.2).

The thesis requires that the system "be integrated with as little changes
to an existing system as possible" and reuse existing data.  Most legacy
taxonomic datasets are flat tables of names, specimens and placements
(the Pandora/BG-BASE/Brahms shape, or a Darwin-Core-ish export).  This
module ingests three such CSV shapes:

* **names** — ``epithet, rank, author, year, publication, parent,
  basionym_author, status``: publishes NTs, resolving ``parent`` to the
  placement name (created as a bare record when missing — legacy data is
  never rejected for incompleteness, only reported);
* **specimens** — ``collector, collection_number, herbarium, field_name,
  collected, type_of, type_kind``: creates specimens and, when
  ``type_of`` names a known epithet, the typification;
* **placements** — ``child, child_rank, parent, parent_rank,
  motivation``: builds circumscription taxa (keyed by working name) and
  a classification from a flat parent/child table.

Every importer returns an :class:`ImportReport` listing what was created
and which rows were skipped and why — faithful to the thesis's stance
that historical data is kept, flagged, and lectotypified later rather
than silently "fixed".
"""

from __future__ import annotations

import csv
import datetime as _dt
import io
from dataclasses import dataclass, field
from typing import Any, Iterable

from ..classification import Classification
from ..core.instances import PObject
from ..errors import PrometheusError
from .model import TYPE_KINDS, HOLOTYPE, TaxonomyDatabase
from .ranks import get_rank, is_rank


@dataclass
class ImportReport:
    """Outcome of one import run."""

    created: list[int] = field(default_factory=list)
    linked: int = 0
    skipped: list[tuple[int, str]] = field(default_factory=list)  # (row, why)

    @property
    def created_count(self) -> int:
        return len(self.created)

    def skip(self, row_number: int, reason: str) -> None:
        self.skipped.append((row_number, reason))

    def summary(self) -> str:
        return (
            f"{self.created_count} created, {self.linked} linked, "
            f"{len(self.skipped)} skipped"
        )


def _rows(source: str | Iterable[dict[str, Any]]) -> list[dict[str, Any]]:
    """Accept CSV text or pre-parsed dict rows."""
    if isinstance(source, str):
        reader = csv.DictReader(io.StringIO(source.strip()))
        return [dict(row) for row in reader]
    return [dict(row) for row in source]


def _clean(row: dict[str, Any], key: str) -> str:
    value = row.get(key)
    return str(value).strip() if value is not None else ""


def _int_or_none(row: dict[str, Any], key: str) -> int | None:
    text = _clean(row, key)
    if not text:
        return None
    try:
        return int(text)
    except ValueError:
        return None


def import_names(
    taxdb: TaxonomyDatabase,
    source: str | Iterable[dict[str, Any]],
) -> ImportReport:
    """Ingest a legacy names table.

    Placement parents are resolved by epithet among already-known names
    (imported parents first — order rows top-down), and created as bare
    genus records when unknown, so combinations always resolve.
    """
    report = ImportReport()
    for row_number, row in enumerate(_rows(source), start=1):
        epithet = _clean(row, "epithet")
        rank_name = _clean(row, "rank")
        if not epithet:
            report.skip(row_number, "missing epithet")
            continue
        if not is_rank(rank_name):
            report.skip(row_number, f"unknown rank {rank_name!r}")
            continue
        rank = get_rank(rank_name)
        placement: PObject | None = None
        parent_epithet = _clean(row, "parent")
        if parent_epithet:
            placement = _resolve_name(taxdb, parent_epithet, report)
        basionym: PObject | None = None
        basionym_author = _clean(row, "basionym_author")
        if basionym_author:
            matches = [
                nt
                for nt in taxdb.find_names(epithet=epithet)
                if nt.get("author") == basionym_author
            ]
            if matches:
                basionym = matches[0]
                report.linked += 1
        try:
            nt = taxdb.publish_name(
                epithet,
                rank,
                author=_clean(row, "author"),
                year=_int_or_none(row, "year"),
                publication=_clean(row, "publication"),
                placement=placement,
                basionym=basionym,
                status=_clean(row, "status") or "published",
                validate=False,  # legacy names predate the rules; audit later
            )
        except PrometheusError as exc:
            report.skip(row_number, str(exc))
            continue
        report.created.append(nt.oid)
    return report


def _resolve_name(
    taxdb: TaxonomyDatabase, epithet: str, report: ImportReport
) -> PObject:
    matches = taxdb.find_names(epithet=epithet)
    if matches:
        report.linked += 1
        return matches[0]
    # Unknown parent: create a bare genus-level record so the combination
    # can be represented; the audit (check_all_invariants) will flag it.
    return taxdb.publish_name(epithet, "Genus", validate=False)


def import_specimens(
    taxdb: TaxonomyDatabase,
    source: str | Iterable[dict[str, Any]],
) -> ImportReport:
    """Ingest a legacy specimens table, with optional typification."""
    report = ImportReport()
    for row_number, row in enumerate(_rows(source), start=1):
        collected: _dt.date | None = None
        collected_text = _clean(row, "collected")
        if collected_text:
            try:
                collected = _dt.date.fromisoformat(collected_text)
            except ValueError:
                report.skip(row_number, f"bad date {collected_text!r}")
                continue
        specimen = taxdb.new_specimen(
            collector=_clean(row, "collector"),
            collection_number=_clean(row, "collection_number"),
            herbarium=_clean(row, "herbarium"),
            field_name=_clean(row, "field_name"),
            collected=collected,
        )
        report.created.append(specimen.oid)
        type_of = _clean(row, "type_of")
        if type_of:
            kind = _clean(row, "type_kind") or HOLOTYPE
            if kind not in TYPE_KINDS:
                report.skip(row_number, f"unknown type kind {kind!r}")
                continue
            matches = taxdb.find_names(epithet=type_of)
            if not matches:
                report.skip(
                    row_number, f"type_of names unknown epithet {type_of!r}"
                )
                continue
            try:
                taxdb.typify(matches[0], specimen, kind)
                report.linked += 1
            except PrometheusError as exc:
                report.skip(row_number, str(exc))
    return report


def import_classification(
    taxdb: TaxonomyDatabase,
    name: str,
    source: str | Iterable[dict[str, Any]],
    author: str = "",
    year: int | None = None,
) -> tuple[Classification, ImportReport]:
    """Build a classification from a flat parent/child table.

    Taxa are keyed by their label (which becomes the working name);
    ``parent`` may be blank for roots.  A ``specimen`` column referencing
    a specimen's ``field_name`` places that specimen instead of a taxon.
    """
    classification = taxdb.new_classification(
        name, author=author, year=year, description="legacy import"
    )
    report = ImportReport()
    taxa: dict[str, PObject] = {}
    specimens = {
        s.get("field_name"): s for s in taxdb.specimens() if s.get("field_name")
    }

    def taxon_for(label: str, rank_name: str, row_number: int) -> PObject | None:
        if label in taxa:
            return taxa[label]
        if not is_rank(rank_name):
            report.skip(row_number, f"unknown rank {rank_name!r} for {label!r}")
            return None
        ct = taxdb.new_taxon(get_rank(rank_name), working_name=label)
        taxa[label] = ct
        report.created.append(ct.oid)
        return ct

    for row_number, row in enumerate(_rows(source), start=1):
        parent_label = _clean(row, "parent")
        specimen_label = _clean(row, "specimen")
        if specimen_label:
            specimen = specimens.get(specimen_label)
            if specimen is None:
                report.skip(
                    row_number, f"unknown specimen {specimen_label!r}"
                )
                continue
            if not parent_label or parent_label not in taxa:
                report.skip(
                    row_number,
                    f"specimen {specimen_label!r} needs a known parent",
                )
                continue
            try:
                taxdb.place(classification, taxa[parent_label], specimen)
                report.linked += 1
            except PrometheusError as exc:
                report.skip(row_number, str(exc))
            continue
        child_label = _clean(row, "child")
        if not child_label:
            report.skip(row_number, "missing child")
            continue
        child = taxon_for(child_label, _clean(row, "child_rank"), row_number)
        if child is None:
            continue
        if not parent_label:
            continue  # a root row just declares the taxon
        parent = taxon_for(
            parent_label, _clean(row, "parent_rank"), row_number
        )
        if parent is None:
            continue
        try:
            taxdb.place(
                classification,
                parent,
                child,
                motivation=_clean(row, "motivation"),
            )
            report.linked += 1
        except PrometheusError as exc:
            report.skip(row_number, str(exc))
    return classification, report
