"""Concurrency subsystem: transactions, conflict detection, sessions.

Multiple clients (HTTP sessions, CLI, embedding threads) each get a
copy-on-write :class:`Transaction` overlay; the
:class:`TransactionManager` serializes commits behind one lock, rejects
lost updates with first-committer-wins validation
(:class:`~repro.errors.ConflictError`), and batches fsyncs with group
commit.  :class:`SessionManager` maps wire tokens to transactions.

See docs/CONCURRENCY.md for the isolation model and its limits.
"""

from .manager import TransactionManager, TxnStats
from .sessions import Session, SessionManager
from .transaction import Transaction, TxnState

__all__ = [
    "Session",
    "SessionManager",
    "Transaction",
    "TransactionManager",
    "TxnState",
    "TxnStats",
]
