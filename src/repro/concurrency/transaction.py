"""Managed transactions: a copy-on-write overlay per client.

A :class:`Transaction` gives one client (an HTTP session, a CLI
``.begin``, an embedding thread) an isolated view over the committed
object layer.  Mutations never touch the shared schema while the
transaction is open: they are staged as an *op log* plus a read-your-
writes overlay, and only applied — serially, validated, journalled —
when :meth:`commit` hands the transaction to the
:class:`~repro.concurrency.manager.TransactionManager`.

Isolation model (docs/CONCURRENCY.md): snapshot isolation.

* **writes** are buffered; nobody sees them before commit;
* **reads** through :meth:`get` resolve the OID's *version chain*
  (:mod:`repro.mvcc`) at the snapshot LSN pinned when the transaction
  began, merged with the transaction's own staged writes — lock-free:
  a reader never blocks behind a committing writer and never aborts
  because of one.  OIDs the chain store does not track fall back to
  the pre-MVCC locked read of live committed state;
* **conflict detection** is write-write only: commit raises
  :class:`~repro.errors.ConflictError` exactly when another transaction
  committed an object in this one's write set *after this one's
  snapshot* (first committer wins).  Pure readers always commit.
  ``validate_reads=True`` opts a transaction into the stricter pre-MVCC
  behaviour of validating the read set the same way.

OIDs for created objects and relationships are allocated eagerly from
the (thread-safe) allocator, so the IDs a client sees before commit are
the IDs the objects keep after it — OIDs are never reused, so an
aborted transaction just leaves holes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..core.relationships import (
    DESTINATION_KEY,
    ORIGIN_KEY,
    RelationshipClass,
    RelationshipInstance,
)
from ..errors import (
    InstanceDeletedError,
    SchemaError,
    TransactionError,
    UnknownOidError,
)
from ..mvcc.view import record_values

if TYPE_CHECKING:  # pragma: no cover
    from .manager import TransactionManager

#: Sentinel: the version chains cannot answer for this OID — fall back
#: to the pre-MVCC locked read of live committed state.
_LIVE = object()


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(slots=True)
class _Op:
    """One staged mutation, replayed in order at commit."""

    kind: str  # create | set | delete | relate | unrelate
    oid: int
    class_name: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)
    attr: str = ""
    value: Any = None
    origin: int = 0
    destination: int = 0
    participants: dict[str, int] = field(default_factory=dict)
    cascade: bool = True


class Transaction:
    """One client's snapshot-style overlay over the committed schema.

    Obtained from :meth:`TransactionManager.begin` (or
    ``PrometheusDB.begin``); not constructed directly.  Usable as a
    context manager: commits on clean exit, aborts on exception.
    """

    def __init__(
        self,
        manager: "TransactionManager",
        txn_id: int,
        validate_reads: bool = False,
        snapshot_ts: int = 0,
        snapshot_lsn: int = 0,
    ) -> None:
        self._manager = manager
        self._schema = manager.schema
        self.txn_id = txn_id
        self.validate_reads = validate_reads
        self.state = TxnState.ACTIVE
        #: Commit clock value / log LSN this transaction's snapshot
        #: observes: reads resolve version chains at ``snapshot_lsn``,
        #: and validation conflicts exactly on commits newer than
        #: ``snapshot_ts``.  Published atomically as a pair by the
        #: manager, so the two always describe the same commit.
        self.snapshot_ts = snapshot_ts
        self.snapshot_lsn = snapshot_lsn
        #: The pin keeping GC from collecting this snapshot's versions;
        #: released by the manager when the transaction finishes.
        self._pin: Any = None
        #: Commit timestamp, set on successful commit.
        self.commit_ts: int | None = None
        #: Storage commit LSN (log byte offset), set on successful
        #: commit when a persistent store backs the manager.  Sessions
        #: carry it forward for read-your-writes replica routing.
        self.commit_lsn: int | None = None
        self._ops: list[_Op] = []
        # oid -> committed version when this txn first READ the object
        self._read_versions: dict[int, int] = {}
        # oid -> committed version when this txn first WROTE the object
        # (endpoints of staged relates/unrelates count as writes)
        self._write_versions: dict[int, int] = {}
        # read-your-writes overlay: staged attribute values per oid
        self._overlay: dict[int, dict[str, Any]] = {}
        # oids created by this txn -> index into self._ops
        self._created: dict[int, int] = {}
        self._deleted: set[int] = set()

    # -- introspection ------------------------------------------------------

    @property
    def active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def read_set(self) -> frozenset[int]:
        return frozenset(self._read_versions)

    @property
    def write_set(self) -> frozenset[int]:
        return frozenset(self._write_versions)

    @property
    def op_count(self) -> int:
        return len(self._ops)

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    # -- version bookkeeping ------------------------------------------------

    def _touch_read(self, oid: int) -> None:
        if oid not in self._read_versions and oid not in self._created:
            self._read_versions[oid] = self._manager.version_of(oid)

    def _touch_write(self, oid: int) -> None:
        if oid in self._created:
            return
        if oid not in self._write_versions:
            # Prefer the version observed when the value was first READ:
            # a get-then-set pattern must validate against the version
            # the read saw, or a commit between the two goes undetected.
            self._write_versions[oid] = self._read_versions.get(
                oid, self._manager.version_of(oid)
            )

    # -- snapshot resolution ------------------------------------------------

    def _snapshot_record(self, oid: int) -> Any:
        """Storage record visible at this transaction's snapshot.

        Returns the record dict, raises :class:`UnknownOidError` when
        the chain proves the object absent at the snapshot (deleted, or
        created after it), or returns the ``_LIVE`` sentinel when the
        chains cannot answer: no MVCC store, an untracked OID, or an
        OID with uncommitted implicit-session changes — those keep the
        pre-MVCC locked live read so direct schema mutations stay
        read-your-writes for the implicit session.
        """
        mvcc = self._manager.mvcc
        if mvcc is None:
            return _LIVE
        schema = self._schema
        if oid in schema._dirty or oid in schema._pending_deletes:
            return _LIVE
        tracked, record = mvcc.lookup(oid, self.snapshot_lsn)
        if not tracked:
            return _LIVE
        if record is None:
            raise UnknownOidError(oid)
        return record

    # -- reading ------------------------------------------------------------

    def get(self, oid: int) -> dict[str, Any]:
        """Merged view of one object: snapshot values + staged writes.

        Lock-free on the MVCC path: the version chain is resolved at
        the snapshot LSN without touching the commit lock, so a long
        reader never waits behind (or is aborted by) writers.  Records
        the read in the read set.  Raises for objects this transaction
        deleted, and for OIDs absent at the snapshot (unless this
        transaction created them).
        """
        self._require_active()
        if oid in self._deleted:
            raise InstanceDeletedError(
                f"object {oid} is deleted in this transaction"
            )
        if oid in self._created:
            op = self._ops[self._created[oid]]
            pclass = self._schema.get_class(op.class_name)
            values = pclass.defaults()
            values.update(op.attrs)
            return values
        record = self._snapshot_record(oid)
        if record is _LIVE:
            with self._manager.read_lock():
                obj = self._schema.get_object(oid)
                base = obj.to_dict()
                self._touch_read(oid)
        else:
            base = record_values(self._schema, record)
            self._touch_read(oid)
        base.update(self._overlay.get(oid, {}))
        return base

    def get_value(self, oid: int, attr: str) -> Any:
        """One attribute through the overlay (sugar over :meth:`get`)."""
        return self.get(oid).get(attr)

    def class_of(self, oid: int) -> str:
        """Class name of a visible object (committed or staged)."""
        self._require_active()
        if oid in self._created:
            return self._ops[self._created[oid]].class_name
        record = self._snapshot_record(oid)
        if record is _LIVE:
            with self._manager.read_lock():
                return self._schema.get_object(oid).pclass.name
        return record["class"]

    # -- staging mutations --------------------------------------------------

    def create(self, class_name: str, **attrs: Any) -> int:
        """Stage creation of a new object; returns its (final) OID."""
        self._require_active()
        pclass = self._schema.get_class(class_name)
        if pclass.abstract:
            raise SchemaError(f"class {class_name!r} is abstract")
        if isinstance(pclass, RelationshipClass):
            raise SchemaError(
                f"use relate() to create instances of relationship class "
                f"{class_name!r}"
            )
        for name in attrs:
            pclass.get_attribute(name)  # unknown attribute fails fast
        oid = self._schema._new_oid()
        self._created[oid] = len(self._ops)
        self._ops.append(
            _Op(kind="create", oid=oid, class_name=class_name,
                attrs=dict(attrs))
        )
        return oid

    def set(self, oid: int, attr: str, value: Any) -> None:
        """Stage one attribute assignment (full validation at commit)."""
        self._require_active()
        if oid in self._deleted:
            raise InstanceDeletedError(
                f"object {oid} is deleted in this transaction"
            )
        if oid in self._created:
            # Creation replays with its final attributes, so later sets
            # on a staged object fold into the create op.
            op = self._ops[self._created[oid]]
            self._schema.get_class(op.class_name).get_attribute(attr)
            op.attrs[attr] = value
            return
        record = self._snapshot_record(oid)
        if record is _LIVE:
            with self._manager.read_lock():
                obj = self._schema.get_object(oid)
                obj.pclass.get_attribute(attr)  # unknown attr fails fast
                self._touch_write(oid)
        else:
            pclass = self._schema.get_class(record["class"])
            pclass.get_attribute(attr)  # unknown attribute fails fast
            self._touch_write(oid)
        self._overlay.setdefault(oid, {})[attr] = value
        self._ops.append(_Op(kind="set", oid=oid, attr=attr, value=value))

    def update(self, oid: int, **attrs: Any) -> None:
        for attr, value in attrs.items():
            self.set(oid, attr, value)

    def delete(self, oid: int, cascade: bool = True) -> None:
        """Stage deletion (lifetime-dependency cascade runs at commit)."""
        self._require_active()
        if oid in self._deleted:
            return
        if oid in self._created:
            # Created and deleted within this txn: the create op degrades
            # to a no-op; nothing ever reaches the shared schema.
            index = self._created.pop(oid)
            self._ops[index] = _Op(kind="noop", oid=oid)
            self._deleted.add(oid)
            return
        record = self._snapshot_record(oid)
        if record is _LIVE:
            with self._manager.read_lock():
                self._schema.get_object(oid)  # must exist, not deleted
                self._touch_write(oid)
        else:
            self._touch_write(oid)
        self._deleted.add(oid)
        self._overlay.pop(oid, None)
        self._ops.append(_Op(kind="delete", oid=oid, cascade=cascade))

    def relate(
        self,
        relationship: str,
        origin: int,
        destination: int,
        participants: dict[str, int] | None = None,
        **attrs: Any,
    ) -> int:
        """Stage a relationship origin → destination; returns its OID.

        Endpoints join the *write set*: two transactions concurrently
        relating through the same endpoint conflict, which is exactly
        the shared-endpoint write-write case the thesis's workflows hit.
        """
        self._require_active()
        relclass = self._schema.get_class(relationship)
        if not isinstance(relclass, RelationshipClass):
            raise SchemaError(f"{relationship!r} is not a relationship class")
        if relclass.abstract:
            raise SchemaError(
                f"relationship class {relationship!r} is abstract"
            )
        for name in attrs:
            relclass.get_attribute(name)
        endpoints = [origin, destination, *list((participants or {}).values())]
        for endpoint in endpoints:
            if endpoint in self._created:
                continue
            if endpoint in self._deleted:
                raise InstanceDeletedError(
                    f"object {endpoint} is deleted in this transaction"
                )
            record = self._snapshot_record(endpoint)
            if record is _LIVE:
                with self._manager.read_lock():
                    self._schema.get_object(endpoint)
                    self._touch_write(endpoint)
            else:
                self._touch_write(endpoint)
        oid = self._schema._new_oid()
        self._created[oid] = len(self._ops)
        self._ops.append(
            _Op(
                kind="relate",
                oid=oid,
                class_name=relationship,
                attrs=dict(attrs),
                origin=origin,
                destination=destination,
                participants=dict(participants or {}),
            )
        )
        return oid

    def unrelate(self, rel_oid: int) -> None:
        """Stage removal of a relationship instance."""
        self._require_active()
        if rel_oid in self._created:
            index = self._created[rel_oid]
            if self._ops[index].kind != "relate":
                raise SchemaError(f"object {rel_oid} is not a relationship")
            del self._created[rel_oid]
            self._ops[index] = _Op(kind="noop", oid=rel_oid)
            self._deleted.add(rel_oid)
            return
        record = self._snapshot_record(rel_oid)
        if record is _LIVE:
            with self._manager.read_lock():
                rel = self._schema.get_object(rel_oid)
                if not isinstance(rel, RelationshipInstance):
                    raise SchemaError(
                        f"object {rel_oid} is not a relationship"
                    )
                self._touch_write(rel_oid)
                for endpoint in (rel.origin_oid, rel.destination_oid):
                    if self._schema.has_object(endpoint):
                        self._touch_write(endpoint)
        else:
            if ORIGIN_KEY not in record or not isinstance(
                self._schema.get_class(record["class"]), RelationshipClass
            ):
                raise SchemaError(f"object {rel_oid} is not a relationship")
            self._touch_write(rel_oid)
            for endpoint in (record[ORIGIN_KEY], record[DESTINATION_KEY]):
                try:
                    exists = self._snapshot_record(endpoint)
                except UnknownOidError:
                    continue
                if exists is _LIVE and not self._schema.has_object(endpoint):
                    continue
                self._touch_write(int(endpoint))
        self._deleted.add(rel_oid)
        self._ops.append(_Op(kind="unrelate", oid=rel_oid))

    # -- lifecycle ----------------------------------------------------------

    def commit(self) -> int:
        """Validate, replay and persist; returns the commit timestamp.

        Raises :class:`~repro.errors.ConflictError` when first-committer-
        wins validation rejects the write set — the transaction is then
        aborted and the caller retries from ``begin()``.
        """
        self._require_active()
        return self._manager.commit(self)

    def abort(self) -> None:
        """Discard the overlay; nothing ever reached the shared schema."""
        if self.state is not TxnState.ACTIVE:
            return
        self.state = TxnState.ABORTED
        self._ops.clear()
        self._overlay.clear()
        self._manager._note_finished(self, committed=False, conflict=False)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if not self.active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Transaction {self.txn_id} {self.state.value}: "
            f"{len(self._ops)} ops, writes={sorted(self.write_set)}>"
        )
