"""Managed transactions: a copy-on-write overlay per client.

A :class:`Transaction` gives one client (an HTTP session, a CLI
``.begin``, an embedding thread) an isolated view over the committed
object layer.  Mutations never touch the shared schema while the
transaction is open: they are staged as an *op log* plus a read-your-
writes overlay, and only applied — serially, validated, journalled —
when :meth:`commit` hands the transaction to the
:class:`~repro.concurrency.manager.TransactionManager`.

Isolation model (docs/CONCURRENCY.md):

* **writes** are buffered; nobody sees them before commit;
* **reads** through :meth:`get` see committed state merged with the
  transaction's own staged writes, and record the object's commit
  version so the write-set validation can reject lost updates;
* **conflict detection** is first-committer-wins over the write set
  (optionally the read set too, ``validate_reads=True``): if another
  transaction committed any object this one wrote since this one first
  touched it, commit raises :class:`~repro.errors.ConflictError` and
  the client retries.

OIDs for created objects and relationships are allocated eagerly from
the (thread-safe) allocator, so the IDs a client sees before commit are
the IDs the objects keep after it — OIDs are never reused, so an
aborted transaction just leaves holes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..core.relationships import RelationshipClass, RelationshipInstance
from ..errors import (
    InstanceDeletedError,
    SchemaError,
    TransactionError,
)

if TYPE_CHECKING:  # pragma: no cover
    from .manager import TransactionManager


class TxnState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"


@dataclass(slots=True)
class _Op:
    """One staged mutation, replayed in order at commit."""

    kind: str  # create | set | delete | relate | unrelate
    oid: int
    class_name: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)
    attr: str = ""
    value: Any = None
    origin: int = 0
    destination: int = 0
    participants: dict[str, int] = field(default_factory=dict)
    cascade: bool = True


class Transaction:
    """One client's snapshot-style overlay over the committed schema.

    Obtained from :meth:`TransactionManager.begin` (or
    ``PrometheusDB.begin``); not constructed directly.  Usable as a
    context manager: commits on clean exit, aborts on exception.
    """

    def __init__(
        self,
        manager: "TransactionManager",
        txn_id: int,
        validate_reads: bool = False,
    ) -> None:
        self._manager = manager
        self._schema = manager.schema
        self.txn_id = txn_id
        self.validate_reads = validate_reads
        self.state = TxnState.ACTIVE
        #: Commit timestamp, set on successful commit.
        self.commit_ts: int | None = None
        #: Storage commit LSN (log byte offset), set on successful
        #: commit when a persistent store backs the manager.  Sessions
        #: carry it forward for read-your-writes replica routing.
        self.commit_lsn: int | None = None
        self._ops: list[_Op] = []
        # oid -> committed version when this txn first READ the object
        self._read_versions: dict[int, int] = {}
        # oid -> committed version when this txn first WROTE the object
        # (endpoints of staged relates/unrelates count as writes)
        self._write_versions: dict[int, int] = {}
        # read-your-writes overlay: staged attribute values per oid
        self._overlay: dict[int, dict[str, Any]] = {}
        # oids created by this txn -> index into self._ops
        self._created: dict[int, int] = {}
        self._deleted: set[int] = set()

    # -- introspection ------------------------------------------------------

    @property
    def active(self) -> bool:
        return self.state is TxnState.ACTIVE

    @property
    def read_set(self) -> frozenset[int]:
        return frozenset(self._read_versions)

    @property
    def write_set(self) -> frozenset[int]:
        return frozenset(self._write_versions)

    @property
    def op_count(self) -> int:
        return len(self._ops)

    def _require_active(self) -> None:
        if self.state is not TxnState.ACTIVE:
            raise TransactionError(
                f"transaction {self.txn_id} is {self.state.value}"
            )

    # -- version bookkeeping ------------------------------------------------

    def _touch_read(self, oid: int) -> None:
        if oid not in self._read_versions and oid not in self._created:
            self._read_versions[oid] = self._manager.version_of(oid)

    def _touch_write(self, oid: int) -> None:
        if oid in self._created:
            return
        if oid not in self._write_versions:
            # Prefer the version observed when the value was first READ:
            # a get-then-set pattern must validate against the version
            # the read saw, or a commit between the two goes undetected.
            self._write_versions[oid] = self._read_versions.get(
                oid, self._manager.version_of(oid)
            )

    # -- reading ------------------------------------------------------------

    def get(self, oid: int) -> dict[str, Any]:
        """Merged view of one object: committed values + staged writes.

        Records the read in the read set.  Raises for objects this
        transaction deleted, and for OIDs the committed state does not
        know (unless this transaction created them).
        """
        self._require_active()
        if oid in self._deleted:
            raise InstanceDeletedError(
                f"object {oid} is deleted in this transaction"
            )
        if oid in self._created:
            op = self._ops[self._created[oid]]
            pclass = self._schema.get_class(op.class_name)
            values = pclass.defaults()
            values.update(op.attrs)
            return values
        with self._manager.read_lock():
            obj = self._schema.get_object(oid)
            base = obj.to_dict()
            self._touch_read(oid)
        base.update(self._overlay.get(oid, {}))
        return base

    def get_value(self, oid: int, attr: str) -> Any:
        """One attribute through the overlay (sugar over :meth:`get`)."""
        return self.get(oid).get(attr)

    def class_of(self, oid: int) -> str:
        """Class name of a visible object (committed or staged)."""
        self._require_active()
        if oid in self._created:
            return self._ops[self._created[oid]].class_name
        with self._manager.read_lock():
            return self._schema.get_object(oid).pclass.name

    # -- staging mutations --------------------------------------------------

    def create(self, class_name: str, **attrs: Any) -> int:
        """Stage creation of a new object; returns its (final) OID."""
        self._require_active()
        pclass = self._schema.get_class(class_name)
        if pclass.abstract:
            raise SchemaError(f"class {class_name!r} is abstract")
        if isinstance(pclass, RelationshipClass):
            raise SchemaError(
                f"use relate() to create instances of relationship class "
                f"{class_name!r}"
            )
        for name in attrs:
            pclass.get_attribute(name)  # unknown attribute fails fast
        oid = self._schema._new_oid()
        self._created[oid] = len(self._ops)
        self._ops.append(
            _Op(kind="create", oid=oid, class_name=class_name,
                attrs=dict(attrs))
        )
        return oid

    def set(self, oid: int, attr: str, value: Any) -> None:
        """Stage one attribute assignment (full validation at commit)."""
        self._require_active()
        if oid in self._deleted:
            raise InstanceDeletedError(
                f"object {oid} is deleted in this transaction"
            )
        if oid in self._created:
            # Creation replays with its final attributes, so later sets
            # on a staged object fold into the create op.
            op = self._ops[self._created[oid]]
            self._schema.get_class(op.class_name).get_attribute(attr)
            op.attrs[attr] = value
            return
        with self._manager.read_lock():
            obj = self._schema.get_object(oid)
            obj.pclass.get_attribute(attr)  # unknown attribute fails fast
            self._touch_write(oid)
        self._overlay.setdefault(oid, {})[attr] = value
        self._ops.append(_Op(kind="set", oid=oid, attr=attr, value=value))

    def update(self, oid: int, **attrs: Any) -> None:
        for attr, value in attrs.items():
            self.set(oid, attr, value)

    def delete(self, oid: int, cascade: bool = True) -> None:
        """Stage deletion (lifetime-dependency cascade runs at commit)."""
        self._require_active()
        if oid in self._deleted:
            return
        if oid in self._created:
            # Created and deleted within this txn: the create op degrades
            # to a no-op; nothing ever reaches the shared schema.
            index = self._created.pop(oid)
            self._ops[index] = _Op(kind="noop", oid=oid)
            self._deleted.add(oid)
            return
        with self._manager.read_lock():
            self._schema.get_object(oid)  # must exist, not deleted
            self._touch_write(oid)
        self._deleted.add(oid)
        self._overlay.pop(oid, None)
        self._ops.append(_Op(kind="delete", oid=oid, cascade=cascade))

    def relate(
        self,
        relationship: str,
        origin: int,
        destination: int,
        participants: dict[str, int] | None = None,
        **attrs: Any,
    ) -> int:
        """Stage a relationship origin → destination; returns its OID.

        Endpoints join the *write set*: two transactions concurrently
        relating through the same endpoint conflict, which is exactly
        the shared-endpoint write-write case the thesis's workflows hit.
        """
        self._require_active()
        relclass = self._schema.get_class(relationship)
        if not isinstance(relclass, RelationshipClass):
            raise SchemaError(f"{relationship!r} is not a relationship class")
        if relclass.abstract:
            raise SchemaError(
                f"relationship class {relationship!r} is abstract"
            )
        for name in attrs:
            relclass.get_attribute(name)
        endpoints = [origin, destination, *list((participants or {}).values())]
        with self._manager.read_lock():
            for endpoint in endpoints:
                if endpoint not in self._created:
                    if endpoint in self._deleted:
                        raise InstanceDeletedError(
                            f"object {endpoint} is deleted in this transaction"
                        )
                    self._schema.get_object(endpoint)
                    self._touch_write(endpoint)
        oid = self._schema._new_oid()
        self._created[oid] = len(self._ops)
        self._ops.append(
            _Op(
                kind="relate",
                oid=oid,
                class_name=relationship,
                attrs=dict(attrs),
                origin=origin,
                destination=destination,
                participants=dict(participants or {}),
            )
        )
        return oid

    def unrelate(self, rel_oid: int) -> None:
        """Stage removal of a relationship instance."""
        self._require_active()
        if rel_oid in self._created:
            index = self._created[rel_oid]
            if self._ops[index].kind != "relate":
                raise SchemaError(f"object {rel_oid} is not a relationship")
            del self._created[rel_oid]
            self._ops[index] = _Op(kind="noop", oid=rel_oid)
            self._deleted.add(rel_oid)
            return
        with self._manager.read_lock():
            rel = self._schema.get_object(rel_oid)
            if not isinstance(rel, RelationshipInstance):
                raise SchemaError(f"object {rel_oid} is not a relationship")
            self._touch_write(rel_oid)
            for endpoint in (rel.origin_oid, rel.destination_oid):
                if self._schema.has_object(endpoint):
                    self._touch_write(endpoint)
        self._deleted.add(rel_oid)
        self._ops.append(_Op(kind="unrelate", oid=rel_oid))

    # -- lifecycle ----------------------------------------------------------

    def commit(self) -> int:
        """Validate, replay and persist; returns the commit timestamp.

        Raises :class:`~repro.errors.ConflictError` when first-committer-
        wins validation rejects the write set — the transaction is then
        aborted and the caller retries from ``begin()``.
        """
        self._require_active()
        return self._manager.commit(self)

    def abort(self) -> None:
        """Discard the overlay; nothing ever reached the shared schema."""
        if self.state is not TxnState.ACTIVE:
            return
        self.state = TxnState.ABORTED
        self._ops.clear()
        self._overlay.clear()
        self._manager._note_finished(self, committed=False, conflict=False)

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if not self.active:
            return
        if exc_type is None:
            self.commit()
        else:
            self.abort()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"<Transaction {self.txn_id} {self.state.value}: "
            f"{len(self._ops)} ops, writes={sorted(self.write_set)}>"
        )
